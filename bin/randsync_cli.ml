(* randsync: the command-line multitool.

   Subcommands:
     list      enumerate packaged protocols
     run       execute one consensus run under a chosen scheduler
     attack    construct a lower-bound counterexample (Lemma 3.2 / 3.6)
     mc        exhaustively model-check a protocol instance
     classify  print the object-algebra classification table
     sweep     regenerate one experiment table (e1..e8)
*)

open Cmdliner

let find_protocol name =
  match Consensus.Registry.find name with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown protocol %S; try `randsync list`" name)

let protocol_arg =
  let doc = "Protocol name (see `randsync list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc)

let seed_arg =
  let doc = "PRNG seed for scheduler and coins." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let jobs_arg =
  let doc =
    "Number of domains for parallel search (1 = sequential; 0 = one per \
     core).  Results are bit-identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* [None] → no pool (sequential); [Some 0] → recommended domain count. *)
let with_jobs jobs f =
  match jobs with
  | None -> f None
  | Some j ->
      let jobs = if j = 0 then None else Some j in
      Par.with_pool ?jobs (fun pool -> f (Some pool))

(* ------------------------------------------------------------------ list *)

let list_cmd =
  let run () =
    let t =
      Stats.Table.create ~header:[ "name"; "kind"; "identical"; "objects @n=8" ]
    in
    List.iter
      (fun (p : Consensus.Protocol.t) ->
        let n = if p.Consensus.Protocol.supports_n 8 then 8 else 2 in
        Stats.Table.add_row t
          [
            p.Consensus.Protocol.name;
            (match p.Consensus.Protocol.kind with
            | `Deterministic -> "deterministic"
            | `Randomized -> "randomized");
            string_of_bool p.Consensus.Protocol.identical;
            string_of_int (Consensus.Protocol.space p ~n);
          ])
      Consensus.Registry.all;
    Stats.Table.print t
  in
  Cmd.v (Cmd.info "list" ~doc:"Enumerate packaged protocols")
    Term.(const run $ const ())

(* ------------------------------------------------------------------- run *)

let run_cmd =
  let inputs_arg =
    let doc = "Comma-separated binary inputs, one per process (e.g. 0,1,1)." in
    Arg.(value & opt string "0,1" & info [ "inputs" ] ~doc ~docv:"INPUTS")
  in
  let sched_arg =
    let doc = "Scheduler: random, round-robin or contention." in
    Arg.(value & opt string "random" & info [ "sched" ] ~doc)
  in
  let trace_arg =
    let doc = "Print the full execution trace." in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let run name inputs sched_name seed show_trace =
    match find_protocol name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok p ->
        let inputs =
          String.split_on_char ',' inputs |> List.map String.trim
          |> List.map int_of_string
        in
        let sched =
          match sched_name with
          | "random" -> Sim.Sched.random ~seed
          | "round-robin" -> Sim.Sched.round_robin ~seed ()
          | "contention" -> Sim.Sched.contention ~seed
          | s ->
              prerr_endline ("unknown scheduler " ^ s);
              exit 1
        in
        let report = Consensus.Protocol.run_once p ~inputs ~sched in
        if show_trace then
          print_endline
            (Sim.Trace.to_string string_of_int
               report.Consensus.Protocol.result.Sim.Run.trace);
        Fmt.pr "protocol=%s n=%d sched=%s seed=%d@." name (List.length inputs)
          sched_name seed;
        Fmt.pr "outcome=%s steps=%d@."
          (Sim.Run.outcome_to_string
             report.Consensus.Protocol.result.Sim.Run.outcome)
          report.Consensus.Protocol.result.Sim.Run.steps;
        Fmt.pr "verdict: %a@." Sim.Checker.pp report.Consensus.Protocol.verdict;
        if not (Sim.Checker.ok report.Consensus.Protocol.verdict) then exit 2
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute one consensus run under a scheduler")
    Term.(const run $ protocol_arg $ inputs_arg $ sched_arg $ seed_arg $ trace_arg)

(* ---------------------------------------------------------------- attack *)

let attack_cmd =
  let general_arg =
    let doc =
      "Use the general historyless construction (Lemma 3.6) instead of the \
       identical-process one (Lemma 3.2)."
    in
    Arg.(value & flag & info [ "general" ] ~doc)
  in
  let trace_arg =
    let doc = "Print the counterexample execution." in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let certify_arg =
    let doc =
      "After the identical-process attack, certify the witness by fresh-start \
       replay with clones shadowing their origins lock-step."
    in
    Arg.(value & flag & info [ "certify" ] ~doc)
  in
  let save_arg =
    let doc = "Save the counterexample execution to FILE (Trace_io format)." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let seeds_arg =
    let doc =
      "Run the identical-process attack once per seed in 1..N (each seed \
       randomizes the solo witness search), in parallel under --jobs, and \
       keep the shortest successful witness."
    in
    Arg.(value & opt int 0 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let run name general show_trace do_certify save seeds jobs =
    match find_protocol name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok p ->
        let save_trace trace =
          match save with
          | None -> ()
          | Some path ->
              Sim.Trace_io.save_int ~path trace;
              Fmt.pr "witness saved to %s@." path
        in
        if general then begin
          match Lowerbound.General_attack.run p with
          | Error e ->
              prerr_endline (Lowerbound.General_attack.error_to_string e);
              exit 1
          | Ok o ->
              save_trace o.Lowerbound.General_attack.trace;
              if show_trace then
                print_endline
                  (Sim.Trace.to_string string_of_int o.Lowerbound.General_attack.trace);
              Fmt.pr "general attack on %s: processes=%d objects=%d pieces=%d/%d@."
                name o.Lowerbound.General_attack.processes_used
                o.Lowerbound.General_attack.registers
                o.Lowerbound.General_attack.pieces_alpha
                o.Lowerbound.General_attack.pieces_beta;
              Fmt.pr "verdict: %a@." Sim.Checker.pp
                o.Lowerbound.General_attack.verdict;
              if Lowerbound.General_attack.succeeded o then
                print_endline "INCONSISTENT EXECUTION CONSTRUCTED"
              else exit 2
        end
        else begin
          let outcome =
            if seeds <= 0 then Lowerbound.Attack.run p
            else begin
              let sweep =
                with_jobs jobs (fun pool ->
                    Lowerbound.Attack.seed_sweep ?pool
                      ~seeds:(List.init seeds (fun i -> i + 1))
                      p)
              in
              match Lowerbound.Attack.best_witness sweep with
              | Some (seed, o) ->
                  Fmt.pr "seed sweep 1..%d: best witness from seed %d (%d \
                          steps)@."
                    seeds seed
                    (Sim.Trace.steps o.Lowerbound.Attack.trace);
                  Ok o
              | None -> (
                  (* no seed succeeded; surface the unrandomized error *)
                  match List.assoc_opt 1 sweep with
                  | Some r -> r
                  | None -> Lowerbound.Attack.run p)
            end
          in
          match outcome with
          | Error e ->
              prerr_endline (Lowerbound.Attack.error_to_string e);
              exit 1
          | Ok o ->
              save_trace o.Lowerbound.Attack.trace;
              if show_trace then
                print_endline
                  (Sim.Trace.to_string string_of_int o.Lowerbound.Attack.trace);
              Fmt.pr "attack on %s: processes=%d registers=%d@." name
                o.Lowerbound.Attack.processes_used o.Lowerbound.Attack.registers;
              Fmt.pr "verdict: %a@." Sim.Checker.pp o.Lowerbound.Attack.verdict;
              if Lowerbound.Attack.succeeded o then
                print_endline "INCONSISTENT EXECUTION CONSTRUCTED"
              else exit 2;
              if do_certify then begin
                match Lowerbound.Attack.certify p o with
                | Ok (trace, verdict) ->
                    Fmt.pr
                      "certified fresh-start replay: %d steps, verdict: %a@."
                      (Sim.Trace.steps trace) Sim.Checker.pp verdict
                | Error msg -> Fmt.pr "certification failed: %s@." msg
              end
        end
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Construct a lower-bound counterexample against a protocol")
    Term.(
      const run $ protocol_arg $ general_arg $ trace_arg $ certify_arg
      $ save_arg $ seeds_arg $ jobs_arg)

(* -------------------------------------------------------------------- mc *)

let mc_cmd =
  let run name inputs depth dedup jobs =
    match find_protocol name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok p ->
        let inputs =
          String.split_on_char ',' inputs |> List.map String.trim
          |> List.map int_of_string
        in
        let dedup =
          match dedup with
          | "off" -> `Off
          | "exact" -> `Exact
          | "symmetric" -> `Symmetric
          | s ->
              prerr_endline
                (Printf.sprintf
                   "unknown --dedup %S (expected off | exact | symmetric)" s);
              exit 1
        in
        let config = Consensus.Protocol.initial_config p ~inputs in
        let result =
          with_jobs jobs (fun pool ->
              match pool with
              | None ->
                  Mc.Explore.search ~dedup ~max_depth:depth ~inputs config
              | Some pool ->
                  Mc.Explore.search_par ~pool ~dedup ~max_depth:depth ~inputs
                    config)
        in
        Fmt.pr "visited=%d leaves=%d table-hits=%d truncated=%b max-depth=%d@."
          result.Mc.Explore.visited result.Mc.Explore.leaves
          result.Mc.Explore.table_hits result.Mc.Explore.truncated
          result.Mc.Explore.max_depth_seen;
        (match result.Mc.Explore.violation with
        | None -> print_endline "no violation found"
        | Some v ->
            Fmt.pr "VIOLATION (%s):@."
              (match v.Mc.Explore.kind with
              | `Inconsistent -> "inconsistent"
              | `Invalid -> "invalid");
            print_endline
              (Sim.Trace.to_string string_of_int v.Mc.Explore.trace);
            exit 2)
  in
  Cmd.v
    (Cmd.info "mc" ~doc:"Exhaustively model-check a protocol instance")
    Term.(
      const run $ protocol_arg
      $ Arg.(value & opt string "0,1" & info [ "inputs" ] ~doc:"inputs")
      $ Arg.(value & opt int 40 & info [ "depth" ] ~doc:"depth bound")
      $ Arg.(
          value
          & opt string "off"
          & info [ "dedup" ]
              ~doc:
                "transposition-table dedup: off, exact, or symmetric \
                 (symmetric additionally collapses permutations of \
                 interchangeable processes)")
      $ jobs_arg)

(* ----------------------------------------------------------------- trace *)

let trace_cmd =
  let run path =
    match Sim.Trace_io.load_int ~path with
    | exception Sys_error e ->
        prerr_endline e;
        exit 1
    | exception Sim.Trace_io.Parse_error e ->
        prerr_endline ("parse error: " ^ e);
        exit 1
    | trace ->
        print_endline (Sim.Trace.to_string string_of_int trace);
        let decisions = List.map snd (Sim.Trace.decisions trace) in
        Fmt.pr "--@.steps=%d pids=[%a] decisions=[%a]%s@."
          (Sim.Trace.steps trace)
          Fmt.(list ~sep:(any ";") int)
          (Sim.Trace.pids trace)
          Fmt.(list ~sep:(any ";") int)
          decisions
          (if Sim.Checker.inconsistent ~decisions then "  INCONSISTENT" else "")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Inspect a saved witness trace (see attack --save)")
    Term.(
      const run
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"))

(* -------------------------------------------------------------- classify *)

let classify_cmd =
  let run () = Stats.Table.print (Experiments.E7_classify.table ()) in
  Cmd.v
    (Cmd.info "classify" ~doc:"Print the object-algebra classification table")
    Term.(const run $ const ())

(* ----------------------------------------------------------------- sweep *)

let sweep_cmd =
  let run id quick jobs =
    match Experiments.All.find id with
    | None ->
        prerr_endline ("unknown experiment " ^ id ^ " (known: e1..e8)");
        exit 1
    | Some s ->
        Fmt.pr "=== %s: %s ===@.@." (String.uppercase_ascii s.Experiments.All.id)
          s.Experiments.All.title;
        Stats.Table.print
          (with_jobs jobs (fun pool -> s.Experiments.All.run ~pool ~quick))
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Regenerate one experiment table (e1..e8)")
    Term.(
      const run
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
      $ Arg.(value & flag & info [ "quick" ] ~doc:"smaller parameters")
      $ jobs_arg)

let main =
  let doc = "Randomized synchronization space-complexity toolkit (Fich-Herlihy-Shavit, PODC'93)" in
  Cmd.group (Cmd.info "randsync" ~doc)
    [ list_cmd; run_cmd; attack_cmd; mc_cmd; classify_cmd; sweep_cmd; trace_cmd ]

let () = exit (Cmd.eval main)
