(* randsync: the command-line multitool.

   Subcommands:
     list      enumerate packaged protocols
     run       execute one consensus run under a chosen scheduler
     attack    construct a lower-bound counterexample (Lemma 3.2 / 3.6)
     mc        exhaustively model-check a protocol instance
     fuzz      randomized schedule fuzzing with counterexample shrinking
     classify  print the object-algebra classification table
     sweep     regenerate one experiment table (e1..e8)
     serve     run the verification daemon (lib/serve)
     submit    send a job to a running daemon and await its verdict
*)

open Cmdliner

(* One exit-code vocabulary for every subcommand (README has the table):
     0  clean: whatever was asked completed and found nothing wrong
     1  bad arguments / unusable input (unknown protocol, parse errors)
     2  a consensus violation was demonstrated (run, mc, attack alike)
     3  truncated: a --deadline/--max-nodes budget cut the answer short
        before anything conclusive — the verdict is an under-approximation
     4  an attack construction failed for a reason other than a budget
     5  a progress violation was demonstrated (fuzz: a deadlocked or
        starved call the drain probe could never finish — safety held,
        liveness did not)
   Scripts can branch on "did it break" (2), "did it hang" (5) and "did
   it finish" (3) without parsing output.

   `submit` adds one client-side code on top of the shared vocabulary:
     6  the server could not be reached (connect failures exhausted the
        retry budget, or the server was draining/shedding to the end)
   Verdict-bearing replies reuse 0/2/3/5 verbatim — the wire status IS
   the exit code the same job would have produced locally. *)
module Exit_code = struct
  let bad_args = 1
  let violation = 2
  let truncated = 3
  let attack_failed = 4

  (* 5 (progress violation) is produced via Serve.Job.fuzz_report, which
     renders mc/fuzz outcomes for CLI and daemon alike *)
  let unavailable = 6
end

(* A SIGTERM must not lose metrics or corrupt spools: it flips a Cancel
   token, the budget machinery trips cooperatively, and the run winds
   down through the normal report-dump-exit path (exit 3, "truncated
   (cancelled)") instead of dying mid-write. *)
let term_cancel () =
  let c = Robust.Cancel.create () in
  (try
     Sys.set_signal Sys.sigterm
       (Sys.Signal_handle (fun _ -> Robust.Cancel.set c))
   with Invalid_argument _ | Sys_error _ -> ());
  c

let find_protocol name =
  match Consensus.Registry.find name with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown protocol %S; try `randsync list`" name)

let parse_inputs s =
  match
    String.split_on_char ',' s |> List.map String.trim
    |> List.map int_of_string
  with
  | inputs -> inputs
  | exception _ ->
      prerr_endline
        (Printf.sprintf "invalid --inputs %S (expected e.g. 0,1,1)" s);
      exit Exit_code.bad_args

(* Durations accept "2s", "300ms" or a bare float of seconds. *)
let duration_conv =
  let parse s =
    let drop k = String.sub s 0 (String.length s - k) in
    let v =
      if String.length s > 2 && Filename.check_suffix s "ms" then
        Option.map (fun f -> f /. 1000.) (float_of_string_opt (drop 2))
      else if String.length s > 1 && Filename.check_suffix s "s" then
        float_of_string_opt (drop 1)
      else float_of_string_opt s
    in
    match v with
    | Some f when f >= 0. -> Ok f
    | _ ->
        Error
          (`Msg
            (Printf.sprintf "invalid duration %S (expected 2s, 300ms or 1.5)" s))
  in
  Arg.conv (parse, fun ppf f -> Format.fprintf ppf "%gs" f)

let deadline_arg =
  let doc =
    "Best-effort wall-clock budget (e.g. 2s, 300ms).  On expiry the search \
     stops cooperatively, reports a truncated verdict and exits 3 (unless a \
     violation was already in hand)."
  in
  Arg.(
    value
    & opt (some duration_conv) None
    & info [ "deadline" ] ~docv:"DUR" ~doc)

let protocol_arg =
  let doc = "Protocol name (see `randsync list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc)

let seed_arg =
  let doc = "PRNG seed for scheduler and coins." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let jobs_arg =
  let doc =
    "Number of domains for parallel search (1 = sequential; 0 = one per \
     core).  Results are bit-identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* A negative domain count is an argument error, not something to hand
   to the pool (where it raised an uncaught exception — exit 125 —
   or, worse, was silently accepted by paths that bypass pool
   creation).  Every --jobs consumer funnels through here. *)
let validate_jobs jobs =
  match jobs with
  | Some j when j < 0 ->
      prerr_endline "--jobs must be >= 0 (0 = one domain per core)";
      exit Exit_code.bad_args
  | _ -> ()

(* [None] → no pool (sequential); [Some 0] → recommended domain count. *)
let with_jobs ?obs jobs f =
  validate_jobs jobs;
  match jobs with
  | None -> f None
  | Some j ->
      let jobs = if j = 0 then None else Some j in
      Par.with_pool ?jobs ?obs (fun pool -> f (Some pool))

(* ---- observability plumbing shared by attack / mc / fuzz ---- *)

let metrics_arg =
  let doc =
    "Dump counters, watermarks, histograms and spans as line-JSON to FILE \
     (written once on exit, atomic replace).  Counter values equal the \
     numbers printed on stdout."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Print a heartbeat line to stderr (at most once per second), driven by \
     the budget's poll boundaries.  Without any budget dimension the search \
     is never polled and no heartbeat appears."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let make_obs metrics =
  Option.map (fun path -> Obs.create ~sink:(Obs.Sink.file path) ()) metrics

let dump_metrics ?(extra = []) obs =
  Option.iter (fun o -> Obs.dump ~extra o) obs

let progress_hook enabled label =
  if not enabled then None
  else
    Some
      (Obs.Progress.heartbeat
         ~render:(fun ~nodes ~steps ->
           Printf.sprintf "%s: nodes=%d steps=%d" label nodes steps)
         ())

(* ------------------------------------------------------------------ list *)

let list_cmd =
  let run () =
    let t =
      Stats.Table.create ~header:[ "name"; "kind"; "identical"; "objects @n=8" ]
    in
    List.iter
      (fun (p : Consensus.Protocol.t) ->
        let n = if p.Consensus.Protocol.supports_n 8 then 8 else 2 in
        Stats.Table.add_row t
          [
            p.Consensus.Protocol.name;
            (match p.Consensus.Protocol.kind with
            | `Deterministic -> "deterministic"
            | `Randomized -> "randomized");
            string_of_bool p.Consensus.Protocol.identical;
            string_of_int (Consensus.Protocol.space p ~n);
          ])
      Consensus.Registry.all;
    Stats.Table.print t
  in
  Cmd.v (Cmd.info "list" ~doc:"Enumerate packaged protocols")
    Term.(const run $ const ())

(* ------------------------------------------------------------------- run *)

let run_cmd =
  let inputs_arg =
    let doc = "Comma-separated binary inputs, one per process (e.g. 0,1,1)." in
    Arg.(value & opt string "0,1" & info [ "inputs" ] ~doc ~docv:"INPUTS")
  in
  let sched_arg =
    let doc = "Scheduler: random, round-robin or contention." in
    Arg.(value & opt string "random" & info [ "sched" ] ~doc)
  in
  let trace_arg =
    let doc = "Print the full execution trace." in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let run name inputs sched_name seed show_trace =
    match find_protocol name with
    | Error e ->
        prerr_endline e;
        exit Exit_code.bad_args
    | Ok p ->
        let inputs = parse_inputs inputs in
        let sched =
          match sched_name with
          | "random" -> Sim.Sched.random ~seed
          | "round-robin" -> Sim.Sched.round_robin ~seed ()
          | "contention" -> Sim.Sched.contention ~seed
          | s ->
              prerr_endline ("unknown scheduler " ^ s);
              exit Exit_code.bad_args
        in
        let report = Consensus.Protocol.run_once p ~inputs ~sched in
        if show_trace then
          print_endline
            (Sim.Trace.to_string string_of_int
               report.Consensus.Protocol.result.Sim.Run.trace);
        Fmt.pr "protocol=%s n=%d sched=%s seed=%d@." name (List.length inputs)
          sched_name seed;
        Fmt.pr "outcome=%s steps=%d@."
          (Sim.Run.outcome_to_string
             report.Consensus.Protocol.result.Sim.Run.outcome)
          report.Consensus.Protocol.result.Sim.Run.steps;
        Fmt.pr "verdict: %a@." Sim.Checker.pp report.Consensus.Protocol.verdict;
        if not (Sim.Checker.ok report.Consensus.Protocol.verdict) then
          exit Exit_code.violation
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute one consensus run under a scheduler")
    Term.(const run $ protocol_arg $ inputs_arg $ sched_arg $ seed_arg $ trace_arg)

(* ---------------------------------------------------------------- attack *)

let attack_cmd =
  let general_arg =
    let doc =
      "Use the general historyless construction (Lemma 3.6) instead of the \
       identical-process one (Lemma 3.2)."
    in
    Arg.(value & flag & info [ "general" ] ~doc)
  in
  let trace_arg =
    let doc = "Print the counterexample execution." in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let certify_arg =
    let doc =
      "After the identical-process attack, certify the witness by fresh-start \
       replay with clones shadowing their origins lock-step."
    in
    Arg.(value & flag & info [ "certify" ] ~doc)
  in
  let save_arg =
    let doc = "Save the counterexample execution to FILE (Trace_io format)." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let seeds_arg =
    let doc =
      "Run the identical-process attack once per seed in 1..N (each seed \
       randomizes the solo witness search), in parallel under --jobs, and \
       keep the shortest successful witness."
    in
    Arg.(value & opt int 0 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let run name general show_trace do_certify save seeds deadline jobs metrics
      progress =
    match find_protocol name with
    | Error e ->
        prerr_endline e;
        exit Exit_code.bad_args
    | Ok p ->
        let obs = make_obs metrics in
        let on_poll = progress_hook progress "attack" in
        let cancel = term_cancel () in
        let budget =
          Some (Robust.Budget.make ?deadline ~cancel ?on_poll ())
        in
        let save_trace trace =
          match save with
          | None -> ()
          | Some path ->
              Sim.Trace_io.save_int ~path trace;
              Fmt.pr "witness saved to %s@." path
        in
        (* The lowerbound constructions are not internally instrumented;
           the CLI records the outcome-shaped facts itself so an attack
           --metrics dump still tells the whole story. *)
        let code =
          Obs.span obs "attack" @@ fun () ->
          if general then begin
            match Lowerbound.General_attack.run ?budget p with
            | Error (Lowerbound.General_attack.Budget_exhausted reason) ->
                Fmt.pr "verdict: truncated (%s)@."
                  (Robust.Budget.reason_to_string reason);
                Obs.incr obs
                  ("attack/truncated/" ^ Robust.Budget.reason_to_string reason);
                Exit_code.truncated
            | Error e ->
                prerr_endline (Lowerbound.General_attack.error_to_string e);
                Obs.incr obs "attack/failed";
                Exit_code.attack_failed
            | Ok o ->
                save_trace o.Lowerbound.General_attack.trace;
                if show_trace then
                  print_endline
                    (Sim.Trace.to_string string_of_int o.Lowerbound.General_attack.trace);
                Fmt.pr "general attack on %s: processes=%d objects=%d pieces=%d/%d@."
                  name o.Lowerbound.General_attack.processes_used
                  o.Lowerbound.General_attack.registers
                  o.Lowerbound.General_attack.pieces_alpha
                  o.Lowerbound.General_attack.pieces_beta;
                Fmt.pr "verdict: %a@." Sim.Checker.pp
                  o.Lowerbound.General_attack.verdict;
                Obs.add obs "attack/witness-steps"
                  (Sim.Trace.steps o.Lowerbound.General_attack.trace);
                if Lowerbound.General_attack.succeeded o then begin
                  print_endline "INCONSISTENT EXECUTION CONSTRUCTED";
                  Obs.incr obs "attack/violations";
                  Exit_code.violation
                end
                else 0
          end
          else begin
            let outcome =
              if seeds <= 0 then Lowerbound.Attack.run p
              else begin
                Obs.add obs "attack/seeds" seeds;
                let sweep =
                  with_jobs ?obs jobs (fun pool ->
                      Lowerbound.Attack.seed_sweep ?pool
                        ~seeds:(List.init seeds (fun i -> i + 1))
                        p)
                in
                match Lowerbound.Attack.best_witness sweep with
                | Some (seed, o) ->
                    Fmt.pr "seed sweep 1..%d: best witness from seed %d (%d \
                            steps)@."
                      seeds seed
                      (Sim.Trace.steps o.Lowerbound.Attack.trace);
                    Ok o
                | None -> (
                    (* no seed succeeded; surface the unrandomized error *)
                    match List.assoc_opt 1 sweep with
                    | Some r -> r
                    | None -> Lowerbound.Attack.run p)
              end
            in
            match outcome with
            | Error e ->
                prerr_endline (Lowerbound.Attack.error_to_string e);
                Obs.incr obs "attack/failed";
                Exit_code.attack_failed
            | Ok o ->
                save_trace o.Lowerbound.Attack.trace;
                if show_trace then
                  print_endline
                    (Sim.Trace.to_string string_of_int o.Lowerbound.Attack.trace);
                Fmt.pr "attack on %s: processes=%d registers=%d@." name
                  o.Lowerbound.Attack.processes_used o.Lowerbound.Attack.registers;
                Fmt.pr "verdict: %a@." Sim.Checker.pp o.Lowerbound.Attack.verdict;
                Obs.add obs "attack/witness-steps"
                  (Sim.Trace.steps o.Lowerbound.Attack.trace);
                if do_certify then begin
                  match Lowerbound.Attack.certify p o with
                  | Ok (trace, verdict) ->
                      Fmt.pr
                        "certified fresh-start replay: %d steps, verdict: %a@."
                        (Sim.Trace.steps trace) Sim.Checker.pp verdict
                  | Error msg -> Fmt.pr "certification failed: %s@." msg
                end;
                if Lowerbound.Attack.succeeded o then begin
                  print_endline "INCONSISTENT EXECUTION CONSTRUCTED";
                  Obs.incr obs "attack/violations";
                  Exit_code.violation
                end
                else 0
          end
        in
        dump_metrics obs
          ~extra:
            [
              ("cmd", "attack");
              ("protocol", name);
              ("general", string_of_bool general);
            ];
        if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Construct a lower-bound counterexample against a protocol")
    Term.(
      const run $ protocol_arg $ general_arg $ trace_arg $ certify_arg
      $ save_arg $ seeds_arg $ deadline_arg $ jobs_arg $ metrics_arg
      $ progress_arg)

(* -------------------------------------------------------------------- mc *)

(* "4194304", "4m", "4MiB", "512k", "1g" — binary multiples, for
   --table-mem-budget *)
let parse_bytes s =
  let lower = String.lowercase_ascii (String.trim s) in
  let split suffix mult =
    if String.length lower > String.length suffix
       && Filename.check_suffix lower suffix
    then
      Option.map
        (fun n -> n * mult)
        (int_of_string_opt
           (String.sub lower 0 (String.length lower - String.length suffix)))
    else None
  in
  let candidates =
    [
      split "kib" 1024;
      split "mib" (1024 * 1024);
      split "gib" (1024 * 1024 * 1024);
      split "k" 1024;
      split "m" (1024 * 1024);
      split "g" (1024 * 1024 * 1024);
      int_of_string_opt lower;
    ]
  in
  match List.find_opt Option.is_some candidates with
  | Some (Some n) when n > 0 -> Some n
  | _ -> None

let mc_cmd =
  let run name inputs depth max_states dedup state max_nodes deadline
      checkpoint checkpoint_every resume jobs shards table_mem_budget
      table_dir metrics progress =
    match find_protocol name with
    | Error e ->
        prerr_endline e;
        exit Exit_code.bad_args
    | Ok p ->
        let inputs = parse_inputs inputs in
        let inputs_csv = String.concat "," (List.map string_of_int inputs) in
        let dedup_name = dedup in
        let dedup =
          match dedup with
          | "off" -> `Off
          | "exact" -> `Exact
          | "symmetric" -> `Symmetric
          | s ->
              prerr_endline
                (Printf.sprintf
                   "unknown --dedup %S (expected off | exact | symmetric)" s);
              exit Exit_code.bad_args
        in
        (* an explicit --state flat cannot be honoured alongside
           checkpointing (the flat DFS does not checkpoint): refuse
           loudly instead of silently downgrading.  The implicit default
           still picks the closure engine — same verdicts, counters and
           witnesses either way. *)
        (if state = Some "flat" && (checkpoint <> None || resume <> None) then begin
           prerr_endline
             "--state flat conflicts with --checkpoint/--resume (the flat \
              engine does not checkpoint); drop --state or pass --state \
              closure";
           exit Exit_code.bad_args
         end);
        let state_name =
          Option.value state
            ~default:
              (if checkpoint <> None || resume <> None then "closure"
               else "flat")
        in
        let state =
          match state_name with
          | "flat" -> `Flat
          | "closure" -> `Closure
          | s ->
              prerr_endline
                (Printf.sprintf
                   "unknown --state %S (expected flat | closure)" s);
              exit Exit_code.bad_args
        in
        (* sharded-tier flag surface: --table-* only make sense with
           --shards, and a mem budget without a spill directory would be
           silently inert — refuse loudly instead *)
        (if shards = None && (table_dir <> None || table_mem_budget <> None)
         then begin
           prerr_endline "--table-dir/--table-mem-budget require --shards";
           exit Exit_code.bad_args
         end);
        (if table_mem_budget <> None && table_dir = None then begin
           prerr_endline
             "--table-mem-budget requires --table-dir (a bounded hot cache \
              needs somewhere to spill)";
           exit Exit_code.bad_args
         end);
        (if shards <> None && (checkpoint <> None || resume <> None) then begin
           prerr_endline
             "--shards conflicts with --checkpoint/--resume (the sharded \
              drain does not checkpoint)";
           exit Exit_code.bad_args
         end);
        (match shards with
        | Some n when n < 1 ->
            prerr_endline "--shards must be >= 1";
            exit Exit_code.bad_args
        | _ -> ());
        let table_mem_budget =
          match table_mem_budget with
          | None -> None
          | Some s -> (
              match parse_bytes s with
              | Some n -> Some n
              | None ->
                  prerr_endline
                    (Printf.sprintf
                       "bad --table-mem-budget %S (expected bytes with an \
                        optional k/m/g suffix, e.g. 4m)"
                       s);
                  exit Exit_code.bad_args)
        in
        (* the sharded branch below consumes --jobs without going
           through with_jobs, so validate it up front either way *)
        validate_jobs jobs;
        let obs = make_obs metrics in
        let on_poll = progress_hook progress "mc" in
        let cancel = term_cancel () in
        let budget =
          Some
            (Robust.Budget.make ?nodes:max_nodes ?deadline ~cancel ?on_poll ())
        in
        (* the scenario stamp refuses resumes against a different search:
           same protocol, inputs, depth and dedup or nothing.  Built by
           Serve.Job so CLI and daemon checkpoints are interchangeable. *)
        let scenario =
          Serve.Job.mc_stamp
            {
              (Serve.Job.mc_defaults ~protocol:name) with
              Serve.Job.mc_inputs = inputs;
              mc_depth = depth;
              mc_max_states = max_states;
              mc_dedup = dedup;
            }
        in
        let resume_state =
          match resume with
          | None -> None
          | Some path -> (
              match Mc.Checkpoint.load ~path with
              | exception Sys_error e ->
                  prerr_endline e;
                  exit Exit_code.bad_args
              | exception Sim.Trace_io.Parse_error e ->
                  prerr_endline ("checkpoint parse error: " ^ e);
                  exit Exit_code.bad_args
              | saved_scenario, state ->
                  if saved_scenario <> scenario then begin
                    Fmt.epr
                      "checkpoint %s was taken for a different search:@.  \
                       checkpoint: %s@.  requested:  %s@."
                      path saved_scenario scenario;
                    exit Exit_code.bad_args
                  end;
                  Some state)
        in
        let on_checkpoint =
          Option.map
            (fun path state -> Mc.Checkpoint.save ~path ~scenario state)
            checkpoint
        in
        let config = Consensus.Protocol.initial_config p ~inputs in
        let sequential_only = checkpoint <> None || resume <> None in
        if sequential_only && jobs <> None then
          prerr_endline
            "note: --checkpoint/--resume force a sequential search; --jobs \
             ignored";
        let result =
          match shards with
          | Some shards ->
              (* sharded out-of-core tier: work-stealing drain, canonical
                 routing, optional disk-backed tables; --jobs keeps the
                 CLI convention (absent = 1 worker, 0 = one per core) *)
              let jobs =
                match jobs with None -> Some 1 | Some 0 -> None | Some n -> Some n
              in
              Mc.Shard.search ?obs ?jobs ?budget ~dedup ~max_depth:depth
                ~max_states ~state ?table_dir ?table_mem_budget ~shards ~inputs
                config
          | None ->
              with_jobs ?obs
                (if sequential_only then None else jobs)
                (fun pool ->
                  match pool with
                  | None ->
                      Mc.Explore.search ?obs ?budget ~dedup ~max_depth:depth
                        ~max_states ~checkpoint_every ?on_checkpoint
                        ?resume:resume_state ~state ~inputs config
                  | Some pool ->
                      Mc.Explore.search_par ?obs ~pool ?budget ~dedup
                        ~max_depth:depth ~max_states ~state ~inputs config)
        in
        (* rendered by the same function the serve daemon uses, so a
           served verdict is byte-identical by construction *)
        let report = Serve.Job.mc_report result in
        List.iter print_endline report.Serve.Job.lines;
        let code = report.Serve.Job.status in
        dump_metrics obs
          ~extra:
            ([
               ("cmd", "mc");
               ("protocol", name);
               ("inputs", inputs_csv);
               ("dedup", dedup_name);
               ("state", state_name);
             ]
            @
            match shards with
            | None -> []
            | Some n -> [ ("shards", string_of_int n) ]);
        if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "mc" ~doc:"Exhaustively model-check a protocol instance")
    Term.(
      const run $ protocol_arg
      $ Arg.(value & opt string "0,1" & info [ "inputs" ] ~doc:"inputs")
      $ Arg.(value & opt int 40 & info [ "depth" ] ~doc:"depth bound")
      $ Arg.(
          value
          & opt int 2_000_000
          & info [ "max-states" ] ~docv:"N"
              ~doc:"Structural cap on visited configurations.")
      $ Arg.(
          value
          & opt string "off"
          & info [ "dedup" ]
              ~doc:
                "transposition-table dedup: off, exact, or symmetric \
                 (symmetric additionally collapses permutations of \
                 interchangeable processes)")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "state" ]
              ~doc:
                "configuration engine: flat (interned slab states, the \
                 default) or closure (the persistent-configuration \
                 engine; the default under --checkpoint/--resume, which \
                 reject an explicit flat).  Both produce identical \
                 verdicts, witnesses and counters.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "max-nodes" ] ~docv:"K"
              ~doc:
                "Deterministic node budget: visit exactly the first K DFS \
                 nodes (bit-identical under any --jobs), then report a \
                 truncated verdict and exit 3.")
      $ deadline_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "checkpoint" ] ~docv:"FILE"
              ~doc:
                "Periodically save the DFS frontier to FILE (atomic \
                 replace), and once more if a budget trips.  Forces a \
                 sequential search.")
      $ Arg.(
          value
          & opt int 50_000
          & info [ "checkpoint-every" ] ~docv:"N"
              ~doc:"Checkpoint every N visited nodes (with --checkpoint).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "resume" ] ~docv:"FILE"
              ~doc:
                "Resume a search from a checkpoint FILE; the stored \
                 scenario must match the protocol/inputs/depth/dedup given \
                 here.  Forces a sequential search.")
      $ jobs_arg
      $ Arg.(
          value
          & opt (some int) None
          & info [ "shards" ] ~docv:"S"
              ~doc:
                "Use the sharded out-of-core engine: route work items to S \
                 deques by canonical state hash, with work stealing across \
                 --jobs domains.  Pins the same violation verdict and \
                 witness as the in-memory engines (node counts match under \
                 --dedup off); see DESIGN.md \xc2\xa74j.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "table-mem-budget" ] ~docv:"BYTES"
              ~doc:
                "Bound the in-memory transposition tier to roughly BYTES \
                 (k/m/g suffixes allowed) across all shards, spilling to \
                 --table-dir append-logs when it overflows.  Requires \
                 --shards and --table-dir.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "table-dir" ] ~docv:"DIR"
              ~doc:
                "Directory for the disk-backed transposition-table logs \
                 (shard-<k>.dtbl, versioned v1 records, crash-recoverable). \
                 Created if missing.  Requires --shards.")
      $ metrics_arg $ progress_arg)

(* ------------------------------------------------------------------ fuzz *)

let fuzz_cmd =
  let scenario_arg =
    let doc =
      "Scenario: a builtin (flawed, lin-collect-counter, \
       lin-snapshot-counter, lin-lock-counter, lin-stuck-counter, \
       lin-consensus-swap, lin-tas-rand, mutex-peterson-2, \
       mutex-naive-flag, mutex-swap-lock) or any protocol name from \
       `randsync list`."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc)
  in
  let run scenario inputs engine runs seed jobs shrink max_candidates out
      deadline max_runs metrics progress =
    let inputs = Option.map parse_inputs inputs in
    let engine =
      match engine with
      | "flat" -> `Flat
      | "closure" -> `Closure
      | other ->
          Fmt.epr "unknown --engine %S (expected flat or closure)@." other;
          exit Exit_code.bad_args
    in
    (* zero was a silent no-op ("0 runs, verdict clean"), negative an
       uncaught exception (exit 125) — both argument errors *)
    (if runs < 1 then begin
       prerr_endline "--runs must be >= 1";
       exit Exit_code.bad_args
     end);
    match Fuzz.Scenario.find ?inputs ~engine scenario with
    | Error e ->
        prerr_endline e;
        exit Exit_code.bad_args
    | Ok sc ->
        let obs = make_obs metrics in
        let on_poll = progress_hook progress "fuzz" in
        let cancel = term_cancel () in
        let budget =
          Some
            (Robust.Budget.make ?nodes:max_runs ?deadline ~cancel ?on_poll ())
        in
        let result =
          with_jobs ?obs jobs (fun pool ->
              Fuzz.Campaign.run ?obs ?pool ?budget ~shrink ~max_candidates
                ~runs ~seed sc)
        in
        (* rendered by the same function the serve daemon uses, so a
           served verdict is byte-identical by construction *)
        let report =
          Serve.Job.fuzz_report ~describe:sc.Fuzz.Scenario.describe ~seed
            result
        in
        List.iter print_endline report.Serve.Job.lines;
        (match (result.Fuzz.Campaign.first_violation, out) with
        | Some cex, Some path ->
            Sim.Trace_io.save_text ~path cex.Fuzz.Campaign.artifact;
            Fmt.pr "counterexample saved to %s@." path
        | _ -> ());
        let code = report.Serve.Job.status in
        dump_metrics obs
          ~extra:
            [
              ("cmd", "fuzz");
              ("scenario", result.Fuzz.Campaign.scenario);
              ("seed", string_of_int seed);
            ];
        if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Stress a scenario under weighted adversarial schedules and shrink \
          any counterexample")
    Term.(
      const run $ scenario_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "inputs" ] ~docv:"INPUTS"
              ~doc:"Consensus inputs (default 0,1); ignored by builtins.")
      $ Arg.(
          value
          & opt string "flat"
          & info [ "engine" ]
              ~doc:
                "execution engine: flat (interned slab/harness states, the \
                 default) or closure (the reference closure-tree engine).  \
                 Identical schedules and verdicts per seed; mutex \
                 scenarios always run closure-side.")
      $ Arg.(
          value
          & opt int 200
          & info [ "runs" ] ~docv:"N" ~doc:"Number of stress runs.")
      $ seed_arg $ jobs_arg
      $ Arg.(
          value & flag
          & info [ "shrink" ]
              ~doc:
                "Delta-debug the first failing schedule to a minimal \
                 replayable counterexample.")
      $ Arg.(
          value
          & opt int 4000
          & info [ "max-candidates" ] ~docv:"K"
              ~doc:"Cap on shrink candidate replays.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "out" ] ~docv:"FILE"
              ~doc:
                "Save the shrunk counterexample: a Trace_io trace for \
                 consensus/mutex scenarios (inspect with `randsync trace`), \
                 a fuzz-schedule file for linearizability ones.")
      $ deadline_arg
      $ Arg.(
          value
          & opt (some int) None
          & info [ "max-runs" ] ~docv:"K"
              ~doc:
                "Deterministic node budget: admit exactly the first K runs \
                 (bit-identical under any --jobs), then report truncated.")
      $ metrics_arg $ progress_arg)

(* ----------------------------------------------------------------- trace *)

let trace_cmd =
  let run path =
    match Sim.Trace_io.load_int ~path with
    | exception Sys_error e ->
        prerr_endline e;
        exit Exit_code.bad_args
    | exception Sim.Trace_io.Parse_error e ->
        prerr_endline ("parse error: " ^ e);
        exit Exit_code.bad_args
    | trace ->
        print_endline (Sim.Trace.to_string string_of_int trace);
        let decisions = List.map snd (Sim.Trace.decisions trace) in
        Fmt.pr "--@.steps=%d pids=[%a] decisions=[%a]%s@."
          (Sim.Trace.steps trace)
          Fmt.(list ~sep:(any ";") int)
          (Sim.Trace.pids trace)
          Fmt.(list ~sep:(any ";") int)
          decisions
          (if Sim.Checker.inconsistent ~decisions then "  INCONSISTENT" else "")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Inspect a saved witness trace (see attack --save)")
    Term.(
      const run
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"))

(* -------------------------------------------------------------- classify *)

let classify_cmd =
  let run () = Stats.Table.print (Experiments.E7_classify.table ()) in
  Cmd.v
    (Cmd.info "classify" ~doc:"Print the object-algebra classification table")
    Term.(const run $ const ())

(* ----------------------------------------------------------------- sweep *)

let sweep_cmd =
  let run id quick jobs =
    match Experiments.All.find id with
    | None ->
        prerr_endline ("unknown experiment " ^ id ^ " (known: e1..e8)");
        exit Exit_code.bad_args
    | Some s ->
        Fmt.pr "=== %s: %s ===@.@." (String.uppercase_ascii s.Experiments.All.id)
          s.Experiments.All.title;
        Stats.Table.print
          (with_jobs jobs (fun pool -> s.Experiments.All.run ~pool ~quick))
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Regenerate one experiment table (e1..e8)")
    Term.(
      const run
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
      $ Arg.(value & flag & info [ "quick" ] ~doc:"smaller parameters")
      $ jobs_arg)

(* ----------------------------------------------------------------- serve *)

let parse_tcp s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && host <> "" -> Ok (host, p)
      | _ -> Error (Printf.sprintf "invalid --tcp %S (expected HOST:PORT)" s))
  | None -> Error (Printf.sprintf "invalid --tcp %S (expected HOST:PORT)" s)

let socket_arg =
  let doc = "Unix-domain socket path (ignored when --tcp is given)." in
  Arg.(value & opt string "randsync.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc = "Listen on / connect to HOST:PORT instead of a Unix socket." in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let resolve_addr socket tcp =
  match tcp with
  | None -> `Unix socket
  | Some s -> (
      match parse_tcp s with
      | Ok (h, p) -> `Tcp (h, p)
      | Error e ->
          prerr_endline e;
          exit Exit_code.bad_args)

let serve_cmd =
  let run socket tcp queue_limit workers spool metrics =
    let address = resolve_addr socket tcp in
    let obs = make_obs metrics in
    let cfg =
      {
        Serve.Server.address;
        queue_limit;
        workers;
        spool_dir = spool;
        obs;
        progress_interval = 1.0;
      }
    in
    Serve.Server.run
      ~on_ready:(fun a ->
        (match a with
        | `Unix path -> Fmt.pr "listening on unix:%s@." path
        | `Tcp (host, port) -> Fmt.pr "listening on tcp:%s:%d@." host port);
        (* scripts wait for this line; make sure it is out *)
        flush stdout)
      cfg;
    Fmt.pr "drained@."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the verification daemon: accepts mc/fuzz/attack jobs over a \
          line-JSON socket protocol, with bounded admission, graceful \
          SIGTERM drain and crash-safe resume from --spool")
    Term.(
      const run $ socket_arg $ tcp_arg
      $ Arg.(
          value
          & opt int Serve.Server.default_queue_limit
          & info [ "queue-limit" ] ~docv:"N"
              ~doc:
                "Bounded admission queue: a submit arriving with N jobs \
                 already queued is shed with an explicit overloaded reply.")
      $ Arg.(
          value
          & opt int Serve.Server.default_workers
          & info [ "workers" ] ~docv:"N" ~doc:"Concurrent job executors.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "spool" ] ~docv:"DIR"
              ~doc:
                "Persist accepted jobs (and mc checkpoints) under DIR; a \
                 restarted server re-runs everything unfinished to the \
                 same verdicts.")
      $ metrics_arg)

(* ---------------------------------------------------------------- submit *)

let submit_cmd =
  let run socket tcp job detach wait_id result_id status cancel_id drain ping
      attempts seed =
    (* with attempts < 1 the retry loop made zero connection attempts
       and reported the server unreachable (exit 6) without ever trying
       — an argument error masquerading as an outage *)
    (if attempts < 1 then begin
       prerr_endline "--attempts must be >= 1";
       exit Exit_code.bad_args
     end);
    let addr = resolve_addr socket tcp in
    let retry_opts f = f ?attempts:(Some attempts) ?seed:(Some seed) in
    let unavailable msg =
      prerr_endline msg;
      exit Exit_code.unavailable
    in
    let print_outcome (code, lines) =
      List.iter print_endline lines;
      if code <> 0 then exit code
    in
    (* one-shot request/reply over a fresh connection, with retries *)
    let roundtrip req =
      let r =
        retry_opts (fun ?attempts ?seed () ->
            Serve.Client.with_retry ?attempts ?seed @@ fun _ ->
            match Serve.Client.connect addr with
            | Error e -> Error (`Retry ("connect: " ^ e))
            | Ok conn ->
                let r =
                  match
                    Serve.Client.send conn req;
                    Serve.Client.recv conn
                  with
                  | exception Sys_error e -> Error (`Retry e)
                  | Ok reply -> Ok reply
                  | Error e -> Error (`Fail ("bad reply: " ^ e))
                in
                Serve.Client.close conn;
                r)
          ()
      in
      match r with Ok reply -> reply | Error e -> unavailable e
    in
    if ping then begin
      match roundtrip Serve.Wire.Ping with
      | Serve.Wire.Pong -> print_endline "pong"
      | _ ->
          prerr_endline "unexpected reply to ping";
          exit Exit_code.unavailable
    end
    else if drain then begin
      match roundtrip Serve.Wire.Drain with
      | Serve.Wire.Draining -> print_endline "draining"
      | _ ->
          prerr_endline "unexpected reply to drain";
          exit Exit_code.unavailable
    end
    else if status then begin
      match roundtrip (Serve.Wire.Status { id = None }) with
      | Serve.Wire.Jobs { draining; jobs } ->
          Fmt.pr "draining=%b jobs=%d@." draining (List.length jobs);
          List.iter
            (fun (jl : Serve.Wire.job_line) ->
              Fmt.pr "job %d [%s]: %s@." jl.Serve.Wire.id jl.Serve.Wire.label
                (match jl.Serve.Wire.state with
                | Serve.Wire.Queued -> "queued"
                | Serve.Wire.Running -> "running"
                | Serve.Wire.Done code -> Printf.sprintf "done status=%d" code
                | Serve.Wire.Cancelled -> "cancelled"
                | Serve.Wire.Interrupted -> "interrupted"))
            jobs
      | _ ->
          prerr_endline "unexpected reply to status";
          exit Exit_code.unavailable
    end
    else
      match (cancel_id, result_id, wait_id, job) with
      | Some id, _, _, _ -> (
          match roundtrip (Serve.Wire.Cancel { id }) with
          | Serve.Wire.Cancelled _ -> Fmt.pr "cancelled %d@." id
          | Serve.Wire.Error { message } ->
              prerr_endline message;
              exit Exit_code.bad_args
          | _ ->
              prerr_endline "unexpected reply to cancel";
              exit Exit_code.unavailable)
      | None, Some id, _, _ -> (
          match roundtrip (Serve.Wire.Result { id }) with
          | Serve.Wire.Verdict { status; lines; _ } ->
              print_outcome (status, lines)
          | Serve.Wire.Cancelled _ ->
              prerr_endline (Printf.sprintf "job %d was cancelled" id);
              exit Exit_code.bad_args
          | Serve.Wire.Error { message } ->
              prerr_endline message;
              exit Exit_code.bad_args
          | _ ->
              prerr_endline "unexpected reply to result";
              exit Exit_code.unavailable)
      | None, None, Some id, _ -> (
          match
            retry_opts
              (fun ?attempts ?seed () ->
                Serve.Client.wait_result ?attempts ?seed addr ~id)
              ()
          with
          | Ok outcome -> print_outcome outcome
          | Error e -> unavailable e)
      | None, None, None, Some spec -> (
          match Serve.Json.parse spec with
          | Error e ->
              prerr_endline ("invalid --job JSON: " ^ e);
              exit Exit_code.bad_args
          | Ok j -> (
              match Serve.Job.of_json j with
              | Error e ->
                  prerr_endline ("invalid job spec: " ^ e);
                  exit Exit_code.bad_args
              | Ok job -> (
                  match
                    retry_opts
                      (fun ?attempts ?seed () ->
                        Serve.Client.submit_and_wait ?attempts ?seed ~detach
                          addr job)
                      ()
                  with
                  | Ok outcome -> print_outcome outcome
                  | Error e -> unavailable e)))
      | None, None, None, None ->
          prerr_endline
            "nothing to do: pass --job, --wait, --result, --cancel, --status, \
             --drain or --ping";
          exit Exit_code.bad_args
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Talk to a randsync serve daemon: submit a job and await its \
          verdict (exit code = wire status), or poll/cancel/drain.  \
          Connection failures and overload shedding are retried with \
          capped exponential backoff + jitter; exit 6 when the server \
          stays unreachable.")
    Term.(
      const run $ socket_arg $ tcp_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "job" ] ~docv:"JSON"
              ~doc:
                "Job spec, e.g. \
                 '{\"kind\":\"mc\",\"protocol\":\"counter-2\",\"depth\":14}'.")
      $ Arg.(
          value & flag
          & info [ "detach" ]
              ~doc:
                "Return as soon as the job is accepted (prints id=N); the \
                 job then survives this client and is polled with --wait.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "wait" ] ~docv:"ID"
              ~doc:"Poll job ID until it finishes, then print its verdict.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "result" ] ~docv:"ID"
              ~doc:"Fetch the verdict of a finished job.")
      $ Arg.(value & flag & info [ "status" ] ~doc:"List the server's jobs.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "cancel" ] ~docv:"ID" ~doc:"Cancel a queued/running job.")
      $ Arg.(
          value & flag
          & info [ "drain" ] ~doc:"Ask the server to drain (like SIGTERM).")
      $ Arg.(value & flag & info [ "ping" ] ~doc:"Health check.")
      $ Arg.(
          value & opt int 5
          & info [ "attempts" ] ~docv:"N"
              ~doc:"Total connection/overload retry attempts.")
      $ Arg.(
          value & opt int 1
          & info [ "retry-seed" ] ~docv:"K"
              ~doc:"Seed for the deterministic backoff jitter."))

(* ----------------------------------------------------------------- synth *)

let synth_cmd =
  let run registers procs depth coins objects seed jobs no_prune no_attack
      max_nodes deadline lemmas_out metrics progress =
    let style =
      match Consensus.Dtree.style_of_string objects with
      | Some s -> s
      | None ->
          prerr_endline
            (Printf.sprintf "unknown --objects %S (expected rw | swap)"
               objects);
          exit Exit_code.bad_args
    in
    (if registers < 1 then begin
       prerr_endline "--registers must be >= 1";
       exit Exit_code.bad_args
     end);
    (if depth < 0 then begin
       prerr_endline "--depth must be >= 0";
       exit Exit_code.bad_args
     end);
    (if procs < 2 then begin
       prerr_endline "--procs must be >= 2 (consensus starts at two)";
       exit Exit_code.bad_args
     end);
    let obs = make_obs metrics in
    let on_poll = progress_hook progress "synth" in
    let cancel = term_cancel () in
    let budget =
      Some (Robust.Budget.make ?nodes:max_nodes ?deadline ~cancel ?on_poll ())
    in
    let result =
      with_jobs ?obs jobs (fun pool ->
          Synth.Cegis.search ?obs ?pool ?budget ~prune:(not no_prune)
            ~attack:(not no_attack) ~style ~registers ~depth ~coins
            ~max_procs:procs ~seed ())
    in
    List.iter print_endline (Synth.Cegis.report result);
    Option.iter
      (fun path ->
        Synth.Lemma.save ~path result.Synth.Cegis.lemmas;
        Fmt.pr "lemmas saved to %s@." path)
      lemmas_out;
    dump_metrics obs
      ~extra:
        [
          ("cmd", "synth");
          ("objects", objects);
          ("registers", string_of_int registers);
          ("depth", string_of_int depth);
          ("seed", string_of_int seed);
        ];
    match result.Synth.Cegis.completeness with
    | `Exhaustive -> ()
    | `Truncated _ -> exit Exit_code.truncated
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "CEGIS over bounded decision-tree protocols: find the largest \
          process count with a correct consensus protocol over the given \
          objects, learning pruning lemmas from every counterexample.  \
          Both answers are clean exits (0): a synthesized protocol (its \
          synth: name is usable with mc/fuzz/run) or an exhaustive \
          impossibility; a tripped budget exits 3.")
    Term.(
      const run
      $ Arg.(
          value & opt int 1
          & info [ "registers" ] ~docv:"R"
              ~doc:"Number of shared objects the trees may address.")
      $ Arg.(
          value & opt int 4
          & info [ "procs" ] ~docv:"N"
              ~doc:
                "Largest process count to attempt.  Rounds stop early at \
                 the first unsatisfiable n: correctness is monotone \
                 downward in n, so larger rounds are settled without being \
                 run.")
      $ Arg.(
          value & opt int 1
          & info [ "depth" ] ~docv:"D"
              ~doc:"Decision-tree depth bound (operations per solo path).")
      $ Arg.(
          value & flag
          & info [ "coins" ]
              ~doc:"Offer internal fair-coin flips to the candidate trees.")
      $ Arg.(
          value & opt string "rw"
          & info [ "objects" ]
              ~doc:
                "Object style: rw (read/write registers) or swap \
                 (swap-registers, consensus number 2).")
      $ seed_arg $ jobs_arg
      $ Arg.(
          value & flag
          & info [ "no-prune" ]
              ~doc:
                "Disable lemma-pool pruning; every candidate pays for its \
                 own refutation.  Verdicts are identical either way (the \
                 soundness property the test suite pins) — this flag \
                 exists to measure what the pool saves.")
      $ Arg.(
          value & flag
          & info [ "no-attack" ]
              ~doc:
                "Disable the constructive-adversary refutation stage \
                 (Lemma 3.2); candidates fall through to exhaustive \
                 search.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "max-nodes" ] ~docv:"K"
              ~doc:
                "Deterministic budget: admit exactly K unanimity checks + \
                 candidate pairs (bit-identical under any --jobs), then \
                 report truncated rows and exit 3.")
      $ deadline_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "lemmas" ] ~docv:"FILE"
              ~doc:
                "Save the final lemma pool to FILE (versioned text codec, \
                 atomic replace).  Byte-identical across --jobs settings; \
                 CI diffs it.")
      $ metrics_arg $ progress_arg)

let main =
  let doc = "Randomized synchronization space-complexity toolkit (Fich-Herlihy-Shavit, PODC'93)" in
  Cmd.group (Cmd.info "randsync" ~doc)
    [
      list_cmd; run_cmd; attack_cmd; mc_cmd; fuzz_cmd; classify_cmd; sweep_cmd;
      synth_cmd; trace_cmd; serve_cmd; submit_cmd;
    ]

let () = exit (Cmd.eval main)
