(* Soundness of the adversaries: against *correct* protocols they must
   fail with an error — they can never fabricate a violation, because
   every step of a constructed execution goes through the ordinary runner
   and the verdict is recomputed by the checker.  (cas-1 and sticky-1 are
   exhaustively verified for small n in test_mc, so a "successful" attack
   on them would be a soundness bug in the framework itself.) *)

open Consensus
open Lowerbound

let assert_attack_fails (p : Protocol.t) =
  match Attack.run p with
  | Error _ -> ()
  | Ok o ->
      if Attack.succeeded o then
        Alcotest.failf "%s: identical-process attack fabricated a violation!"
          p.Protocol.name
      (* a consistent outcome would also be wrong: the driver must not
         report success without an inconsistency *)
      else
        Alcotest.failf "%s: attack returned Ok on a correct protocol"
          p.Protocol.name

let assert_general_fails (p : Protocol.t) =
  match General_attack.run ~processes:12 p with
  | Error _ -> ()
  | Ok o ->
      if General_attack.succeeded o then
        Alcotest.failf "%s: general attack fabricated a violation!"
          p.Protocol.name
      else
        Alcotest.failf "%s: general attack returned Ok on a correct protocol"
          p.Protocol.name

let test_identical_attack_on_correct () =
  (* identical-process, correct protocols *)
  List.iter assert_attack_fails
    [ Cas_consensus.protocol; Sticky_consensus.protocol ]

let test_identical_attack_on_randomized_correct () =
  (* the randomized single-object protocols are identical too; the attack
     must not break them either (searches may exhaust, constructions must
     fail — never a fabricated witness) *)
  List.iter assert_attack_fails
    [ Fa_consensus.protocol; Counter_consensus.protocol ]

let test_general_attack_on_correct () =
  List.iter assert_general_fails
    [ Cas_consensus.protocol; Sticky_consensus.protocol ]

(* even when given absurdly many processes, no fabrication *)
let test_attack_large_budget () =
  match General_attack.run ~processes:60 Cas_consensus.protocol with
  | Error _ -> ()
  | Ok o ->
      Alcotest.(check bool) "no fabricated violation" false
        (General_attack.succeeded o)

let suite =
  [
    Alcotest.test_case "identical attack vs correct deterministic" `Quick
      test_identical_attack_on_correct;
    Alcotest.test_case "identical attack vs correct randomized" `Quick
      test_identical_attack_on_randomized_correct;
    Alcotest.test_case "general attack vs correct" `Quick
      test_general_attack_on_correct;
    Alcotest.test_case "general attack, large budget" `Quick
      test_attack_large_budget;
  ]
