(* The paper's Section 2 classification claims, decided exhaustively over
   the finite specs. *)

open Sim
open Objects

let check = Alcotest.(check bool)

let spec name =
  match Specs.find name with
  | Some ot -> ot
  | None -> Alcotest.failf "no finite spec for %s" name

let test_read_trivial () =
  List.iter
    (fun (ot : Optype.t) ->
      let _, ops = Objclass.Classify.domain ot in
      List.iter
        (fun (op : Op.t) ->
          if op.name = "read" then
            check
              (Printf.sprintf "read trivial on %s" ot.name)
              true
              (Objclass.Classify.is_trivial ot op))
        ops)
    Specs.all

let test_writes_overwrite () =
  let reg = spec "register" in
  let w1 = Register.write (Value.int 1) and w2 = Register.write (Value.int 2) in
  check "w1 overwrites w2" true (Objclass.Classify.overwrites reg ~f:w1 ~f':w2);
  check "w2 overwrites w1" true (Objclass.Classify.overwrites reg ~f:w2 ~f':w1);
  check "writes do not commute" false (Objclass.Classify.commute reg w1 w2)

let test_fa_commutes_not_overwrites () =
  let fa = spec "fetch&add[mod 5]" in
  let a1 = Fetch_add.fetch_add 1 and a2 = Fetch_add.fetch_add 2 in
  check "adds commute" true (Objclass.Classify.commute fa a1 a2);
  check "add does not overwrite add" false
    (Objclass.Classify.overwrites fa ~f:a1 ~f':a2);
  check "nonzero add not idempotent" false
    (Objclass.Classify.is_idempotent fa a1);
  check "zero add idempotent" true
    (Objclass.Classify.is_idempotent fa (Fetch_add.fetch_add 0))

let test_tas_idempotent () =
  let tas = spec "test&set" in
  check "t&s idempotent" true
    (Objclass.Classify.is_idempotent tas Test_and_set.test_and_set)

(* The headline matrix: historyless / interfering per type, matching the
   paper's prose exactly. *)
let expected =
  [
    (* name, historyless, interfering *)
    ("register", true, true);
    ("swap-register", true, true);
    ("test&set", true, true);
    ("fetch&add[mod 5]", false, true);
    ("fetch&inc[mod 5]", false, true);
    ("counter[mod 5]", false, false);
    ("compare&swap", false, false);
  ]

let test_matrix () =
  List.iter
    (fun (name, historyless, interfering) ->
      let ot = spec name in
      check
        (Printf.sprintf "%s historyless" name)
        historyless
        (Objclass.Classify.is_historyless ot);
      check
        (Printf.sprintf "%s interfering" name)
        interfering
        (Objclass.Classify.is_interfering ot))
    expected

let test_report_consistent () =
  List.iter
    (fun ot ->
      let r = Objclass.Classify.report ot in
      check "report matches predicates"
        (Objclass.Classify.is_historyless ot)
        r.Objclass.Classify.historyless)
    Specs.all

let test_not_finite () =
  let reg = Register.optype () in
  match Objclass.Classify.is_historyless reg with
  | exception Objclass.Classify.Not_finite _ -> ()
  | _ -> Alcotest.fail "expected Not_finite on unbounded register"

let test_hierarchy_table () =
  (* hierarchy's historyless column agrees with the decided classification *)
  List.iter
    (fun (e : Objclass.Hierarchy.entry) ->
      let spec_name =
        match e.name with
        | "fetch&add" -> Some "fetch&add[mod 5]"
        | "fetch&inc" -> Some "fetch&inc[mod 5]"
        | "counter" -> Some "counter[mod 5]"
        | "register" | "swap-register" | "test&set" | "compare&swap" ->
            Some e.name
        | _ -> None
      in
      match spec_name with
      | None -> ()
      | Some s ->
          check
            (Printf.sprintf "hierarchy vs classify: %s" e.name)
            e.historyless
            (Objclass.Classify.is_historyless (spec s)))
    Objclass.Hierarchy.entries

let suite =
  [
    Alcotest.test_case "read is trivial everywhere" `Quick test_read_trivial;
    Alcotest.test_case "writes overwrite" `Quick test_writes_overwrite;
    Alcotest.test_case "fetch&add commutes, no overwrite" `Quick
      test_fa_commutes_not_overwrites;
    Alcotest.test_case "test&set idempotent" `Quick test_tas_idempotent;
    Alcotest.test_case "classification matrix" `Quick test_matrix;
    Alcotest.test_case "report consistent" `Quick test_report_consistent;
    Alcotest.test_case "infinite spec rejected" `Quick test_not_finite;
    Alcotest.test_case "hierarchy table agrees" `Quick test_hierarchy_table;
  ]
