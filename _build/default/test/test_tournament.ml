(* The test&set tournament: safe and solo-terminating but blocking — the
   consensus-number-2 boundary, exhibited. *)

open Sim
open Consensus
open Lowerbound

let p = Tas_tournament.protocol

let test_safe_under_fair_schedules () =
  List.iter
    (fun n ->
      for seed = 1 to 15 do
        let rng = Rng.create (seed * 3) in
        let inputs = List.init n (fun _ -> Rng.int rng 2) in
        let report = Protocol.run_once p ~inputs ~sched:(Sched.random ~seed) in
        if not (Checker.ok report.Protocol.verdict) then
          Alcotest.failf "n=%d seed=%d: unsafe" n seed;
        if report.Protocol.result.Run.outcome <> Run.All_decided then
          Alcotest.failf "n=%d seed=%d: did not finish under a fair schedule" n seed
      done)
    [ 2; 3; 5 ]

let test_solo_terminates () =
  let config = Protocol.initial_config p ~inputs:[ 1; 0; 0 ] in
  match Solo.terminating config ~pid:0 with
  | Some { decision = Some 1; _ } -> ()
  | _ -> Alcotest.fail "solo run should win and decide its input"

(* the blocking schedule: the winner stalls after the test&set, before the
   announcement; losers spin forever *)
let test_losers_starve () =
  let inputs = [ 0; 1; 1 ] in
  let config = Protocol.initial_config p ~inputs in
  (* P0 publishes and wins the test&set (2 steps), then stalls *)
  let sched =
    Sched.adaptive ~name:"stall-winner" ~seed:1 (fun _rng config ~step ->
        if step < 2 then Some 0
        else
          (* only losers from here on *)
          List.find_opt (fun pid -> pid <> 0) (Config.enabled_pids config))
  in
  let result = Run.exec ~max_steps:500 sched config in
  Alcotest.(check bool) "losers spin to the budget" true
    (result.Run.outcome = Run.Max_steps);
  Alcotest.(check (list int)) "nobody decided" []
    (Config.decisions result.Run.config)

(* crashing the winner mid-announcement blocks everyone: NOT wait-free,
   unlike every protocol in Registry.correct *)
let test_winner_crash_blocks () =
  let inputs = [ 0; 1; 1 ] in
  let config = Protocol.initial_config p ~inputs in
  let sched =
    Sched.adaptive ~name:"p0-first" ~seed:4 (fun _rng config ~step ->
        if step < 2 then Some 0
        else List.find_opt (fun pid -> pid <> 0) (Config.enabled_pids config))
  in
  let result =
    Run.exec_with_crashes ~max_steps:500
      ~crashes:[ (2, 0) ] (* P0 dies right after winning, before announcing *)
      sched config
  in
  (* survivors never decide *)
  Alcotest.(check bool) "blocked" true (result.Run.outcome = Run.Max_steps)

(* ... and the deciding value is always the test&set winner's input *)
let test_decides_winner_value () =
  for seed = 1 to 10 do
    let inputs = [ 0; 1; 0; 1 ] in
    let report = Protocol.run_once p ~inputs ~sched:(Sched.random ~seed) in
    let winner_value =
      List.find_map
        (fun (pid, obj, op, resp) ->
          if obj = 0 && op.Op.name = "test&set" && resp = Value.int 0 then
            Some (List.nth inputs pid)
          else None)
        (Trace.applied_ops report.Protocol.result.Run.trace)
    in
    match winner_value with
    | Some w ->
        List.iter
          (fun d ->
            if d <> w then Alcotest.failf "seed %d: decided %d, winner had %d" seed d w)
          (Config.decisions report.Protocol.result.Run.config)
    | None -> Alcotest.fail "no test&set winner in trace?"
  done

let suite =
  [
    Alcotest.test_case "safe under fair schedules" `Quick test_safe_under_fair_schedules;
    Alcotest.test_case "solo terminates" `Quick test_solo_terminates;
    Alcotest.test_case "losers starve (directed)" `Quick test_losers_starve;
    Alcotest.test_case "winner crash blocks" `Quick test_winner_crash_blocks;
    Alcotest.test_case "decides winner's value" `Quick test_decides_winner_value;
  ]
