(* Smoke tests for the experiment drivers: every table renders, has the
   declared arity, and carries the paper's headline shapes. *)

let rendered table =
  let s = Stats.Table.render table in
  Alcotest.(check bool) "nonempty" true (String.length s > 0);
  s

let test_e1 () =
  let rows = Experiments.E1_separation.rows ~reps:3 () in
  Alcotest.(check int) "six primitives" 6 (List.length rows);
  (* historyless column matches the paper *)
  List.iter
    (fun (r : Experiments.E1_separation.row) ->
      let expected =
        List.mem r.Experiments.E1_separation.primitive
          [ "register"; "swap-register"; "test&set" ]
      in
      Alcotest.(check bool) r.Experiments.E1_separation.primitive expected
        r.Experiments.E1_separation.historyless)
    rows;
  ignore (rendered (Experiments.E1_separation.table ~reps:3 ()))

let test_e2 () =
  let rows = Experiments.E2_identical_lb.rows ~max_r:3 () in
  Alcotest.(check bool) "has rows" true (List.length rows >= 6);
  List.iter
    (fun (r : Experiments.E2_identical_lb.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s broken" r.Experiments.E2_identical_lb.protocol)
        true r.Experiments.E2_identical_lb.broke;
      Alcotest.(check bool) "within threshold" true
        (r.Experiments.E2_identical_lb.processes_used
        <= r.Experiments.E2_identical_lb.threshold))
    rows

let test_e3 () =
  let rows = Experiments.E3_general_lb.rows ~max_r:2 () in
  Alcotest.(check bool) "has rows" true (List.length rows >= 4);
  List.iter
    (fun (r : Experiments.E3_general_lb.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s broken" r.Experiments.E3_general_lb.protocol)
        true r.Experiments.E3_general_lb.broke)
    rows

let test_e4 () =
  let rows = Experiments.E4_space.rows () in
  (* the separation shape: single-object protocols flat, registers linear,
     lower bound in between and growing *)
  List.iter
    (fun (r : Experiments.E4_space.row) ->
      Alcotest.(check int) "fa flat" 1 r.Experiments.E4_space.fa_objects;
      Alcotest.(check int) "cas flat" 1 r.Experiments.E4_space.cas_objects;
      Alcotest.(check int) "counter flat" 3 r.Experiments.E4_space.counter_objects;
      Alcotest.(check int) "registers linear" (3 * r.Experiments.E4_space.n)
        r.Experiments.E4_space.rw_registers;
      Alcotest.(check bool) "lb below upper" true
        (r.Experiments.E4_space.historyless_lb
        <= r.Experiments.E4_space.rw_registers))
    rows;
  (* lower bound grows without bound *)
  let last = List.nth rows (List.length rows - 1) in
  Alcotest.(check bool) "lb grows" true (last.Experiments.E4_space.historyless_lb > 5)

let test_e5 () =
  let rows = Experiments.E5_work.rows ~ns:[ 2; 4 ] ~reps:3 ~seed:1 () in
  Alcotest.(check int) "two ns" 2 (List.length rows);
  List.iter
    (fun (r : Experiments.E5_work.row) ->
      Alcotest.(check int) "four protocols" 4
        (List.length r.Experiments.E5_work.per_protocol))
    rows

let test_e6 () =
  let rows = Experiments.E6_coin.rows ~ns:[ 2 ] ~ks:[ 1; 2 ] ~reps:5 ~seed:1 () in
  Alcotest.(check bool) "has rows" true (List.length rows >= 1);
  List.iter
    (fun (r : Experiments.E6_coin.row) ->
      Alcotest.(check bool) "agreement is a probability" true
        (r.Experiments.E6_coin.agreement >= 0.0
        && r.Experiments.E6_coin.agreement <= 1.0))
    rows

let test_e6_quadratic_shape () =
  (* flips grow superlinearly in the barrier: k=3 costs much more than k=1 *)
  let flips k =
    match Experiments.E6_coin.measure ~n:4 ~k ~reps:15 ~seed:2 with
    | Some r -> r.Experiments.E6_coin.mean_flips
    | None -> Alcotest.fail "coin did not finish"
  in
  let f1 = flips 1 and f3 = flips 3 in
  Alcotest.(check bool) "k=3 much more than k=1" true (f3 > 3.0 *. f1)

let test_e7 () =
  let rows = Experiments.E7_classify.rows () in
  Alcotest.(check int) "all specs" (List.length Objects.Specs.all) (List.length rows)

let test_e8 () =
  let rows = Experiments.E8_transfer.rows ~ns:[ 16; 64 ] () in
  Alcotest.(check int) "3 corollaries x 2 ns" 6 (List.length rows);
  List.iter
    (fun (r : Experiments.E8_transfer.row) ->
      Alcotest.(check bool) "implied >= 1" true (r.Experiments.E8_transfer.implied >= 1.0))
    rows

let test_all_registry () =
  Alcotest.(check int) "fourteen experiments" 14 (List.length Experiments.All.specs);
  List.iter
    (fun (s : Experiments.All.spec) ->
      match Experiments.All.find s.Experiments.All.id with
      | Some s' -> Alcotest.(check string) "find roundtrip" s.Experiments.All.id s'.Experiments.All.id
      | None -> Alcotest.failf "lost experiment %s" s.Experiments.All.id)
    Experiments.All.specs

let suite =
  [
    Alcotest.test_case "e1 separation" `Slow test_e1;
    Alcotest.test_case "e2 identical lb" `Quick test_e2;
    Alcotest.test_case "e3 general lb" `Quick test_e3;
    Alcotest.test_case "e4 space shape" `Quick test_e4;
    Alcotest.test_case "e5 work" `Slow test_e5;
    Alcotest.test_case "e6 coin" `Slow test_e6;
    Alcotest.test_case "e6 quadratic shape" `Slow test_e6_quadratic_shape;
    Alcotest.test_case "e7 classify" `Quick test_e7;
    Alcotest.test_case "e8 transfer" `Quick test_e8;
    Alcotest.test_case "experiment registry" `Quick test_all_registry;
  ]
