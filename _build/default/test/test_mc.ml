(* Exhaustive model checking of the small cases: correct protocols have no
   bad execution at all; flawed ones are refuted with a concrete witness. *)

open Sim
open Consensus

let search ?(max_depth = 40) (p : Protocol.t) ~inputs =
  let config = Protocol.initial_config p ~inputs in
  Mc.Explore.search ~max_depth ~inputs config

let assert_clean name result =
  (match result.Mc.Explore.violation with
  | Some v ->
      Alcotest.failf "%s: violation %s:\n%s" name
        (match v.Mc.Explore.kind with
        | `Inconsistent -> "inconsistent"
        | `Invalid -> "invalid")
        (Trace.to_string string_of_int v.Mc.Explore.trace)
  | None -> ());
  if result.Mc.Explore.truncated then
    Alcotest.failf "%s: exploration truncated (not exhaustive)" name

let test_cas_exhaustive () =
  List.iter
    (fun inputs ->
      assert_clean "cas" (search Cas_consensus.protocol ~inputs))
    [ [ 0; 1 ]; [ 1; 0 ]; [ 0; 0 ]; [ 1; 1 ]; [ 0; 1; 1 ]; [ 1; 0; 1 ] ]

let test_tas2_exhaustive () =
  List.iter
    (fun inputs -> assert_clean "tas2" (search Tas2.protocol ~inputs))
    [ [ 0; 1 ]; [ 1; 0 ]; [ 0; 0 ]; [ 1; 1 ] ]

let test_swap2_exhaustive () =
  List.iter
    (fun inputs -> assert_clean "swap2" (search Swap2.protocol ~inputs))
    [ [ 0; 1 ]; [ 1; 0 ]; [ 0; 0 ]; [ 1; 1 ] ]

let test_flawed_first_writer_refuted () =
  let p = Flawed.first_writer ~r:1 in
  let result = search p ~inputs:[ 0; 1 ] in
  match result.Mc.Explore.violation with
  | Some { kind = `Inconsistent; trace; _ } ->
      (* the witness really contains two conflicting decisions *)
      let ds = List.map snd (Trace.decisions trace) in
      Alcotest.(check bool) "witness decides both" true
        (List.mem 0 ds && List.mem 1 ds)
  | Some { kind = `Invalid; _ } -> Alcotest.fail "expected inconsistency"
  | None -> Alcotest.fail "model checker missed the bug"

let test_flawed_unanimous_refuted () =
  List.iter
    (fun r ->
      let p = Flawed.unanimous ~style:Flawed.Rw ~r in
      (* enough processes that the bound r^2 - r + 2 is satisfied *)
      let n = max 2 ((r * r) - r + 2) in
      let inputs = List.init n (fun i -> i mod 2) in
      let result = search ~max_depth:60 p ~inputs in
      match result.Mc.Explore.violation with
      | Some { kind = `Inconsistent; _ } -> ()
      | Some { kind = `Invalid; _ } -> Alcotest.fail "expected inconsistency"
      | None ->
          if not result.Mc.Explore.truncated then
            Alcotest.failf "unanimous r=%d: MC says correct?!" r)
    [ 1; 2 ]

let test_valency_cas () =
  (* mixed-input cas: initially bivalent; after one step univalent *)
  let config = Protocol.initial_config Cas_consensus.protocol ~inputs:[ 0; 1 ] in
  (match Mc.Valency.classify config with
  | Mc.Valency.Bivalent vs ->
      Alcotest.(check (list int)) "both reachable" [ 0; 1 ] (List.sort compare vs)
  | _ -> Alcotest.fail "expected bivalent initial config");
  let config', _ = Run.step config ~pid:0 ~coin:(fun _ -> 0) in
  match Mc.Valency.classify config' with
  | Mc.Valency.Univalent 0 -> ()
  | v ->
      Alcotest.failf "expected 0-univalent after P0's cas, got %s"
        (Mc.Valency.to_string string_of_int v)

let test_valency_unanimous_inputs () =
  let config = Protocol.initial_config Cas_consensus.protocol ~inputs:[ 1; 1 ] in
  match Mc.Valency.classify config with
  | Mc.Valency.Univalent 1 -> ()
  | v -> Alcotest.failf "expected 1-univalent, got %s" (Mc.Valency.to_string string_of_int v)

(* the randomized protocols, explored exhaustively up to a depth bound:
   schedules AND coin outcomes are both adversary choices here, so this is
   strictly stronger than any number of random runs within the bound *)
let test_randomized_bounded_safety () =
  List.iter
    (fun ((p : Protocol.t), depth) ->
      List.iter
        (fun inputs ->
          let config = Protocol.initial_config p ~inputs in
          let result =
            Mc.Explore.search ~max_depth:depth ~max_states:400_000 ~inputs config
          in
          match result.Mc.Explore.violation with
          | Some v ->
              Alcotest.failf "%s inputs=[%s]: %s violation within depth %d"
                p.Protocol.name
                (String.concat ";" (List.map string_of_int inputs))
                (match v.Mc.Explore.kind with
                | `Inconsistent -> "consistency"
                | `Invalid -> "validity")
                depth
          | None -> ())
        [ [ 0; 1 ]; [ 1; 1 ]; [ 0; 0 ] ])
    [ (Fa_consensus.protocol, 18); (Counter_consensus.protocol, 16);
      (Rw_consensus.protocol, 14) ]

let test_visited_counts () =
  let result = search Cas_consensus.protocol ~inputs:[ 0; 1 ] in
  Alcotest.(check bool) "visited some states" true (result.Mc.Explore.visited > 4);
  Alcotest.(check bool) "found leaves" true (result.Mc.Explore.leaves > 0)

let suite =
  [
    Alcotest.test_case "cas exhaustive n=2,3" `Quick test_cas_exhaustive;
    Alcotest.test_case "tas2 exhaustive" `Quick test_tas2_exhaustive;
    Alcotest.test_case "swap2 exhaustive" `Quick test_swap2_exhaustive;
    Alcotest.test_case "first-writer refuted" `Quick test_flawed_first_writer_refuted;
    Alcotest.test_case "unanimous refuted" `Quick test_flawed_unanimous_refuted;
    Alcotest.test_case "valency: cas" `Quick test_valency_cas;
    Alcotest.test_case "valency: unanimous inputs" `Quick test_valency_unanimous_inputs;
    Alcotest.test_case "randomized protocols: bounded exhaustive safety" `Slow
      test_randomized_bounded_safety;
    Alcotest.test_case "exploration stats" `Quick test_visited_counts;
  ]
