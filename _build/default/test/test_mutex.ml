(* Mutual exclusion: Peterson and the swap spinlock are safe (exhaustively
   to depth, and under stress); the broken test-then-set lock is refuted
   with a concrete interleaving. *)

open Sim

let test_peterson_safe () =
  match Mutex.check_exclusion ~max_depth:22 Mutex.peterson ~n:2 with
  | Mutex.Safe_to_depth d -> Alcotest.(check bool) "depth" true (d >= 22)
  | Mutex.Violation trace ->
      Alcotest.failf "peterson violated:\n%s" (Trace.to_string string_of_int trace)

let test_peterson_stress () =
  for seed = 1 to 30 do
    let max_occ, done_ = Mutex.stress Mutex.peterson ~n:2 ~seed ~max_steps:5_000 in
    Alcotest.(check bool) "never two in CS" true (max_occ <= 1);
    Alcotest.(check bool) "sessions complete" true done_
  done

let test_naive_flag_refuted () =
  match Mutex.check_exclusion ~max_depth:16 Mutex.naive_flag ~n:2 with
  | Mutex.Violation trace ->
      (* the violation really shows occupancy 2: two enters, no leave
         between them *)
      let rec max_occ acc best = function
        | [] -> best
        | Event.Applied { obj = 0; op; _ } :: rest ->
            let acc =
              if op.Op.name = "inc" then acc + 1
              else if op.Op.name = "dec" then acc - 1
              else acc
            in
            max_occ acc (max best acc) rest
        | _ :: rest -> max_occ acc best rest
      in
      Alcotest.(check int) "occupancy reaches 2" 2
        (max_occ 0 0 (Trace.events trace))
  | Mutex.Safe_to_depth _ -> Alcotest.fail "missed the classic race"

let test_swap_lock_safe () =
  List.iter
    (fun n ->
      match Mutex.check_exclusion ~max_depth:14 Mutex.tas_lock ~n with
      | Mutex.Safe_to_depth _ -> ()
      | Mutex.Violation trace ->
          Alcotest.failf "swap lock violated (n=%d):\n%s" n
            (Trace.to_string string_of_int trace))
    [ 2; 3 ]

let test_swap_lock_stress () =
  for seed = 1 to 20 do
    let max_occ, done_ = Mutex.stress Mutex.tas_lock ~n:4 ~seed ~max_steps:20_000 in
    Alcotest.(check bool) "never two in CS" true (max_occ <= 1);
    Alcotest.(check bool) "sessions complete" true done_
  done

let test_space_contrast () =
  (* the Burns-Lynch shape: registers-only mutex uses >= n registers
     (Peterson: 3 for n=2); one historyless swap object suffices for any n *)
  Alcotest.(check int) "peterson registers" 3 (Mutex.peterson.Mutex.registers ~n:2);
  Alcotest.(check int) "swap lock objects" 1 (Mutex.tas_lock.Mutex.registers ~n:8)

let suite =
  [
    Alcotest.test_case "peterson exhaustively safe" `Quick test_peterson_safe;
    Alcotest.test_case "peterson stress" `Quick test_peterson_stress;
    Alcotest.test_case "naive flag refuted" `Quick test_naive_flag_refuted;
    Alcotest.test_case "swap lock safe" `Quick test_swap_lock_safe;
    Alcotest.test_case "swap lock stress" `Quick test_swap_lock_stress;
    Alcotest.test_case "space contrast" `Quick test_space_contrast;
  ]
