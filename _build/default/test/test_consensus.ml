(* Every packaged correct protocol: consistency and validity on every run,
   under several adversarial schedulers, many seeds; termination within the
   step budget for the randomized ones (statistical wait-freedom). *)

open Sim
open Consensus

let schedulers =
  [
    ("random", fun seed -> Sched.random ~seed);
    ("round-robin", fun seed -> Sched.round_robin ~seed ());
    ("contention", fun seed -> Sched.contention ~seed);
  ]

let some_inputs n seed =
  let rng = Rng.create seed in
  List.init n (fun _ -> Rng.int rng 2)

let exercise (p : Protocol.t) ~n ~reps =
  List.iter
    (fun (sched_name, mk_sched) ->
      for seed = 1 to reps do
        let inputs = some_inputs n (seed * 7919) in
        let report = Protocol.run_once p ~inputs ~sched:(mk_sched seed) in
        if not (Checker.ok report.Protocol.verdict) then
          Alcotest.failf "%s n=%d %s seed=%d: bad verdict %s" p.Protocol.name n
            sched_name seed
            (Fmt.str "%a" Checker.pp report.Protocol.verdict);
        if report.Protocol.result.Run.outcome <> Run.All_decided then
          Alcotest.failf "%s n=%d %s seed=%d: did not terminate in budget"
            p.Protocol.name n sched_name seed
      done)
    schedulers

let test_cas () = List.iter (fun n -> exercise Cas_consensus.protocol ~n ~reps:20) [ 1; 2; 3; 5; 8 ]
let test_fa () = List.iter (fun n -> exercise Fa_consensus.protocol ~n ~reps:10) [ 1; 2; 3; 5; 8 ]

let test_counter () =
  List.iter (fun n -> exercise Counter_consensus.protocol ~n ~reps:10) [ 1; 2; 3; 5; 8 ]

let test_rw () = List.iter (fun n -> exercise Rw_consensus.protocol ~n ~reps:10) [ 1; 2; 3; 5 ]
let test_tas2 () = exercise Tas2.protocol ~n:2 ~reps:50
let test_swap2 () = exercise Swap2.protocol ~n:2 ~reps:50

(* Validity corner: unanimous inputs must decide that value, always. *)
let test_unanimous_inputs () =
  List.iter
    (fun (p : Protocol.t) ->
      List.iter
        (fun v ->
          let n = 4 in
          if p.Protocol.supports_n n then
            for seed = 1 to 10 do
              let report =
                Protocol.run_once p ~inputs:(List.init n (fun _ -> v))
                  ~sched:(Sched.random ~seed)
              in
              match Config.decisions report.Protocol.result.Run.config with
              | [] -> Alcotest.failf "%s: no decisions" p.Protocol.name
              | ds ->
                  if not (List.for_all (( = ) v) ds) then
                    Alcotest.failf "%s: unanimous %d broken" p.Protocol.name v
            done)
        [ 0; 1 ])
    Registry.correct

(* Crash tolerance: halting any single process must not block the others
   (wait-freedom) nor break safety. *)
let test_crash_one () =
  List.iter
    (fun (p : Protocol.t) ->
      let n = 3 in
      if p.Protocol.supports_n n then
        for victim = 0 to n - 1 do
          for seed = 1 to 5 do
            let inputs = some_inputs n (seed * 31 + victim) in
            let config = Protocol.initial_config p ~inputs in
            let config = Config.halt config victim in
            let result = Run.exec_fast (Sched.random ~seed) config in
            let verdict = Checker.of_config ~inputs result.Run.config in
            if not (Checker.ok verdict) then
              Alcotest.failf "%s crash P%d seed %d: safety broken"
                p.Protocol.name victim seed;
            if result.Run.outcome <> Run.All_decided then
              Alcotest.failf "%s crash P%d seed %d: survivors stuck"
                p.Protocol.name victim seed
          done
        done)
    Registry.correct

(* A solo process always decides its own input (validity + wait-freedom). *)
let test_solo_decides_own () =
  List.iter
    (fun (p : Protocol.t) ->
      let n = 4 in
      if p.Protocol.supports_n n then
        for seed = 1 to 5 do
          let inputs = [ 1; 0; 0; 0 ] in
          let config = Protocol.initial_config p ~inputs in
          let result = Run.exec_fast (Sched.solo ~pid:0 ~seed) config in
          match Config.decision result.Run.config 0 with
          | Some 1 -> ()
          | Some v -> Alcotest.failf "%s solo decided %d" p.Protocol.name v
          | None -> Alcotest.failf "%s solo did not decide" p.Protocol.name
        done)
    Registry.correct

(* Property test: random everything for the one-object randomized protocol. *)
let prop_fa_random =
  QCheck.Test.make ~name:"fetch&add consensus safe on random runs" ~count:100
    QCheck.(pair small_int (list_of_size Gen.(2 -- 6) (int_bound 1)))
    (fun (seed, inputs) ->
      QCheck.assume (List.length inputs >= 2);
      let report =
        Protocol.run_once Fa_consensus.protocol ~inputs
          ~sched:(Sched.random ~seed:(seed + 1))
      in
      Checker.ok report.Protocol.verdict
      && report.Protocol.result.Run.outcome = Run.All_decided)
  |> QCheck_alcotest.to_alcotest

let prop_counter_random =
  QCheck.Test.make ~name:"counter consensus safe on random runs" ~count:100
    QCheck.(pair small_int (list_of_size Gen.(2 -- 6) (int_bound 1)))
    (fun (seed, inputs) ->
      QCheck.assume (List.length inputs >= 2);
      let report =
        Protocol.run_once Counter_consensus.protocol ~inputs
          ~sched:(Sched.contention ~seed:(seed + 1))
      in
      Checker.ok report.Protocol.verdict)
  |> QCheck_alcotest.to_alcotest

let prop_rw_random =
  QCheck.Test.make ~name:"rw consensus safe on random runs" ~count:60
    QCheck.(pair small_int (list_of_size Gen.(2 -- 5) (int_bound 1)))
    (fun (seed, inputs) ->
      QCheck.assume (List.length inputs >= 2);
      let report =
        Protocol.run_once Rw_consensus.protocol ~inputs
          ~sched:(Sched.random ~seed:(seed + 1))
      in
      Checker.ok report.Protocol.verdict)
  |> QCheck_alcotest.to_alcotest

let test_space_claims () =
  Alcotest.(check int) "cas uses 1" 1 (Protocol.space Cas_consensus.protocol ~n:8);
  Alcotest.(check int) "f&a uses 1" 1 (Protocol.space Fa_consensus.protocol ~n:8);
  Alcotest.(check int) "counter uses 3" 3
    (Protocol.space Counter_consensus.protocol ~n:8);
  Alcotest.(check int) "rw uses 3n" 24 (Protocol.space Rw_consensus.protocol ~n:8)

let test_fa_encoding () =
  let n = 5 in
  let x = Fa_consensus.init_value ~n in
  Alcotest.(check (triple int int int))
    "decode init" (0, 0, 0)
    (Fa_consensus.decode ~n x);
  let x = x + 1 (* one vote for 0 *) + Fa_consensus.votes1_mul ~n (* one for 1 *) in
  let x = x + (2 * Fa_consensus.cursor_mul ~n) (* cursor +2 *) in
  Alcotest.(check (triple int int int))
    "decode moved" (1, 1, 2)
    (Fa_consensus.decode ~n x);
  let x = x - (5 * Fa_consensus.cursor_mul ~n) in
  Alcotest.(check (triple int int int))
    "decode negative cursor" (1, 1, -3)
    (Fa_consensus.decode ~n x)

let suite =
  [
    Alcotest.test_case "cas: all n, all scheds" `Quick test_cas;
    Alcotest.test_case "fetch&add: all n, all scheds" `Slow test_fa;
    Alcotest.test_case "counter: all n, all scheds" `Slow test_counter;
    Alcotest.test_case "rw: all n, all scheds" `Slow test_rw;
    Alcotest.test_case "tas 2-process" `Quick test_tas2;
    Alcotest.test_case "swap 2-process" `Quick test_swap2;
    Alcotest.test_case "unanimous inputs" `Quick test_unanimous_inputs;
    Alcotest.test_case "crash one process" `Quick test_crash_one;
    Alcotest.test_case "solo decides own input" `Quick test_solo_decides_own;
    prop_fa_random;
    prop_counter_random;
    prop_rw_random;
    Alcotest.test_case "space claims" `Quick test_space_claims;
    Alcotest.test_case "f&a field encoding" `Quick test_fa_encoding;
  ]
