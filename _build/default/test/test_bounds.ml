open Lowerbound

let test_closed_forms () =
  Alcotest.(check int) "r=1" 1 (Bounds.identical_process_bound 1);
  Alcotest.(check int) "r=2" 3 (Bounds.identical_process_bound 2);
  Alcotest.(check int) "r=3" 7 (Bounds.identical_process_bound 3);
  Alcotest.(check int) "threshold r=3" 8 (Bounds.identical_attack_threshold 3);
  Alcotest.(check int) "general r=1" 4 (Bounds.general_process_bound 1);
  Alcotest.(check int) "general r=3" 30 (Bounds.general_process_bound 3)

let test_inversions () =
  (* registers_needed_identical is the inverse of the bound *)
  List.iter
    (fun n ->
      let r = Bounds.registers_needed_identical n in
      Alcotest.(check bool)
        (Printf.sprintf "ident inverse n=%d" n)
        true
        (Bounds.identical_process_bound r >= n
        && (r = 1 || Bounds.identical_process_bound (r - 1) < n)))
    [ 1; 2; 5; 10; 50; 1000 ];
  List.iter
    (fun n ->
      let r = Bounds.objects_needed_general n in
      Alcotest.(check bool)
        (Printf.sprintf "general inverse n=%d" n)
        true
        (Bounds.general_process_bound r >= n
        && (r = 1 || Bounds.general_process_bound (r - 1) < n)))
    [ 1; 4; 14; 30; 100; 10_000 ]

let test_sqrt_shape () =
  (* the lower-bound curve grows like sqrt n: doubling n scales r by ~sqrt 2 *)
  let r1 = Bounds.objects_needed_general 10_000 in
  let r2 = Bounds.objects_needed_general 40_000 in
  let ratio = float_of_int r2 /. float_of_int r1 in
  Alcotest.(check bool) "4x processes ~ 2x objects" true
    (ratio > 1.8 && ratio < 2.2)

let test_transfer_arithmetic () =
  let claim =
    {
      Transfer.target = "x";
      substrate = "y";
      f = (fun _ -> 2);
      g = (fun n -> float_of_int n);
    }
  in
  Alcotest.(check bool) "g/f" true
    (Transfer.instances_required claim ~n:10 = 5.0)

let test_transfer_lower_bound_curve () =
  (* explicit inversion of 3r^2 + r > n matches objects_needed_general
     within one object *)
  List.iter
    (fun n ->
      let continuous = Transfer.historyless_lower_bound n in
      let discrete = Bounds.objects_needed_general n in
      Alcotest.(check bool)
        (Printf.sprintf "curves agree n=%d" n)
        true
        (abs_float (ceil continuous -. float_of_int discrete) <= 1.0))
    [ 10; 100; 1000; 100_000 ]

let test_corollaries_all_single_object () =
  List.iter
    (fun (c : Transfer.claim) ->
      Alcotest.(check int) (c.Transfer.target ^ " f=1") 1 (c.Transfer.f 64))
    Transfer.corollaries

let suite =
  [
    Alcotest.test_case "closed forms" `Quick test_closed_forms;
    Alcotest.test_case "inversions" `Quick test_inversions;
    Alcotest.test_case "sqrt shape" `Quick test_sqrt_shape;
    Alcotest.test_case "transfer arithmetic" `Quick test_transfer_arithmetic;
    Alcotest.test_case "transfer curve" `Quick test_transfer_lower_bound_curve;
    Alcotest.test_case "corollaries single-object" `Quick
      test_corollaries_all_single_object;
  ]
