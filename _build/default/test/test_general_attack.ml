(* The general-case machinery (Section 3.2): Lemma 3.4's constructor
   produces valid interruptible executions with the claimed excess
   capacity; Lemma 3.5/3.6's splicer turns them into inconsistent
   executions for every flawed historyless-object protocol. *)

open Sim
open Consensus
open Lowerbound

let targets =
  [
    Flawed.unanimous ~style:Flawed.Rw ~r:1;
    Flawed.unanimous ~style:Flawed.Rw ~r:2;
    Flawed.unanimous ~style:Flawed.Rw ~r:3;
    Flawed.unanimous ~style:Flawed.Swapping ~r:2;
    Flawed.unanimous ~style:Flawed.Swapping ~r:3;
    Flawed.first_writer ~r:1;
    Flawed.first_writer ~r:2;
    Flawed.coin_retry ~style:Flawed.Rw ~r:2;
    Flawed.mixed ~r:2;
    Flawed.mixed ~r:3;
  ]

let test_breaks_all_targets () =
  List.iter
    (fun (p : Protocol.t) ->
      match General_attack.run p with
      | Error e ->
          Alcotest.failf "%s: %s" p.Protocol.name
            (General_attack.error_to_string e)
      | Ok o ->
          if not (General_attack.succeeded o) then
            Alcotest.failf "%s: consistent execution" p.Protocol.name;
          let ds = List.map snd (Trace.decisions o.General_attack.trace) in
          Alcotest.(check bool)
            (p.Protocol.name ^ " decides both") true
            (List.mem 0 ds && List.mem 1 ds);
          Alcotest.(check bool)
            (p.Protocol.name ^ " stays valid") true
            o.General_attack.verdict.Checker.valid)
    targets

(* Lemma 3.4's output satisfies Definition 3.1 and Definition 3.2, checked
   independently by the validators. *)
let build_witness (p : Protocol.t) ~m =
  let inputs = List.init m (fun pid -> if pid < m / 2 then 0 else 1) in
  let config = Protocol.initial_config p ~inputs in
  let objs = List.init (Config.n_objects config) Fun.id in
  let scratch = Builder.create ~config ~inputs in
  let pset = List.init (m / 2) Fun.id in
  let r = List.length objs in
  ( config,
    Build_interruptible.construct scratch ~all_objects:objs ~vset:[]
      ~pset ~uset:objs ~e:r )

let test_witness_validates () =
  List.iter
    (fun (p : Protocol.t) ->
      let m = General_attack.default_processes (Protocol.space p ~n:2) in
      let config, result = build_witness p ~m in
      match Interruptible.validate ~config result.Build_interruptible.witness with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: Def 3.1 violated: %s" p.Protocol.name msg)
    targets

let test_witness_excess_capacity () =
  List.iter
    (fun (p : Protocol.t) ->
      let r = Protocol.space p ~n:2 in
      let m = General_attack.default_processes r in
      let config, result = build_witness p ~m in
      let w = result.Build_interruptible.witness in
      (* the released reservations provide excess capacity e = r for the
         all-objects U, relative to the witness's future steppers *)
      let objs = List.init r Fun.id in
      Alcotest.(check bool)
        (p.Protocol.name ^ " excess capacity")
        true
        (Interruptible.has_excess_capacity ~config
           { w with Interruptible.pset = Interruptible.participants w }
           ~uset:objs ~e:0);
      (* released processes may have run in pieces *before* their
         reservation, but never serve as block writers (those retire), and
         their pids/objects are in range *)
      let bwriter_pids =
        List.concat_map
          (fun pc -> List.map snd pc.Interruptible.bwriters)
          w.Interruptible.pieces
      in
      List.iter
        (fun (obj, pids) ->
          List.iter
            (fun pid ->
              if List.mem pid bwriter_pids then
                Alcotest.failf "%s: released P%d is a block writer"
                  p.Protocol.name pid;
              if pid < 0 || pid >= Config.n_procs config then
                Alcotest.failf "%s: released pid out of range" p.Protocol.name)
            pids;
          if obj < 0 || obj >= r then
            Alcotest.failf "%s: released object out of range" p.Protocol.name)
        result.Build_interruptible.released)
    targets

(* decider of alpha has input 0: validity of the interruptible execution *)
let test_witness_decides_own_side () =
  List.iter
    (fun (p : Protocol.t) ->
      let m = General_attack.default_processes (Protocol.space p ~n:2) in
      let _, result = build_witness p ~m in
      let w = result.Build_interruptible.witness in
      Alcotest.(check int) (p.Protocol.name ^ " alpha decides 0") 0 w.Interruptible.decides;
      Alcotest.(check bool)
        (p.Protocol.name ^ " decider is in P")
        true
        (w.Interruptible.decider < m / 2))
    targets

(* pieces have strictly growing object sets, first set empty *)
let test_witness_structure () =
  let p = Flawed.unanimous ~style:Flawed.Rw ~r:3 in
  let m = General_attack.default_processes 3 in
  let _, result = build_witness p ~m in
  let w = result.Build_interruptible.witness in
  Alcotest.(check (list int)) "initial set empty" [] w.Interruptible.init_set;
  let sizes =
    List.map
      (fun pc -> List.length pc.Interruptible.vset)
      w.Interruptible.pieces
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "sizes strictly increase" true (increasing sizes)

(* the minimum process count at which the attack lands is at most the
   paper's 3r^2 + r plus our slack, and grows with r *)
let test_minimum_processes_shape () =
  let min_for r =
    let p = Flawed.unanimous ~style:Flawed.Rw ~r in
    match General_attack.minimum_processes p with
    | Some m -> m
    | None -> Alcotest.failf "no breaking process count found for r=%d" r
  in
  let m1 = min_for 1 and m2 = min_for 2 and m3 = min_for 3 in
  Alcotest.(check bool) "monotone in r" true (m1 <= m2 && m2 <= m3);
  Alcotest.(check bool) "within bound + slack" true
    (m3 <= General_attack.default_processes 3)

(* works with an explicit (larger) process budget too *)
let test_explicit_processes () =
  let p = Flawed.unanimous ~style:Flawed.Rw ~r:2 in
  match General_attack.run ~processes:40 p with
  | Ok o ->
      Alcotest.(check bool) "succeeds with 40" true (General_attack.succeeded o);
      Alcotest.(check int) "used 40" 40 o.General_attack.processes_used
  | Error e -> Alcotest.failf "error: %s" (General_attack.error_to_string e)

let suite =
  [
    Alcotest.test_case "breaks all flawed targets" `Quick test_breaks_all_targets;
    Alcotest.test_case "witness satisfies Def 3.1" `Quick test_witness_validates;
    Alcotest.test_case "witness excess capacity" `Quick test_witness_excess_capacity;
    Alcotest.test_case "alpha decides its side" `Quick test_witness_decides_own_side;
    Alcotest.test_case "piece structure" `Quick test_witness_structure;
    Alcotest.test_case "minimum processes shape" `Quick test_minimum_processes_shape;
    Alcotest.test_case "explicit process budget" `Quick test_explicit_processes;
  ]
