(* The added hierarchy objects (queue, sticky bit): semantics,
   classification, and their consensus protocols — including exhaustive
   model checking. *)

open Sim
open Objects
open Consensus

let veq = Alcotest.testable Value.pp_compact Value.equal

let test_queue_fifo () =
  let q = Queue_obj.optype () in
  let v, _ = Optype.apply q q.Optype.init (Queue_obj.enq (Value.int 1)) in
  let v, _ = Optype.apply q v (Queue_obj.enq (Value.int 2)) in
  let v, first = Optype.apply q v Queue_obj.deq in
  Alcotest.check veq "fifo head" (Value.int 1) first;
  let v, second = Optype.apply q v Queue_obj.deq in
  Alcotest.check veq "fifo second" (Value.int 2) second;
  let _, empty = Optype.apply q v Queue_obj.deq in
  Alcotest.check veq "empty marker" Queue_obj.empty_marker empty

let test_queue_prefill () =
  let q = Queue_obj.optype ~init:[ Queue2.winner; Queue2.loser ] () in
  let v, first = Optype.apply q q.Optype.init Queue_obj.deq in
  Alcotest.check veq "winner first" Queue2.winner first;
  let _, second = Optype.apply q v Queue_obj.deq in
  Alcotest.check veq "loser second" Queue2.loser second

let test_sticky_sticks () =
  let s = Sticky.optype () in
  let v, r1 = Optype.apply s s.Optype.init (Sticky.propose_int 1) in
  Alcotest.check veq "first proposal sticks" (Value.int 1) r1;
  let v2, r2 = Optype.apply s v (Sticky.propose_int 0) in
  Alcotest.check veq "second gets first's value" (Value.int 1) r2;
  Alcotest.check veq "state unchanged" v v2

let test_classification () =
  let spec name =
    match Specs.find name with
    | Some s -> s
    | None -> Alcotest.failf "no spec %s" name
  in
  let q = spec "queue" and s = spec "sticky" in
  Alcotest.(check bool) "queue not historyless" false
    (Objclass.Classify.is_historyless q);
  Alcotest.(check bool) "queue not interfering" false
    (Objclass.Classify.is_interfering q);
  Alcotest.(check bool) "sticky not historyless" false
    (Objclass.Classify.is_historyless s);
  Alcotest.(check bool) "sticky not interfering" false
    (Objclass.Classify.is_interfering s);
  (* enqueues neither commute nor overwrite *)
  let e0 = Queue_obj.enq (Value.int 0) and e1 = Queue_obj.enq (Value.int 1) in
  Alcotest.(check bool) "enqs do not commute" false (Objclass.Classify.commute q e0 e1);
  Alcotest.(check bool) "enq does not overwrite" false
    (Objclass.Classify.overwrites q ~f:e0 ~f':e1)

let assert_clean name result =
  (match result.Mc.Explore.violation with
  | Some _ -> Alcotest.failf "%s: violation found" name
  | None -> ());
  if result.Mc.Explore.truncated then Alcotest.failf "%s: truncated" name

let test_queue2_exhaustive () =
  List.iter
    (fun inputs ->
      let config = Protocol.initial_config Queue2.protocol ~inputs in
      assert_clean "queue2" (Mc.Explore.search ~max_depth:40 ~inputs config))
    [ [ 0; 1 ]; [ 1; 0 ]; [ 0; 0 ]; [ 1; 1 ] ]

let test_sticky_exhaustive () =
  List.iter
    (fun inputs ->
      let config = Protocol.initial_config Sticky_consensus.protocol ~inputs in
      assert_clean "sticky" (Mc.Explore.search ~max_depth:40 ~inputs config))
    [ [ 0; 1 ]; [ 1; 1 ]; [ 0; 1; 1 ]; [ 1; 0; 0 ] ]

let test_sticky_many_processes () =
  for seed = 1 to 10 do
    let rng = Rng.create (seed * 41) in
    let inputs = List.init 10 (fun _ -> Rng.int rng 2) in
    let report =
      Protocol.run_once Sticky_consensus.protocol ~inputs
        ~sched:(Sched.random ~seed)
    in
    Alcotest.(check bool) "safe" true (Checker.ok report.Protocol.verdict);
    Alcotest.(check bool) "done" true
      (report.Protocol.result.Run.outcome = Run.All_decided)
  done

(* sticky-bit consensus kills bivalence instantly, like cas *)
let test_sticky_bivalence () =
  let config = Protocol.initial_config Sticky_consensus.protocol ~inputs:[ 0; 1 ] in
  Alcotest.(check int) "survival 0" 0
    (Mc.Valency.bivalence_survival ~max_depth:6 config)

let suite =
  [
    Alcotest.test_case "queue fifo" `Quick test_queue_fifo;
    Alcotest.test_case "queue prefill" `Quick test_queue_prefill;
    Alcotest.test_case "sticky sticks" `Quick test_sticky_sticks;
    Alcotest.test_case "classification" `Quick test_classification;
    Alcotest.test_case "queue2 exhaustive" `Quick test_queue2_exhaustive;
    Alcotest.test_case "sticky exhaustive" `Quick test_sticky_exhaustive;
    Alcotest.test_case "sticky n=10" `Quick test_sticky_many_processes;
    Alcotest.test_case "sticky bivalence" `Quick test_sticky_bivalence;
  ]
