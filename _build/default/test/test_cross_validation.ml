(* Cross-validation of the two refutation engines.

   The enumeration (E12) says: every bounded-depth tree protocol over one
   register that passes the validity filters is inconsistent — the model
   checker finds a bad interleaving for each.  Lemma 3.2 says: the
   *constructive adversary* breaks every identical-process register
   protocol with nondeterministic solo termination.  Here we sample
   protocols from the enumeration and confirm the adversary defeats every
   single one — the proof machinery and the brute-force search agree
   witness for witness. *)

open Sim
open Consensus
open Lowerbound

let protocol_of_trees t0 t1 : Protocol.t =
  {
    name = "enumerated-tree-protocol";
    kind = `Deterministic;
    identical = true;
    supports_n = (fun n -> n >= 1);
    optypes = (fun ~n:_ -> [ Objects.Register.optype () ]);
    code =
      (fun ~n:_ ~pid:_ ~input ->
        Mc.Enumerate.to_proc (if input = 0 then t0 else t1));
  }

let sample_valid_pairs ~depth ~count ~seed =
  let trees = Mc.Enumerate.enumerate depth in
  let v0 = Array.of_list (List.filter (fun t -> Mc.Enumerate.solo_decisions t = [ 0 ]) trees) in
  let v1 = Array.of_list (List.filter (fun t -> Mc.Enumerate.solo_decisions t = [ 1 ]) trees) in
  let rng = Rng.create seed in
  List.init count (fun _ ->
      (v0.(Rng.int rng (Array.length v0)), v1.(Rng.int rng (Array.length v1))))

let test_adversary_beats_sampled_protocols () =
  let pairs = sample_valid_pairs ~depth:2 ~count:150 ~seed:42 in
  List.iter
    (fun (t0, t1) ->
      let p = protocol_of_trees t0 t1 in
      (* the model checker's verdict first: is this pair even unanimously
         valid? (the adversary presupposes a plausible protocol) *)
      let unanimous_ok =
        Mc.Enumerate.check_inputs t0 t0 [ 0; 0 ]
        && Mc.Enumerate.check_inputs t1 t1 [ 1; 1 ]
      in
      if unanimous_ok then begin
        match Attack.run p with
        | Ok o when Attack.succeeded o ->
            (* and the witness certifies: tree protocols use only
               read-write registers *)
            (match Attack.certify p o with
            | Ok (_, verdict) ->
                if verdict.Checker.consistent then
                  Alcotest.fail "certified replay lost the inconsistency"
            | Error msg -> Alcotest.failf "certification failed: %s" msg)
        | Ok _ -> Alcotest.fail "adversary returned a consistent execution"
        | Error e ->
            Alcotest.failf "adversary failed on an enumerated protocol: %s"
              (Attack.error_to_string e)
      end)
    pairs

(* and in the other direction: wherever the adversary succeeds, the model
   checker also finds a violation (on 2 processes) *)
let test_mc_confirms_adversary () =
  let pairs = sample_valid_pairs ~depth:2 ~count:60 ~seed:7 in
  List.iter
    (fun (t0, t1) ->
      let p = protocol_of_trees t0 t1 in
      match Attack.run p with
      | Ok o when Attack.succeeded o ->
          let config = Protocol.initial_config p ~inputs:[ 0; 1 ] in
          let result = Mc.Explore.search ~max_depth:30 ~inputs:[ 0; 1 ] config in
          (* MC explores 2 processes; the adversary may have needed clones
             (3+ processes), in which case MC at n=2 may or may not find a
             violation — but for ONE register, Lemma 3.2's threshold is
             r^2-r+2 = 2, so two processes always suffice *)
          (match result.Mc.Explore.violation with
          | Some _ -> ()
          | None ->
              Alcotest.fail
                "adversary broke a protocol the model checker calls correct")
      | Ok _ | Error _ -> ())
    pairs

let suite =
  [
    Alcotest.test_case "adversary beats sampled enumerated protocols" `Quick
      test_adversary_beats_sampled_protocols;
    Alcotest.test_case "model checker confirms adversary" `Quick
      test_mc_confirms_adversary;
  ]
