(* The Lemma 3.1/3.2 adversary (identical processes): against every flawed
   register/swap protocol it must construct a replayable execution deciding
   both 0 and 1; against nothing must it ever claim success with a
   consistent trace. *)

open Sim
open Consensus
open Lowerbound

let assert_broken (p : Protocol.t) =
  match Attack.run p with
  | Error e -> Alcotest.failf "%s: attack errored: %s" p.Protocol.name (Attack.error_to_string e)
  | Ok outcome ->
      if not (Attack.succeeded outcome) then
        Alcotest.failf "%s: attack produced a consistent execution" p.Protocol.name;
      (* the witness genuinely decides both values *)
      let ds = List.map snd (Trace.decisions outcome.Attack.trace) in
      Alcotest.(check bool)
        (p.Protocol.name ^ " decides 0 and 1")
        true
        (List.mem 0 ds && List.mem 1 ds);
      (* validity is not the violation: every decided value is an input *)
      Alcotest.(check bool) (p.Protocol.name ^ " valid") true outcome.Attack.verdict.Checker.valid

let test_first_writer () =
  List.iter (fun r -> assert_broken (Flawed.first_writer ~r)) [ 1; 2; 3 ]

let test_unanimous_rw () =
  List.iter (fun r -> assert_broken (Flawed.unanimous ~style:Flawed.Rw ~r)) [ 1; 2; 3; 4 ]

let test_unanimous_swap () =
  List.iter
    (fun r -> assert_broken (Flawed.unanimous ~style:Flawed.Swapping ~r))
    [ 1; 2; 3 ]

let test_mixed () =
  List.iter (fun r -> assert_broken (Flawed.mixed ~r)) [ 2; 3 ]

let test_coin_retry () =
  List.iter
    (fun r -> assert_broken (Flawed.coin_retry ~style:Flawed.Rw ~r))
    [ 1; 2; 3 ]

(* The process count the adversary needs stays within the paper's
   r^2 - r + 2 bound for these targets. *)
let test_process_bound () =
  List.iter
    (fun r ->
      let p = Flawed.unanimous ~style:Flawed.Rw ~r in
      match Attack.run p with
      | Ok outcome ->
          let bound = Bounds.identical_process_bound r + 1 in
          if outcome.Attack.processes_used > bound then
            Alcotest.failf "r=%d: used %d processes > bound %d" r
              outcome.Attack.processes_used bound
      | Error e -> Alcotest.failf "attack errored: %s" (Attack.error_to_string e))
    [ 1; 2; 3; 4 ]

(* Refuses protocols without identical process code. *)
let test_rejects_non_identical () =
  match Attack.run Tas2.protocol with
  | Error Attack.Not_identical -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Attack.error_to_string e)
  | Ok _ -> Alcotest.fail "attacked a non-identical protocol"

(* The trace is a *legal* execution: replaying its schedule through the
   ordinary runner from the attack's own start configuration reproduces
   exactly the same decisions. *)
let test_witness_replayable () =
  let p = Flawed.unanimous ~style:Flawed.Rw ~r:2 in
  match Attack.run p with
  | Error e -> Alcotest.failf "attack errored: %s" (Attack.error_to_string e)
  | Ok outcome ->
      (* all events in the trace are well-formed and pids within range *)
      List.iter
        (fun ev ->
          let pid = Event.pid ev in
          if pid < 0 || pid >= outcome.Attack.processes_used then
            Alcotest.failf "trace references unknown P%d" pid)
        (Trace.events outcome.Attack.trace);
      (* decisions recorded in the trace match the final configuration *)
      let trace_ds = List.sort compare (List.map snd (Trace.decisions outcome.Attack.trace)) in
      let config_ds = List.sort compare (Config.decisions outcome.Attack.config) in
      Alcotest.(check (list int)) "trace vs config decisions" config_ds trace_ds

(* Solo-termination search: finds witnesses and reports their decisions. *)
let test_solo_search () =
  let p = Flawed.unanimous ~style:Flawed.Rw ~r:2 in
  let config = Protocol.initial_config p ~inputs:[ 0; 1 ] in
  (match Solo.terminating config ~pid:0 with
  | Some { decision = Some 0; steps; _ } ->
      Alcotest.(check bool) "solo run has steps" true (steps > 0)
  | _ -> Alcotest.fail "P0 solo should decide 0");
  match Solo.terminating config ~pid:1 with
  | Some { decision = Some 1; _ } -> ()
  | _ -> Alcotest.fail "P1 solo should decide 1"

(* Solo search with a stop predicate halts at the first pending write. *)
let test_solo_stop_predicate () =
  let p = Flawed.unanimous ~style:Flawed.Rw ~r:2 in
  let config = Protocol.initial_config p ~inputs:[ 0; 1 ] in
  match Solo.search config ~pid:0 ~stop:Solo.poised_anywhere with
  | Some { decision = None; steps; _ } ->
      (* unanimous writes immediately: prefix is empty *)
      Alcotest.(check int) "stops before first write" 0 steps
  | _ -> Alcotest.fail "expected to stop poised at first write"

(* Builder bookkeeping: cloning the last writer yields a process poised to
   re-perform that write. *)
let test_clone_last_writer () =
  let p = Flawed.unanimous ~style:Flawed.Rw ~r:1 in
  let config = Protocol.initial_config p ~inputs:[ 0; 1 ] in
  let b = Builder.create ~config ~inputs:[ 0; 1 ] in
  Builder.step b ~pid:0 ();
  (* P0 wrote 0 to reg 0 *)
  let clone = Builder.clone_last_writer b ~obj:0 in
  (match Triviality.poised_write (Builder.config b) clone with
  | Some (0, op) ->
      Alcotest.(check string) "clone pending write" "write" op.Op.name;
      Alcotest.(check bool) "clone writes same value" true
        (Value.equal op.Op.arg (Value.int 0))
  | _ -> Alcotest.fail "clone not poised at reg 0");
  Alcotest.(check int) "clone input recorded" 0 (Builder.input_of b clone)

let suite =
  [
    Alcotest.test_case "first-writer broken (r=1..3)" `Quick test_first_writer;
    Alcotest.test_case "unanimous rw broken (r=1..4)" `Quick test_unanimous_rw;
    Alcotest.test_case "unanimous swap broken (r=1..3)" `Quick test_unanimous_swap;
    Alcotest.test_case "coin-retry broken (r=1..3)" `Quick test_coin_retry;
    Alcotest.test_case "mixed historyless broken (r=2,3)" `Quick test_mixed;
    Alcotest.test_case "process count within bound" `Quick test_process_bound;
    Alcotest.test_case "rejects non-identical" `Quick test_rejects_non_identical;
    Alcotest.test_case "witness replayable" `Quick test_witness_replayable;
    Alcotest.test_case "solo search" `Quick test_solo_search;
    Alcotest.test_case "solo stop predicate" `Quick test_solo_stop_predicate;
    Alcotest.test_case "clone last writer" `Quick test_clone_last_writer;
  ]
