(* Bivalence survival (the FLP argument, played by the model checker) and
   the solo-probe seeding of decidable_values. *)

open Consensus

let test_cas_dies_immediately () =
  let config = Protocol.initial_config Cas_consensus.protocol ~inputs:[ 0; 1 ] in
  Alcotest.(check int) "no bivalent step exists" 0
    (Mc.Valency.bivalence_survival ~max_depth:8 config)

let test_tas2_dies_at_the_tas () =
  let config = Protocol.initial_config Tas2.protocol ~inputs:[ 0; 1 ] in
  let survival = Mc.Valency.bivalence_survival ~max_depth:8 config in
  (* the two input-publication writes keep bivalence; the first test&set
     kills it *)
  Alcotest.(check int) "two bivalent steps" 2 survival

let test_rw_survives_probe () =
  let config = Protocol.initial_config Rw_consensus.protocol ~inputs:[ 0; 1 ] in
  let probe = 8 in
  Alcotest.(check int) "registers keep bivalence alive" probe
    (Mc.Valency.bivalence_survival ~max_depth:probe config)

let test_unanimous_inputs_never_bivalent () =
  let config = Protocol.initial_config Rw_consensus.protocol ~inputs:[ 1; 1 ] in
  Alcotest.(check int) "univalent start" 0
    (Mc.Valency.bivalence_survival ~max_depth:4 config)

let test_solo_probe () =
  let config = Protocol.initial_config Rw_consensus.protocol ~inputs:[ 0; 1 ] in
  Alcotest.(check (option int)) "P0 solo decides 0" (Some 0)
    (Mc.Explore.solo_decision config ~pid:0);
  Alcotest.(check (option int)) "P1 solo decides 1" (Some 1)
    (Mc.Explore.solo_decision config ~pid:1)

let test_decidable_values_seeded () =
  let config = Protocol.initial_config Rw_consensus.protocol ~inputs:[ 0; 1 ] in
  let values, _ = Mc.Explore.decidable_values ~max_depth:30 ~max_states:50_000 config in
  Alcotest.(check (list int)) "both values found despite truncation" [ 0; 1 ] values

let suite =
  [
    Alcotest.test_case "cas: survival 0" `Quick test_cas_dies_immediately;
    Alcotest.test_case "tas2: survival 2" `Quick test_tas2_dies_at_the_tas;
    Alcotest.test_case "registers: survive probe" `Quick test_rw_survives_probe;
    Alcotest.test_case "unanimous inputs: survival 0" `Quick
      test_unanimous_inputs_never_bivalent;
    Alcotest.test_case "solo probe" `Quick test_solo_probe;
    Alcotest.test_case "decidable_values seeded" `Quick test_decidable_values_seeded;
  ]
