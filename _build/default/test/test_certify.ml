(* Certified replay of the identical-process attack: every clone is
   realized as a genuine process shadowing its origin lock-step from a
   fresh start, and the inconsistency reproduces. *)

open Sim
open Consensus
open Lowerbound

let register_targets =
  [
    Flawed.unanimous ~style:Flawed.Rw ~r:1;
    Flawed.unanimous ~style:Flawed.Rw ~r:2;
    Flawed.unanimous ~style:Flawed.Rw ~r:3;
    Flawed.unanimous ~style:Flawed.Rw ~r:4;
    Flawed.first_writer ~r:1;
    Flawed.first_writer ~r:2;
    Flawed.first_writer ~r:3;
    Flawed.coin_retry ~style:Flawed.Rw ~r:2;
    Flawed.coin_retry ~style:Flawed.Rw ~r:3;
  ]

let attack (p : Protocol.t) =
  match Attack.run p with
  | Ok o -> o
  | Error e -> Alcotest.failf "%s: attack errored: %s" p.Protocol.name (Attack.error_to_string e)

let test_certifies_register_targets () =
  List.iter
    (fun (p : Protocol.t) ->
      let o = attack p in
      match Attack.certify p o with
      | Ok (trace, verdict) ->
          Alcotest.(check bool)
            (p.Protocol.name ^ " certified inconsistent")
            false verdict.Checker.consistent;
          Alcotest.(check bool)
            (p.Protocol.name ^ " certified valid")
            true verdict.Checker.valid;
          (* the certified trace contains at least the attack's steps,
             plus the shadow prefixes *)
          Alcotest.(check bool)
            (p.Protocol.name ^ " trace extends")
            true
            (Trace.steps trace >= Trace.steps o.Attack.trace)
      | Error msg -> Alcotest.failf "%s: certification failed: %s" p.Protocol.name msg)
    register_targets

(* genealogy is well-formed: clones reference earlier processes, cutoffs
   are nonnegative *)
let test_genealogy_wellformed () =
  let p = Flawed.unanimous ~style:Flawed.Rw ~r:3 in
  let o = attack p in
  List.iter
    (fun { Builder.clone; origin; cutoff } ->
      Alcotest.(check bool) "origin before clone" true (origin < clone);
      Alcotest.(check bool) "cutoff nonnegative" true (cutoff >= 0);
      Alcotest.(check bool) "pids in range" true
        (clone < o.Attack.processes_used && origin >= 0))
    o.Attack.genealogy;
  (* clone count matches process growth: 2 originals + clones *)
  Alcotest.(check int) "clones accounted" (o.Attack.processes_used - 2)
    (List.length o.Attack.genealogy)

(* certification refuses when the clones' lock-step realization would be
   observable — swap responses reveal history *)
let test_swap_unrealizable_or_certified () =
  let p = Flawed.unanimous ~style:Flawed.Swapping ~r:2 in
  let o = attack p in
  (* the attack itself succeeds either way *)
  Alcotest.(check bool) "attack broke it" true (Attack.succeeded o);
  match Attack.certify p o with
  | Ok (_, verdict) ->
      (* if no shadowed swap response actually diverged, certification can
         legitimately succeed — then it must be a real inconsistency *)
      Alcotest.(check bool) "if certified then inconsistent" false
        verdict.Checker.consistent
  | Error _ -> (* expected in general: swap responses leak history *) ()

(* the certified trace is itself checkable: decisions recorded in it match
   the independently recomputed verdict *)
let test_certified_trace_decisions () =
  let p = Flawed.unanimous ~style:Flawed.Rw ~r:2 in
  let o = attack p in
  match Attack.certify p o with
  | Ok (trace, _) ->
      let ds = List.map snd (Trace.decisions trace) in
      Alcotest.(check bool) "both decided in certified trace" true
        (List.mem 0 ds && List.mem 1 ds)
  | Error msg -> Alcotest.failf "certification failed: %s" msg

let suite =
  [
    Alcotest.test_case "certifies register targets" `Quick
      test_certifies_register_targets;
    Alcotest.test_case "genealogy well-formed" `Quick test_genealogy_wellformed;
    Alcotest.test_case "swap targets: unrealizable or sound" `Quick
      test_swap_unrealizable_or_certified;
    Alcotest.test_case "certified trace decisions" `Quick
      test_certified_trace_decisions;
  ]
