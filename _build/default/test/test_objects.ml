open Sim
open Objects

let veq = Alcotest.testable Value.pp_compact Value.equal

let step ot v op = Optype.apply ot v op

let test_register () =
  let ot = Register.optype () in
  Alcotest.check veq "init" Value.none ot.Optype.init;
  let v, r = step ot Value.none (Register.write_int 5) in
  Alcotest.check veq "write sets" (Value.int 5) v;
  Alcotest.check veq "write acks unit" Value.unit r;
  let v', r' = step ot v Register.read in
  Alcotest.check veq "read keeps" (Value.int 5) v';
  Alcotest.check veq "read returns" (Value.int 5) r'

let test_register_bad_op () =
  let ot = Register.optype () in
  match step ot Value.none (Op.make "bogus") with
  | exception Optype.Bad_op _ -> ()
  | _ -> Alcotest.fail "expected Bad_op"

let test_swap () =
  let ot = Swap_register.optype () in
  let v, old = step ot ot.Optype.init (Swap_register.swap_int 1) in
  Alcotest.check veq "swap installs" (Value.int 1) v;
  Alcotest.check veq "swap returns old" Value.none old;
  let v2, old2 = step ot v (Swap_register.swap_int 2) in
  Alcotest.check veq "swap installs 2" (Value.int 2) v2;
  Alcotest.check veq "swap returns 1" (Value.int 1) old2

let test_tas () =
  let ot = Test_and_set.optype () in
  let v, r = step ot ot.Optype.init Test_and_set.test_and_set in
  Alcotest.check veq "first gets 0" (Value.int 0) r;
  Alcotest.check veq "sets to 1" (Value.int 1) v;
  let v2, r2 = step ot v Test_and_set.test_and_set in
  Alcotest.check veq "second gets 1" (Value.int 1) r2;
  Alcotest.check veq "stays 1" (Value.int 1) v2

let test_fetch_add () =
  let ot = Fetch_add.optype () in
  let v, old = step ot ot.Optype.init (Fetch_add.fetch_add 5) in
  Alcotest.check veq "returns old" (Value.int 0) old;
  Alcotest.check veq "adds" (Value.int 5) v;
  let v2, old2 = step ot v (Fetch_add.fetch_add (-2)) in
  Alcotest.check veq "returns 5" (Value.int 5) old2;
  Alcotest.check veq "subtracts" (Value.int 3) v2;
  let v3, old3 = step ot v2 (Fetch_add.fetch_add 0) in
  Alcotest.check veq "f&a(0) reads" (Value.int 3) old3;
  Alcotest.check veq "f&a(0) keeps" (Value.int 3) v3

let test_fetch_inc_dec () =
  let inc = Fetch_inc.optype () and dec = Fetch_dec.optype () in
  let v, old = step inc inc.Optype.init Fetch_inc.fetch_inc in
  Alcotest.check veq "inc old" (Value.int 0) old;
  Alcotest.check veq "inc new" (Value.int 1) v;
  let v', old' = step dec dec.Optype.init Fetch_dec.fetch_dec in
  Alcotest.check veq "dec old" (Value.int 0) old';
  Alcotest.check veq "dec new" (Value.int (-1)) v'

let test_cas () =
  let ot = Compare_swap.optype () in
  let desired = Value.some (Value.int 9) in
  let v, old = step ot ot.Optype.init (Compare_swap.cas ~expected:Value.none ~desired) in
  Alcotest.check veq "cas succeeds" desired v;
  Alcotest.check veq "cas returns old" Value.none old;
  let v2, old2 =
    step ot v (Compare_swap.cas ~expected:Value.none ~desired:(Value.some (Value.int 4)))
  in
  Alcotest.check veq "cas fails keeps" desired v2;
  Alcotest.check veq "cas fail returns current" desired old2

let test_counter () =
  let ot = Counter.optype () in
  let v, _ = step ot ot.Optype.init Counter.inc in
  let v, _ = step ot v Counter.inc in
  let v, _ = step ot v Counter.dec in
  Alcotest.check veq "inc inc dec = 1" (Value.int 1) v;
  let v, r = step ot v Counter.read in
  Alcotest.check veq "read" (Value.int 1) r;
  let v, _ = step ot v Counter.reset in
  Alcotest.check veq "reset" (Value.int 0) v

let test_bounded_counter_wraps () =
  let ot = Bounded_counter.optype ~lo:(-2) ~hi:2 () in
  (* from hi, inc wraps to lo: modulo the range size, as the paper defines *)
  let v, _ = step ot (Value.int 2) Counter.inc in
  Alcotest.check veq "wrap up" (Value.int (-2)) v;
  let v, _ = step ot (Value.int (-2)) Counter.dec in
  Alcotest.check veq "wrap down" (Value.int 2) v

let test_bounded_counter_range () =
  let ot = Bounded_counter.optype ~lo:(-3) ~hi:3 () in
  (* 100 random incs/decs never leave the range *)
  let rng = Rng.create 2 in
  let v = ref ot.Optype.init in
  for _ = 1 to 100 do
    let op = if Rng.bool rng then Counter.inc else Counter.dec in
    let v', _ = step ot !v op in
    v := v';
    let i = Value.to_int !v in
    if i < -3 || i > 3 then Alcotest.failf "escaped range: %d" i
  done

let suite =
  [
    Alcotest.test_case "register" `Quick test_register;
    Alcotest.test_case "register bad op" `Quick test_register_bad_op;
    Alcotest.test_case "swap" `Quick test_swap;
    Alcotest.test_case "test&set" `Quick test_tas;
    Alcotest.test_case "fetch&add" `Quick test_fetch_add;
    Alcotest.test_case "fetch&inc/dec" `Quick test_fetch_inc_dec;
    Alcotest.test_case "compare&swap" `Quick test_cas;
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "bounded counter wraps" `Quick test_bounded_counter_wraps;
    Alcotest.test_case "bounded counter range" `Quick test_bounded_counter_range;
  ]
