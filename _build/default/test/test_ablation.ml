(* The staleness-slack ablation: the default counter consensus is safe in
   every run; the no-slack variant wraps its bounded cursor and violates
   consistency readily. *)

open Sim
open Consensus

let test_no_slack_breaks () =
  let p = Counter_consensus.protocol_with_slack ~slack:0 in
  let found = ref false in
  (try
     for seed = 1 to 100 do
       let inputs = [ 0; 1; 0; 1 ] in
       let report =
         Protocol.run_once ~max_steps:200_000 p ~inputs
           ~sched:(Sched.contention ~seed)
       in
       if not (Checker.ok report.Protocol.verdict) then begin
         found := true;
         raise Exit
       end
     done
   with Exit -> ());
  Alcotest.(check bool) "wrap-around violation found" true !found

let test_default_slack_safe () =
  let p = Counter_consensus.protocol_with_slack ~slack:1 in
  for seed = 1 to 60 do
    let inputs = [ 0; 1; 0; 1 ] in
    let report =
      Protocol.run_once ~max_steps:200_000 p ~inputs
        ~sched:(Sched.contention ~seed)
    in
    if not (Checker.ok report.Protocol.verdict) then
      Alcotest.failf "default slack violated at seed %d" seed
  done

let test_extra_slack_also_safe () =
  let p = Counter_consensus.protocol_with_slack ~slack:2 in
  for seed = 1 to 20 do
    let report =
      Protocol.run_once ~max_steps:200_000 p ~inputs:[ 0; 1; 1 ]
        ~sched:(Sched.contention ~seed)
    in
    Alcotest.(check bool) "safe" true (Checker.ok report.Protocol.verdict)
  done

let test_ranges () =
  let objects slack n =
    match (Counter_consensus.protocol_with_slack ~slack).Protocol.optypes ~n with
    | [ _; _; cursor ] -> cursor.Sim.Optype.name
    | _ -> Alcotest.fail "expected three counters"
  in
  Alcotest.(check string) "no slack range" "bounded-counter[-12,12]" (objects 0 4);
  Alcotest.(check string) "default range" "bounded-counter[-16,16]" (objects 1 4)

let suite =
  [
    Alcotest.test_case "no slack breaks" `Quick test_no_slack_breaks;
    Alcotest.test_case "default slack safe" `Quick test_default_slack_safe;
    Alcotest.test_case "extra slack safe" `Quick test_extra_slack_also_safe;
    Alcotest.test_case "cursor ranges" `Quick test_ranges;
  ]
