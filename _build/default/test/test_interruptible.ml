(* The Definition 3.1/3.2 validators reject malformed witnesses: negative
   tests complementing the positive ones in test_general_attack. *)

open Sim
open Consensus
open Lowerbound

let target = Flawed.unanimous ~style:Flawed.Rw ~r:2

let good_witness () =
  let m = General_attack.default_processes 2 in
  let inputs = List.init m (fun pid -> if pid < m / 2 then 0 else 1) in
  let config = Protocol.initial_config target ~inputs in
  let scratch = Builder.create ~config ~inputs in
  let result =
    Build_interruptible.construct scratch ~all_objects:[ 0; 1 ] ~vset:[]
      ~pset:(List.init (m / 2) Fun.id)
      ~uset:[ 0; 1 ] ~e:2
  in
  (config, result.Build_interruptible.witness)

let expect_error what witness config =
  match Interruptible.validate ~config witness with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "validator accepted %s" what

let test_accepts_good () =
  let config, w = good_witness () in
  match Interruptible.validate ~config w with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "rejected good witness: %s" msg

let test_rejects_empty () =
  let config, w = good_witness () in
  expect_error "no pieces" { w with Interruptible.pieces = [] } config

let test_rejects_wrong_initial_set () =
  let config, w = good_witness () in
  expect_error "wrong initial set"
    { w with Interruptible.init_set = [ 0 ] }
    config

let test_rejects_non_increasing () =
  let config, w = good_witness () in
  match w.Interruptible.pieces with
  | first :: _ :: _ ->
      (* duplicate the first piece: object sets no longer strictly grow *)
      expect_error "non-increasing sets"
        { w with Interruptible.pieces = [ first; first ] }
        config
  | _ -> Alcotest.fail "expected a multi-piece witness"

let test_rejects_wrong_decider () =
  let config, w = good_witness () in
  expect_error "wrong claimed decision"
    { w with Interruptible.decides = 1 - w.Interruptible.decides }
    config

let test_rejects_stepping_writer () =
  let config, w = good_witness () in
  match w.Interruptible.pieces with
  | first :: rest when first.Interruptible.bwriters = [] && rest <> [] ->
      (* inject a later block writer into the first piece's body *)
      let second = List.hd rest in
      (match second.Interruptible.bwriters with
      | (_, pid) :: _ ->
          let first' =
            {
              first with
              Interruptible.body =
                first.Interruptible.body
                @ [ { Interruptible.pid; coin = None } ];
            }
          in
          (* writer steps *before* its block write is fine; writer stepping
             in a *later* piece is what must be rejected — craft that *)
          let second' =
            {
              second with
              Interruptible.body =
                second.Interruptible.body
                @ [ { Interruptible.pid; coin = None } ];
            }
          in
          ignore first';
          expect_error "block writer stepping after its write"
            { w with Interruptible.pieces = first :: second' :: List.tl rest }
            config
      | [] -> Alcotest.fail "second piece has no writers")
  | _ -> Alcotest.fail "unexpected witness shape"

let test_participants () =
  let _, w = good_witness () in
  let ps = Interruptible.participants w in
  Alcotest.(check bool) "nonempty" true (ps <> []);
  Alcotest.(check bool) "decider participates" true
    (List.mem w.Interruptible.decider ps);
  Alcotest.(check bool) "sorted unique" true
    (List.sort_uniq compare ps = ps)

let test_replay_reaches_decision () =
  let config, w = good_witness () in
  let b =
    Builder.create ~config
      ~inputs:(List.init (Config.n_procs config) (fun _ -> 0))
  in
  Interruptible.replay b w;
  Alcotest.(check (option int)) "decider decided as claimed"
    (Some w.Interruptible.decides)
    (Config.decision (Builder.config b) w.Interruptible.decider)

let suite =
  [
    Alcotest.test_case "accepts good witness" `Quick test_accepts_good;
    Alcotest.test_case "rejects empty" `Quick test_rejects_empty;
    Alcotest.test_case "rejects wrong initial set" `Quick test_rejects_wrong_initial_set;
    Alcotest.test_case "rejects non-increasing sets" `Quick test_rejects_non_increasing;
    Alcotest.test_case "rejects wrong decision claim" `Quick test_rejects_wrong_decider;
    Alcotest.test_case "rejects stepping block writer" `Quick test_rejects_stepping_writer;
    Alcotest.test_case "participants" `Quick test_participants;
    Alcotest.test_case "replay reaches decision" `Quick test_replay_reaches_decision;
  ]
