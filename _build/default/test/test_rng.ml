open Sim

let test_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 13 in
    if x < 0 || x >= 13 then Alcotest.failf "out of range: %d" x
  done

let test_uniformity () =
  let rng = Rng.create 11 in
  let buckets = Array.make 10 0 in
  let reps = 100_000 in
  for _ = 1 to reps do
    let x = Rng.int rng 10 in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = reps / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d count %d far from %d" i c expected)
    buckets

let test_bool_balance () =
  let rng = Rng.create 3 in
  let trues = ref 0 in
  let reps = 50_000 in
  for _ = 1 to reps do
    if Rng.bool rng then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int reps in
  if ratio < 0.47 || ratio > 0.53 then
    Alcotest.failf "bool ratio %.3f not near 0.5" ratio

let test_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_shuffle_permutes () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 Fun.id in
  let orig = Array.copy arr in
  Rng.shuffle rng arr;
  Alcotest.(check bool) "same multiset" true
    (List.sort compare (Array.to_list arr) = Array.to_list orig);
  Alcotest.(check bool) "actually shuffled" true (arr <> orig)

let test_split_independent () =
  let rng = Rng.create 17 in
  let a = Rng.split rng and b = Rng.split rng in
  let xs = List.init 10 (fun _ -> Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let suite =
  [
    Alcotest.test_case "deterministic by seed" `Quick test_deterministic;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "int range" `Quick test_range;
    Alcotest.test_case "uniformity" `Quick test_uniformity;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "split independent" `Quick test_split_independent;
  ]
