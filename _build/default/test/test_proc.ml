open Sim
open Objects

(* drive a proc through a private little machine for testing combinators *)
let run_proc ?(coins = []) proc ~optypes =
  let config = Config.make ~optypes ~procs:[ proc ] in
  let rec go config coins steps =
    if steps > 10_000 then Alcotest.fail "proc did not terminate";
    match Config.decision config 0 with
    | Some v -> v
    | None ->
        let coin, coins =
          match (config.Config.procs.(0), coins) with
          | Proc.Choose _, c :: rest -> (c, rest)
          | Proc.Choose _, [] -> Alcotest.fail "ran out of coins"
          | _, coins -> (0, coins)
        in
        let config', _ = Run.step config ~pid:0 ~coin:(fun _ -> coin) in
        go config' coins (steps + 1)
  in
  go config coins 0

let regs n = List.init n (fun _ -> Register.optype ())

let test_bind_sequences () =
  let open Proc in
  let proc =
    let* _ = apply 0 (Register.write_int 4) in
    let* v = apply 0 Register.read in
    decide (Value.to_int v * 10)
  in
  Alcotest.(check int) "write then read" 40 (run_proc proc ~optypes:(regs 1))

let test_map () =
  let open Proc in
  let proc =
    let+ v = apply 0 Register.read in
    match v with Value.Opt None -> 99 | _ -> 0
  in
  Alcotest.(check int) "map over response" 99 (run_proc proc ~optypes:(regs 1))

let test_flip_and_choose () =
  let open Proc in
  let proc =
    let* heads = flip in
    let* k = choose 3 in
    decide ((if heads then 10 else 0) + k)
  in
  Alcotest.(check int) "coins consumed in order" 12
    (run_proc proc ~coins:[ 1; 2 ] ~optypes:[]);
  Alcotest.(check int) "tails" 1 (run_proc proc ~coins:[ 0; 1 ] ~optypes:[])

let test_choose_invalid () =
  match Proc.choose 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "choose 0 accepted"

let test_iter_map_list () =
  let open Proc in
  let proc =
    let* () =
      iter_list (fun i -> map (apply i (Register.write_int i)) ignore) [ 0; 1; 2 ]
    in
    let* vals = map_list (fun i -> apply i Register.read) [ 0; 1; 2 ] in
    decide (List.fold_left (fun acc v -> acc + Value.to_int v) 0 vals)
  in
  Alcotest.(check int) "iter+map over registers" 3 (run_proc proc ~optypes:(regs 3))

let test_for_ () =
  let open Proc in
  let proc =
    let* () = for_ 0 4 (fun i -> map (apply 0 (Register.write_int i)) ignore) in
    let* v = apply 0 Register.read in
    decide (Value.to_int v)
  in
  Alcotest.(check int) "for_ runs in order" 4 (run_proc proc ~optypes:(regs 1))

let test_repeat_until () =
  let open Proc in
  let proc =
    repeat_until
      (let* heads = flip in
       return (if heads then Some 7 else None))
  in
  Alcotest.(check int) "repeat until heads" 7
    (run_proc proc ~coins:[ 0; 0; 1 ] ~optypes:[])

let test_pending () =
  let open Proc in
  let p = apply 3 Register.read in
  (match Proc.pending p with
  | Some (3, op) -> Alcotest.(check string) "op name" "read" op.Op.name
  | _ -> Alcotest.fail "pending mismatch");
  Alcotest.(check bool) "decide has no pending" true (Proc.pending (decide 0) = None);
  Alcotest.(check bool) "flip has no pending" true (Proc.pending flip = None)

let test_decision () =
  Alcotest.(check (option int)) "decision of decide" (Some 5)
    (Proc.decision (Proc.decide 5));
  Alcotest.(check bool) "is_decided" true (Proc.is_decided (Proc.decide 5));
  Alcotest.(check bool) "apply not decided" false
    (Proc.is_decided (Proc.apply 0 Register.read))

let suite =
  [
    Alcotest.test_case "bind sequences" `Quick test_bind_sequences;
    Alcotest.test_case "map" `Quick test_map;
    Alcotest.test_case "flip and choose" `Quick test_flip_and_choose;
    Alcotest.test_case "choose rejects non-positive" `Quick test_choose_invalid;
    Alcotest.test_case "iter_list/map_list" `Quick test_iter_map_list;
    Alcotest.test_case "for_" `Quick test_for_;
    Alcotest.test_case "repeat_until" `Quick test_repeat_until;
    Alcotest.test_case "pending" `Quick test_pending;
    Alcotest.test_case "decision accessors" `Quick test_decision;
  ]
