open Sim

let test_consistent () =
  let v = Checker.check ~inputs:[ 0; 1 ] ~decisions:[ 1; 1; 1 ] in
  Alcotest.(check bool) "consistent" true v.Checker.consistent;
  Alcotest.(check bool) "valid" true v.Checker.valid;
  Alcotest.(check int) "count" 3 v.Checker.n_decided;
  Alcotest.(check bool) "ok" true (Checker.ok v)

let test_inconsistent () =
  let v = Checker.check ~inputs:[ 0; 1 ] ~decisions:[ 0; 1 ] in
  Alcotest.(check bool) "not consistent" false v.Checker.consistent;
  Alcotest.(check bool) "still valid" true v.Checker.valid;
  Alcotest.(check bool) "inconsistent detects" true
    (Checker.inconsistent ~decisions:[ 0; 1 ])

let test_invalid () =
  let v = Checker.check ~inputs:[ 1; 1 ] ~decisions:[ 0 ] in
  Alcotest.(check bool) "consistent" true v.Checker.consistent;
  Alcotest.(check bool) "invalid" false v.Checker.valid;
  Alcotest.(check bool) "not ok" false (Checker.ok v)

let test_empty_decisions () =
  let v = Checker.check ~inputs:[ 0; 1 ] ~decisions:[] in
  Alcotest.(check bool) "vacuously ok" true (Checker.ok v);
  Alcotest.(check bool) "not inconsistent" false (Checker.inconsistent ~decisions:[])

let test_of_trace () =
  let trace : int Trace.t =
    Trace.of_events
      [
        Event.Decided { pid = 0; value = 0 };
        Event.Decided { pid = 1; value = 1 };
      ]
  in
  let v = Checker.of_trace ~inputs:[ 0; 1 ] trace in
  Alcotest.(check bool) "trace inconsistency" false v.Checker.consistent

let suite =
  [
    Alcotest.test_case "consistent run" `Quick test_consistent;
    Alcotest.test_case "inconsistent run" `Quick test_inconsistent;
    Alcotest.test_case "invalid run" `Quick test_invalid;
    Alcotest.test_case "no decisions" `Quick test_empty_decisions;
    Alcotest.test_case "of_trace" `Quick test_of_trace;
  ]
