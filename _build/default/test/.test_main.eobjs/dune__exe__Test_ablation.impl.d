test/test_ablation.ml: Alcotest Checker Consensus Counter_consensus Protocol Sched Sim
