test/test_tournament.ml: Alcotest Checker Config Consensus List Lowerbound Op Protocol Rng Run Sched Sim Solo Tas_tournament Trace Value
