test/test_consensus.ml: Alcotest Cas_consensus Checker Config Consensus Counter_consensus Fa_consensus Fmt Gen List Protocol QCheck QCheck_alcotest Registry Rng Run Rw_consensus Sched Sim Swap2 Tas2
