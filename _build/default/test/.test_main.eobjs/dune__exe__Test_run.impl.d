test/test_run.ml: Alcotest Bool Config Gen List Objects Proc QCheck QCheck_alcotest Register Run Sched Sim Trace Value
