test/test_cross_validation.ml: Alcotest Array Attack Checker Consensus List Lowerbound Mc Objects Protocol Rng Sim
