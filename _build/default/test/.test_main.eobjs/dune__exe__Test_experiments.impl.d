test/test_experiments.ml: Alcotest Experiments List Objects Printf Stats String
