test/test_crash.ml: Alcotest Checker Config Consensus Counter_consensus Event Experiments Fa_consensus Gen List Protocol QCheck QCheck_alcotest Rng Run Rw_consensus Sched Sim Trace
