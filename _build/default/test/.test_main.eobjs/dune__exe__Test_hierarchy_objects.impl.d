test/test_hierarchy_objects.ml: Alcotest Checker Consensus List Mc Objclass Objects Optype Protocol Queue2 Queue_obj Rng Run Sched Sim Specs Sticky Sticky_consensus Value
