test/test_misc_units.ml: Alcotest Cas_consensus Consensus Fa_consensus List Lowerbound Objects Optype Protocol QCheck QCheck_alcotest Registry Sched Side Sim Tas2 Value Walk_core
