test/test_checker.ml: Alcotest Checker Event Sim Trace
