test/test_valency_more.ml: Alcotest Cas_consensus Consensus Mc Protocol Rw_consensus Tas2
