test/test_stats.ml: Alcotest Astring_contains List Stats String
