test/test_certify.ml: Alcotest Attack Builder Checker Consensus Flawed List Lowerbound Protocol Sim Trace
