test/test_mc.ml: Alcotest Cas_consensus Consensus Counter_consensus Fa_consensus Flawed List Mc Protocol Run Rw_consensus Sim String Swap2 Tas2 Trace
