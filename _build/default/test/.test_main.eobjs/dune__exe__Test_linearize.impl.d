test/test_linearize.ml: Alcotest History Linearize List Objects Objimpl Optype Printf Sim Value
