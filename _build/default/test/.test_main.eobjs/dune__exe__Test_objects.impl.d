test/test_objects.ml: Alcotest Bounded_counter Compare_swap Counter Fetch_add Fetch_dec Fetch_inc Objects Op Optype Register Rng Sim Swap_register Test_and_set Value
