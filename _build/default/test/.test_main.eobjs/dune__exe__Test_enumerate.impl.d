test/test_enumerate.ml: Alcotest Config Enumerate Explore List Mc Objects Proc Sim
