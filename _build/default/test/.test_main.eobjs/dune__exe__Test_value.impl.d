test/test_value.ml: Alcotest List Sim Value
