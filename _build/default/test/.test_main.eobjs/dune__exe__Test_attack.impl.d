test/test_attack.ml: Alcotest Attack Bounds Builder Checker Config Consensus Event Flawed List Lowerbound Op Protocol Sim Solo Tas2 Trace Triviality Value
