test/test_trace.ml: Alcotest Astring_contains Event List Op Sim Trace Value
