test/test_sched.ml: Alcotest Config List Objects Proc Register Run Sched Sim Trace
