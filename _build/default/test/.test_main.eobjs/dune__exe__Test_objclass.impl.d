test/test_objclass.ml: Alcotest Fetch_add List Objclass Objects Op Optype Printf Register Sim Specs Test_and_set Value
