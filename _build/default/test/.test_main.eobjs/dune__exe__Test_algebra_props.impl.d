test/test_algebra_props.ml: List Objclass Op Optype Printf QCheck QCheck_alcotest Sim String Value
