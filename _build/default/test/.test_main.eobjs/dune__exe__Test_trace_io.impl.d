test/test_trace_io.ml: Alcotest Consensus Event Filename List Lowerbound Op QCheck QCheck_alcotest Sim Sys Trace Trace_io Value
