test/test_objimpl.ml: Alcotest Counter Counters Fetch_add From_fa From_universal Harness History Implementation Linearize List Objects Objimpl Rng Sim Snapshot Test_and_set Value
