test/test_general_attack.ml: Alcotest Build_interruptible Builder Checker Config Consensus Flawed Fun General_attack Interruptible List Lowerbound Protocol Sim Trace
