test/test_proc.ml: Alcotest Array Config List Objects Op Proc Register Run Sim Value
