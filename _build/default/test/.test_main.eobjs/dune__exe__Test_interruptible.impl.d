test/test_interruptible.ml: Alcotest Build_interruptible Builder Config Consensus Flawed Fun General_attack Interruptible List Lowerbound Protocol Sim
