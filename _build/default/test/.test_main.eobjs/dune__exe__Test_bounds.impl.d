test/test_bounds.ml: Alcotest Bounds List Lowerbound Printf Transfer
