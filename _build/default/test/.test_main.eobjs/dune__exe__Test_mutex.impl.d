test/test_mutex.ml: Alcotest Event List Mutex Op Sim Trace
