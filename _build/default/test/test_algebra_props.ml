(* Property tests of the Section 2 object algebra over *random* object
   types: generate arbitrary transition tables over a small value domain
   and check that the classification predicates satisfy the algebra's
   meta-theorems.  These pin the implementation to the definitions rather
   than to the handful of concrete primitives. *)

open Sim

(* a random object type over values 0..k-1: each op is a random function
   table; the response is always the old value *)
let random_optype ~k ~n_ops tables =
  let values = List.init k Value.int in
  let ops =
    List.init n_ops (fun i -> Op.make (Printf.sprintf "op%d" i))
  in
  let step value (op : Op.t) =
    let idx =
      int_of_string (String.sub op.Op.name 2 (String.length op.Op.name - 2))
    in
    let table = List.nth tables idx in
    (Value.int (List.nth table (Value.to_int value)), value)
  in
  Optype.make ~name:"random" ~init:(Value.int 0) ~enum_values:values
    ~enum_ops:ops step

let gen_tables ~k ~n_ops =
  QCheck.Gen.(list_size (return n_ops) (list_size (return k) (int_bound (k - 1))))

let arb_tables ~k ~n_ops = QCheck.make (gen_tables ~k ~n_ops)

let k = 4
let n_ops = 3

let with_random_ot f tables =
  let ot = random_optype ~k ~n_ops tables in
  let _, ops = Objclass.Classify.domain ot in
  f ot ops

(* trivial operations commute with every operation *)
let prop_trivial_commutes =
  QCheck.Test.make ~name:"trivial ops commute with everything" ~count:100
    (arb_tables ~k ~n_ops)
    (with_random_ot (fun ot ops ->
         List.for_all
           (fun f ->
             (not (Objclass.Classify.is_trivial ot f))
             || List.for_all (fun g -> Objclass.Classify.commute ot f g) ops)
           ops))
  |> QCheck_alcotest.to_alcotest

(* trivial operations are overwritten by every operation *)
let prop_trivial_overwritten =
  QCheck.Test.make ~name:"everything overwrites a trivial op" ~count:100
    (arb_tables ~k ~n_ops)
    (with_random_ot (fun ot ops ->
         List.for_all
           (fun f ->
             (not (Objclass.Classify.is_trivial ot f))
             || List.for_all
                  (fun g -> Objclass.Classify.overwrites ot ~f:g ~f':f)
                  ops)
           ops))
  |> QCheck_alcotest.to_alcotest

(* f idempotent iff f overwrites itself (the Section 2 remark) *)
let prop_idempotent_self_overwrite =
  QCheck.Test.make ~name:"idempotent = self-overwriting" ~count:100
    (arb_tables ~k ~n_ops)
    (with_random_ot (fun ot ops ->
         List.for_all
           (fun f ->
             Objclass.Classify.is_idempotent ot f
             = Objclass.Classify.overwrites ot ~f ~f':f)
           ops))
  |> QCheck_alcotest.to_alcotest

(* commuting is symmetric *)
let prop_commute_symmetric =
  QCheck.Test.make ~name:"commute symmetric" ~count:100 (arb_tables ~k ~n_ops)
    (with_random_ot (fun ot ops ->
         List.for_all
           (fun f ->
             List.for_all
               (fun g ->
                 Objclass.Classify.commute ot f g
                 = Objclass.Classify.commute ot g f)
               ops)
           ops))
  |> QCheck_alcotest.to_alcotest

(* THE defining property: on a historyless type, the value after any
   nonempty sequence of nontrivial operations equals the value after just
   the last one *)
let prop_historyless_last_op_wins =
  QCheck.Test.make ~name:"historyless: value = last nontrivial op" ~count:200
    (QCheck.pair (arb_tables ~k ~n_ops)
       (QCheck.list_of_size QCheck.Gen.(1 -- 6) (QCheck.int_bound (n_ops - 1))))
    (fun (tables, op_idxs) ->
      let ot = random_optype ~k ~n_ops tables in
      let _, ops = Objclass.Classify.domain ot in
      QCheck.assume (Objclass.Classify.is_historyless ot);
      let nontrivial =
        List.filter (fun o -> not (Objclass.Classify.is_trivial ot o)) ops
      in
      QCheck.assume (nontrivial <> []);
      let seq =
        List.map
          (fun i -> List.nth nontrivial (i mod List.length nontrivial))
          op_idxs
      in
      let final =
        List.fold_left
          (fun v op -> fst (Optype.apply ot v op))
          ot.Optype.init seq
      in
      let last = List.nth seq (List.length seq - 1) in
      let direct = fst (Optype.apply ot ot.Optype.init last) in
      Value.equal final direct)
  |> QCheck_alcotest.to_alcotest

(* interfering sets are closed under the pairwise conditions, mechanically:
   if a type is interfering, every pair really commutes or mutually
   overwrites (re-checked directly against the transition function) *)
let prop_interfering_pairs =
  QCheck.Test.make ~name:"interfering: every pair commutes or overwrites"
    ~count:100 (arb_tables ~k ~n_ops)
    (with_random_ot (fun ot ops ->
         (not (Objclass.Classify.is_interfering ot))
         || List.for_all
              (fun f ->
                List.for_all
                  (fun g ->
                    Objclass.Classify.commute ot f g
                    || (Objclass.Classify.overwrites ot ~f ~f':g
                       && Objclass.Classify.overwrites ot ~f:g ~f':f))
                  ops)
              ops))
  |> QCheck_alcotest.to_alcotest

let suite =
  [
    prop_trivial_commutes;
    prop_trivial_overwritten;
    prop_idempotent_self_overwrite;
    prop_commute_symmetric;
    prop_historyless_last_op_wins;
    prop_interfering_pairs;
  ]
