open Sim

let check = Alcotest.(check bool)

let test_equal () =
  check "int eq" true (Value.equal (Value.int 3) (Value.int 3));
  check "int neq" false (Value.equal (Value.int 3) (Value.int 4));
  check "pair eq" true
    (Value.equal
       (Value.pair (Value.int 1) (Value.bool true))
       (Value.pair (Value.int 1) (Value.bool true)));
  check "opt eq" true (Value.equal Value.none (Value.Opt None));
  check "cross-type neq" false (Value.equal (Value.int 0) (Value.bool false))

let test_accessors () =
  Alcotest.(check int) "to_int" 7 (Value.to_int (Value.int 7));
  check "to_bool" true (Value.to_bool (Value.bool true));
  Alcotest.(check string) "to_sym" "x" (Value.to_sym (Value.sym "x"));
  (match Value.to_pair (Value.pair (Value.int 1) (Value.int 2)) with
  | Value.Int 1, Value.Int 2 -> ()
  | _ -> Alcotest.fail "to_pair");
  check "to_opt none" true (Value.to_opt Value.none = None)

let test_accessor_errors () =
  Alcotest.check_raises "to_int on bool"
    (Value.Type_error { expected = "Int"; got = Value.bool true })
    (fun () -> ignore (Value.to_int (Value.bool true)));
  Alcotest.check_raises "to_pair on unit"
    (Value.Type_error { expected = "Pair"; got = Value.unit })
    (fun () -> ignore (Value.to_pair Value.unit))

let test_to_string () =
  Alcotest.(check string) "int" "42" (Value.to_string (Value.int 42));
  Alcotest.(check string) "unit" "()" (Value.to_string Value.unit);
  Alcotest.(check string) "pair" "(1,true)"
    (Value.to_string (Value.pair (Value.int 1) (Value.bool true)));
  Alcotest.(check string) "none" "_" (Value.to_string Value.none);
  Alcotest.(check string) "some" "[7]"
    (Value.to_string (Value.some (Value.int 7)))

let test_compare_total () =
  (* compare is a total order consistent with equal *)
  let vs =
    [
      Value.unit;
      Value.bool false;
      Value.bool true;
      Value.int (-1);
      Value.int 5;
      Value.sym "a";
      Value.pair (Value.int 1) (Value.int 2);
      Value.none;
      Value.some (Value.int 1);
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c = Value.compare a b in
          check "eq iff compare 0" (Value.equal a b) (c = 0);
          check "antisym" true (Value.compare b a = -c))
        vs)
    vs

let suite =
  [
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "accessor errors" `Quick test_accessor_errors;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "compare total order" `Quick test_compare_total;
  ]
