(* Unit coverage for the smaller corners: Side, Optype helpers, Walk_core
   parameters, fetch&add field encoding (property), Protocol helpers and
   the registry. *)

open Sim
open Consensus
open Lowerbound

(* ---- Side ---- *)

let mk_side () =
  Side.make ~regs:[ 2; 0 ]
    ~writers:[ (0, 10); (2, 11) ]
    ~runner:10 ~coins:[ 1; 0 ] ~decides:0

let test_side_normalizes () =
  let s = mk_side () in
  Alcotest.(check (list int)) "regs sorted" [ 0; 2 ] s.Side.regs;
  Alcotest.(check int) "card" 2 (Side.card s);
  Alcotest.(check bool) "mem" true (Side.mem s 2);
  Alcotest.(check bool) "not mem" false (Side.mem s 1)

let test_side_subset () =
  let small = Side.make ~regs:[ 0 ] ~writers:[ (0, 1) ] ~runner:1 ~coins:[] ~decides:1 in
  let big = mk_side () in
  Alcotest.(check bool) "subset" true (Side.subset small big);
  Alcotest.(check bool) "not superset" false (Side.subset big small);
  Alcotest.(check bool) "reflexive" true (Side.subset big big)

let test_side_writers_outside () =
  let a = mk_side () in
  let b = Side.make ~regs:[ 0 ] ~writers:[ (0, 5) ] ~runner:5 ~coins:[] ~decides:1 in
  Alcotest.(check (list (pair int int))) "outside" [ (2, 11) ]
    (Side.writers_outside a ~other:b)

let test_side_rejects_malformed () =
  let bad () =
    Side.make ~regs:[ 0; 1 ] ~writers:[ (0, 1) ] ~runner:1 ~coins:[] ~decides:0
  in
  match bad () with
  | exception Assert_failure _ -> ()
  | _ -> Alcotest.fail "accepted writer/regs arity mismatch"

(* ---- Optype helpers ---- *)

let test_optype_with_init () =
  let reg = Objects.Register.optype () in
  let reg5 = Optype.with_init reg (Value.int 5) in
  Alcotest.(check bool) "init changed" true (Value.equal reg5.Optype.init (Value.int 5));
  Alcotest.(check string) "name kept" reg.Optype.name reg5.Optype.name

let test_optype_rename () =
  let reg = Optype.rename (Objects.Register.optype ()) "renamed" in
  Alcotest.(check string) "renamed" "renamed" reg.Optype.name

(* ---- Walk_core parameters ---- *)

let test_walk_parameters () =
  Alcotest.(check int) "barrier 3n" 24 (Walk_core.barrier ~n:8);
  Alcotest.(check int) "band n" 8 (Walk_core.band ~n:8);
  Alcotest.(check bool) "range covers barrier + slack" true
    (Walk_core.cursor_range ~n:8 > Walk_core.barrier ~n:8 + 8)

(* ---- fetch&add encoding roundtrip ---- *)

let prop_fa_encoding_roundtrip =
  QCheck.Test.make ~name:"f&a field encoding roundtrips" ~count:300
    QCheck.(
      quad (int_range 1 16) (int_range 0 16) (int_range 0 16) (int_range (-64) 64))
    (fun (n, v0, v1, c) ->
      QCheck.assume (v0 <= n && v1 <= n && abs c <= 4 * n);
      let x =
        Fa_consensus.init_value ~n + v0
        + (v1 * Fa_consensus.votes1_mul ~n)
        + (c * Fa_consensus.cursor_mul ~n)
      in
      Fa_consensus.decode ~n x = (v0, v1, c))
  |> QCheck_alcotest.to_alcotest

(* ---- Protocol helpers ---- *)

let test_run_many_and_mean () =
  let reports =
    Protocol.run_many Cas_consensus.protocol ~inputs:[ 0; 1 ]
      ~mk_sched:(fun seed -> Sched.random ~seed)
      ~seed:1 ~reps:5
  in
  Alcotest.(check int) "five reports" 5 (List.length reports);
  match Protocol.mean_steps reports with
  | Some m -> Alcotest.(check bool) "positive mean" true (m > 0.0)
  | None -> Alcotest.fail "no completed runs"

let test_registry () =
  Alcotest.(check bool) "finds cas" true (Registry.find "cas-1" <> None);
  Alcotest.(check bool) "unknown is None" true (Registry.find "nope" = None);
  (* names unique *)
  let names = List.map (fun (p : Protocol.t) -> p.Protocol.name) Registry.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_initial_config_validates_n () =
  match Protocol.initial_config Tas2.protocol ~inputs:[ 0; 1; 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted n=3 for a 2-process protocol"

(* ---- value compare transitivity (qcheck) ---- *)

let small_value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.unit;
        map Value.bool bool;
        map Value.int (int_bound 5);
        map (fun b -> Value.some (Value.bool b)) bool;
        map2 (fun a b -> Value.pair (Value.int a) (Value.int b)) (int_bound 3) (int_bound 3);
      ])

let prop_compare_transitive =
  QCheck.Test.make ~name:"Value.compare transitive" ~count:500
    (QCheck.make QCheck.Gen.(triple small_value_gen small_value_gen small_value_gen))
    (fun (a, b, c) ->
      let ( <= ) x y = Value.compare x y <= 0 in
      not (a <= b && b <= c) || a <= c)
  |> QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "side normalizes" `Quick test_side_normalizes;
    Alcotest.test_case "side subset" `Quick test_side_subset;
    Alcotest.test_case "side writers_outside" `Quick test_side_writers_outside;
    Alcotest.test_case "side rejects malformed" `Quick test_side_rejects_malformed;
    Alcotest.test_case "optype with_init" `Quick test_optype_with_init;
    Alcotest.test_case "optype rename" `Quick test_optype_rename;
    Alcotest.test_case "walk parameters" `Quick test_walk_parameters;
    prop_fa_encoding_roundtrip;
    Alcotest.test_case "run_many / mean_steps" `Quick test_run_many_and_mean;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "initial_config validates n" `Quick test_initial_config_validates_n;
    prop_compare_transitive;
  ]
