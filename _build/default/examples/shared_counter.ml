(* The shared counter as a randomized synchronization primitive: the
   random-walk shared coin (the cursor of Aspnes's Theorem 4.2 algorithm)
   and the full bounded-counter consensus built on it.

     dune exec examples/shared_counter.exe
*)

open Sim
open Objects
open Consensus

let () =
  print_endline "Part 1: the counter random walk as a weak shared coin";
  print_endline "(n flippers push one counter; absorption at +-(k*n))\n";
  List.iter
    (fun n ->
      let agree = ref 0 and flips_acc = ref 0 and runs = 30 in
      for seed = 1 to runs do
        let procs =
          List.init n (fun _ -> Shared_coin.counter_coin ~n ~obj:0 ~k:2)
        in
        let config = Config.make ~optypes:[ Counter.optype () ] ~procs in
        let result = Run.exec_fast ~max_steps:2_000_000 (Sched.random ~seed) config in
        let outputs = Config.decisions result.Run.config in
        flips_acc := !flips_acc + List.length (Trace.coins result.Run.trace);
        if List.length (List.sort_uniq compare outputs) = 1 then incr agree
      done;
      Printf.printf
        "  n=%2d: mean flips per run = %5d, all-agree in %d/%d runs\n" n
        (!flips_acc / runs) !agree runs)
    [ 2; 4; 8; 16 ];
  print_newline ();
  print_endline "Part 2: bounded-counter consensus (Theorem 4.2 shape)";
  print_endline "(two vote counters + one cursor counter, range linear in n)\n";
  List.iter
    (fun n ->
      let steps = ref [] in
      for seed = 1 to 20 do
        let rng = Rng.create (seed * 7) in
        let inputs = List.init n (fun _ -> Rng.int rng 2) in
        let report =
          Protocol.run_once Counter_consensus.protocol ~inputs
            ~sched:(Sched.contention ~seed)
        in
        assert (Checker.ok report.Protocol.verdict);
        steps := float_of_int report.Protocol.result.Run.steps :: !steps
      done;
      let s = Stats.Summary.of_list !steps in
      Printf.printf
        "  n=%2d: objects = %d, steps mean = %6.0f, p90 = %6.0f (20 seeds, all safe)\n"
        n
        (Protocol.space Counter_consensus.protocol ~n)
        s.Stats.Summary.mean s.Stats.Summary.p90)
    [ 2; 4; 8 ];
  print_newline ();
  print_endline
    "Every run is consistent and valid; the counter's bounded range\n\
     [-4n, 4n] is never exercised modulo (the +-3n barriers plus one\n\
     pending move per process of staleness keep the cursor inside)."
