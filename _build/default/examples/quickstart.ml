(* Quickstart: randomized n-process consensus from ONE fetch&add register
   (Theorem 4.4 of Fich-Herlihy-Shavit), end to end.

   Eight asynchronous processes with mixed 0/1 inputs run under an
   adversarial random scheduler; every run agrees on a single input value.

     dune exec examples/quickstart.exe
*)

open Sim
open Consensus

let () =
  let n = 8 in
  let inputs = [ 0; 1; 1; 0; 1; 0; 0; 1 ] in
  Printf.printf "consensus among %d processes, inputs = [%s]\n" n
    (String.concat ";" (List.map string_of_int inputs));
  Printf.printf "protocol: %s — objects used: %d\n\n"
    Fa_consensus.protocol.Protocol.name
    (Protocol.space Fa_consensus.protocol ~n);
  List.iter
    (fun seed ->
      let report =
        Protocol.run_once Fa_consensus.protocol ~inputs
          ~sched:(Sched.random ~seed)
      in
      let decisions = Config.decisions report.Protocol.result.Run.config in
      Printf.printf
        "seed %2d: %4d steps, decisions = [%s], consistent = %b, valid = %b\n"
        seed report.Protocol.result.Run.steps
        (String.concat ";" (List.map string_of_int decisions))
        report.Protocol.verdict.Checker.consistent
        report.Protocol.verdict.Checker.valid)
    (List.init 10 (fun i -> i + 1));
  print_newline ();
  (* peek inside one run: the last few events of the shared-memory trace *)
  let report =
    Protocol.run_once Fa_consensus.protocol ~inputs ~sched:(Sched.random ~seed:1)
  in
  let events = Trace.events report.Protocol.result.Run.trace in
  let tail =
    let n = List.length events in
    List.filteri (fun i _ -> i >= n - 12) events
  in
  print_endline "tail of the execution trace (single fetch&add register):";
  List.iter (fun ev -> print_endline ("  " ^ Event.to_string string_of_int ev)) tail
