examples/shared_counter.ml: Checker Config Consensus Counter Counter_consensus List Objects Printf Protocol Rng Run Sched Shared_coin Sim Stats Trace
