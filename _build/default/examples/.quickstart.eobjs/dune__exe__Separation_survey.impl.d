examples/separation_survey.ml: Experiments Stats
