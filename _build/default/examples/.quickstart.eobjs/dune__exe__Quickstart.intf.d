examples/quickstart.mli:
