examples/quickstart.ml: Checker Config Consensus Event Fa_consensus List Printf Protocol Run Sched Sim String Trace
