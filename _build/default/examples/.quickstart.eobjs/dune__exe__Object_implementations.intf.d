examples/object_implementations.mli:
