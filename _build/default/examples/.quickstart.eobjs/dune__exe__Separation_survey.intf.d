examples/separation_survey.mli:
