examples/shared_counter.mli:
