examples/model_checking.ml: Cas_consensus Consensus Event Flawed List Mc Printf Protocol Run Sim String Swap2 Tas2 Trace
