examples/object_implementations.ml: Counter Counters Fetch_add From_universal Harness History Linearize List Objects Objimpl Printf Test_and_set
