examples/adversary_attack.ml: Attack Bounds Checker Consensus Event Flawed Fmt List Lowerbound Printf Protocol Sched Sim Solo String Trace
