(* The separation results of Section 4, regenerated live: the randomized
   space classification of synchronization primitives differs from the
   deterministic wait-free hierarchy.

     dune exec examples/separation_survey.exe
*)

let () =
  print_endline "Object algebra (Section 2), decided exhaustively:";
  print_newline ();
  Stats.Table.print (Experiments.E7_classify.table ());
  print_newline ();
  print_endline
    "Separation (Section 4): deterministic consensus number vs randomized space:";
  print_newline ();
  Stats.Table.print (Experiments.E1_separation.table ~reps:10 ());
  print_newline ();
  print_endline "Space to solve randomized n-process consensus:";
  print_newline ();
  Stats.Table.print (Experiments.E4_space.table ());
  print_newline ();
  print_endline
    "Reading: fetch&add and compare&swap differ maximally in deterministic\n\
     power (consensus numbers 2 vs infinity) yet both solve randomized\n\
     consensus with ONE object; historyless types (register, swap, test&set)\n\
     need Omega(sqrt n) objects no matter how large their value sets are."
