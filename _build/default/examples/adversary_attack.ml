(* The paper's lower bound, live: a plausible-looking "consensus" protocol
   over two read-write registers satisfies nondeterministic solo
   termination and behaves well in most schedules — and the Lemma 3.2
   adversary mechanically constructs an execution in which one process
   decides 0 and another decides 1.

     dune exec examples/adversary_attack.exe
*)

open Sim
open Consensus
open Lowerbound

let target = Flawed.unanimous ~style:Flawed.Rw ~r:2

let () =
  Printf.printf "target: %s (identical processes, %d registers)\n\n"
    target.Protocol.name
    (Protocol.space target ~n:2);

  (* 1. it looks fine under friendly schedules *)
  print_endline "1. benign schedules: 20 random runs, all consistent:";
  let all_ok = ref true in
  for seed = 1 to 20 do
    let report =
      Protocol.run_once target ~inputs:[ 0; 1 ] ~sched:(Sched.round_robin ~seed ())
    in
    if not (Checker.ok report.Protocol.verdict) then all_ok := false
  done;
  Printf.printf "   all consistent: %b\n\n" !all_ok;

  (* 2. solo termination holds: each process alone decides its own input *)
  print_endline "2. nondeterministic solo termination: witnessed by search:";
  let config = Protocol.initial_config target ~inputs:[ 0; 1 ] in
  List.iter
    (fun pid ->
      match Solo.terminating config ~pid with
      | Some { decision = Some d; steps; _ } ->
          Printf.printf "   P%d solo decides %d in %d steps\n" pid d steps
      | _ -> Printf.printf "   P%d: no terminating solo execution?!\n" pid)
    [ 0; 1 ];
  print_newline ();

  (* 3. the Lemma 3.2 adversary breaks it *)
  print_endline "3. the Lemma 3.2 adversary (clones + block writes):";
  match Attack.run target with
  | Error e -> print_endline ("   attack failed: " ^ Attack.error_to_string e)
  | Ok o ->
      Printf.printf "   processes used: %d (paper threshold r^2-r+2 = %d)\n"
        o.Attack.processes_used
        (Bounds.identical_attack_threshold 2);
      Printf.printf "   inputs (with clones): [%s]\n"
        (String.concat ";" (List.map string_of_int o.Attack.inputs));
      print_endline "   the inconsistent execution:";
      List.iter
        (fun ev -> print_endline ("     " ^ Event.to_string string_of_int ev))
        (Trace.events o.Attack.trace);
      Printf.printf "   verdict: %s\n"
        (Fmt.str "%a" Checker.pp o.Attack.verdict);
      if Attack.succeeded o then
        print_endline "   => consistency violated, exactly as Theorem 3.3 predicts.";
      print_newline ();
      print_endline "4. certification: the same execution from a fresh start,";
      print_endline "   with every clone a genuine process shadowing its origin:";
      (match Attack.certify target o with
      | Ok (trace, verdict) ->
          Printf.printf "   certified %d-step replay, verdict: %s\n"
            (Trace.steps trace)
            (Fmt.str "%a" Checker.pp verdict)
      | Error msg -> Printf.printf "   certification failed: %s\n" msg)
