(* Exhaustive model checking of small consensus instances: verifying the
   deterministic 2-process protocols, refuting a textbook-broken register
   protocol with a concrete interleaving, and watching valency evolve.

     dune exec examples/model_checking.exe
*)

open Sim
open Consensus

let check name (p : Protocol.t) inputs =
  let config = Protocol.initial_config p ~inputs in
  let result = Mc.Explore.search ~max_depth:40 ~inputs config in
  Printf.printf "  %-12s inputs=[%s]: visited %5d states, %4d executions, %s\n"
    name
    (String.concat ";" (List.map string_of_int inputs))
    result.Mc.Explore.visited result.Mc.Explore.leaves
    (match result.Mc.Explore.violation with
    | None when not result.Mc.Explore.truncated -> "no violation (exhaustive)"
    | None -> "no violation (bounded)"
    | Some { kind = `Inconsistent; _ } -> "INCONSISTENT"
    | Some { kind = `Invalid; _ } -> "INVALID")

let () =
  print_endline "1. exhaustive verification of the 2-process protocols:";
  List.iter
    (fun inputs ->
      check "tas-2proc" Tas2.protocol inputs;
      check "swap-2proc" Swap2.protocol inputs;
      check "cas-1" Cas_consensus.protocol inputs)
    [ [ 0; 1 ]; [ 1; 1 ] ];
  print_newline ();

  print_endline "2. refuting the one-register 'first writer wins' protocol:";
  let p = Flawed.first_writer ~r:1 in
  let config = Protocol.initial_config p ~inputs:[ 0; 1 ] in
  (match Mc.Explore.search ~max_depth:40 ~inputs:[ 0; 1 ] config with
  | { Mc.Explore.violation = Some v; visited; _ } ->
      Printf.printf "  found after %d states; the interleaving:\n" visited;
      List.iter
        (fun ev -> print_endline ("    " ^ Event.to_string string_of_int ev))
        (Trace.events v.Mc.Explore.trace)
  | _ -> print_endline "  (unexpected: no violation)");
  print_newline ();

  print_endline "3. valency (FLP-style analysis) of cas-1 with inputs 0,1:";
  let config = Protocol.initial_config Cas_consensus.protocol ~inputs:[ 0; 1 ] in
  Printf.printf "  initial configuration: %s\n"
    (Mc.Valency.to_string string_of_int (Mc.Valency.classify config));
  List.iter
    (fun pid ->
      let config', _ = Run.step config ~pid ~coin:(fun _ -> 0) in
      Printf.printf "  after P%d's CAS:       %s\n" pid
        (Mc.Valency.to_string string_of_int (Mc.Valency.classify config')))
    [ 0; 1 ];
  print_newline ();
  print_endline
    "The critical step: whichever process CASes first drives the\n\
     configuration univalent — exactly the structure Herlihy's consensus-\n\
     number argument (and this paper's block-write machinery) exploits."
