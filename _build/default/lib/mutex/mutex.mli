(** Mutual exclusion — the classical discipline the paper positions
    wait-freedom against, and the home of the Burns–Lynch technique its
    Section 3 machinery descends from.  One-session protocols with the
    critical section bracketed by ENTER/LEAVE on an occupancy counter;
    safety is the invariant "occupancy <= 1", verified exhaustively (depth
    bounded) and re-checked on every step of random stress runs. *)

open Sim

type t = {
  name : string;
  optypes : n:int -> Optype.t list;
  code : n:int -> pid:int -> int Proc.t;
  cs_obj : int;  (** index of the occupancy counter *)
  registers : n:int -> int;  (** non-instrumentation objects used *)
}

val enter : Op.t
val leave : Op.t
val occupancy : int Config.t -> cs_obj:int -> int

type verdict =
  | Safe_to_depth of int
  | Violation of int Trace.t  (** an interleaving with two in the CS *)

(** Exhaustive depth-bounded search for a mutual-exclusion violation. *)
val check_exclusion : ?max_depth:int -> t -> n:int -> verdict

(** Random stress run; returns (max occupancy seen, all sessions done). *)
val stress : t -> n:int -> seed:int -> max_steps:int -> int * bool

(** Peterson's 2-process algorithm: 3 registers, safe. *)
val peterson : t

(** The textbook broken test-then-set lock: refuted by the checker. *)
val naive_flag : t

(** Swap-register spinlock: one historyless object, safe for any n. *)
val tas_lock : t

val all : t list
