(* Mutual exclusion — the classical discipline the paper's introduction
   positions wait-free synchronization *against*, and the source of its
   proof technique (the Burns-Lynch register lower bound for mutex is the
   acknowledged ancestor of Section 3's block-write machinery).

   A mutex protocol here is per-process code that runs: entry section ->
   critical section -> exit section -> done (one session, then the process
   decides a dummy value).  The critical section is bracketed by ENTER and
   LEAVE operations on a distinguished occupancy counter object; safety
   (mutual exclusion) is the invariant "occupancy <= 1 in every reachable
   configuration", which {!check_exclusion} verifies by exhaustive
   depth-bounded exploration, and which random stress runs re-check on
   every step. *)

open Sim
open Objects

type t = {
  name : string;
  optypes : n:int -> Optype.t list;
  code : n:int -> pid:int -> int Proc.t;
  cs_obj : int;  (** index of the occupancy counter *)
  registers : n:int -> int;  (** non-instrumentation objects used *)
}

(* the instrumentation object: a plain counter *)
let cs_optype = Counter.optype ()
let enter = Counter.inc
let leave = Counter.dec

let occupancy config ~cs_obj =
  Value.to_int config.Config.objects.(cs_obj)

type verdict =
  | Safe_to_depth of int  (** no reachable occupancy > 1 within the bound *)
  | Violation of int Trace.t  (** an interleaving with two in the CS *)

(** Exhaustive depth-bounded search for a mutual-exclusion violation. *)
let check_exclusion ?(max_depth = 24) (t : t) ~n =
  let config =
    Config.make ~optypes:(t.optypes ~n)
      ~procs:(List.init n (fun pid -> t.code ~n ~pid))
  in
  let found = ref None in
  let exception Stop in
  let rec go config rev_trace depth =
    if occupancy config ~cs_obj:t.cs_obj > 1 then begin
      found := Some (List.rev rev_trace);
      raise Stop
    end;
    if depth < max_depth then
      List.iter
        (fun pid ->
          List.iter
            (fun (config', events) ->
              go config' (List.rev_append events rev_trace) (depth + 1))
            (Mc.Explore.successors config pid))
        (Config.enabled_pids config)
  in
  (try go config [] 0 with Stop -> ());
  match !found with
  | Some trace -> Violation trace
  | None -> Safe_to_depth max_depth

(** Random stress run: every process performs its session under a seeded
    random scheduler; occupancy is checked after every step.  Returns
    (max occupancy seen, all sessions completed). *)
let stress (t : t) ~n ~seed ~max_steps =
  let config =
    Config.make ~optypes:(t.optypes ~n)
      ~procs:(List.init n (fun pid -> t.code ~n ~pid))
  in
  let rng = Rng.create seed in
  let config = ref config and steps = ref 0 and max_occ = ref 0 in
  let continue = ref true in
  while !continue do
    (match Config.enabled_pids !config with
    | [] -> continue := false
    | pids ->
        let pid = List.nth pids (Rng.int rng (List.length pids)) in
        let config', _ = Run.step !config ~pid ~coin:(fun k -> Rng.int rng k) in
        config := config';
        incr steps;
        max_occ := max !max_occ (occupancy !config ~cs_obj:t.cs_obj);
        if !steps >= max_steps then continue := false);
  done;
  (!max_occ, Config.all_decided !config)

(* ----------------------------------------------------------------- *)
(* Protocols.  Object 0 is always the occupancy counter.              *)

(* busy-wait on a register until [accept] holds for its value *)
let await obj accept =
  let open Proc in
  repeat_until
    (let* v = apply obj Register.read in
     return (if accept v then Some () else None))

let session ~cs_obj ~enter_code ~exit_code =
  let open Proc in
  let* () = enter_code in
  let* _ = apply cs_obj enter in
  (* the critical section itself: one step inside *)
  let* _ = apply cs_obj leave in
  let* () = exit_code in
  decide 0

(** Peterson's classic 2-process algorithm: two intent flags and a turn
    register.  Safe (and, on fair schedules, live); 3 registers. *)
let peterson : t =
  let flag pid = 1 + pid and turn = 3 in
  let code ~n:_ ~pid =
    let open Proc in
    let other = 1 - pid in
    let enter_code =
      let* _ = apply (flag pid) (Register.write_int 1) in
      let* _ = apply turn (Register.write_int other) in
      (* spin until the other is not interested or the turn is ours *)
      repeat_until
        (let* f = apply (flag other) Register.read in
         if not (Value.equal f (Value.int 1)) then return (Some ())
         else
           let* t = apply turn Register.read in
           return (if Value.equal t (Value.int pid) then Some () else None))
    in
    let exit_code =
      let* _ = apply (flag pid) (Register.write_int 0) in
      return ()
    in
    session ~cs_obj:0 ~enter_code ~exit_code
  in
  {
    name = "peterson-2";
    optypes =
      (fun ~n:_ ->
        [ cs_optype; Register.optype ~init:(Value.int 0) ();
          Register.optype ~init:(Value.int 0) ();
          Register.optype ~init:(Value.int 0) () ]);
    code;
    cs_obj = 0;
    registers = (fun ~n:_ -> 3);
  }

(** The textbook broken lock: test the flag, then set it — the race
    between test and set admits two processes in the CS. *)
let naive_flag : t =
  let flag = 1 in
  let code ~n:_ ~pid:_ =
    let open Proc in
    let enter_code =
      let* () = await flag (fun v -> not (Value.equal v (Value.int 1))) in
      let* _ = apply flag (Register.write_int 1) in
      return ()
    in
    let exit_code =
      let* _ = apply flag (Register.write_int 0) in
      return ()
    in
    session ~cs_obj:0 ~enter_code ~exit_code
  in
  {
    name = "naive-flag";
    optypes =
      (fun ~n:_ -> [ cs_optype; Register.optype ~init:(Value.int 0) () ]);
    code;
    cs_obj = 0;
    registers = (fun ~n:_ -> 1);
  }

(** Swap spinlock: safe for any n with ONE swap register — a historyless
    object buys with a single instance what Burns-Lynch says costs n
    registers.  (A test&set object would do for acquisition but cannot be
    reset; the swap register models the full acquire/release cycle.) *)
let tas_lock : t =
  let lock = 1 in
  let lock_obj = Swap_register.optype ~init:(Value.int 0) () in
  let code ~n:_ ~pid:_ =
    let open Proc in
    let enter_code =
      repeat_until
        (let* old = apply lock Swap_register.(swap (Value.int 1)) in
         return (if Value.equal old (Value.int 0) then Some () else None))
    in
    let exit_code =
      let* _ = apply lock (Swap_register.write (Value.int 0)) in
      return ()
    in
    session ~cs_obj:0 ~enter_code ~exit_code
  in
  {
    name = "swap-lock";
    optypes = (fun ~n:_ -> [ cs_optype; lock_obj ]);
    code;
    cs_obj = 0;
    registers = (fun ~n:_ -> 1);
  }

let all = [ peterson; naive_flag; tas_lock ]
