(** The atomic snapshot object from single-writer registers — the paper's
    own example of an algorithm with nondeterministic solo termination
    that is not wait-free.  Workloads must respect the single-writer
    discipline: process i updates only segment i. *)

open Sim

val update : seg:int -> Value.t -> Op.t
val scan : Op.t

(** Sequential spec: n segments, UPDATE(i,v) / SCAN. *)
val spec : n:int -> Optype.t

val base : n:int -> Optype.t list
val procedure : n:int -> pid:int -> Op.t -> Value.t Proc.t
val implementation : n:int -> Implementation.t
