(** Theorem 4.4's reduction, verbatim: a counter from a single fetch&add
    register (INC = F&A(+1), DEC = F&A(-1), READ = F&A(0)); plus the
    honest inc-only counter a fetch&inc register gives. *)

val spec : Sim.Optype.t
val counter_from_fetch_add : Implementation.t
val inc_only_spec : Sim.Optype.t
val inc_counter_from_fetch_inc : Implementation.t
