(* Counters from read-write registers — the implemented object behind
   Corollary 4.3: deterministic counter implementations from O(n)
   registers exist (Aspnes-Herlihy, Moran-Taubenfeld-Yadin), which is why
   counters cannot deterministically solve 2-process consensus, and yet
   one *bounded counter* solves randomized consensus; implementing a
   counter from historyless objects therefore costs Omega(sqrt n).

   Two register counters, sharing the layout "register i is written only
   by process i and holds Pair (net count, version)":

   - [collect]: READ sums a single collect.  Simple, wait-free — and NOT
     linearizable once increments and decrements mix: a collect can pair
     a pre-increment segment with a post-decrement one and return a value
     the counter never held.  The test suite exhibits the violating
     history and the checker rejects it.

   - [snapshot]: READ repeats the collect until two consecutive collects
     are identical (versions included).  A stable double collect is an
     atomic snapshot (nothing moved in between), so the sum linearizes at
     any point between the two collects.  Correct — but only
     solo-terminating, not wait-free: concurrent writers can starve the
     reader forever.  This is precisely the paper's Section 2 example of
     nondeterministic solo termination being strictly weaker than
     (randomized) wait-freedom. *)

open Sim
open Objects

let reg ~n:_ = Register.optype ~init:(Value.pair (Value.int 0) (Value.int 0)) ()

let base ~n = List.init n (fun _ -> reg ~n)

(* decode a register cell *)
let cell v =
  match v with
  | Value.Pair (Value.Int count, Value.Int version) -> (count, version)
  | _ -> (0, 0)

let bump ~pid ~delta : Value.t Proc.t =
  let open Proc in
  let* own = apply pid Register.read in
  let count, version = cell own in
  let* _ =
    apply pid
      (Register.write (Value.pair (Value.int (count + delta)) (Value.int (version + 1))))
  in
  return Value.unit

let collect_once ~n : (int * int list) Proc.t =
  let open Proc in
  let* cells = map_list (fun j -> apply j Register.read) (List.init n Fun.id) in
  let decoded = List.map cell cells in
  return
    ( List.fold_left (fun acc (c, _) -> acc + c) 0 decoded,
      List.map snd decoded )

(* the sequential spec both implementations claim: a counter without
   RESET (the implementations do not support it) *)
let spec =
  let step value (op : Op.t) =
    match op.Op.name with
    | "inc" -> (Value.int (Value.to_int value + 1), Value.unit)
    | "dec" -> (Value.int (Value.to_int value - 1), Value.unit)
    | "read" -> (value, value)
    | _ -> Optype.bad_op "counter(inc/dec/read)" op
  in
  Optype.make ~name:"counter(inc/dec/read)" ~init:(Value.int 0) step

let procedure_collect ~n ~pid (op : Op.t) : Value.t Proc.t =
  let open Proc in
  match op.Op.name with
  | "inc" -> bump ~pid ~delta:1
  | "dec" -> bump ~pid ~delta:(-1)
  | "read" ->
      let* sum, _ = collect_once ~n in
      return (Value.int sum)
  | _ -> Optype.bad_op "collect-counter" op

let procedure_snapshot ~n ~pid (op : Op.t) : Value.t Proc.t =
  let open Proc in
  match op.Op.name with
  | "inc" -> bump ~pid ~delta:1
  | "dec" -> bump ~pid ~delta:(-1)
  | "read" ->
      let rec stabilize previous =
        let* sum, versions = collect_once ~n in
        match previous with
        | Some (prev_sum, prev_versions)
          when prev_versions = versions && prev_sum = sum ->
            return (Value.int sum)
        | _ -> stabilize (Some (sum, versions))
      in
      stabilize None
  | _ -> Optype.bad_op "snapshot-counter" op

let collect =
  Implementation.make ~name:"collect-counter" ~spec ~base
    ~procedure:(fun ~n ~pid op -> procedure_collect ~n ~pid op)
    ~progress:Implementation.Wait_free

let snapshot =
  Implementation.make ~name:"snapshot-counter" ~spec ~base
    ~procedure:(fun ~n ~pid op -> procedure_snapshot ~n ~pid op)
    ~progress:Implementation.Solo_terminating
