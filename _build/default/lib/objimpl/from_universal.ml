(* Implementations out of stronger primitives:

   - a fetch&add register from ONE compare&swap register (lock-free CAS
     retry loop) — deterministically possible because compare&swap is
     universal; contrast with Corollary 4.5: from *historyless* objects
     the same target costs Omega(sqrt n) instances even randomized;
   - a test&set register from ONE swap register — the two types sit at
     the same consensus level (2), and here the implementation is a
     single wait-free operation. *)

open Sim
open Objects

let fa_spec =
  Optype.rename (Fetch_add.optype ()) "fetch&add(spec)"

let fetch_add_from_cas =
  let procedure ~n:_ ~pid:_ (op : Op.t) : Value.t Proc.t =
    let open Proc in
    match op.Op.name with
    | "read" -> apply 0 Compare_swap.read
    | "fetch&add" ->
        let k = Value.to_int op.Op.arg in
        let rec retry () =
          let* current = apply 0 Compare_swap.read in
          let desired = Value.int (Value.to_int current + k) in
          let* old = apply 0 (Compare_swap.cas ~expected:current ~desired) in
          if Value.equal old current then return current else retry ()
        in
        retry ()
    | _ -> Optype.bad_op "fa-from-cas" op
  in
  Implementation.make ~name:"fetch&add-from-cas" ~spec:fa_spec
    ~base:(fun ~n:_ -> [ Compare_swap.optype ~init:(Value.int 0) () ])
    ~procedure ~progress:Implementation.Lock_free

let tas_spec = Optype.rename (Test_and_set.optype ()) "test&set(spec)"

let test_and_set_from_swap =
  let procedure ~n:_ ~pid:_ (op : Op.t) : Value.t Proc.t =
    let open Proc in
    match op.Op.name with
    | "read" -> apply 0 Swap_register.read
    | "test&set" -> apply 0 (Swap_register.swap (Value.int 1))
    | _ -> Optype.bad_op "tas-from-swap" op
  in
  Implementation.make ~name:"test&set-from-swap" ~spec:tas_spec
    ~base:(fun ~n:_ -> [ Swap_register.optype ~init:(Value.int 0) () ])
    ~procedure ~progress:Implementation.Wait_free
