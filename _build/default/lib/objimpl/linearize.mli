(** A Wing–Gong-style linearizability checker: is a complete concurrent
    history explainable by a sequential specification, respecting
    real-time order? *)

open Sim

type verdict =
  | Linearizable of History.call list  (** a witness linearization *)
  | Not_linearizable
  | Unknown  (** node budget exhausted *)

(** Checks the {e complete} calls of the history against [spec]. *)
val check : ?max_nodes:int -> Optype.t -> History.t -> verdict

val is_linearizable : ?max_nodes:int -> Optype.t -> History.t -> bool
