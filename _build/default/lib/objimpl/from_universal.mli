(** Implementations out of stronger primitives: fetch&add from one
    compare&swap register (lock-free), test&set from one swap register
    (wait-free) — the deterministic counterpoint to Corollaries 4.1/4.5. *)

val fa_spec : Sim.Optype.t
val fetch_add_from_cas : Implementation.t
val tas_spec : Sim.Optype.t
val test_and_set_from_swap : Implementation.t
