lib/objimpl/linearize.mli: History Optype Sim
