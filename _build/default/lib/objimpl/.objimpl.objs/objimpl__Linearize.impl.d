lib/objimpl/linearize.ml: History List Optype Sim Value
