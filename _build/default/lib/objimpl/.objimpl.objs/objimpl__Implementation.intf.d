lib/objimpl/implementation.mli: Op Optype Proc Sim Value
