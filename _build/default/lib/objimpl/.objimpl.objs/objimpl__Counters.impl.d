lib/objimpl/counters.ml: Fun Implementation List Objects Op Optype Proc Register Sim Value
