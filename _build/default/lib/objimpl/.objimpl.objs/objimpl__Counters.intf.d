lib/objimpl/counters.mli: Implementation Optype Sim
