lib/objimpl/history.ml: Fmt Hashtbl List Op Sim Value
