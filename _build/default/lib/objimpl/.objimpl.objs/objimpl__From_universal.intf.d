lib/objimpl/from_universal.mli: Implementation Sim
