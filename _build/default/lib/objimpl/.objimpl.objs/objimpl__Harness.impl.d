lib/objimpl/harness.ml: Array Fun History Implementation Linearize List Op Optype Proc Rng Sim Value
