lib/objimpl/history.mli: Format Op Sim Value
