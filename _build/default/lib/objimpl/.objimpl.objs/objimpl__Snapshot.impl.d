lib/objimpl/snapshot.ml: Fun Implementation List Objects Op Optype Proc Register Sim Value
