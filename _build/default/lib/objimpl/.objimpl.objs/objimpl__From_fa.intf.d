lib/objimpl/from_fa.mli: Implementation Sim
