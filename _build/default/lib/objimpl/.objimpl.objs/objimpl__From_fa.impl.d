lib/objimpl/from_fa.ml: Counters Fetch_add Fetch_inc Implementation Objects Op Optype Proc Sim Value
