lib/objimpl/implementation.ml: List Op Optype Proc Sim Value
