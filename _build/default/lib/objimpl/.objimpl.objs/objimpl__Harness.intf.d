lib/objimpl/harness.mli: History Implementation Linearize Op Sim
