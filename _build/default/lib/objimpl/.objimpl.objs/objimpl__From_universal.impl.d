lib/objimpl/from_universal.ml: Compare_swap Fetch_add Implementation Objects Op Optype Proc Sim Swap_register Test_and_set Value
