lib/objimpl/snapshot.mli: Implementation Op Optype Proc Sim Value
