(* Theorem 4.4's supporting observation, verbatim: "a single instance of
   any of these objects [fetch&add, fetch&inc, fetch&dec] can be easily
   used to implement a counter."

   Here is that implementation for fetch&add: INC is FETCH&ADD(+1), DEC is
   FETCH&ADD(-1), READ is FETCH&ADD(0) — one base object, wait-free, one
   base operation per counter operation, trivially linearizable (each
   counter operation IS one atomic base step).  The harness + checker
   confirm it mechanically, closing the loop on the theorem's reduction:
   one fetch&add register -> counter -> (with Aspnes's algorithm)
   randomized consensus. *)

open Sim
open Objects

let spec = Counters.spec  (* inc / dec / read *)

let procedure ~n:_ ~pid:_ (op : Op.t) : Value.t Proc.t =
  let open Proc in
  match op.Op.name with
  | "inc" ->
      let* _ = apply 0 (Fetch_add.fetch_add 1) in
      return Value.unit
  | "dec" ->
      let* _ = apply 0 (Fetch_add.fetch_add (-1)) in
      return Value.unit
  | "read" -> apply 0 (Fetch_add.fetch_add 0)
  | _ -> Optype.bad_op "counter-from-fa" op

let counter_from_fetch_add =
  Implementation.make ~name:"counter-from-fetch&add" ~spec
    ~base:(fun ~n:_ -> [ Fetch_add.optype () ])
    ~procedure ~progress:Implementation.Wait_free

(* The fetch&inc analogue can implement the monotone fragment (inc/read is
   not directly possible without perturbing: READ via FETCH&INC would
   count; the paper's "easily" glosses over this — see DESIGN.md).  We
   implement the inc-only counter it honestly gives. *)

let inc_only_spec =
  let step value (op : Op.t) =
    match op.Op.name with
    | "inc" -> (Value.int (Value.to_int value + 1), Value.unit)
    | _ -> Optype.bad_op "inc-counter(spec)" op
  in
  Optype.make ~name:"inc-counter(spec)" ~init:(Value.int 0) step

let inc_counter_from_fetch_inc =
  let procedure ~n:_ ~pid:_ (op : Op.t) : Value.t Proc.t =
    let open Proc in
    match op.Op.name with
    | "inc" ->
        let* _ = apply 0 Fetch_inc.fetch_inc in
        return Value.unit
    | _ -> Optype.bad_op "inc-counter-from-f&i" op
  in
  Implementation.make ~name:"inc-counter-from-fetch&inc" ~spec:inc_only_spec
    ~base:(fun ~n:_ -> [ Fetch_inc.optype () ])
    ~procedure ~progress:Implementation.Wait_free
