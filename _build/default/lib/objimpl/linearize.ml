(* A linearizability checker in the Wing-Gong style: a complete concurrent
   history is linearizable w.r.t. a sequential specification (an
   [Sim.Optype.t]) iff the calls can be ordered into a legal sequential
   execution that respects real-time precedence.

   Search: repeatedly pick a minimal unlinearized call (no other
   unlinearized call's response precedes its invocation), apply its
   operation to the current specification state; accept the branch if the
   recorded response matches; backtrack otherwise.  Exponential in the
   worst case, fine for the harness's history sizes; a node budget turns
   pathological instances into an explicit [Unknown]. *)

open Sim

type verdict =
  | Linearizable of History.call list  (** a witness order *)
  | Not_linearizable
  | Unknown  (** node budget exhausted *)

let check ?(max_nodes = 2_000_000) (spec : Optype.t) (history : History.t) =
  let calls = History.complete_calls history in
  let nodes = ref 0 in
  let exception Budget in
  (* candidates among [pending] that can be linearized next *)
  let minimal pending =
    List.filter
      (fun c ->
        not (List.exists (fun d -> d.History.id <> c.History.id && History.precedes d c) pending))
      pending
  in
  let rec go state pending acc =
    incr nodes;
    if !nodes > max_nodes then raise Budget;
    match pending with
    | [] -> Some (List.rev acc)
    | _ ->
        let rec try_candidates = function
          | [] -> None
          | c :: rest -> (
              let state', resp = Optype.apply spec state c.History.op in
              let matches =
                match c.History.response with
                | Some r -> Value.equal r resp
                | None -> false
              in
              if not matches then try_candidates rest
              else
                let pending' =
                  List.filter (fun d -> d.History.id <> c.History.id) pending
                in
                match go state' pending' (c :: acc) with
                | Some _ as found -> found
                | None -> try_candidates rest)
        in
        try_candidates (minimal pending)
  in
  match go spec.Optype.init calls [] with
  | Some order -> Linearizable order
  | None -> Not_linearizable
  | exception Budget -> Unknown

let is_linearizable ?max_nodes spec history =
  match check ?max_nodes spec history with
  | Linearizable _ -> true
  | Not_linearizable | Unknown -> false
