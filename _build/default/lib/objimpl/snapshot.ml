(* The atomic snapshot object from single-writer registers — the paper's
   own Section 2 example: "the simple snapshot algorithm following
   Observation 1 in [3] is not (randomized) wait-free, but satisfies the
   nondeterministic solo termination property."

   Sequential spec: n segments.  UPDATE(i, v) installs v into segment i
   (callable by process i); SCAN returns all segments atomically.

   Implementation: register i holds Pair (value_i, version_i), written
   only by process i — workloads must respect the single-writer
   discipline (process i updates only segment i), as in [3].  UPDATE
   writes value and bumped version.  SCAN
   collects repeatedly until two consecutive collects agree on every
   version; the stable double collect happened with no interleaved
   update, so it is an atomic snapshot.  A solo SCAN needs exactly two
   collects; under concurrent updates it can retry forever. *)

open Sim
open Objects

let update ~seg v = Op.make "update" ~arg:(Value.pair (Value.int seg) v)
let scan = Op.make "scan"

let spec ~n =
  let step value (op : Op.t) =
    match op.Op.name with
    | "scan" -> (value, value)
    | "update" ->
        let seg, v = Value.to_pair op.Op.arg in
        let seg = Value.to_int seg in
        let segments = Value.to_list value in
        let segments' = List.mapi (fun i x -> if i = seg then v else x) segments in
        (Value.list segments', Value.unit)
    | _ -> Optype.bad_op "snapshot(spec)" op
  in
  Optype.make ~name:"snapshot(spec)"
    ~init:(Value.list (List.init n (fun _ -> Value.none)))
    step

let base ~n =
  List.init n (fun _ ->
      Register.optype ~init:(Value.pair Value.none (Value.int 0)) ())

let cell v =
  match v with
  | Value.Pair (x, Value.Int version) -> (x, version)
  | _ -> (Value.none, 0)

let procedure ~n ~pid:_ (op : Op.t) : Value.t Proc.t =
  let open Proc in
  match op.Op.name with
  | "update" ->
      let seg, v = Value.to_pair op.Op.arg in
      let seg = Value.to_int seg in
      let* own = apply seg Register.read in
      let _, version = cell own in
      let* _ =
        apply seg (Register.write (Value.pair v (Value.int (version + 1))))
      in
      return Value.unit
  | "scan" ->
      let collect () =
        map_list (fun j -> apply j Register.read) (List.init n Fun.id)
      in
      let rec stabilize prev_versions =
        let* cells = collect () in
        let decoded = List.map cell cells in
        let versions = List.map snd decoded in
        if prev_versions = Some versions then
          return (Value.list (List.map fst decoded))
        else stabilize (Some versions)
      in
      stabilize None
  | _ -> Optype.bad_op "snapshot-impl" op

let implementation ~n =
  Implementation.make ~name:"snapshot-from-registers" ~spec:(spec ~n) ~base
    ~procedure ~progress:Implementation.Solo_terminating
