(** Counters from single-writer read-write registers (the object of
    Corollary 4.3): the single-collect reader [collect] is wait-free but
    {e not} linearizable once increments and decrements mix; the
    double-collect reader [snapshot] is linearizable but only
    solo-terminating — the paper's Section 2 example of solo termination
    being strictly weaker than wait-freedom. *)

open Sim

(** The implemented sequential spec: a counter with inc/dec/read. *)
val spec : Optype.t

val base : n:int -> Optype.t list
val collect : Implementation.t
val snapshot : Implementation.t
