lib/objclass/hierarchy.ml: List
