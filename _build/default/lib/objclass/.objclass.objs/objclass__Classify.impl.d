lib/objclass/classify.ml: Fmt List Optype Sim Value
