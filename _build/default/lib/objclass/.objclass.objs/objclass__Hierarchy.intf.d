lib/objclass/hierarchy.mli:
