lib/objclass/classify.mli: Format Op Optype Sim Value
