(** The object-type algebra of Section 2, decided by exhaustive checking
    over finite specs ([enum_values]/[enum_ops] of {!Sim.Optype.t}). *)

open Sim

(** Raised when a spec lacks finite enumerations. *)
exception Not_finite of string

(** The (values, ops) enumerations; raises {!Not_finite}. *)
val domain : Optype.t -> Value.t list * Op.t list

(** Trivial: never changes the value. *)
val is_trivial : Optype.t -> Op.t -> bool

(** Commute: application order never affects the resulting value. *)
val commute : Optype.t -> Op.t -> Op.t -> bool

(** [overwrites ot ~f ~f']: f (f' x) = f x for all values x. *)
val overwrites : Optype.t -> f:Op.t -> f':Op.t -> bool

val nontrivial_ops : Optype.t -> Op.t list

(** Historyless: every nontrivial op overwrites every nontrivial op
    (including itself); the value depends only on the last nontrivial
    operation. *)
val is_historyless : Optype.t -> bool

(** Interfering (full op set): every pair commutes or mutually
    overwrites. *)
val is_interfering : Optype.t -> bool

(** Idempotent operations overwrite themselves (Section 2 remark). *)
val is_idempotent : Optype.t -> Op.t -> bool

type report = {
  optype : string;
  n_values : int;
  n_ops : int;
  n_trivial : int;
  historyless : bool;
  interfering : bool;
}

val report : Optype.t -> report
val pp_report : Format.formatter -> report -> unit
