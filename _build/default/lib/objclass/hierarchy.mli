(** The two classifications the paper contrasts: the deterministic
    wait-free hierarchy (Herlihy) and the randomized space classification
    this paper proposes.  The table records the claims; experiment E1
    validates the upper bounds against running protocols. *)

type consensus_number = Finite of int | Infinite

type space_bound = {
  upper : string;  (** objects sufficient for randomized n-consensus *)
  lower : string;  (** objects necessary *)
}

type entry = {
  name : string;
  historyless : bool;
  consensus_number : consensus_number;
  randomized_space : space_bound;
  source : string;
}

val entries : entry list
val find : string -> entry option
val consensus_number_to_string : consensus_number -> string
