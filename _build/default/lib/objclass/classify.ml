(* The object-type algebra of Section 2, decided by exhaustive checking over
   finite specs:

   - an operation is *trivial* if applying it never changes the value;
   - two operations *commute* if the order of application never affects the
     resulting value;
   - [f] *overwrites* [f'] if performing f' then f always yields the same
     value as performing just f (f(f'(x)) = f(x) for all x);
   - a type is *historyless* if all its nontrivial operations overwrite one
     another (so its value depends only on the last nontrivial operation);
   - a set of operations is *interfering* if every pair either commutes or
     (mutually) overwrites.

   All predicates require the spec to carry [enum_values] and [enum_ops];
   they raise [Not_finite] otherwise. *)

open Sim

exception Not_finite of string

let domain (ot : Optype.t) =
  match (ot.enum_values, ot.enum_ops) with
  | Some values, Some ops -> (values, ops)
  | _ -> raise (Not_finite ot.name)

let next (ot : Optype.t) v op = fst (Optype.apply ot v op)

let is_trivial (ot : Optype.t) op =
  let values, _ = domain ot in
  List.for_all (fun v -> Value.equal (next ot v op) v) values

let commute (ot : Optype.t) f g =
  let values, _ = domain ot in
  List.for_all
    (fun v -> Value.equal (next ot (next ot v f) g) (next ot (next ot v g) f))
    values

let overwrites (ot : Optype.t) ~f ~f' =
  let values, _ = domain ot in
  List.for_all
    (fun v -> Value.equal (next ot (next ot v f') f) (next ot v f))
    values

let nontrivial_ops (ot : Optype.t) =
  let _, ops = domain ot in
  List.filter (fun op -> not (is_trivial ot op)) ops

(** Historyless: every nontrivial op overwrites every nontrivial op
    (including itself). *)
let is_historyless (ot : Optype.t) =
  let nt = nontrivial_ops ot in
  List.for_all
    (fun f -> List.for_all (fun f' -> overwrites ot ~f ~f') nt)
    nt

(** Interfering (for the full op set of the type): every pair of operations
    commutes or mutually overwrites. *)
let is_interfering (ot : Optype.t) =
  let _, ops = domain ot in
  List.for_all
    (fun f ->
      List.for_all
        (fun g ->
          commute ot f g
          || (overwrites ot ~f ~f':g && overwrites ot ~f:g ~f':f))
        ops)
    ops

(** [idempotent op]: applying op twice is the same as once; an idempotent
    operation overwrites itself (remark in Section 2). *)
let is_idempotent (ot : Optype.t) op = overwrites ot ~f:op ~f':op

type report = {
  optype : string;
  n_values : int;
  n_ops : int;
  n_trivial : int;
  historyless : bool;
  interfering : bool;
}

let report (ot : Optype.t) =
  let values, ops = domain ot in
  {
    optype = ot.name;
    n_values = List.length values;
    n_ops = List.length ops;
    n_trivial = List.length ops - List.length (nontrivial_ops ot);
    historyless = is_historyless ot;
    interfering = is_interfering ot;
  }

let pp_report ppf r =
  Fmt.pf ppf "%-18s |V|=%-3d |ops|=%-3d trivial=%-2d historyless=%-5b interfering=%b"
    r.optype r.n_values r.n_ops r.n_trivial r.historyless r.interfering
