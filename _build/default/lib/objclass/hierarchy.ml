(* The two classifications the paper contrasts:

   - the deterministic wait-free hierarchy (Herlihy 1991): the largest n for
     which the type solves deterministic wait-free n-process consensus
     (together with read-write registers);
   - the randomized space classification this paper proposes: how many
     instances are needed to solve randomized n-process consensus.

   The table records the *claims*; the experiment harness (E1) validates the
   upper bounds by running our protocol implementations and cross-checks
   n=2,3 rows with the model checker. *)

type consensus_number = Finite of int | Infinite

type space_bound = {
  upper : string;  (** objects sufficient for randomized n-consensus *)
  lower : string;  (** objects necessary *)
}

type entry = {
  name : string;
  historyless : bool;
  consensus_number : consensus_number;
  randomized_space : space_bound;
  source : string;
}

let entries =
  [
    {
      name = "register";
      historyless = true;
      consensus_number = Finite 1;
      randomized_space = { upper = "O(n)"; lower = "Omega(sqrt n)" };
      source = "Aspnes-Herlihy 90 (upper); this paper Thm 3.7 (lower)";
    };
    {
      name = "swap-register";
      historyless = true;
      consensus_number = Finite 2;
      randomized_space = { upper = "O(n)"; lower = "Omega(sqrt n)" };
      source = "Herlihy 91 (CN); this paper Thm 3.7 (lower)";
    };
    {
      name = "test&set";
      historyless = true;
      consensus_number = Finite 2;
      randomized_space = { upper = "O(n)"; lower = "Omega(sqrt n)" };
      source = "Herlihy 91 (CN); this paper Thm 3.7 (lower)";
    };
    {
      name = "fetch&add";
      historyless = false;
      consensus_number = Finite 2;
      randomized_space = { upper = "1"; lower = "1" };
      source = "this paper Thm 4.4";
    };
    {
      name = "fetch&inc";
      historyless = false;
      consensus_number = Finite 2;
      randomized_space = { upper = "1"; lower = "1" };
      source = "this paper Thm 4.4";
    };
    {
      name = "counter";
      historyless = false;
      consensus_number = Finite 1;
      randomized_space = { upper = "1 (bounded)"; lower = "1" };
      source = "Aspnes 90, Thm 4.2";
    };
    {
      name = "compare&swap";
      historyless = false;
      consensus_number = Infinite;
      randomized_space = { upper = "1 (bounded)"; lower = "1" };
      source = "Herlihy 91 Thm 5, Cor 4.1";
    };
    {
      name = "queue";
      historyless = false;
      consensus_number = Finite 2;
      randomized_space = { upper = "O(n) (via registers)"; lower = "1?" };
      source = "Herlihy 91 (CN 2)";
    };
    {
      name = "sticky";
      historyless = false;
      consensus_number = Infinite;
      randomized_space = { upper = "1"; lower = "1" };
      source = "Plotkin; Herlihy 91";
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) entries

let consensus_number_to_string = function
  | Finite n -> string_of_int n
  | Infinite -> "inf"
