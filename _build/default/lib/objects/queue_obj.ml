(* A FIFO queue — the classic consensus-number-2 object of the wait-free
   hierarchy (Herlihy [20], which the paper's separation results are set
   against).  ENQ(v) appends, DEQ removes and responds with the head (or
   the empty marker).  Neither historyless nor interfering: two ENQs
   neither commute nor overwrite. *)

open Sim

let enq v = Op.make "enq" ~arg:v
let deq = Op.make "deq"
let read = Op.make "read"

let empty_marker = Value.none

let step value (op : Op.t) =
  let items = Value.to_list value in
  match op.Op.name with
  | "enq" -> (Value.list (items @ [ op.Op.arg ]), Value.unit)
  | "deq" -> (
      match items with
      | [] -> (value, empty_marker)
      | head :: rest -> (Value.list rest, head))
  | "read" -> (value, value)
  | _ -> Optype.bad_op "queue" op

let optype ?(init = []) () =
  Optype.make ~name:"queue" ~init:(Value.list init) step

(** Finite spec: queues over item set [items] with capacity [cap]; ENQ on
    a full queue is a no-op (keeps the domain closed). *)
let finite ?(cap = 2) ~items () =
  let step value (op : Op.t) =
    let current = Value.to_list value in
    match op.Op.name with
    | "enq" ->
        if List.length current >= cap then (value, Value.unit)
        else (Value.list (current @ [ op.Op.arg ]), Value.unit)
    | "deq" -> (
        match current with
        | [] -> (value, empty_marker)
        | head :: rest -> (Value.list rest, head))
    | "read" -> (value, value)
    | _ -> Optype.bad_op "queue[fin]" op
  in
  let rec values_of_len len =
    if len = 0 then [ [] ]
    else
      List.concat_map
        (fun shorter -> List.map (fun item -> item :: shorter) items)
        (values_of_len (len - 1))
  in
  let all_values =
    List.concat_map values_of_len (List.init (cap + 1) Fun.id)
    |> List.map Value.list
  in
  Optype.make ~name:"queue" ~init:(Value.list [])
    ~enum_values:all_values
    ~enum_ops:((read :: deq :: []) @ List.map enq items)
    step
