(* Finite-domain specs of every object type, for exhaustive classification
   by [Objclass.Classify].  Domains are kept small (classification is cubic
   in |ops| x |values|) but large enough to distinguish the types: e.g. a
   two-valued fetch&add would degenerate. *)

open Sim

let small_ints n = List.init n Value.int

let all : Optype.t list =
  [
    Register.finite ~name:"register" ~values:(small_ints 3) ();
    Swap_register.finite ~name:"swap-register" ~values:(small_ints 3) ();
    Test_and_set.finite ();
    Fetch_add.finite ~modulus:5 ();
    Fetch_inc.finite ~modulus:5 ();
    Counter.finite ~modulus:5 ();
    Compare_swap.finite ~name:"compare&swap" ~values:(small_ints 3) ();
    Queue_obj.finite ~cap:2 ~items:(small_ints 2) ();
    Sticky.finite ~values:(small_ints 2) ();
  ]

let find name =
  List.find_opt (fun (ot : Optype.t) -> ot.name = name) all
