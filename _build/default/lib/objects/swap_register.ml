(* A swap register: SWAP(x) sets the value to x and responds with the old
   value.  We also expose READ and WRITE, matching the paper's example of the
   interfering set {READ, WRITE, SWAP}.  All the nontrivial operations
   (writes and swaps) overwrite one another, so the type is historyless. *)

open Sim

let read = Op.make "read"
let write v = Op.make "write" ~arg:v
let swap v = Op.make "swap" ~arg:v
let swap_int i = swap (Value.int i)

let step value (op : Op.t) =
  match op.name with
  | "read" -> (value, value)
  | "write" -> (op.arg, Value.unit)
  | "swap" -> (op.arg, value)
  | _ -> Optype.bad_op "swap-register" op

let optype ?(init = Value.none) () =
  Optype.make ~name:"swap-register" ~init step

let finite ?(name = "swap[fin]") ~values () =
  let init = match values with v :: _ -> v | [] -> Value.none in
  Optype.make ~name ~init ~enum_values:values
    ~enum_ops:((read :: List.map write values) @ List.map swap values)
    step
