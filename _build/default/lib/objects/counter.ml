(* A shared counter (Section 2, citing Aspnes–Herlihy and Moran–Taubenfeld–
   Yadin): integer values; INC and DEC adjust by one and respond with a fixed
   acknowledgement, RESET sets the value to 0, READ reports it.

   INC and DEC commute, but RESET neither commutes with nor is overwritten
   by them, so the full op set is not interfering; and INC does not
   overwrite itself, so the type is not historyless. *)

open Sim

let inc = Op.make "inc"
let dec = Op.make "dec"
let reset = Op.make "reset"
let read = Op.make "read"

let step value (op : Op.t) =
  match op.name with
  | "inc" -> (Value.int (Value.to_int value + 1), Value.unit)
  | "dec" -> (Value.int (Value.to_int value - 1), Value.unit)
  | "reset" -> (Value.int 0, Value.unit)
  | "read" -> (value, value)
  | _ -> Optype.bad_op "counter" op

let optype ?(init = 0) () = Optype.make ~name:"counter" ~init:(Value.int init) step

let finite ~modulus () =
  let wrap v = ((v mod modulus) + modulus) mod modulus in
  let step value (op : Op.t) =
    match op.name with
    | "inc" -> (Value.int (wrap (Value.to_int value + 1)), Value.unit)
    | "dec" -> (Value.int (wrap (Value.to_int value - 1)), Value.unit)
    | "reset" -> (Value.int 0, Value.unit)
    | "read" -> (value, value)
    | _ -> Optype.bad_op "counter[fin]" op
  in
  Optype.make
    ~name:(Printf.sprintf "counter[mod %d]" modulus)
    ~init:(Value.int 0)
    ~enum_values:(List.init modulus Value.int)
    ~enum_ops:[ read; inc; dec; reset ]
    step
