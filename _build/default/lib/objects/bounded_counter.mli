(** Bounded counters (Section 2): counters whose value set is an integer
    range, operations modulo the range size.  Theorem 4.2's consensus uses
    a cursor counter with range linear in n. *)

open Sim

val inc : Op.t
val dec : Op.t
val reset : Op.t
val read : Op.t

(** [optype ~lo ~hi ()]: range [lo..hi] inclusive, initial value 0.
    Raises [Invalid_argument] when [lo > hi]. *)
val optype : lo:int -> hi:int -> unit -> Optype.t
