(** Compare&swap registers: CAS(expected, desired) installs [desired] iff
    the value equals [expected], responding with the {e old} value either
    way.  Not interfering, not historyless; consensus number infinity. *)

open Sim

val cas : expected:Value.t -> desired:Value.t -> Op.t
val read : Op.t
val step : Value.t -> Op.t -> Value.t * Value.t
val optype : ?init:Value.t -> unit -> Optype.t
val finite : ?name:string -> values:Value.t list -> unit -> Optype.t
