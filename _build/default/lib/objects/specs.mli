(** Finite-domain specs of every object type, for exhaustive
    classification by [Objclass.Classify]. *)

open Sim

val small_ints : int -> Value.t list
val all : Optype.t list
val find : string -> Optype.t option
