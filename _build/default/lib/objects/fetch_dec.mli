(** Fetch&decrement registers; see {!Fetch_inc}. *)

open Sim

val fetch_dec : Op.t
val read : Op.t
val step : Value.t -> Op.t -> Value.t * Value.t
val optype : ?init:int -> unit -> Optype.t
