(* Fetch&decrement register; see {!Fetch_inc}. *)

open Sim

let fetch_dec = Op.make "fetch&dec"
let read = Op.make "read"

let step value (op : Op.t) =
  match op.name with
  | "fetch&dec" -> (Value.int (Value.to_int value - 1), value)
  | "read" -> (value, value)
  | _ -> Optype.bad_op "fetch&dec" op

let optype ?(init = 0) () =
  Optype.make ~name:"fetch&dec" ~init:(Value.int init) step
