(* A read-write register (Section 2): READ responds with the value; WRITE(x)
   sets the value to x.  The value set may be any set — our registers hold
   arbitrary [Value.t], i.e. they are "unbounded size" in the paper's sense.

   Operations: WRITE overwrites WRITE, and READ is trivial, so the type is
   historyless; {READ, WRITE} is also interfering. *)

open Sim

let read = Op.make "read"
let write v = Op.make "write" ~arg:v
let write_int i = write (Value.int i)

let step value (op : Op.t) =
  match op.name with
  | "read" -> (value, value)
  | "write" -> (op.arg, Value.unit)
  | _ -> Optype.bad_op "register" op

let optype ?(init = Value.none) () =
  Optype.make ~name:"register" ~init step

(** Finite-domain spec over values [vs] (for exhaustive classification). *)
let finite ?(name = "register[fin]") ~values () =
  let init = match values with v :: _ -> v | [] -> Value.none in
  Optype.make ~name ~init ~enum_values:values
    ~enum_ops:(read :: List.map write values)
    step
