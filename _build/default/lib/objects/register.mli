(** Read-write registers (Section 2): READ responds with the value,
    WRITE(x) installs x.  Unbounded value set; historyless and
    interfering. *)

open Sim

val read : Op.t
val write : Value.t -> Op.t
val write_int : int -> Op.t
val step : Value.t -> Op.t -> Value.t * Value.t

(** An unbounded register (default initial value {!Value.none}). *)
val optype : ?init:Value.t -> unit -> Optype.t

(** A finite-domain spec over [values] for exhaustive classification. *)
val finite : ?name:string -> values:Value.t list -> unit -> Optype.t
