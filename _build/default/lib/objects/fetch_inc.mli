(** Fetch&increment registers (Theorem 4.4 lists them alongside fetch&add
    and fetch&decrement). *)

open Sim

val fetch_inc : Op.t
val read : Op.t
val step : Value.t -> Op.t -> Value.t * Value.t
val optype : ?init:int -> unit -> Optype.t
val finite : modulus:int -> unit -> Optype.t
