(* Fetch&increment / fetch&decrement registers (Theorem 4.4 names all
   three): FETCH&INC responds with the current value and adds one; the
   decrement variant subtracts one.  Each is a restriction of fetch&add. *)

open Sim

let fetch_inc = Op.make "fetch&inc"
let read = Op.make "read"

let step value (op : Op.t) =
  match op.name with
  | "fetch&inc" -> (Value.int (Value.to_int value + 1), value)
  | "read" -> (value, value)
  | _ -> Optype.bad_op "fetch&inc" op

let optype ?(init = 0) () =
  Optype.make ~name:"fetch&inc" ~init:(Value.int init) step

let finite ~modulus () =
  let step value (op : Op.t) =
    match op.name with
    | "fetch&inc" -> (Value.int ((Value.to_int value + 1) mod modulus), value)
    | "read" -> (value, value)
    | _ -> Optype.bad_op "fetch&inc[fin]" op
  in
  Optype.make
    ~name:(Printf.sprintf "fetch&inc[mod %d]" modulus)
    ~init:(Value.int 0)
    ~enum_values:(List.init modulus Value.int)
    ~enum_ops:[ read; fetch_inc ]
    step
