(* A sticky bit / consensus object (Plotkin): PROPOSE(v) installs v if the
   object is still empty and responds with the value that stuck.  One such
   object IS an n-process binary consensus object, so its consensus number
   is infinite; it is neither historyless (a later PROPOSE does not
   overwrite an earlier one — quite the opposite) nor interfering. *)

open Sim

let propose v = Op.make "propose" ~arg:v
let propose_int i = propose (Value.int i)
let read = Op.make "read"

let step value (op : Op.t) =
  match op.Op.name with
  | "propose" -> (
      match value with
      | Value.Opt None -> (Value.some op.Op.arg, op.Op.arg)
      | Value.Opt (Some v) -> (value, v)
      | _ -> Optype.bad_op "sticky" op)
  | "read" -> (value, value)
  | _ -> Optype.bad_op "sticky" op

let optype () = Optype.make ~name:"sticky" ~init:Value.none step

let finite ~values () =
  Optype.make ~name:"sticky" ~init:Value.none
    ~enum_values:(Value.none :: List.map Value.some values)
    ~enum_ops:(read :: List.map propose values)
    step
