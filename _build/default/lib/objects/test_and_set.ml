(* A test&set register (Section 2): values {0,1}, initially 0.  TEST&SET
   responds with the current value and sets it to 1.  Setting to 1 is
   idempotent, so TEST&SET overwrites itself: the type is historyless. *)

open Sim

let test_and_set = Op.make "test&set"
let read = Op.make "read"

let step value (op : Op.t) =
  match op.name with
  | "test&set" -> (Value.int 1, value)
  | "read" -> (value, value)
  | _ -> Optype.bad_op "test&set" op

let optype () = Optype.make ~name:"test&set" ~init:(Value.int 0) step

let finite () =
  Optype.make ~name:"test&set" ~init:(Value.int 0)
    ~enum_values:[ Value.int 0; Value.int 1 ]
    ~enum_ops:[ read; test_and_set ]
    step
