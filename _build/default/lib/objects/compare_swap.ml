(* A compare&swap register: CAS(expected, new) installs [new] iff the
   current value equals [expected], and responds with the *old* value either
   way (so a caller learns whether it succeeded and, if not, who beat it —
   exactly what Herlihy's one-object consensus protocol needs).

   CAS(a, b) and CAS(b, c) neither commute nor overwrite in general, so the
   set of COMPARE&SWAP operations is not interfering (Section 2), and the
   type is far from historyless. *)

open Sim

let cas ~expected ~desired = Op.make "cas" ~arg:(Value.pair expected desired)
let read = Op.make "read"

let step value (op : Op.t) =
  match op.name with
  | "cas" ->
      let expected, desired = Value.to_pair op.arg in
      if Value.equal value expected then (desired, value) else (value, value)
  | "read" -> (value, value)
  | _ -> Optype.bad_op "compare&swap" op

let optype ?(init = Value.none) () =
  Optype.make ~name:"compare&swap" ~init step

let finite ?(name = "cas[fin]") ~values () =
  let init = match values with v :: _ -> v | [] -> Value.none in
  let pairs =
    List.concat_map
      (fun a -> List.map (fun b -> cas ~expected:a ~desired:b) values)
      values
  in
  Optype.make ~name ~init ~enum_values:values ~enum_ops:(read :: pairs) step
