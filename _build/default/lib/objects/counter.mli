(** Shared counters (Section 2): INC/DEC adjust by one (fixed
    acknowledgement), RESET zeroes, READ reports.  Not historyless; the
    full op set is not even interfering (RESET vs INC). *)

open Sim

val inc : Op.t
val dec : Op.t
val reset : Op.t
val read : Op.t
val step : Value.t -> Op.t -> Value.t * Value.t
val optype : ?init:int -> unit -> Optype.t
val finite : modulus:int -> unit -> Optype.t
