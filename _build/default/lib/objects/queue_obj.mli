(** A FIFO queue — the classic consensus-number-2 object of the wait-free
    hierarchy.  Neither historyless nor interfering. *)

open Sim

val enq : Value.t -> Op.t
val deq : Op.t
val read : Op.t

(** Response of DEQ on an empty queue. *)
val empty_marker : Value.t

val step : Value.t -> Op.t -> Value.t * Value.t

(** An unbounded queue, optionally pre-filled. *)
val optype : ?init:Value.t list -> unit -> Optype.t

(** Finite spec: item set [items], capacity [cap] (ENQ on full is a
    no-op, keeping the domain closed). *)
val finite : ?cap:int -> items:Value.t list -> unit -> Optype.t
