(* A bounded counter (Section 2): a counter whose value set is a range of
   integers and whose operations are performed modulo the size of that
   range.  Theorem 4.2 (Aspnes) solves randomized consensus with a single
   bounded counter whose range is [-3n, 3n]; [Consensus.Counter_consensus]
   instantiates exactly that. *)

open Sim

let inc = Counter.inc
let dec = Counter.dec
let reset = Counter.reset
let read = Counter.read

let optype ~lo ~hi () =
  if lo > hi then invalid_arg "Bounded_counter.optype: empty range";
  let size = hi - lo + 1 in
  let wrap v = lo + ((((v - lo) mod size) + size) mod size) in
  let step value (op : Op.t) =
    match op.name with
    | "inc" -> (Value.int (wrap (Value.to_int value + 1)), Value.unit)
    | "dec" -> (Value.int (wrap (Value.to_int value - 1)), Value.unit)
    | "reset" -> (Value.int 0, Value.unit)
    | "read" -> (value, value)
    | _ -> Optype.bad_op "bounded-counter" op
  in
  Optype.make
    ~name:(Printf.sprintf "bounded-counter[%d,%d]" lo hi)
    ~init:(Value.int 0) step
