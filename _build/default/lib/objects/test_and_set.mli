(** Test&set registers (Section 2): values {0,1}, initially 0; TEST&SET
    responds with the current value and sets 1.  Historyless (setting 1 is
    idempotent). *)

open Sim

val test_and_set : Op.t
val read : Op.t
val step : Value.t -> Op.t -> Value.t * Value.t
val optype : unit -> Optype.t

(** The (already finite) spec with enumerations attached. *)
val finite : unit -> Optype.t
