(** Swap registers: SWAP(x) installs x and responds with the old value;
    READ and WRITE also provided ({READ, WRITE, SWAP} is the paper's
    example of an interfering set).  Historyless. *)

open Sim

val read : Op.t
val write : Value.t -> Op.t
val swap : Value.t -> Op.t
val swap_int : int -> Op.t
val step : Value.t -> Op.t -> Value.t * Value.t
val optype : ?init:Value.t -> unit -> Optype.t
val finite : ?name:string -> values:Value.t list -> unit -> Optype.t
