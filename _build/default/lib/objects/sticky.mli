(** A sticky bit / consensus object: PROPOSE(v) installs v if empty and
    responds with the value that stuck.  Consensus number infinity;
    neither historyless nor interfering. *)

open Sim

val propose : Value.t -> Op.t
val propose_int : int -> Op.t
val read : Op.t
val step : Value.t -> Op.t -> Value.t * Value.t
val optype : unit -> Optype.t
val finite : values:Value.t list -> unit -> Optype.t
