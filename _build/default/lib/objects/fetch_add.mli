(** Fetch&add registers: FETCH&ADD(k) responds with the current value and
    adds k.  Interfering (adds commute) but {e not} historyless — the
    distinction the separation results turn on (Theorem 4.4 vs
    Theorem 3.7). *)

open Sim

val fetch_add : int -> Op.t

(** READ is FETCH&ADD(0); kept as a separate trivial operation. *)
val read : Op.t

val step : Value.t -> Op.t -> Value.t * Value.t
val optype : ?init:int -> unit -> Optype.t

(** Finite spec: fetch&add modulo [modulus]. *)
val finite : modulus:int -> unit -> Optype.t
