(* A fetch&add register: FETCH&ADD(k) responds with the current value and
   adds k.  All FETCH&ADD operations commute with one another (Section 2),
   so {FETCH&ADD} is interfering — but FETCH&ADD(k) for k <> 0 does not
   overwrite anything, so the type is *not* historyless.  This is the
   distinction the separation results turn on: one fetch&add register solves
   randomized n-process consensus (Theorem 4.4) while historyless objects
   need Ω(√n) instances. *)

open Sim

let fetch_add k = Op.make "fetch&add" ~arg:(Value.int k)

(** READ is FETCH&ADD(0); we keep a separate trivial op for clarity. *)
let read = Op.make "read"

let step value (op : Op.t) =
  match op.name with
  | "fetch&add" -> (Value.int (Value.to_int value + Value.to_int op.arg), value)
  | "read" -> (value, value)
  | _ -> Optype.bad_op "fetch&add" op

let optype ?(init = 0) () =
  Optype.make ~name:"fetch&add" ~init:(Value.int init) step

(** Finite spec: fetch&add modulo [m] over values 0..m-1. *)
let finite ~modulus () =
  let step value (op : Op.t) =
    match op.name with
    | "fetch&add" ->
        let v = Value.to_int value and k = Value.to_int op.arg in
        (Value.int (((v + k) mod modulus + modulus) mod modulus), value)
    | "read" -> (value, value)
    | _ -> Optype.bad_op "fetch&add[fin]" op
  in
  Optype.make
    ~name:(Printf.sprintf "fetch&add[mod %d]" modulus)
    ~init:(Value.int 0)
    ~enum_values:(List.init modulus Value.int)
    ~enum_ops:(read :: List.init modulus fetch_add)
    step
