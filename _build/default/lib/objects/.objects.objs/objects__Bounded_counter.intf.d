lib/objects/bounded_counter.mli: Op Optype Sim
