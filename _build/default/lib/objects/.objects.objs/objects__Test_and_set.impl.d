lib/objects/test_and_set.ml: Op Optype Sim Value
