lib/objects/register.ml: List Op Optype Sim Value
