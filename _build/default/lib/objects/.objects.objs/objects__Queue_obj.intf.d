lib/objects/queue_obj.mli: Op Optype Sim Value
