lib/objects/fetch_dec.ml: Op Optype Sim Value
