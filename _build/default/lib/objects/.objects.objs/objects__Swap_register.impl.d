lib/objects/swap_register.ml: List Op Optype Sim Value
