lib/objects/compare_swap.ml: List Op Optype Sim Value
