lib/objects/sticky.mli: Op Optype Sim Value
