lib/objects/fetch_inc.mli: Op Optype Sim Value
