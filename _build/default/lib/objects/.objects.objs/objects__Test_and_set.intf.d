lib/objects/test_and_set.mli: Op Optype Sim Value
