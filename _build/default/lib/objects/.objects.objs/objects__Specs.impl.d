lib/objects/specs.ml: Compare_swap Counter Fetch_add Fetch_inc List Optype Queue_obj Register Sim Sticky Swap_register Test_and_set Value
