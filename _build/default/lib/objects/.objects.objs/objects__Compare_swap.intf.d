lib/objects/compare_swap.mli: Op Optype Sim Value
