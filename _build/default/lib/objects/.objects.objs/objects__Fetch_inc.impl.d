lib/objects/fetch_inc.ml: List Op Optype Printf Sim Value
