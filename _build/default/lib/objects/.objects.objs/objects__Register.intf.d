lib/objects/register.mli: Op Optype Sim Value
