lib/objects/specs.mli: Optype Sim Value
