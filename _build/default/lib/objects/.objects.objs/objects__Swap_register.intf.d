lib/objects/swap_register.mli: Op Optype Sim Value
