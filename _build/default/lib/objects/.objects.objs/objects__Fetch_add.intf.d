lib/objects/fetch_add.mli: Op Optype Sim Value
