lib/objects/counter.ml: List Op Optype Printf Sim Value
