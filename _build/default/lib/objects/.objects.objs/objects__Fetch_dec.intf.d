lib/objects/fetch_dec.mli: Op Optype Sim Value
