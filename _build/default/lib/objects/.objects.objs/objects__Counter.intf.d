lib/objects/counter.mli: Op Optype Sim Value
