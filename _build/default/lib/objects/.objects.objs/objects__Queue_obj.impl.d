lib/objects/queue_obj.ml: Fun List Op Optype Sim Value
