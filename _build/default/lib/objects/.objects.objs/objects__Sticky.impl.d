lib/objects/sticky.ml: List Op Optype Sim Value
