lib/objects/fetch_add.ml: List Op Optype Printf Sim Value
