lib/objects/bounded_counter.ml: Counter Op Optype Printf Sim Value
