(* A configuration (Section 2): the value of every shared object plus the
   state of every process.  Configurations here are persistent: [step]-style
   updates in [Run.pure] copy the arrays, so the model checker and the
   lower-bound adversaries can hold many configurations at once.

   [halted] supports crash-failure injection: a halted process performs no
   further steps (the paper's "a process may become faulty at a given point
   in an execution"). *)

type 'a t = {
  optypes : Optype.t array;  (** type of each shared object, fixed *)
  objects : Value.t array;  (** current value of each shared object *)
  procs : 'a Proc.t array;  (** current state of each process *)
  halted : bool array;  (** crash-failure flags *)
}

let make ~optypes ~procs =
  let optypes = Array.of_list optypes in
  {
    optypes;
    objects = Array.map (fun (ot : Optype.t) -> ot.init) optypes;
    procs = Array.of_list procs;
    halted = Array.make (List.length procs) false;
  }

let n_objects t = Array.length t.objects
let n_procs t = Array.length t.procs

let copy t =
  {
    t with
    objects = Array.copy t.objects;
    procs = Array.copy t.procs;
    halted = Array.copy t.halted;
  }

let decision t pid = Proc.decision t.procs.(pid)
let is_decided t pid = Proc.is_decided t.procs.(pid)
let is_halted t pid = t.halted.(pid)

(** A process is enabled if it is neither decided nor crashed. *)
let is_enabled t pid = (not (is_decided t pid)) && not (is_halted t pid)

let enabled_pids t =
  List.filter (is_enabled t) (List.init (n_procs t) Fun.id)

let all_decided t =
  let rec go i =
    i >= n_procs t || ((is_decided t i || is_halted t i) && go (i + 1))
  in
  go 0

let decisions t =
  List.filter_map (fun pid -> decision t pid) (List.init (n_procs t) Fun.id)

(** Crash process [pid]: it takes no further steps. *)
let halt t pid =
  let t = copy t in
  t.halted.(pid) <- true;
  t

(** Append a process in state [state]; returns the new configuration and the
    new process's id.  Used by the lower-bound adversaries to introduce
    clones (whose states are snapshots of existing processes). *)
let add_proc t state =
  let n = n_procs t in
  let procs = Array.make (n + 1) state in
  Array.blit t.procs 0 procs 0 n;
  let halted = Array.make (n + 1) false in
  Array.blit t.halted 0 halted 0 n;
  ({ t with procs; halted }, n)

(** [pending t pid] is the shared-memory operation [pid] is poised at. *)
let pending t pid = Proc.pending t.procs.(pid)

(** Process ids poised at object [obj] (their next step applies to it). *)
let poised_at t obj =
  List.filter
    (fun pid ->
      is_enabled t pid
      && match pending t pid with Some (o, _) -> o = obj | None -> false)
    (List.init (n_procs t) Fun.id)

let pp pp_decision ppf t =
  Fmt.pf ppf "@[<v>objects: %a@,procs: %a@]"
    Fmt.(array ~sep:sp Value.pp_compact)
    t.objects
    Fmt.(array ~sep:sp (Proc.pp pp_decision))
    t.procs
