(** One step of an execution, as recorded in traces. *)

type 'a t =
  | Applied of { pid : int; obj : int; op : Op.t; resp : Value.t }
  | Coin of { pid : int; n : int; outcome : int }
  | Decided of { pid : int; value : 'a }
  | Halted of { pid : int }

val pid : 'a t -> int
val to_string : ('a -> string) -> 'a t -> string
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
