(** Values stored in shared objects and carried by operations.

    The paper's lower bound holds for objects of unbounded size; the value
    domain is correspondingly open-ended (arbitrary integers, symbols,
    pairs, options), so no protocol is ever constrained by a bit-width. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Sym of string
  | Pair of t * t
  | Opt of t option
  | List of t list

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Constructors} *)

val unit : t
val bool : bool -> t
val int : int -> t
val sym : string -> t
val pair : t -> t -> t
val none : t
val some : t -> t
val list : t list -> t

(** {1 Accessors}

    Each raises {!Type_error} when the value has a different shape. *)

exception Type_error of { expected : string; got : t }

val to_int : t -> int
val to_bool : t -> bool
val to_sym : t -> string
val to_pair : t -> t * t
val to_opt : t -> t option
val to_list : t -> t list
val is_unit : t -> bool

(** {1 Rendering} *)

(** Compact one-line rendering used in traces. *)
val to_string : t -> string

val pp_compact : Format.formatter -> t -> unit
