lib/sim/event.pp.ml: Fmt Op Printf Value
