lib/sim/proc.pp.ml: Fmt Op Value
