lib/sim/config.pp.ml: Array Fmt Fun List Optype Proc Value
