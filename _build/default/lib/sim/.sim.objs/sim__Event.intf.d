lib/sim/event.pp.mli: Format Op Value
