lib/sim/op.pp.mli: Format Value
