lib/sim/sched.pp.mli: Config Rng
