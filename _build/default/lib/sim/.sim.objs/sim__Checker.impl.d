lib/sim/checker.pp.ml: Config Fmt List Trace
