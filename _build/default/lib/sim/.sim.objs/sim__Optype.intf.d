lib/sim/optype.pp.mli: Op Value
