lib/sim/optype.pp.ml: Op Value
