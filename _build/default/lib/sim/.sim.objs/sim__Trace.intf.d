lib/sim/trace.pp.mli: Event Format Op Value
