lib/sim/value.pp.ml: Fmt List Ppx_deriving_runtime Printf String
