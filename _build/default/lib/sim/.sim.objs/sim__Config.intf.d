lib/sim/config.pp.mli: Format Op Optype Proc Value
