lib/sim/op.pp.ml: Fmt Ppx_deriving_runtime Printf Value
