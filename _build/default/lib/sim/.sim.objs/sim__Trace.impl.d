lib/sim/trace.pp.ml: Event Fmt List String
