lib/sim/run.pp.ml: Array Config Event List Optype Proc Sched Trace
