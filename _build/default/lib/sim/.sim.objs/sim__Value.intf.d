lib/sim/value.pp.mli: Format
