lib/sim/checker.pp.mli: Config Format Trace
