lib/sim/trace_io.pp.mli: Trace Value
