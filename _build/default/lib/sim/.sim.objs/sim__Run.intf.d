lib/sim/run.pp.mli: Config Event Sched Trace
