lib/sim/proc.pp.mli: Format Op Value
