lib/sim/sched.pp.ml: Array Config List Printf Rng
