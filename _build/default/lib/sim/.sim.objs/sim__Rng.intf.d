lib/sim/rng.pp.mli:
