lib/sim/trace_io.pp.ml: Event List Op Printf String Trace Value
