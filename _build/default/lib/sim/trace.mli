(** Execution traces: event sequences in execution order. *)

type 'a t = 'a Event.t list

val empty : 'a t
val of_events : 'a Event.t list -> 'a t
val events : 'a t -> 'a Event.t list
val length : 'a t -> int
val append : 'a t -> 'a t -> 'a t
val concat : 'a t list -> 'a t

(** Number of steps ([Applied] + [Coin]; decisions and halts are not
    steps). *)
val steps : 'a t -> int

val applied_ops : 'a t -> (int * int * Op.t * Value.t) list
val decisions : 'a t -> (int * 'a) list
val coins : 'a t -> (int * int * int) list

(** Pids appearing in the trace, sorted. *)
val pids : 'a t -> int list

(** Events of one process, in order. *)
val by_pid : 'a t -> int -> 'a Event.t list

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
val to_string : ('a -> string) -> 'a t -> string
