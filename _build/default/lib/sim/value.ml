(* Values stored in shared objects and carried by operations.

   The paper's lower bound holds for objects of unbounded size, so the value
   domain is deliberately open-ended: integers of arbitrary magnitude,
   symbols, pairs and options let protocols store anything they like without
   the framework imposing a bit-width. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Sym of string
  | Pair of t * t
  | Opt of t option
  | List of t list
[@@deriving show { with_path = false }, eq, ord]

let unit = Unit
let bool b = Bool b
let int i = Int i
let sym s = Sym s
let pair a b = Pair (a, b)
let none = Opt None
let some v = Opt (Some v)
let list vs = List vs

exception Type_error of { expected : string; got : t }

let type_error expected got = raise (Type_error { expected; got })

let to_int = function Int i -> i | v -> type_error "Int" v
let to_bool = function Bool b -> b | v -> type_error "Bool" v
let to_sym = function Sym s -> s | v -> type_error "Sym" v
let to_pair = function Pair (a, b) -> (a, b) | v -> type_error "Pair" v
let to_opt = function Opt o -> o | v -> type_error "Opt" v
let to_list = function List vs -> vs | v -> type_error "List" v

let is_unit = function Unit -> true | _ -> false

(* Compact rendering for traces: [show] is verbose, this is for humans. *)
let rec to_string = function
  | Unit -> "()"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Sym s -> s
  | Pair (a, b) -> Printf.sprintf "(%s,%s)" (to_string a) (to_string b)
  | Opt None -> "_"
  | Opt (Some v) -> Printf.sprintf "[%s]" (to_string v)
  | List vs -> Printf.sprintf "{%s}" (String.concat ";" (List.map to_string vs))

let pp_compact ppf v = Fmt.string ppf (to_string v)
