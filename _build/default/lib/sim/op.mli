(** An operation applied to a shared object: a name plus an argument.

    Examples: [make "read"], [make "write" ~arg:(Value.int 3)],
    [make "cas" ~arg:(Value.pair old_ new_)]. *)

type t = { name : string; arg : Value.t }

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

(** [make ?arg name] is the operation [name] with argument [arg]
    (default {!Value.Unit}). *)
val make : ?arg:Value.t -> string -> t

(** Compact rendering, e.g. ["write(3)"]. *)
val to_string : t -> string

val pp_compact : Format.formatter -> t -> unit
