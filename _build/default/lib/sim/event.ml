(* One step of an execution, as recorded in traces.  [Decided] is emitted in
   addition to the step that caused the decision, so traces carry decisions
   explicitly. *)

type 'a t =
  | Applied of { pid : int; obj : int; op : Op.t; resp : Value.t }
  | Coin of { pid : int; n : int; outcome : int }
  | Decided of { pid : int; value : 'a }
  | Halted of { pid : int }

let pid = function
  | Applied { pid; _ } | Coin { pid; _ } | Decided { pid; _ }
  | Halted { pid } ->
      pid

let to_string value_to_string = function
  | Applied { pid; obj; op; resp } ->
      Printf.sprintf "P%d: obj%d.%s -> %s" pid obj (Op.to_string op)
        (Value.to_string resp)
  | Coin { pid; n; outcome } -> Printf.sprintf "P%d: coin %d/%d" pid outcome n
  | Decided { pid; value } ->
      Printf.sprintf "P%d: decide %s" pid (value_to_string value)
  | Halted { pid } -> Printf.sprintf "P%d: halt" pid

let pp pp_decision ppf = function
  | Applied { pid; obj; op; resp } ->
      Fmt.pf ppf "P%d: obj%d.%s -> %a" pid obj (Op.to_string op)
        Value.pp_compact resp
  | Coin { pid; n; outcome } -> Fmt.pf ppf "P%d: coin %d/%d" pid outcome n
  | Decided { pid; value } -> Fmt.pf ppf "P%d: decide %a" pid pp_decision value
  | Halted { pid } -> Fmt.pf ppf "P%d: halt" pid
