(* An object type in the sense of Section 2 of the paper: a set of possible
   values, an initial value, and a transition function giving, for the
   current value and an applied operation, the new value and the response.

   Transition functions here are deterministic (every object the paper names
   is); nondeterministic objects are not needed for any construction.

   [enum_values] / [enum_ops] optionally enumerate a finite value domain and
   a finite generating set of operations.  They exist so that the
   classification predicates of the paper ([Objclass.Classify]: trivial,
   commute, overwrite, historyless, interfering) can be *decided* by
   exhaustive checking rather than asserted. *)

type t = {
  name : string;
  init : Value.t;
  step : Value.t -> Op.t -> Value.t * Value.t;
      (** [step value op] is [(new_value, response)]. *)
  enum_values : Value.t list option;
  enum_ops : Op.t list option;
}

exception Bad_op of { optype : string; op : Op.t }

let bad_op optype op = raise (Bad_op { optype; op })

let make ?enum_values ?enum_ops ~name ~init step =
  { name; init; step; enum_values; enum_ops }

let apply t value op = t.step value op

(** A variant of the type with a different initial value. *)
let with_init t init = { t with init }

(** A variant restricted to (or just relabelled with) a new name. *)
let rename t name = { t with name }
