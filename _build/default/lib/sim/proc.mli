(** Processes as pure step machines.

    A protocol is a value of type ['a t]: a free monad over the three step
    shapes of the paper's model — apply an operation to a shared object,
    flip a coin (an internal step), decide (return from the procedure).
    Values of this type are immutable, so process states can be
    snapshotted, compared, and — crucially for the Section 3.1 lower
    bound — {e cloned} by plain copying. *)

type 'a t =
  | Apply of { obj : int; op : Op.t; k : Value.t -> 'a t }
      (** Poised to apply [op] to object [obj]; [k] consumes the
          response. *)
  | Choose of { n : int; k : int -> 'a t }
      (** Internal coin flip with [n] equally likely outcomes in
          [0 .. n-1]. *)
  | Decide of 'a  (** The procedure has returned. *)

(** {1 Monadic interface} *)

val decide : 'a -> 'a t
val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val map : 'a t -> ('a -> 'b) -> 'b t
val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t

(** [apply obj op] performs one shared-memory operation and yields its
    response. *)
val apply : int -> Op.t -> Value.t t

(** [choose n] yields a uniformly random integer in [0 .. n-1].  Raises
    [Invalid_argument] if [n < 1]. *)
val choose : int -> int t

(** A fair coin flip. *)
val flip : bool t

(** {1 Inspection} *)

val is_decided : 'a t -> bool
val decision : 'a t -> 'a option

(** The pending shared-memory operation, if the process's next step is an
    [Apply]. *)
val pending : 'a t -> (int * Op.t) option

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit

(** {1 Control-flow helpers} *)

(** [repeat_until body] runs [body] repeatedly until it yields [Some v]. *)
val repeat_until : 'a option t -> 'a t

val iter_list : ('a -> unit t) -> 'a list -> unit t
val map_list : ('a -> 'b t) -> 'a list -> 'b list t

(** [for_ lo hi f] runs [f lo], ..., [f hi] in order. *)
val for_ : int -> int -> (int -> unit t) -> unit t
