(* A process is a sequential thread of control, represented as a *pure step
   machine*: a free monad over the three step shapes of the paper's model —
   apply an operation to a shared object, flip a coin (an internal step), or
   decide (return from the procedure).

   Because a ['a t] is an immutable value, a process state can be snapshotted,
   compared for progress, and — crucially for the Section 3.1 lower bound —
   *cloned*: a clone of process P poised to write is literally a copy of P's
   state value. *)

type 'a t =
  | Apply of { obj : int; op : Op.t; k : Value.t -> 'a t }
      (** Poised to apply [op] to object [obj]; [k] consumes the response. *)
  | Choose of { n : int; k : int -> 'a t }
      (** Internal coin flip with [n] equally likely outcomes in [0..n-1]. *)
  | Decide of 'a  (** The procedure has returned [('a)]. *)

let decide v = Decide v
let return = decide

let rec bind m f =
  match m with
  | Decide v -> f v
  | Apply { obj; op; k } -> Apply { obj; op; k = (fun r -> bind (k r) f) }
  | Choose { n; k } -> Choose { n; k = (fun i -> bind (k i) f) }

let ( let* ) = bind
let map m f = bind m (fun x -> return (f x))
let ( let+ ) = map

(** [apply obj op] performs one shared-memory operation and yields its
    response. *)
let apply obj op = Apply { obj; op; k = decide }

(** [choose n] yields a uniformly random integer in [0..n-1]. *)
let choose n =
  if n < 1 then invalid_arg "Proc.choose: n must be positive";
  Choose { n; k = decide }

(** [flip] yields a fair coin flip. *)
let flip = Choose { n = 2; k = (fun i -> decide (i = 1)) }

let is_decided = function Decide _ -> true | _ -> false
let decision = function Decide v -> Some v | _ -> None

(** The pending shared-memory operation, if the process is poised at one. *)
let pending = function
  | Apply { obj; op; _ } -> Some (obj, op)
  | Choose _ | Decide _ -> None

let pp pp_decision ppf = function
  | Apply { obj; op; _ } ->
      Fmt.pf ppf "poised<obj%d.%s>" obj (Op.to_string op)
  | Choose { n; _ } -> Fmt.pf ppf "coin<%d>" n
  | Decide v -> Fmt.pf ppf "decided<%a>" pp_decision v

(* Control-flow helpers used throughout the protocol library. *)

(** [repeat_until body] runs [body] repeatedly until it yields [Some v]. *)
let rec repeat_until body =
  let* outcome = body in
  match outcome with Some v -> return v | None -> repeat_until body

(** Monadic iteration over a list. *)
let rec iter_list f = function
  | [] -> return ()
  | x :: rest ->
      let* () = f x in
      iter_list f rest

(** Monadic map over a list, left to right. *)
let rec map_list f = function
  | [] -> return []
  | x :: rest ->
      let* y = f x in
      let* ys = map_list f rest in
      return (y :: ys)

(** [for_ lo hi f] runs [f lo], ..., [f hi] in order. *)
let rec for_ lo hi f =
  if lo > hi then return ()
  else
    let* () = f lo in
    for_ (lo + 1) hi f
