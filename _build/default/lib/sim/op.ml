(* An operation applied to a shared object: a name plus an argument value.
   Examples: {name="read"; arg=Unit}, {name="write"; arg=Int 3},
   {name="cas"; arg=Pair (old, new_)}. *)

type t = { name : string; arg : Value.t }
[@@deriving show { with_path = false }, eq, ord]

let make ?(arg = Value.Unit) name = { name; arg }

let to_string { name; arg } =
  if Value.is_unit arg then name
  else Printf.sprintf "%s(%s)" name (Value.to_string arg)

let pp_compact ppf op = Fmt.string ppf (to_string op)
