(* An execution trace: the sequence of events, in execution order.  Traces
   are built in reverse by the runners and reversed once at the end. *)

type 'a t = 'a Event.t list

let empty : 'a t = []
let of_events evs : 'a t = evs
let events (t : 'a t) = t
let length (t : 'a t) = List.length t
let append (a : 'a t) (b : 'a t) : 'a t = a @ b
let concat (ts : 'a t list) : 'a t = List.concat ts

let steps (t : 'a t) =
  List.filter
    (function Event.Applied _ | Event.Coin _ -> true | _ -> false)
    t
  |> List.length

let applied_ops (t : 'a t) =
  List.filter_map
    (function
      | Event.Applied { pid; obj; op; resp } -> Some (pid, obj, op, resp)
      | _ -> None)
    t

let decisions (t : 'a t) =
  List.filter_map
    (function
      | Event.Decided { pid; value } -> Some (pid, value) | _ -> None)
    t

let coins (t : 'a t) =
  List.filter_map
    (function
      | Event.Coin { pid; n; outcome } -> Some (pid, n, outcome) | _ -> None)
    t

let pids (t : 'a t) =
  List.sort_uniq compare (List.map Event.pid t)

(** Events performed by one process, in order. *)
let by_pid (t : 'a t) pid = List.filter (fun e -> Event.pid e = pid) t

let pp pp_decision ppf (t : 'a t) =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut (Event.pp pp_decision)) t

let to_string value_to_string (t : 'a t) =
  String.concat "\n" (List.map (Event.to_string value_to_string) t)
