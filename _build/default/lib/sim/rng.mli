(** SplitMix64: a small, fast pseudorandom generator implemented in-repo so
    every measurement is reproducible from a seed independent of the OCaml
    stdlib. *)

type t

val create : int -> t
val copy : t -> t
val next_int64 : t -> int64

(** Uniform in [0, bound).  Raises [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform in [0, 1). *)
val float : t -> float

(** Derive an independent generator. *)
val split : t -> t

(** Fisher–Yates shuffle, in place. *)
val shuffle : t -> 'a array -> unit
