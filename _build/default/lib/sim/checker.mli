(** The consensus correctness conditions of Section 2, checked on runs:
    consistency (all decisions equal) and validity (every decision is some
    process's input). *)

type verdict = {
  consistent : bool;
  valid : bool;
  n_decided : int;
  values : int list;  (** distinct decided values *)
}

val check : inputs:int list -> decisions:int list -> verdict
val ok : verdict -> bool

(** The adversary's goal: both 0 and 1 (or any two values) decided. *)
val inconsistent : decisions:int list -> bool

val of_config : inputs:int list -> int Config.t -> verdict
val of_trace : inputs:int list -> int Trace.t -> verdict
val pp : Format.formatter -> verdict -> unit
