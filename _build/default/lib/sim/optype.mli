(** Object types, in the sense of Section 2 of the paper: a value set, an
    initial value, and a deterministic transition function giving response
    and successor value for each operation.

    [enum_values]/[enum_ops] optionally enumerate a finite value domain and
    a finite generating operation set so that the classification predicates
    of the paper (trivial, commute, overwrite, historyless, interfering —
    see [Objclass.Classify]) can be {e decided} by exhaustive checking. *)

type t = {
  name : string;
  init : Value.t;
  step : Value.t -> Op.t -> Value.t * Value.t;
      (** [step value op] is [(new_value, response)]. *)
  enum_values : Value.t list option;
  enum_ops : Op.t list option;
}

(** Raised by transition functions on operations outside the type. *)
exception Bad_op of { optype : string; op : Op.t }

val bad_op : string -> Op.t -> 'a

val make :
  ?enum_values:Value.t list ->
  ?enum_ops:Op.t list ->
  name:string ->
  init:Value.t ->
  (Value.t -> Op.t -> Value.t * Value.t) ->
  t

(** [apply t value op] is [t.step value op]. *)
val apply : t -> Value.t -> Op.t -> Value.t * Value.t

(** The same type with a different initial value. *)
val with_init : t -> Value.t -> t

(** The same type relabelled. *)
val rename : t -> string -> t
