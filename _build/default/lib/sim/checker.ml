(* Correctness conditions for (binary) consensus runs, from Section 2:

   Consistency: all DECIDE operations return the same value.
   Validity:    every returned value is some process's input.

   These are safety properties checkable on any execution, terminating or
   not; a run that decides both 0 and 1 is the "inconsistent execution" the
   lower-bound adversaries construct. *)

type verdict = {
  consistent : bool;
  valid : bool;
  n_decided : int;
  values : int list;  (** distinct decided values *)
}

let check ~inputs ~decisions =
  let values = List.sort_uniq compare decisions in
  {
    consistent = List.length values <= 1;
    valid = List.for_all (fun v -> List.mem v inputs) values;
    n_decided = List.length decisions;
    values;
  }

let ok v = v.consistent && v.valid

(** The adversary's goal: an execution in which both 0 and 1 were decided. *)
let inconsistent ~decisions =
  let values = List.sort_uniq compare decisions in
  List.length values > 1

let of_config ~inputs config =
  check ~inputs ~decisions:(Config.decisions config)

let of_trace ~inputs trace =
  check ~inputs ~decisions:(List.map snd (Trace.decisions trace))

let pp ppf v =
  Fmt.pf ppf "consistent=%b valid=%b decided=%d values=[%a]" v.consistent
    v.valid v.n_decided
    Fmt.(list ~sep:(any ";") int)
    v.values
