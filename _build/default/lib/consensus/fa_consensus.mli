(** Theorem 4.4: randomized n-process consensus from a single fetch&add
    register.  The register's value packs the drift-walk core's three
    logical counters into disjoint numeric fields; a FETCH&ADD of an
    encoded delta updates one field atomically and FETCH&ADD(0) reads all
    three at one linearization point. *)

open Sim

val votes1_mul : n:int -> int
val cursor_mul : n:int -> int
val cursor_offset : n:int -> int

(** Register value encoding (votes0 = votes1 = 0, cursor = 0). *)
val init_value : n:int -> int

(** [decode ~n x] is [(votes0, votes1, cursor)]. *)
val decode : n:int -> int -> int * int * int

val backend : n:int -> Walk_core.backend
val code : n:int -> pid:int -> input:int -> int Proc.t
val protocol : Protocol.t
