(* n-process consensus from one sticky bit: PROPOSE your input, decide
   whatever stuck.  The sticky bit is the consensus object in object
   clothing; deterministic, wait-free, one instance, any n. *)

open Sim
open Objects

let code ~n:_ ~pid:_ ~input =
  let open Proc in
  let* stuck = apply 0 (Sticky.propose_int input) in
  decide (Value.to_int stuck)

let protocol : Protocol.t =
  {
    name = "sticky-1";
    kind = `Deterministic;
    identical = true;
    supports_n = (fun n -> n >= 1);
    optypes = (fun ~n:_ -> [ Sticky.optype () ]);
    code;
  }
