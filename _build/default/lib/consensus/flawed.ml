(* Deliberately under-provisioned "consensus" protocols: the adversary
   targets for the lower-bound constructions of Section 3.

   Each protocol here satisfies *nondeterministic solo termination* — run
   alone, a process writes its value everywhere, reads it back, and decides
   — and each is consistent in many benign schedules, which is exactly what
   makes them look plausible.  The paper's theorems say no such protocol
   over r historyless objects can be correct once enough processes
   participate; [Lowerbound.Attack] (identical processes, Lemma 3.2) and
   [Lowerbound.General_attack] (Lemma 3.6) construct the inconsistent
   executions that prove it, against exactly these targets.

   All targets are written with *identical* process code (no pid use). *)

open Sim
open Objects

(** How the protocol writes to its historyless objects. *)
type style = Rw  (** plain registers, WRITE *) | Swapping  (** swap registers, SWAP *)

let write_op style v =
  match style with
  | Rw -> Register.write v
  | Swapping -> Swap_register.swap v

(** [unanimous ~style ~r]: write your value to all [r] objects, read them
    all back, decide if they are unanimously yours; otherwise adopt what
    object 0 holds (or retry).  Solo-terminating, identical processes,
    breakable per Lemma 3.2 / 3.6. *)
let unanimous ~style ~r : Protocol.t =
  let open Proc in
  let code ~n:_ ~pid:_ ~input =
    let rec attempt v fuel =
      let* () =
        iter_list (fun j -> map (apply j (write_op style (Value.int v))) ignore)
          (List.init r Fun.id)
      in
      let* vals =
        map_list (fun j -> apply j Register.read) (List.init r Fun.id)
      in
      if List.for_all (Value.equal (Value.int v)) vals then decide v
      else
        let v' =
          match vals with
          | Value.Int w :: _ -> w
          | _ -> v
        in
        (* fuel keeps no-op schedules from spinning unboundedly in tests;
           solo executions decide on the first attempt regardless *)
        if fuel = 0 then decide v' else attempt v' (fuel - 1)
    in
    attempt input 16
  in
  {
    name =
      Printf.sprintf "flawed-unanimous-%s-r%d"
        (match style with Rw -> "rw" | Swapping -> "swap")
        r;
    kind = `Deterministic;
    identical = true;
    supports_n = (fun n -> n >= 1);
    optypes =
      (fun ~n:_ ->
        List.init r (fun _ ->
            match style with
            | Rw -> Register.optype ()
            | Swapping -> Swap_register.optype ()));
    code;
  }

(** [coin_retry ~style ~r]: like {!unanimous} but on disagreement the
    process flips a coin for its next proposal — a randomized,
    solo-terminating target showing the lower bound does not care about
    coins. *)
let coin_retry ~style ~r : Protocol.t =
  let open Proc in
  let code ~n:_ ~pid:_ ~input =
    let rec attempt v fuel =
      let* () =
        iter_list (fun j -> map (apply j (write_op style (Value.int v))) ignore)
          (List.init r Fun.id)
      in
      let* vals =
        map_list (fun j -> apply j Register.read) (List.init r Fun.id)
      in
      if List.for_all (Value.equal (Value.int v)) vals then decide v
      else if fuel = 0 then decide v
      else
        let* heads = flip in
        attempt (if heads then 1 else 0) (fuel - 1)
    in
    attempt input 16
  in
  {
    name =
      Printf.sprintf "flawed-coin-%s-r%d"
        (match style with Rw -> "rw" | Swapping -> "swap")
        r;
    kind = `Randomized;
    identical = true;
    supports_n = (fun n -> n >= 1);
    optypes =
      (fun ~n:_ ->
        List.init r (fun _ ->
            match style with
            | Rw -> Register.optype ()
            | Swapping -> Swap_register.optype ()));
    code;
  }

(** [mixed ~r]: like {!unanimous} but over a mix of historyless types —
    object 0 is a register, then alternating swap registers and test&set
    registers.  The value check expects the own value in registers and
    swaps and a 1 in the test&sets.  Exercises the general attack across
    heterogeneous historyless objects (the main theorem does not care
    which historyless types are mixed).  Requires r >= 2. *)
let mixed ~r : Protocol.t =
  if r < 2 then invalid_arg "Flawed.mixed: r must be >= 2";
  let open Proc in
  let kind j = if j = 0 then `Reg else if j mod 2 = 1 then `Swap else `Tas in
  let write_to j v =
    match kind j with
    | `Reg -> Register.write (Value.int v)
    | `Swap -> Swap_register.swap (Value.int v)
    | `Tas -> Test_and_set.test_and_set
  in
  let matches j v read_value =
    match kind j with
    | `Reg | `Swap -> Value.equal read_value (Value.int v)
    | `Tas -> Value.equal read_value (Value.int 1)
  in
  let code ~n:_ ~pid:_ ~input =
    let objs = List.init r Fun.id in
    let rec attempt v fuel =
      let* () = iter_list (fun j -> map (apply j (write_to j v)) ignore) objs in
      let* vals = map_list (fun j -> apply j Register.read) objs in
      let all_match = List.for_all2 (fun j rv -> matches j v rv) objs vals in
      if all_match then decide v
      else
        let v' =
          match vals with Value.Int w :: _ -> w | _ -> v
        in
        if fuel = 0 then decide v' else attempt v' (fuel - 1)
    in
    attempt input 16
  in
  {
    name = Printf.sprintf "flawed-mixed-r%d" r;
    kind = `Deterministic;
    identical = true;
    supports_n = (fun n -> n >= 1);
    optypes =
      (fun ~n:_ ->
        List.init r (fun j ->
            match kind j with
            | `Reg -> Register.optype ()
            | `Swap -> Swap_register.optype ()
            | `Tas -> Test_and_set.optype ()));
    code;
  }

(** [first_writer ~r]: decide on the first value you observe anywhere; if
    no object is written yet, write your own value to every object and
    decide it.  The r = 1 version is the textbook broken register
    consensus. *)
let first_writer ~r : Protocol.t =
  let open Proc in
  let code ~n:_ ~pid:_ ~input =
    let* vals =
      map_list (fun j -> apply j Register.read) (List.init r Fun.id)
    in
    let seen =
      List.find_map
        (function Value.Int w -> Some w | _ -> None)
        vals
    in
    match seen with
    | Some w -> decide w
    | None ->
        let* () =
          iter_list
            (fun j -> map (apply j (Register.write_int input)) ignore)
            (List.init r Fun.id)
        in
        decide input
  in
  {
    name = Printf.sprintf "flawed-first-writer-r%d" r;
    kind = `Deterministic;
    identical = true;
    supports_n = (fun n -> n >= 1);
    optypes = (fun ~n:_ -> List.init r (fun _ -> Register.optype ()));
    code;
  }
