(* Weak shared coins.

   A shared coin with agreement parameter delta guarantees that, for each
   value v, with probability at least delta *every* process sees v.  The
   Aspnes–Herlihy consensus framework ({!Rw_consensus}) only needs this
   weak guarantee: the coin's output never affects safety, only the
   expected number of rounds (1/delta).

   Two implementations:

   - [register_coin]: n single-writer registers.  Each flipper accumulates
     a local sum of fair +-1 flips, publishes (round, sum), and reads all
     registers; it outputs the sign of the total once |total| reaches the
     barrier n.  Registers are reused across rounds via the round tag, so
     the register count stays O(n) for the whole protocol.

   - [counter_coin]: a single counter random walk with absorbing barriers
     at +-(K*n), the structure Aspnes's bounded-counter algorithm uses as
     its cursor.  Exercised directly by experiment E6 (expected flips grow
     quadratically; agreement probability grows with K). *)

open Sim
open Objects

(** Register-based coin.  [base] is the index of the first of [n] coin
    registers; register [base + pid] is written only by [pid].  Each
    register holds Pair (round, sum). *)
let register_coin ~n ~base ~pid ~round : int Proc.t =
  let open Proc in
  let rec spin my_sum =
    let* heads = flip in
    let my_sum = my_sum + if heads then 1 else -1 in
    let* _ =
      apply (base + pid)
        (Register.write (Value.pair (Value.int round) (Value.int my_sum)))
    in
    let* total = collect 0 0 in
    if total >= n then return 1
    else if total <= -n then return 0
    else spin my_sum
  and collect j acc =
    if j >= n then return acc
    else
      let* v = apply (base + j) Register.read in
      let contribution =
        match v with
        | Value.Pair (Value.Int r, Value.Int sum) when r = round -> sum
        | _ -> 0
      in
      collect (j + 1) (acc + contribution)
  in
  spin 0

(** Counter-based coin: one shared counter at object index [obj], barriers
    at +-[k]*n.  All processes flip and push; first barrier reached wins.
    Output: 1 for the +barrier, 0 for the -barrier. *)
let counter_coin ~n ~obj ~k : int Proc.t =
  let open Proc in
  let bar = k * n in
  let rec spin () =
    let* c = apply obj Counter.read in
    let c = Value.to_int c in
    if c >= bar then return 1
    else if c <= -bar then return 0
    else
      let* heads = flip in
      let* _ = apply obj (if heads then Counter.inc else Counter.dec) in
      spin ()
  in
  spin ()
