(** A plausible-but-blocking n-process "consensus" from one test&set plus
    registers: safe and solo-terminating, but losers spin on the winner's
    announcement — not wait-free, exactly as the consensus-number-2 status
    of test&set demands for n > 2. *)

open Sim

val code : n:int -> pid:int -> input:int -> int Proc.t
val protocol : Protocol.t
