(** Consensus protocols, packaged: the objects used for n processes and
    the procedure each process runs.  Decisions are [int]s (binary
    consensus uses 0/1). *)

open Sim

type t = {
  name : string;
  kind : [ `Deterministic | `Randomized ];
  identical : bool;
      (** process code independent of the pid — the Section 3.1
          assumption; required by [Lowerbound.Attack] *)
  supports_n : int -> bool;
  optypes : n:int -> Optype.t list;
  code : n:int -> pid:int -> input:int -> int Proc.t;
}

(** Number of object instances used for n processes. *)
val space : t -> n:int -> int

(** The initial configuration for the given inputs (one per process).
    Raises [Invalid_argument] if the protocol does not support that n. *)
val initial_config : t -> inputs:int list -> int Config.t

type run_report = {
  result : int Run.result;
  verdict : Checker.verdict;
  inputs : int list;
}

(** Run once under a scheduler; check consistency and validity of the
    decisions reached. *)
val run_once :
  ?max_steps:int -> t -> inputs:int list -> sched:int Sched.t -> run_report

(** [run_many] with seeds [seed .. seed+reps-1]. *)
val run_many :
  ?max_steps:int ->
  t ->
  inputs:int list ->
  mk_sched:(int -> int Sched.t) ->
  seed:int ->
  reps:int ->
  run_report list

(** Mean total steps over completed runs; [None] if none completed. *)
val mean_steps : run_report list -> float option
