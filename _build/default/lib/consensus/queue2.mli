(** Deterministic 2-process consensus from one pre-filled FIFO queue plus
    two input-publication registers (Herlihy). *)

open Sim

val winner : Value.t
val loser : Value.t
val code : n:int -> pid:int -> input:int -> int Proc.t
val protocol : Protocol.t
