(** Deterministic 2-process consensus from one swap register plus two
    input-publication registers (Section 4). *)

open Sim

val code : n:int -> pid:int -> input:int -> int Proc.t
val protocol : Protocol.t
