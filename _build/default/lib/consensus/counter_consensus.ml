(* Theorem 4.2 (Aspnes): randomized consensus from bounded counters.

   We implement the algorithm in the form the paper describes it: "the
   first two [counters] keep track of the number of processes with input 0
   and input 1 respectively, and the third is used as the cursor for a
   random walk", with the cursor ranging over an interval linear in n.
   (The paper notes the two vote counters "can be eliminated at some cost
   in performance" via private communication [8]; we reproduce the
   published three-counter version and treat the one-counter refinement as
   out of scope — see DESIGN.md.)

   The vote counters take values in [0, n]; the cursor's range is
   [-4n, 4n]: barriers at +-3n plus one pending move per process of
   staleness slack, so the modulo semantics of the bounded counter is
   never exercised (wrap-around would be catastrophic; the slack is the
   point). *)

open Sim
open Objects

(* object layout: 0 = votes0, 1 = votes1, 2 = cursor *)

let backend : Walk_core.backend =
  let open Proc in
  let ack obj op =
    let* _ = apply obj op in
    return ()
  in
  {
    announce = (fun v -> ack (if v = 0 then 0 else 1) Counter.inc);
    read_state =
      (let* v0 = apply 0 Counter.read in
       let* v1 = apply 1 Counter.read in
       let* c = apply 2 Counter.read in
       return (Value.to_int v0, Value.to_int v1, Value.to_int c));
    move =
      (fun dir -> ack 2 (if dir > 0 then Counter.inc else Counter.dec));
  }

let code ~n ~pid:_ ~input = Walk_core.code ~n ~input backend

(** The protocol with an explicit cursor slack beyond the +-3n barriers.
    [slack = n] (the default protocol) absorbs one pending move per
    process, so the bounded counter never wraps; [slack = 0] is the
    ablation: a stale move at the barrier wraps the cursor to the far
    end, and the checker finds inconsistent executions (see E14). *)
let protocol_with_slack ~slack : Protocol.t =
  {
    name = (if slack = 0 then "counter-3-noslack" else "counter-3");
    kind = `Randomized;
    identical = true;
    supports_n = (fun n -> n >= 1);
    optypes =
      (fun ~n ->
        let hi = (3 + slack) * n in
        [
          Bounded_counter.optype ~lo:0 ~hi:n ();
          Bounded_counter.optype ~lo:0 ~hi:n ();
          Bounded_counter.optype ~lo:(-hi) ~hi ();
        ]);
    code;
  }

let protocol : Protocol.t = protocol_with_slack ~slack:1
