(* A "plausible" n-process consensus from test&set objects and registers —
   and a live demonstration of why the wait-free hierarchy forbids it for
   n > 2 (test&set has consensus number 2).

   Protocol: publish your input, then play a single n-way test&set; the
   winner writes its input to a decision register and decides it; losers
   SPIN on the decision register until the winner's value appears.

   Properties, all exercised by the tests:
   - safe: everyone decides the winner's input (consistent and valid);
   - solo-terminating: a process running alone wins and decides;
   - NOT wait-free: if the winner stalls after winning and before
     announcing, every loser spins forever — a starvation schedule the
     tests exhibit.  Exactly the blocking that Herlihy's theorem says
     cannot be removed with consensus-number-2 objects. *)

open Sim
open Objects

(* object layout: 0 = test&set, 1 = decision register, 2.. = inputs *)

let code ~n:_ ~pid ~input =
  let open Proc in
  let* _ = apply (2 + pid) (Register.write_int input) in
  let* won = apply 0 Test_and_set.test_and_set in
  if Value.to_int won = 0 then
    let* _ = apply 1 (Register.write_int input) in
    decide input
  else
    let rec spin () =
      let* v = apply 1 Register.read in
      match v with Value.Int w -> decide w | _ -> spin ()
    in
    spin ()

let protocol : Protocol.t =
  {
    name = "tas-tournament";
    kind = `Deterministic;
    identical = false;
    supports_n = (fun n -> n >= 1);
    optypes =
      (fun ~n ->
        Test_and_set.optype () :: Register.optype ()
        :: List.init n (fun _ -> Register.optype ()));
    code;
  }
