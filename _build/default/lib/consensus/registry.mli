(** All packaged protocols, for the CLI, examples and experiments. *)

val correct : Protocol.t list
val flawed : Protocol.t list
val all : Protocol.t list
val find : string -> Protocol.t option
