(** Herlihy's deterministic n-process consensus from one compare&swap
    register (cited as [20, Theorem 5]; the f(n) = 1 behind
    Corollary 4.1). *)

open Sim

val code : n:int -> pid:int -> input:int -> int Proc.t
val protocol : Protocol.t
