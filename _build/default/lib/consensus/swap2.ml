(* Deterministic 2-process consensus from one swap register plus two
   read-write registers (Section 4: swap registers solve 2- but not
   3-process consensus).  Same race shape as {!Tas2}: publish, then swap a
   token into the shared register; whoever gets back the initial empty value
   won. *)

open Sim
open Objects

(* object layout: 0 = swap register, 1 = P0's register, 2 = P1's register *)

let code ~n:_ ~pid ~input =
  let open Proc in
  let* _ = apply (1 + pid) (Register.write_int input) in
  let* old = apply 0 (Swap_register.swap (Value.int pid)) in
  match old with
  | Value.Opt None -> decide input (* first to swap: we win *)
  | _ ->
      let* other = apply (1 + (1 - pid)) Register.read in
      decide (Value.to_int other)

let protocol : Protocol.t =
  {
    name = "swap-2proc";
    kind = `Deterministic;
    identical = false;
    supports_n = (fun n -> n = 2);
    optypes =
      (fun ~n:_ ->
        [ Swap_register.optype (); Register.optype (); Register.optype () ]);
    code;
  }
