(* The randomized drift-walk consensus core, shared by
   {!Counter_consensus} (Theorem 4.2, Aspnes's bounded-counter algorithm as
   the paper describes it: two vote counters plus a random-walk cursor
   ranging over [-3n, 3n]) and {!Fa_consensus} (Theorem 4.4: a single
   fetch&add register).

   Shared abstract state: vote counts (v0, v1) and a cursor c.

       announce:  votes[input] += 1           (the process's first step)
       loop:      read (v0, v1, c)
                  if c >= 3n          -> decide 1
                  if c <= -3n         -> decide 0
                  direction:
                    c >= n            -> +1         (outer drift band)
                    c <= -n           -> -1
                    |c| < n, both values announced -> fair coin (+1/-1)
                    |c| < n, one value announced   -> towards own input
                  cursor += direction

   Why this is safe (consistency), sketch: suppose some read returns
   c >= 3n (a 1-decision).  At that instant each other process holds at
   most one pending move justified by an older read, so c can fall at most
   n-1 below 3n; every read linearized afterwards therefore returns
   c >= 2n+1 > n and lands in the +1 drift band.  Inductively c never
   falls below 2n+1 again, so no read ever returns -3n: 0 is never
   decided.  Symmetrically for a 0-decision.  The same staleness bound
   shows the cursor stays within [-4n, 4n], which is why the backing
   bounded counter gets range [-4n, 4n] (the paper quotes [-3n, 3n] for
   the barriers themselves).

   Validity: if every input is v then votes[1-v] stays 0 forever, every
   move is towards v, and the walk never flips a coin, so only v can be
   decided.  With mixed inputs both values are valid.

   Termination: inside the inner band the cursor is an unbiased random
   walk; once it escapes, the drift bands push it deterministically to a
   barrier.  A solo process terminates in O(n^2) expected steps; tests
   measure expected work under adversarial schedulers empirically (E5). *)

open Sim

type backend = {
  announce : int -> unit Proc.t;  (** register a vote for input 0 or 1 *)
  read_state : (int * int * int) Proc.t;  (** (votes0, votes1, cursor) *)
  move : int -> unit Proc.t;  (** cursor += (+1 | -1) *)
}

let barrier ~n = 3 * n
let band ~n = n

(** Cursor range needed by the backing object: barriers plus staleness
    slack of one pending move per process. *)
let cursor_range ~n = (4 * n) + 1

let code ~n ~input backend =
  let open Proc in
  let bar = barrier ~n and bnd = band ~n in
  let toward_input = if input = 1 then 1 else -1 in
  let* () = backend.announce input in
  let rec loop () =
    let* v0, v1, c = backend.read_state in
    if c >= bar then decide 1
    else if c <= -bar then decide 0
    else
      let* dir =
        if c >= bnd then return 1
        else if c <= -bnd then return (-1)
        else if v0 > 0 && v1 > 0 then
          let* heads = flip in
          return (if heads then 1 else -1)
        else return toward_input
      in
      let* () = backend.move dir in
      loop ()
  in
  loop ()
