(** Theorem 4.2 (Aspnes): randomized consensus from bounded counters, in
    the published three-counter form the paper describes — two vote
    counters in [0, n] and a random-walk cursor counter in [-4n, 4n]
    (barriers at +-3n plus staleness slack, so the bounded counter's
    modulo semantics is never exercised). *)

open Sim

val backend : Walk_core.backend
val code : n:int -> pid:int -> input:int -> int Proc.t

(** Cursor slack beyond the +-3n barriers, in units of n: [~slack:1] is
    the (safe) default; [~slack:0] is the wrap-around ablation E14
    refutes. *)
val protocol_with_slack : slack:int -> Protocol.t

val protocol : Protocol.t
