(** The randomized drift-walk consensus core shared by
    {!Counter_consensus} (Theorem 4.2) and {!Fa_consensus} (Theorem 4.4).

    Abstract state: vote counts (votes0, votes1) and a cursor.  Processes
    announce their input, then walk the cursor — deterministic drift
    outside the inner band and towards barriers, fair coin inside the band
    once both values are announced, towards the own input otherwise.
    Decisions at the +-3n barriers.  See the implementation header for the
    staleness-slack consistency argument and why the cursor stays within
    [-4n, 4n]. *)

open Sim

type backend = {
  announce : int -> unit Proc.t;  (** register a vote for input 0 or 1 *)
  read_state : (int * int * int) Proc.t;  (** (votes0, votes1, cursor) *)
  move : int -> unit Proc.t;  (** cursor += (+1 | -1) *)
}

(** Decision barriers at +-[barrier ~n] = 3n. *)
val barrier : n:int -> int

(** Inner (randomized) band boundary: n. *)
val band : n:int -> int

(** Cursor range the backing object must support: 4n + 1 on each side. *)
val cursor_range : n:int -> int

val code : n:int -> input:int -> backend -> int Proc.t
