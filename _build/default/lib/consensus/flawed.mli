(** Deliberately under-provisioned "consensus" protocols: the adversary
    targets of Section 3.  All are solo-terminating and written with
    identical process code; the lower-bound constructions break each of
    them mechanically. *)

type style = Rw  (** plain registers *) | Swapping  (** swap registers *)

(** Write your value to all r objects, read back, decide on unanimity;
    adopt and retry otherwise. *)
val unanimous : style:style -> r:int -> Protocol.t

(** Like {!unanimous} but re-proposes by coin flip on disagreement. *)
val coin_retry : style:style -> r:int -> Protocol.t

(** Like {!unanimous} over a mix of historyless types: a register, swap
    registers and test&set registers alternating.  Requires r >= 2. *)
val mixed : r:int -> Protocol.t

(** Decide the first value observed; write-then-decide if none.  r = 1 is
    the textbook broken register consensus. *)
val first_writer : r:int -> Protocol.t
