(** Randomized n-process consensus from O(n) read-write registers — the
    Aspnes–Herlihy upper bound the paper quotes, implemented in the
    adopt-commit formulation (3n single-writer registers, reused across
    rounds via round tags; safety independent of the shared coin). *)

open Sim

val code : n:int -> pid:int -> input:int -> int Proc.t
val protocol : Protocol.t
