(* Herlihy's deterministic 2-process consensus from one FIFO queue plus
   two input-publication registers: the queue is pre-filled with a winner
   token and a loser token; whoever dequeues the winner decides its own
   input, the other decides the winner's published input.  The standard
   witness that queues sit at level 2 of the wait-free hierarchy. *)

open Sim
open Objects

(* object layout: 0 = queue (pre-filled), 1 = P0's register, 2 = P1's *)

let winner = Value.sym "win"
let loser = Value.sym "lose"

let code ~n:_ ~pid ~input =
  let open Proc in
  let* _ = apply (1 + pid) (Register.write_int input) in
  let* token = apply 0 Queue_obj.deq in
  if Value.equal token winner then decide input
  else
    let* other = apply (1 + (1 - pid)) Register.read in
    decide (Value.to_int other)

let protocol : Protocol.t =
  {
    name = "queue-2proc";
    kind = `Deterministic;
    identical = false;
    supports_n = (fun n -> n = 2);
    optypes =
      (fun ~n:_ ->
        [
          Queue_obj.optype ~init:[ winner; loser ] ();
          Register.optype ();
          Register.optype ();
        ]);
    code;
  }
