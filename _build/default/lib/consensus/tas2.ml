(* Deterministic 2-process consensus from one test&set register plus two
   read-write registers (Section 4: any object where two successive
   applications of an operation respond differently solves 2-process
   consensus; test&set is the canonical example, and registers for input
   publication are allowed by the wait-free hierarchy's ground rules).

   Protocol: publish your input in your register, then TEST&SET.  The winner
   (response 0) decides its own input; the loser decides the winner's
   published input, which is already there because the winner published
   before playing. *)

open Sim
open Objects

(* object layout: 0 = test&set, 1 = P0's register, 2 = P1's register *)

let code ~n:_ ~pid ~input =
  let open Proc in
  let* _ = apply (1 + pid) (Register.write_int input) in
  let* won = apply 0 Test_and_set.test_and_set in
  if Value.to_int won = 0 then decide input
  else
    let* other = apply (1 + (1 - pid)) Register.read in
    decide (Value.to_int other)

let protocol : Protocol.t =
  {
    name = "tas-2proc";
    kind = `Deterministic;
    identical = false;
    supports_n = (fun n -> n = 2);
    optypes =
      (fun ~n:_ ->
        [ Test_and_set.optype (); Register.optype (); Register.optype () ]);
    code;
  }
