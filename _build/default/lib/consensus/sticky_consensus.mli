(** Deterministic n-process consensus from one sticky bit. *)

open Sim

val code : n:int -> pid:int -> input:int -> int Proc.t
val protocol : Protocol.t
