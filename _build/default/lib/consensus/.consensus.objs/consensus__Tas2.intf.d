lib/consensus/tas2.mli: Proc Protocol Sim
