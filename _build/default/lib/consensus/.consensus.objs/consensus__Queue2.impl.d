lib/consensus/queue2.ml: Objects Proc Protocol Queue_obj Register Sim Value
