lib/consensus/registry.mli: Protocol
