lib/consensus/counter_consensus.mli: Proc Protocol Sim Walk_core
