lib/consensus/tas_tournament.ml: List Objects Proc Protocol Register Sim Test_and_set Value
