lib/consensus/fa_consensus.mli: Proc Protocol Sim Walk_core
