lib/consensus/shared_coin.mli: Proc Sim
