lib/consensus/swap2.mli: Proc Protocol Sim
