lib/consensus/tas2.ml: Objects Proc Protocol Register Sim Test_and_set Value
