lib/consensus/counter_consensus.ml: Bounded_counter Counter Objects Proc Protocol Sim Value Walk_core
