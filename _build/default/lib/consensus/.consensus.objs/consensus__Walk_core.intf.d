lib/consensus/walk_core.mli: Proc Sim
