lib/consensus/rw_consensus.ml: List Objects Proc Protocol Register Shared_coin Sim Value
