lib/consensus/registry.ml: Cas_consensus Counter_consensus Fa_consensus Flawed List Protocol Queue2 Rw_consensus Sticky_consensus Swap2 Tas2
