lib/consensus/cas_consensus.ml: Compare_swap Objects Proc Protocol Sim Value
