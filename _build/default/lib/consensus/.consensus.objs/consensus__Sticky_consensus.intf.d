lib/consensus/sticky_consensus.mli: Proc Protocol Sim
