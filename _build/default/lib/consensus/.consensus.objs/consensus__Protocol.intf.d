lib/consensus/protocol.mli: Checker Config Optype Proc Run Sched Sim
