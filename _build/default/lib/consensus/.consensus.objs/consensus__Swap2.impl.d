lib/consensus/swap2.ml: Objects Proc Protocol Register Sim Swap_register Value
