lib/consensus/tas_tournament.mli: Proc Protocol Sim
