lib/consensus/cas_consensus.mli: Proc Protocol Sim
