lib/consensus/shared_coin.ml: Counter Objects Proc Register Sim Value
