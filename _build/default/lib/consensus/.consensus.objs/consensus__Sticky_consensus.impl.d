lib/consensus/sticky_consensus.ml: Objects Proc Protocol Sim Sticky Value
