lib/consensus/flawed.mli: Protocol
