lib/consensus/rw_consensus.mli: Proc Protocol Sim
