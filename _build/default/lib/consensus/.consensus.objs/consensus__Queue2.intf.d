lib/consensus/queue2.mli: Proc Protocol Sim Value
