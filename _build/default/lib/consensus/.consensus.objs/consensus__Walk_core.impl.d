lib/consensus/walk_core.ml: Proc Sim
