lib/consensus/fa_consensus.ml: Fetch_add Objects Proc Protocol Sim Value Walk_core
