lib/consensus/protocol.ml: Checker Config List Optype Printf Proc Run Sim
