lib/consensus/flawed.ml: Fun List Objects Printf Proc Protocol Register Sim Swap_register Test_and_set Value
