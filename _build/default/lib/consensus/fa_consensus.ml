(* Theorem 4.4: randomized n-process consensus from a *single* fetch&add
   register.

   The register's integer value packs the three logical counters of the
   drift-walk core into disjoint numeric fields:

       value = votes0 + (n+1) * votes1 + (n+1)^2 * (cursor + 4n)

   Each vote count is at most n (every process announces exactly once), so
   base n+1 never carries between fields; the cursor stays in [-4n, 4n]
   (see {!Walk_core}), so its offset field stays in [0, 8n].  A FETCH&ADD
   of an encoded delta updates one logical field atomically, and
   FETCH&ADD(0) reads all three fields at a single linearization point —
   exactly the "counter implemented from a fetch&add register" move the
   paper invokes, generalized to three counters at once.  One object, as
   the theorem requires. *)

open Sim
open Objects

let votes1_mul ~n = n + 1
let cursor_mul ~n = (n + 1) * (n + 1)
let cursor_offset ~n = 4 * n

let init_value ~n = cursor_mul ~n * cursor_offset ~n

let decode ~n x =
  let m1 = votes1_mul ~n and m2 = cursor_mul ~n in
  let votes0 = x mod m1 in
  let votes1 = x / m1 mod m1 in
  let cursor = (x / m2) - cursor_offset ~n in
  (votes0, votes1, cursor)

let backend ~n : Walk_core.backend =
  let open Proc in
  let add k =
    let* _ = apply 0 (Fetch_add.fetch_add k) in
    return ()
  in
  {
    announce = (fun v -> add (if v = 0 then 1 else votes1_mul ~n));
    read_state =
      (let* x = apply 0 (Fetch_add.fetch_add 0) in
       return (decode ~n (Value.to_int x)));
    move = (fun dir -> add (dir * cursor_mul ~n));
  }

let code ~n ~pid:_ ~input = Walk_core.code ~n ~input (backend ~n)

let protocol : Protocol.t =
  {
    name = "fetch&add-1";
    kind = `Randomized;
    identical = true;
    supports_n = (fun n -> n >= 1);
    optypes = (fun ~n -> [ Fetch_add.optype ~init:(init_value ~n) () ]);
    code;
  }
