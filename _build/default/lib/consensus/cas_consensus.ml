(* Herlihy's one-object n-process consensus from a single compare&swap
   register ([20, Theorem 5], invoked by Corollary 4.1): every process tries
   to CAS its own input into the (initially empty) register; the first
   succeeds and everyone decides the value the register then holds.
   Deterministic, wait-free, one bounded object, any n. *)

open Sim
open Objects

let code ~n:_ ~pid:_ ~input =
  let open Proc in
  let* old =
    apply 0
      (Compare_swap.cas ~expected:Value.none ~desired:(Value.some (Value.int input)))
  in
  match old with
  | Value.Opt None -> decide input (* we won the race *)
  | Value.Opt (Some v) -> decide (Value.to_int v)
  | _ -> assert false

let protocol : Protocol.t =
  {
    name = "cas-1";
    kind = `Deterministic;
    identical = true;
    supports_n = (fun n -> n >= 1);
    optypes = (fun ~n:_ -> [ Compare_swap.optype () ]);
    code;
  }
