(** Weak shared coins: with probability at least delta per side, every
    process sees the same value.  Safety of the consensus protocols never
    depends on the coin; only expected round counts do. *)

open Sim

(** n single-writer registers at indices [base .. base+n-1], reused across
    rounds via round tags.  Accumulate fair +-1 flips; output the sign of
    the total at absolute value n. *)
val register_coin : n:int -> base:int -> pid:int -> round:int -> int Proc.t

(** One shared counter at index [obj], absorbing barriers at +-(k*n) —
    the random-walk structure of Aspnes's cursor; exercised by
    experiment E6. *)
val counter_coin : n:int -> obj:int -> k:int -> int Proc.t
