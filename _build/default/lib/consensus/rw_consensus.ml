(* Randomized n-process consensus from O(n) read-write registers — the
   upper bound the paper quotes ("randomized n-process consensus can be
   solved using O(n) read-write registers", Aspnes–Herlihy [9]).

   We implement the Aspnes–Herlihy round framework in its modern
   adopt-commit formulation (Gafni's adopt-commit objects; see Aspnes's
   survey of randomized consensus): per round, processes run an
   adopt-commit protocol on their current preference; a COMMIT decides, an
   ADOPT forces the adopted value into the next round, and a process that
   saw no possible commit takes the round's shared coin as its new
   preference.  Safety is coin-independent: if any process commits w at
   round r, every process leaving round r carries w, so all later rounds
   are unanimous and can only commit w.

   Register layout (3n single-writer registers — O(n) total, reused across
   rounds via round tags rather than allocated per round):

     A[i] = 0..n-1    : phase-1 announcements, Pair (round, value)
     B[i] = n..2n-1   : phase-2 announcements, Pair (round, Pair (value, flag))
     C[i] = 2n..3n-1  : shared-coin accumulators ({!Shared_coin})

   Adopt-commit per round r, process i with preference v:
     1. A[i] := (r, v); collect A-entries tagged r.
     2. flag := (all collected values equal v);
        B[i] := (r, (v, flag)); collect B-entries tagged r.
     3. If every B-entry is flagged (they then all carry the same value w):
        COMMIT w.  Else if some entry is flagged with w: ADOPT w.  Else:
        no one can have committed this round — free to take the coin.

   The classic argument that at most one value is ever flagged in a round:
   order processes by their A-writes; a later writer's collect sees the
   earlier value and refuses to flag a different one. *)

open Sim
open Objects

let code ~n ~pid ~input =
  let open Proc in
  let reg_a i = i and reg_b i = n + i in
  let tagged_a r v =
    match v with
    | Value.Pair (Value.Int r', Value.Int value) when r' = r -> Some value
    | _ -> None
  in
  let tagged_b r v =
    match v with
    | Value.Pair (Value.Int r', Value.Pair (Value.Int value, Value.Bool flag))
      when r' = r ->
        Some (value, flag)
    | _ -> None
  in
  let collect reg decode =
    let rec go j acc =
      if j >= n then return (List.rev acc)
      else
        let* v = apply (reg j) Register.read in
        go (j + 1) (match decode v with Some x -> x :: acc | None -> acc)
    in
    go 0 []
  in
  let rec round_loop pref r =
    (* phase 1: announce preference *)
    let* _ =
      apply (reg_a pid)
        (Register.write (Value.pair (Value.int r) (Value.int pref)))
    in
    let* avals = collect reg_a (tagged_a r) in
    let flag = List.for_all (( = ) pref) avals in
    (* phase 2: announce whether we saw unanimity *)
    let* _ =
      apply (reg_b pid)
        (Register.write
           (Value.pair (Value.int r)
              (Value.pair (Value.int pref) (Value.bool flag))))
    in
    let* bvals = collect reg_b (tagged_b r) in
    let flagged = List.filter_map (fun (v, f) -> if f then Some v else None) bvals in
    match flagged with
    | w :: _ when List.for_all snd bvals -> decide w (* commit *)
    | w :: _ -> round_loop w (r + 1) (* adopt *)
    | [] ->
        let* c = Shared_coin.register_coin ~n ~base:(2 * n) ~pid ~round:r in
        round_loop c (r + 1)
  in
  round_loop input 1

let protocol : Protocol.t =
  {
    name = "rw-3n";
    kind = `Randomized;
    identical = false;
    supports_n = (fun n -> n >= 1);
    optypes = (fun ~n -> List.init (3 * n) (fun _ -> Register.optype ()));
    code;
  }
