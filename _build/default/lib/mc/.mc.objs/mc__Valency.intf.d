lib/mc/valency.mli: Sim
