lib/mc/explore.ml: Array Config Event List Proc Run Sim Trace
