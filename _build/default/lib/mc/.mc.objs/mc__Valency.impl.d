lib/mc/valency.ml: Explore List Printf Sim String
