lib/mc/enumerate.mli: Sim
