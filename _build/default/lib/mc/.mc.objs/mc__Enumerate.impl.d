lib/mc/enumerate.ml: Config Explore List Objects Printf Proc Sim Value
