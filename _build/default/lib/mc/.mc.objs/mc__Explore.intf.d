lib/mc/explore.mli: Config Event Sim Trace
