(** FLP/Herlihy-style valency analysis: which decisions are reachable from
    a configuration. *)

type 'a t =
  | Univalent of 'a
  | Bivalent of 'a list
  | Unknown  (** exploration truncated before the answer was determined *)

val classify : ?max_depth:int -> ?max_states:int -> 'a Sim.Config.t -> 'a t
val is_bivalent : ?max_depth:int -> ?max_states:int -> 'a Sim.Config.t -> bool
val to_string : ('a -> string) -> 'a t -> string

(** The FLP/Herlihy argument, played greedily: how many steps (up to
    [max_depth]) can an adversary take from [config] while keeping it
    bivalent?  [check_depth]/[check_states] bound each bivalence check.
    Registers: the adversary survives to any depth (deterministic
    consensus impossible); one compare&swap: 0. *)
val bivalence_survival :
  ?max_depth:int ->
  ?check_depth:int ->
  ?check_states:int ->
  'a Sim.Config.t ->
  int
