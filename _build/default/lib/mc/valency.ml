(* Valency analysis in the style of the FLP / Herlihy impossibility
   arguments: a configuration is v-univalent if every reachable decision is
   v, bivalent if both 0 and 1 are reachable.  Used by the examples and
   tests to exhibit why deterministic consensus from registers fails, and to
   sanity-check that correct protocols start bivalent (when inputs differ)
   and end univalent. *)

type 'a t =
  | Univalent of 'a
  | Bivalent of 'a list
  | Unknown  (** exploration truncated before any decision was reachable *)

let classify ?max_depth ?max_states config =
  let values, truncated = Explore.decidable_values ?max_depth ?max_states config in
  match values with
  | [] -> Unknown
  | [ v ] when not truncated -> Univalent v
  | [ _ ] -> Unknown
  | vs -> Bivalent vs

let is_bivalent ?max_depth ?max_states config =
  match classify ?max_depth ?max_states config with
  | Bivalent _ -> true
  | Univalent _ | Unknown -> false

let to_string value_to_string = function
  | Univalent v -> Printf.sprintf "univalent(%s)" (value_to_string v)
  | Bivalent vs ->
      Printf.sprintf "bivalent{%s}"
        (String.concat "," (List.map value_to_string vs))
  | Unknown -> "unknown"

(* The FLP/Herlihy impossibility argument, played greedily: starting from a
   bivalent configuration, how many steps can an adversary take while
   keeping the configuration bivalent?  For consensus from registers the
   answer is "forever" (which is why deterministic wait-free consensus from
   registers is impossible and randomization is needed); for one
   compare&swap the answer is 0 — the very first step decides the game. *)

let bivalence_survival ?(max_depth = 12) ?(check_depth = 30)
    ?(check_states = 200_000) config =
  let bivalent c =
    match classify ~max_depth:check_depth ~max_states:check_states c with
    | Bivalent _ -> true
    | Univalent _ | Unknown -> false
  in
  let rec go config depth =
    if depth >= max_depth then depth
    else
      let next =
        List.find_map
          (fun pid ->
            List.find_map
              (fun (config', _) ->
                if bivalent config' then Some config' else None)
              (Explore.successors config pid))
          (Sim.Config.enabled_pids config)
      in
      match next with None -> depth | Some config' -> go config' (depth + 1)
  in
  if bivalent config then go config 0 else 0
