(** The paper's closed-form bounds: Theorem 3.3 (identical processes),
    Lemma 3.6 (general historyless case), and their inversions — the
    Omega(sqrt n) curves of Theorem 3.7. *)

(** r^2 - r + 1: max identical processes with r registers (Thm 3.3). *)
val identical_process_bound : int -> int

(** r^2 - r + 2: where the identical-process attack applies. *)
val identical_attack_threshold : int -> int

(** 3r^2 + r: where the general attack applies (Lemma 3.6). *)
val general_process_bound : int -> int

(** Smallest r with r^2 - r + 1 >= n. *)
val registers_needed_identical : int -> int

(** Smallest r with 3r^2 + r >= n: the Omega(sqrt n) curve. *)
val objects_needed_general : int -> int

(** The O(n) register upper bound as realized by rw-3n. *)
val registers_sufficient : int -> int
