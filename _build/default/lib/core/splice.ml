(* Lemma 3.5, as a program: combine two interruptible executions that
   decide different values into one execution that decides both.

   Each side carries its (remaining) witness, the process set it may still
   step, and its *excess capacity*: for some objects, processes that are
   poised there and guaranteed never to step in the witness — exactly the
   proof's device for handing the other side the poised writers it needs.

   The recursion on |V-bar| + |W-bar|:

   - V subset-of W: replay the V-side's first piece.  Its nontrivial
     operations all land inside W, and the W-side's witness begins with a
     block write to W, which obliterates them — so if the V-side is done
     (single piece, hence a decision), replaying the whole W-side witness
     yields the second, conflicting decision.  Otherwise recurse on the
     V-side's tail, whose initial set strictly grew.

   - Neither a subset: extend a side to U = V + W by *rebuilding* it with
     {!Build_interruptible} from the current configuration, over its own
     processes plus poised helpers drawn from the other side's excess.
     The fresh execution decides something; whichever value comes out
     tells us which side it extends, and the measure v-bar + w-bar
     strictly drops.  At most both sides get rebuilt (then the sets are
     equal and the subset case finishes).

   Replays are re-executions of recorded schedules through the ordinary
   runner; the final decisions are asserted, so a hole in the reasoning
   surfaces as a loud failure, never a fabricated counterexample. *)

open Sim

let fail = Combine.fail

type gside = {
  witness : Interruptible.t;
  pset : int list;
  excess : (int * int list) list;
      (** object -> poised processes never stepping in [witness] *)
  decides : int;
}

let subset a b = List.for_all (fun o -> List.mem o b) a

let vset side = side.witness.Interruptible.init_set

(* helpers drawn from [side]'s excess at the given objects; returns the
   helpers (object-keyed) and the side with its excess reduced *)
let draw_helpers side ~objs ~per_obj =
  let drawn = ref [] in
  let excess' =
    List.map
      (fun (obj, pids) ->
        if List.mem obj objs then begin
          let take = min per_obj (List.length pids) in
          let used = List.filteri (fun i _ -> i < take) pids in
          drawn := used @ !drawn;
          (obj, List.filteri (fun i _ -> i >= take) pids)
        end
        else (obj, pids))
      side.excess
  in
  (!drawn, { side with excess = excess' })

let all_objects config = List.init (Config.n_objects config) Fun.id

(* rebuild [side] with initial object set [u], helped by processes from
   [other]'s excess at u minus-its-own objects; returns the extended side
   and the donor with reduced excess.  [e]/[uset] give the rebuilt side its
   own excess-capacity obligation (towards [other]'s complement). *)
let extend b side other ~u =
  let config = Builder.config b in
  let objs = all_objects config in
  let w = vset other in
  let w_bar = List.filter (fun o -> not (List.mem o w)) objs in
  let new_objs = List.filter (fun o -> not (List.mem o (vset side))) u in
  let u_bar = List.length objs - List.length u in
  let helpers, other' = draw_helpers other ~objs:new_objs ~per_obj:(u_bar + 1) in
  let pset = List.sort_uniq compare (side.pset @ helpers) in
  let scratch =
    Builder.create ~config
      ~inputs:(List.init (Config.n_procs config) (fun _ -> 0))
  in
  let { Build_interruptible.witness; released } =
    Build_interruptible.construct scratch ~all_objects:objs ~vset:u ~pset
      ~uset:w_bar ~e:(List.length w_bar)
  in
  let side' =
    {
      witness;
      pset;
      excess = side.excess @ released;
      decides = witness.Interruptible.decides;
    }
  in
  (side', other')

let assert_decided b (side : gside) =
  let w = side.witness in
  match Config.decision (Builder.config b) w.Interruptible.decider with
  | Some d when d = w.Interruptible.decides -> ()
  | d ->
      fail "replay: P%d decided %s, witness claims %d"
        w.Interruptible.decider
        (match d with Some v -> string_of_int v | None -> "nothing")
        w.Interruptible.decides

let rec combine b aside bside =
  if aside.decides = bside.decides then
    fail "splice: both sides decide %d" aside.decides;
  if subset (vset aside) (vset bside) then subset_case b aside bside
  else if subset (vset bside) (vset aside) then subset_case b bside aside
  else incomparable_case b aside bside

and subset_case b inner outer =
  match inner.witness.Interruptible.pieces with
  | [] -> fail "empty witness"
  | piece :: rest ->
      Interruptible.replay_piece b piece;
      if rest = [] then begin
        assert_decided b inner;
        Interruptible.replay b outer.witness;
        assert_decided b outer
      end
      else
        let witness' =
          {
            inner.witness with
            Interruptible.pieces = rest;
            init_set = (List.hd rest).Interruptible.vset;
          }
        in
        combine b { inner with witness = witness' } outer

and incomparable_case b aside bside =
  let u = List.sort_uniq compare (vset aside @ vset bside) in
  let aside', bside1 = extend b aside bside ~u in
  if aside'.decides = aside.decides then combine b aside' bside1
  else begin
    (* the fresh execution decided the other side's value: extend the other
       side instead (from the same, unchanged configuration) *)
    let bside', aside1 = extend b bside aside ~u in
    if bside'.decides = bside.decides then combine b aside1 bside'
    else
      (* both rebuilt executions flipped: they now decide each other's
         values over the same object set U; combine them directly *)
      combine b aside' bside'
  end
