(* Theorem 2.1, the transfer principle: if f(n) instances of X solve
   n-process randomized consensus and g(n) instances of Y are *required*,
   then any randomized non-blocking implementation of X from Y needs
   g(n)/f(n) instances of Y.  Pure arithmetic — but it is how the paper
   turns the consensus lower bound into lower bounds for implementing
   compare&swap, counters and fetch&add from historyless objects
   (Corollaries 4.1, 4.3, 4.5), so the experiment harness exposes it as a
   calculator over the measured f's and the proved g's. *)

type claim = {
  target : string;  (** X: the implemented type *)
  substrate : string;  (** Y: the implementing type *)
  f : int -> int;  (** instances of X solving n-consensus *)
  g : int -> float;  (** instances of Y required for n-consensus *)
}

(** Lower bound on instances of Y per instance of X, for n processes. *)
let instances_required claim ~n =
  ceil (claim.g n /. float_of_int (claim.f n))

(** The paper's sqrt(n) lower bound for historyless objects, in the
    explicit form of Lemma 3.6: no implementation from r objects serves
    3r^2 + r processes, i.e. r > (sqrt(12n + 13) - 1) / 6 objects are
    needed for n processes. *)
let historyless_lower_bound n =
  (sqrt ((12.0 *. float_of_int n) +. 13.0) -. 1.0) /. 6.0

(* The three corollaries, as claims: each target solves randomized
   consensus with a single object (Herlihy's theorem for compare&swap, this
   paper's Theorems 4.2/4.4 for counters and fetch&add), so implementing
   any of them from historyless objects inherits the full Omega(sqrt n). *)

let corollary_4_1 =
  {
    target = "compare&swap";
    substrate = "historyless";
    f = (fun _ -> 1);
    g = historyless_lower_bound;
  }

let corollary_4_3 =
  {
    target = "bounded counter";
    substrate = "historyless";
    f = (fun _ -> 1);
    g = historyless_lower_bound;
  }

let corollary_4_5 =
  {
    target = "fetch&add";
    substrate = "historyless";
    f = (fun _ -> 1);
    g = historyless_lower_bound;
  }

let corollaries = [ corollary_4_1; corollary_4_3; corollary_4_5 ]
