(* One "side" of the Lemma 3.1 invariant: a set of registers V, one poised
   writer per register, and a witness that — after a block write to V by
   those writers — the designated runner has a solo continuation (with the
   recorded coin outcomes) that decides [decides]. *)

type t = {
  regs : int list;  (** V, sorted object ids *)
  writers : (int * int) list;  (** (object, pid): one poised writer per reg *)
  runner : int;  (** pid, member of [writers], performs the solo run *)
  coins : int list;  (** runner's coin outcomes after the block write *)
  decides : int;  (** value the witness execution decides *)
}

let make ~regs ~writers ~runner ~coins ~decides =
  let regs = List.sort_uniq compare regs in
  assert (List.length writers = List.length regs);
  assert (List.for_all (fun (obj, _) -> List.mem obj regs) writers);
  assert (List.exists (fun (_, pid) -> pid = runner) writers);
  { regs; writers; runner; coins; decides }

let mem t obj = List.mem obj t.regs
let card t = List.length t.regs

let subset a b = List.for_all (fun r -> List.mem r b.regs) a.regs

(** Writers of [t] poised at registers not in [other]. *)
let writers_outside t ~other =
  List.filter (fun (obj, _) -> not (mem other obj)) t.writers

let pp ppf t =
  Fmt.pf ppf "{V=[%a] runner=P%d decides=%d}"
    Fmt.(list ~sep:(any ",") int)
    t.regs t.runner t.decides
