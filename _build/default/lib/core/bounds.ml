(* The paper's closed-form bounds, collected.

   - Theorem 3.3 (identical processes, read-write registers): at most
     r^2 - r + 1 identical processes can solve randomized consensus with r
     registers; equivalently, with r^2 - r + 2 processes an inconsistent
     execution exists ({!Attack} constructs it).
   - Lemma 3.6 (general case, historyless objects): no implementation of
     consensus with nondeterministic solo termination from r historyless
     objects serves 3r^2 + r processes ({!General_attack} constructs the
     witness).
   - Theorem 3.7: hence randomized wait-free n-process consensus needs
     Omega(sqrt n) historyless objects; the explicit inversions are below.
*)

(** Max identical processes solvable with r registers (Theorem 3.3). *)
let identical_process_bound r = (r * r) - r + 1

(** Process count at which the identical-process attack applies. *)
let identical_attack_threshold r = (r * r) - r + 2

(** Process count at which the general attack applies (Lemma 3.6). *)
let general_process_bound r = (3 * r * r) + r

(** Registers needed for n identical processes: smallest r with
    r^2 - r + 1 >= n. *)
let registers_needed_identical n =
  let rec go r = if identical_process_bound r >= n then r else go (r + 1) in
  go 1

(** Historyless objects needed for n processes in the general case:
    smallest r with 3r^2 + r >= n (the Omega(sqrt n) curve). *)
let objects_needed_general n =
  let rec go r = if general_process_bound r >= n then r else go (r + 1) in
  go 1

(** The O(n) upper bound for registers (Aspnes-Herlihy; our [rw-3n] uses
    3n). *)
let registers_sufficient n = 3 * n
