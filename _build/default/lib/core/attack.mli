(** Lemma 3.2 / Theorem 3.3, as a program: the adversary for
    identical-process consensus protocols over read-write registers.
    Given such a protocol (with nondeterministic solo termination), build
    a replayable execution deciding both 0 and 1. *)

open Sim

type outcome = {
  trace : int Trace.t;
  config : int Config.t;
  verdict : Checker.verdict;
  inputs : int list;  (** inputs of all processes, clones included *)
  processes_used : int;
  registers : int;
  genealogy : Builder.lineage list;  (** how each clone came to be *)
  nominal_n : int;
}

type error =
  | Not_identical
  | No_solo_termination of int
  | Solo_decides_wrong of { pid : int; expected : int; got : int }
  | Construction_failed of string

val error_to_string : error -> string

val run :
  ?nominal_n:int ->
  ?max_solo_steps:int ->
  ?max_solo_nodes:int ->
  Consensus.Protocol.t ->
  (outcome, error) result

(** True iff the outcome's execution is genuinely inconsistent. *)
val succeeded : outcome -> bool

(** Realize the attack's execution from a fresh start: all processes
    (clones included) present from the initial configuration, each clone
    shadowing its origin lock-step up to its snapshot point, then the
    attack's schedule verbatim.  Returns the full certified trace and its
    verdict, or an explanation — notably when a shadow's response diverges
    from its origin's, which happens exactly when the object type leaks
    history through responses (why Section 3.1 is stated for read-write
    registers). *)
val certify :
  Consensus.Protocol.t ->
  outcome ->
  (int Trace.t * Checker.verdict, string) result
