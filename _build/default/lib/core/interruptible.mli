(** Interruptible executions (Definition 3.1) and excess capacity
    (Definition 3.2), as concrete replayable data with validators. *)

open Sim

type step = { pid : int; coin : int option }

type piece = {
  vset : int list;  (** V_i, sorted *)
  bwriters : (int * int) list;  (** (object, pid): the block write *)
  body : step list;
}

type t = {
  init_set : int list;  (** V = V_1 *)
  pieces : piece list;  (** nonempty *)
  pset : int list;  (** the process set P *)
  decides : int;
  decider : int;
}

(** Convert a trace segment into replayable steps. *)
val steps_of_events : int Event.t list -> step list

val replay_piece : Builder.t -> piece -> unit
val replay : Builder.t -> t -> unit

(** Pids taking a step anywhere in the execution, sorted unique. *)
val participants : t -> int list

(** Definition 3.1, checked by scratch replay from [config]: strictly
    increasing object sets, block writers take no further steps, every
    nontrivial operation of piece i lands in V_i, the decider decides the
    claimed value. *)
val validate : config:int Config.t -> t -> (unit, string) result

(** Definition 3.2, checked at the starting configuration: at the
    beginning of each piece, at least [e] processes outside [t.pset]
    poised at every object of V_i intersect [uset]. *)
val has_excess_capacity :
  config:int Config.t -> t -> uset:int list -> e:int -> bool
