(** Lemma 3.5, as a program: combine two interruptible executions deciding
    different values into one execution deciding both — replaying pieces
    in the subset case, rebuilding a side over U = V + W with helpers
    drawn from the other side's excess capacity in the incomparable case.
    Replays assert the claimed decisions, so reasoning holes fail loudly
    rather than fabricate counterexamples. *)

type gside = {
  witness : Interruptible.t;
  pset : int list;
  excess : (int * int list) list;
      (** object -> poised processes never stepping in [witness] *)
  decides : int;
}

(** Raises [Combine.Attack_failed] on any violated expectation. *)
val combine : Builder.t -> gside -> gside -> unit
