(** Operation triviality for the lower-bound machinery on unbounded
    protocol objects: every object type in this repository names its
    trivial operation "read" (plus fetch&add 0); the convention is pinned
    to the exhaustively decided algebra by the classification tests.

    "Poised at R" (Section 3): the process's next step applies a
    nontrivial operation to R. *)

open Sim

val is_trivial : Op.t -> bool
val is_nontrivial : Op.t -> bool

(** The pending nontrivial operation of a process, if it is poised in the
    paper's sense. *)
val poised_write : 'a Config.t -> int -> (int * Op.t) option

(** Enabled processes poised (nontrivially) at the object. *)
val poised_at : 'a Config.t -> int -> int list
