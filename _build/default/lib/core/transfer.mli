(** Theorem 2.1, the transfer principle: f(n) instances of X solve
    randomized n-consensus, g(n) instances of Y are required, so any
    randomized non-blocking implementation of X from Y needs g(n)/f(n)
    instances — the engine behind Corollaries 4.1, 4.3, 4.5. *)

type claim = {
  target : string;
  substrate : string;
  f : int -> int;  (** instances of X solving n-consensus *)
  g : int -> float;  (** instances of Y required *)
}

(** ceil (g n / f n). *)
val instances_required : claim -> n:int -> float

(** The explicit Lemma 3.6 inversion: historyless objects needed for n
    processes, r > (sqrt (12n + 13) - 1) / 6. *)
val historyless_lower_bound : int -> float

val corollary_4_1 : claim  (** compare&swap from historyless *)

val corollary_4_3 : claim  (** bounded counter from historyless *)

val corollary_4_5 : claim  (** fetch&add from historyless *)

val corollaries : claim list
