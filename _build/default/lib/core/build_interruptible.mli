(** Lemma 3.4, as a program: construct an interruptible execution with
    prescribed initial object set and excess capacity, following the
    proof's induction (reserve poised writers, run the rest until decided
    or poised outside V, apply the counting argument, recurse).  The
    construction records itself into the given builder — pass a scratch
    builder over the current configuration to obtain a witness replayable
    later. *)

type result = {
  witness : Interruptible.t;
  released : (int * int list) list;
      (** the proof's script-E reservations: (object, pids) poised there
          and guaranteed never to step in the witness — excess capacity
          usable by the other side of Lemma 3.5 *)
}

(** Raises [Combine.Attack_failed] when processes run short or a solo
    search fails. *)
val construct :
  Builder.t ->
  all_objects:int list ->
  vset:int list ->
  pset:int list ->
  uset:int list ->
  e:int ->
  result
