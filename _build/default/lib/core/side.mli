(** One side of the Lemma 3.1 invariant: registers V, one poised writer
    per register, and a witness that after a block write to V the runner's
    solo continuation (with the recorded coins) decides [decides]. *)

type t = {
  regs : int list;  (** V, sorted *)
  writers : (int * int) list;  (** (object, pid), one per register *)
  runner : int;  (** member of [writers] *)
  coins : int list;
  decides : int;
}

(** Normalizes and asserts well-formedness. *)
val make :
  regs:int list ->
  writers:(int * int) list ->
  runner:int ->
  coins:int list ->
  decides:int ->
  t

val mem : t -> int -> bool
val card : t -> int
val subset : t -> t -> bool

(** Writers poised at registers outside the other side's set. *)
val writers_outside : t -> other:t -> (int * int) list

val pp : Format.formatter -> t -> unit
