lib/core/attack.mli: Builder Checker Config Consensus Sim Trace
