lib/core/builder.mli: Checker Config Event Proc Sim Trace
