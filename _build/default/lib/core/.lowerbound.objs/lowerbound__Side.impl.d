lib/core/side.ml: Fmt List
