lib/core/combine.ml: Builder Config List Printf Run Side Sim Solo Triviality
