lib/core/general_attack.ml: Build_interruptible Builder Checker Combine Config Consensus Fun Interruptible List Printf Sim Splice Trace
