lib/core/combine.mli: Builder Side
