lib/core/bounds.mli:
