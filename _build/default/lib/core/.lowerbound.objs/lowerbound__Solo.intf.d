lib/core/solo.mli: Config Sim
