lib/core/triviality.mli: Config Op Sim
