lib/core/build_interruptible.ml: Builder Combine Config Interruptible List Option Printf Sim Solo Triviality
