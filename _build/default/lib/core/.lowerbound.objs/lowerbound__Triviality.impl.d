lib/core/triviality.ml: Config List Op Sim Value
