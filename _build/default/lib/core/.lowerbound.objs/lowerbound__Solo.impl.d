lib/core/solo.ml: Array Config List Proc Run Sim Triviality
