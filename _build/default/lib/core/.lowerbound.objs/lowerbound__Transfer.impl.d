lib/core/transfer.ml:
