lib/core/transfer.mli:
