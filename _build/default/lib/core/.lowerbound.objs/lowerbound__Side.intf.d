lib/core/side.mli: Format
