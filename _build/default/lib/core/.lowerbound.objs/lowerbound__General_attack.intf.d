lib/core/general_attack.mli: Checker Config Consensus Sim Trace
