lib/core/builder.ml: Array Checker Config Event Hashtbl List Printf Proc Run Sim Triviality
