lib/core/splice.mli: Builder Interruptible
