lib/core/interruptible.ml: Builder Config Event List Result Sim Triviality
