lib/core/bounds.ml:
