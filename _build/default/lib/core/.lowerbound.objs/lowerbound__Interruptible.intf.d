lib/core/interruptible.mli: Builder Config Event Sim
