lib/core/build_interruptible.mli: Builder Interruptible
