lib/core/attack.ml: Builder Checker Combine Config Consensus Event Hashtbl List Printf Run Side Sim Solo Trace Triviality Value
