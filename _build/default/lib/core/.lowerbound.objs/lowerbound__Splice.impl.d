lib/core/splice.ml: Build_interruptible Builder Combine Config Fun Interruptible List Sim
