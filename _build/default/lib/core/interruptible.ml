(* Interruptible executions (Definition 3.1) and excess capacity
   (Definition 3.2), as concrete, replayable data.

   An interruptible execution is a sequence of pieces; each piece begins
   with a block write to a growing object set V_1 strictly-included-in ...
   strictly-included-in V_k by processes that take no further steps, every
   nontrivial operation of piece i lands inside V_i, and by the end some
   process has decided.  Because the objects are historyless, the block
   write at the head of a piece gives its objects fixed values no matter
   what ran before — which is exactly why foreign executions whose
   nontrivial operations stay inside V_i can be inserted in front of piece
   i without disturbing the rest ({!Splice}).

   A witness records, per piece, the block writers and the body steps (pid
   plus coin outcome for internal flips), so it can be replayed through the
   ordinary runner from any suitable configuration, and *validated* against
   Definition 3.1 rather than trusted. *)

open Sim

type step = { pid : int; coin : int option }

type piece = {
  vset : int list;  (** V_i, sorted *)
  bwriters : (int * int) list;  (** (object, pid): the block write *)
  body : step list;  (** steps after the block write *)
}

type t = {
  init_set : int list;  (** V = V_1 *)
  pieces : piece list;  (** nonempty *)
  pset : int list;  (** the process set P *)
  decides : int;
  decider : int;  (** pid whose decision ends the execution *)
}

(** Convert a trace segment into replayable steps. *)
let steps_of_events events =
  List.filter_map
    (function
      | Event.Applied { pid; _ } -> Some { pid; coin = None }
      | Event.Coin { pid; outcome; _ } -> Some { pid; coin = Some outcome }
      | Event.Decided _ | Event.Halted _ -> None)
    events

(** Replay one piece into the builder: the block write, then the body. *)
let replay_piece b (p : piece) =
  Builder.block_write b p.bwriters;
  List.iter (fun { pid; coin } -> Builder.step b ~pid ?coin ()) p.body

let replay b (t : t) = List.iter (replay_piece b) t.pieces

(** Pids that take a step anywhere in the execution. *)
let participants (t : t) =
  let of_piece p =
    List.map snd p.bwriters @ List.map (fun s -> s.pid) p.body
  in
  List.sort_uniq compare (List.concat_map of_piece t.pieces)

(** Definition 3.1, checked: replay from [config] on a scratch copy and
    verify (a) strictly increasing object sets, (b) block writers take no
    further steps, (c) every nontrivial operation of piece i is on V_i,
    (d) the execution ends with [decider] having decided [decides].
    Returns [Ok ()] or a description of the first violated clause. *)
let validate ~config (t : t) =
  let ( let* ) r f = Result.bind r f in
  let subset_strict a b =
    List.for_all (fun x -> List.mem x b) a && List.length a < List.length b
  in
  let rec check_nesting = function
    | a :: (b :: _ as rest) ->
        if subset_strict a.vset b.vset then check_nesting rest
        else Error "object sets do not strictly increase"
    | [ _ ] | [] -> Ok ()
  in
  let* () =
    if t.pieces = [] then Error "no pieces"
    else if (List.hd t.pieces).vset <> t.init_set then
      Error "first piece's set is not the initial object set"
    else check_nesting t.pieces
  in
  (* block writers take no further steps in the whole execution *)
  let* () =
    let rec check_writers seen = function
      | [] -> Ok ()
      | p :: rest ->
          let steppers =
            List.map snd p.bwriters @ List.map (fun s -> s.pid) p.body
          in
          if List.exists (fun pid -> List.mem pid seen) steppers then
            Error "a block writer takes a further step"
          else check_writers (List.map snd p.bwriters @ seen) rest
    in
    check_writers [] t.pieces
  in
  (* replay on a scratch builder, watching nontrivial ops *)
  let scratch =
    Builder.create ~config
      ~inputs:(List.init (Config.n_procs config) (fun _ -> 0))
  in
  let check_step vset { pid; coin } =
    let outside =
      match Triviality.poised_write (Builder.config scratch) pid with
      | Some (obj, _) -> not (List.mem obj vset)
      | None -> false
    in
    if outside then Error "nontrivial operation outside the piece's set"
    else begin
      Builder.step scratch ~pid ?coin ();
      Ok ()
    end
  in
  let rec check_pieces = function
    | [] ->
        if Config.decision (Builder.config scratch) t.decider = Some t.decides
        then Ok ()
        else Error "decider did not decide the claimed value"
    | p :: rest ->
        let* () =
          List.fold_left
            (fun acc (obj, pid) ->
              let* () = acc in
              match Triviality.poised_write (Builder.config scratch) pid with
              | Some (o, _) when o = obj ->
                  Builder.step scratch ~pid ();
                  Ok ()
              | _ -> Error "block writer not poised at its object")
            (Ok ()) p.bwriters
        in
        let* () =
          List.fold_left
            (fun acc s ->
              let* () = acc in
              check_step p.vset s)
            (Ok ()) p.body
        in
        check_pieces rest
  in
  check_pieces t.pieces

(** Definition 3.2, checked at the starting configuration: at the beginning
    of each piece there are at least [e] processes outside [t.pset] poised
    at every object of V_i intersected with [uset]. *)
let has_excess_capacity ~config (t : t) ~uset ~e =
  let scratch =
    Builder.create ~config
      ~inputs:(List.init (Config.n_procs config) (fun _ -> 0))
  in
  let check_piece (p : piece) =
    List.for_all
      (fun obj ->
        if not (List.mem obj uset) then true
        else
          let outside_pset =
            List.filter
              (fun pid -> not (List.mem pid t.pset))
              (Triviality.poised_at (Builder.config scratch) obj)
          in
          List.length outside_pset >= e)
      p.vset
  in
  List.for_all
    (fun p ->
      let ok = check_piece p in
      if ok then replay_piece scratch p;
      ok)
    t.pieces
