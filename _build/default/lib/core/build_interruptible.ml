(* Lemma 3.4, as a program: from any configuration with enough processes
   poised in the right places, construct an interruptible execution with
   prescribed initial object set and excess capacity.

   The construction follows the proof by induction on |V-bar|:

   1. Reserve v-bar + 1 poised processes of P per object of V; one of each
      performs the block write to V (and retires), the spares stay poised
      so deeper pieces can block-write V again.
   2. Run every other process of P solo until it decides or is poised at a
      nontrivial operation outside V (such a point exists by
      nondeterministic solo termination; we search the coin outcomes).  If
      anyone decides — including a block writer whose write completed its
      procedure — the piece, and the execution, is complete.
   3. Otherwise every non-reserved process is poised outside V.  The
      counting argument of the proof yields an i in 1..v-bar such that the
      objects with >= i poised processes (plus e extra on the U side)
      cover at least v-bar - i + 1 new objects Y (outside U) and Z (inside
      U).  Reserve e poised processes per Z-object as future excess
      capacity (the proof's script-E sets), drop them and the used block
      writers from P, and recurse with V' = V + Y + Z.

   The construction is *recorded into the builder it is given* — callers
   that only want a witness pass a scratch builder over the current
   configuration and replay the witness later ({!Splice}).  [released]
   returns the script-E reservations: processes that are poised and
   guaranteed never to step in the witness again, i.e. excess capacity
   usable by the other side of Lemma 3.5. *)

open Sim

let fail = Combine.fail

(* take k elements, or fail with context *)
let take_exactly k what xs =
  let rec go k acc = function
    | _ when k = 0 -> List.rev acc
    | [] -> fail "not enough %s: needed %d more" what k
    | x :: rest -> go (k - 1) (x :: acc) rest
  in
  go k [] xs

type result = {
  witness : Interruptible.t;
  released : (int * int list) list;
      (** (object, pids): reserved excess capacity — poised at the object,
          never stepping in the witness *)
}

let construct b ~all_objects ~vset ~pset ~uset ~e =
  let rec go ~vset ~pset ~released_acc =
    let v_bar = List.filter (fun o -> not (List.mem o vset)) all_objects in
    let config = Builder.config b in
    (* 1. reserve |v_bar|+1 poised P-processes per V-object *)
    let reserved_per_obj =
      List.map
        (fun obj ->
          let poised =
            List.filter
              (fun pid -> List.mem pid pset)
              (Triviality.poised_at config obj)
          in
          ( obj,
            take_exactly
              (List.length v_bar + 1)
              (Printf.sprintf "P-processes poised at obj %d" obj)
              poised ))
        vset
    in
    let bwriters =
      List.map (fun (obj, pids) -> (obj, List.hd pids)) reserved_per_obj
    in
    let reserved = List.concat_map snd reserved_per_obj in
    let rest = List.filter (fun pid -> not (List.mem pid reserved)) pset in
    (* block write to V, recorded *)
    let m0 = Builder.mark b in
    Builder.block_write b bwriters;
    let decided = ref None in
    (* a block writer's write may have completed its procedure *)
    List.iter
      (fun (_, pid) ->
        if !decided = None then
          match Config.decision (Builder.config b) pid with
          | Some d -> decided := Some (pid, d)
          | None -> ())
      bwriters;
    (* 2. run everyone else until decided or poised outside V *)
    let run_one pid =
      if !decided = None then
        match
          Solo.search (Builder.config b) ~pid ~stop:(Solo.poised_outside vset)
        with
        | None ->
            fail "solo search failed for P%d (budget or no termination)" pid
        | Some { coins; decision; _ } ->
            let _ =
              Builder.run_coins b ~pid ~coins
                ~stop:(fun config p -> Solo.poised_outside vset config p)
                ()
            in
            if decision <> None then decided := Some (pid, Option.get decision)
    in
    List.iter run_one rest;
    let body =
      let steps = Interruptible.steps_of_events (Builder.events_since b m0) in
      (* drop the block write itself: its steps head the segment *)
      let rec drop k = function
        | xs when k = 0 -> xs
        | _ :: xs -> drop (k - 1) xs
        | [] -> []
      in
      drop (List.length bwriters) steps
    in
    let piece = { Interruptible.vset; bwriters; body } in
    match !decided with
    | Some (decider, decides) ->
        ( {
            Interruptible.init_set = vset;
            pieces = [ piece ];
            pset;
            decides;
            decider;
          },
          released_acc )
    | None ->
        if v_bar = [] then
          fail
            "V covers all objects but nobody decided (no solo termination?)";
        (* 3. the counting argument *)
        let config = Builder.config b in
        let count obj =
          List.length
            (List.filter
               (fun pid -> List.mem pid rest)
               (Triviality.poised_at config obj))
        in
        let vbar_ubar, vbar_u =
          List.partition (fun o -> not (List.mem o uset)) v_bar
        in
        let vb = List.length v_bar in
        let rec find_i i =
          if i > vb then
            fail "counting argument failed: |P|=%d is too small"
              (List.length pset)
          else
            let ys = List.filter (fun o -> count o >= i) vbar_ubar in
            let zs = List.filter (fun o -> count o >= e + i) vbar_u in
            if List.length ys + List.length zs >= vb - i + 1 then (i, ys, zs)
            else find_i (i + 1)
        in
        let i, candidates_y, candidates_z = find_i 1 in
        let needed = vb - i + 1 in
        let ys =
          take_exactly (min needed (List.length candidates_y)) "Y objects"
            candidates_y
        in
        let zs =
          take_exactly (needed - List.length ys) "Z objects" candidates_z
        in
        (* reserve e poised processes per Z-object as excess capacity *)
        let released =
          List.map
            (fun obj ->
              ( obj,
                take_exactly e
                  (Printf.sprintf "excess reservations at obj %d" obj)
                  (List.filter
                     (fun pid -> List.mem pid rest)
                     (Triviality.poised_at config obj)) ))
            zs
        in
        let retired =
          List.map snd bwriters @ List.concat_map snd released
        in
        let pset' = List.filter (fun pid -> not (List.mem pid retired)) pset in
        let vset' = List.sort_uniq compare (vset @ ys @ zs) in
        let tail, released_acc =
          go ~vset:vset' ~pset:pset' ~released_acc:(released @ released_acc)
        in
        ( {
            tail with
            Interruptible.init_set = vset;
            pieces = piece :: tail.Interruptible.pieces;
            pset;
          },
          released_acc )
  in
  let witness, released = go ~vset ~pset ~released_acc:[] in
  { witness; released }
