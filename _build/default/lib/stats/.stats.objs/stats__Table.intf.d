lib/stats/table.mli:
