(* Descriptive statistics for the experiment harness: enough to report the
   shape of a distribution (mean, spread, quantiles, a normal-approximation
   confidence interval) without external dependencies. *)

type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
}

let of_list = function
  | [] -> invalid_arg "Summary.of_list: empty sample"
  | xs ->
      let n = List.length xs in
      let fn = float_of_int n in
      let mean = List.fold_left ( +. ) 0.0 xs /. fn in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. fn
      in
      let sorted = List.sort compare xs in
      let quantile q =
        let idx = int_of_float (q *. float_of_int (n - 1)) in
        List.nth sorted idx
      in
      {
        n;
        mean;
        stddev = sqrt var;
        min = List.hd sorted;
        max = List.nth sorted (n - 1);
        median = quantile 0.5;
        p90 = quantile 0.9;
      }

let of_ints xs = of_list (List.map float_of_int xs)

(** Normal-approximation 95% confidence interval on the mean. *)
let ci95 t =
  let half = 1.96 *. t.stddev /. sqrt (float_of_int t.n) in
  (t.mean -. half, t.mean +. half)

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.1f sd=%.1f med=%.1f p90=%.1f [%.1f,%.1f]" t.n t.mean
    t.stddev t.median t.p90 t.min t.max
