(* Aligned plain-text tables: every experiment prints its rows through
   this, so bench output reads like the tables in EXPERIMENTS.md. *)

type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- row :: t.rows

let widths t =
  let all = t.header :: List.rev t.rows in
  List.mapi
    (fun i _ ->
      List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
    t.header

let render t =
  let ws = widths t in
  let line row =
    String.concat "  "
      (List.mapi
         (fun i cell -> cell ^ String.make (List.nth ws i - String.length cell) ' ')
         row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') ws)
  in
  String.concat "\n" (line t.header :: sep :: List.rev_map line t.rows)

let print t = print_endline (render t)
