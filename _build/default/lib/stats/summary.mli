(** Descriptive statistics for the experiment harness. *)

type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
}

(** Raises [Invalid_argument] on an empty sample. *)
val of_list : float list -> t

val of_ints : int list -> t

(** Normal-approximation 95% confidence interval on the mean. *)
val ci95 : t -> float * float

val pp : Format.formatter -> t -> unit
