(** Aligned plain-text tables; experiment output is printed through
    this so it reads like the tables in EXPERIMENTS.md. *)

type t

val create : header:string list -> t

(** Raises [Invalid_argument] on wrong arity. *)
val add_row : t -> string list -> unit

val render : t -> string
val print : t -> unit
