(* E5 — "Figure 5": expected work (total steps by all processes) to reach
   consensus, per protocol, under an adversarial random scheduler, as n
   grows.  The shape to reproduce: the one-object deterministic CAS
   protocol is O(n); the randomized walk protocols pay the O(n^2)
   random-walk price; the register protocol pays collect costs per round on
   top.  Absolute numbers are simulator steps, not hardware cycles. *)

open Sim
open Consensus

type cell = { mean : float; p90 : float }

type row = { n : int; per_protocol : (string * cell option) list }

let protocols : Protocol.t list =
  [
    Cas_consensus.protocol;
    Fa_consensus.protocol;
    Counter_consensus.protocol;
    Rw_consensus.protocol;
  ]

let measure (p : Protocol.t) ~n ~reps ~seed =
  if not (p.Protocol.supports_n n) then None
  else begin
    let steps = ref [] in
    let completed = ref 0 in
    for i = 1 to reps do
      let rng = Rng.create ((seed + i) * 31) in
      let inputs = List.init n (fun _ -> Rng.int rng 2) in
      let report =
        Protocol.run_once ~max_steps:2_000_000 p ~inputs
          ~sched:(Sched.random ~seed:(seed + i))
      in
      if report.Protocol.result.Run.outcome = Run.All_decided then begin
        incr completed;
        steps := float_of_int report.Protocol.result.Run.steps :: !steps
      end
    done;
    if !completed = 0 then None
    else
      let s = Stats.Summary.of_list !steps in
      Some { mean = s.Stats.Summary.mean; p90 = s.Stats.Summary.p90 }
  end

let default_ns = [ 2; 3; 4; 6; 8; 12; 16 ]

let rows ?(ns = default_ns) ?(reps = 30) ?(seed = 7) () =
  List.map
    (fun n ->
      {
        n;
        per_protocol =
          List.map
            (fun (p : Protocol.t) ->
              (p.Protocol.name, measure p ~n ~reps ~seed))
            protocols;
      })
    ns

let table ?ns ?reps ?seed () =
  let names = List.map (fun (p : Protocol.t) -> p.Protocol.name) protocols in
  let t =
    Stats.Table.create
      ~header:("n" :: List.concat_map (fun nm -> [ nm; nm ^ " p90" ]) names)
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        (string_of_int r.n
        :: List.concat_map
             (fun (_, cell) ->
               match cell with
               | Some c ->
                   [ Printf.sprintf "%.0f" c.mean; Printf.sprintf "%.0f" c.p90 ]
               | None -> [ "-"; "-" ])
             r.per_protocol))
    (rows ?ns ?reps ?seed ());
  t
