(* E7 — "Table 2": the Section 2 object algebra, decided exhaustively.
   Every finite spec is classified (trivial ops, historyless, interfering)
   and set against the wait-free-hierarchy row of the same primitive. *)

let rows () = List.map Objclass.Classify.report Objects.Specs.all

let hierarchy_name = function
  | "fetch&add[mod 5]" -> Some "fetch&add"
  | "fetch&inc[mod 5]" -> Some "fetch&inc"
  | "counter[mod 5]" -> Some "counter"
  | ("register" | "swap-register" | "test&set" | "compare&swap" | "queue"
    | "sticky") as s ->
      Some s
  | _ -> None

let table () =
  let t =
    Stats.Table.create
      ~header:
        [
          "object type";
          "|values|";
          "|ops|";
          "trivial ops";
          "historyless";
          "interfering";
          "det. consensus #";
        ]
  in
  List.iter
    (fun (r : Objclass.Classify.report) ->
      let cn =
        match hierarchy_name r.Objclass.Classify.optype with
        | Some name -> (
            match Objclass.Hierarchy.find name with
            | Some e ->
                Objclass.Hierarchy.consensus_number_to_string
                  e.Objclass.Hierarchy.consensus_number
            | None -> "?")
        | None -> "?"
      in
      Stats.Table.add_row t
        [
          r.Objclass.Classify.optype;
          string_of_int r.Objclass.Classify.n_values;
          string_of_int r.Objclass.Classify.n_ops;
          string_of_int r.Objclass.Classify.n_trivial;
          string_of_bool r.Objclass.Classify.historyless;
          string_of_bool r.Objclass.Classify.interfering;
          cn;
        ])
    (rows ());
  t
