lib/experiments/e5_work.ml: Cas_consensus Consensus Counter_consensus Fa_consensus List Printf Protocol Rng Run Rw_consensus Sched Sim Stats
