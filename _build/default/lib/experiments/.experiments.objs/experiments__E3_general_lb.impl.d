lib/experiments/e3_general_lb.ml: Bounds Consensus Flawed General_attack List Lowerbound Printf Protocol Sim Stats
