lib/experiments/e11_crash.ml: Checker Consensus Counter_consensus Fa_consensus List Printf Protocol Rng Run Rw_consensus Sched Sim Stats
