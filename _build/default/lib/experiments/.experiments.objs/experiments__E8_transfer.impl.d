lib/experiments/e8_transfer.ml: List Lowerbound Printf Stats Transfer
