lib/experiments/e12_impossibility.ml: List Mc Stats
