lib/experiments/e2_identical_lb.ml: Attack Bounds Consensus Flawed List Lowerbound Protocol Sim Stats
