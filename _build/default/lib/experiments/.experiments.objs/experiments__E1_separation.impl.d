lib/experiments/e1_separation.ml: Cas_consensus Checker Consensus Counter_consensus Fa_consensus List Mc Objclass Objects Printf Protocol Rng Run Rw_consensus Sched Sim Stats Swap2 Tas2
