lib/experiments/e10_bivalence.ml: Cas_consensus Consensus List Mc Protocol Rw_consensus Stats Swap2 Tas2
