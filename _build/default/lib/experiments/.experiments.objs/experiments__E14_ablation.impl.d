lib/experiments/e14_ablation.ml: Checker Consensus Counter_consensus List Printf Protocol Sched Sim Stats
