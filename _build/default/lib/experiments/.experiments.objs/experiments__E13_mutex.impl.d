lib/experiments/e13_mutex.ml: List Mutex Printf Sim Stats
