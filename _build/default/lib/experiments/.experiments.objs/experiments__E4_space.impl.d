lib/experiments/e4_space.ml: Bounds Cas_consensus Consensus Counter_consensus Fa_consensus List Lowerbound Protocol Rw_consensus Stats
