lib/experiments/e6_coin.ml: Config Consensus Counter List Objects Printf Run Sched Shared_coin Sim Stats Trace
