lib/experiments/e7_classify.ml: List Objclass Objects Stats
