lib/experiments/e9_solo_vs_waitfree.ml: Counter Counters Harness History List Objects Objimpl Printf Stats
