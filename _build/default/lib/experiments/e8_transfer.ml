(* E8 — "Table 3": Theorem 2.1's transfer principle applied to the
   corollaries.  Each target solves randomized consensus with one object
   (f(n) = 1); historyless objects need Omega(sqrt n) of themselves
   (g(n) from the explicit Lemma 3.6 inversion); so implementing the
   target from historyless objects needs g(n)/f(n) instances. *)

open Lowerbound

type row = {
  target : string;
  n : int;
  g_n : float;  (** historyless objects required for n-consensus *)
  implied : float;  (** instances of Y per instance of X *)
}

let default_ns = [ 16; 64; 256; 1024; 4096 ]

let rows ?(ns = default_ns) () =
  List.concat_map
    (fun (claim : Transfer.claim) ->
      List.map
        (fun n ->
          {
            target = claim.Transfer.target;
            n;
            g_n = claim.Transfer.g n;
            implied = Transfer.instances_required claim ~n;
          })
        ns)
    Transfer.corollaries

let table ?ns () =
  let t =
    Stats.Table.create
      ~header:
        [ "implemented type X"; "n"; "g(n) historyless"; "implied #Y per X" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          r.target;
          string_of_int r.n;
          Printf.sprintf "%.1f" r.g_n;
          Printf.sprintf "%.0f" r.implied;
        ])
    (rows ?ns ());
  t
