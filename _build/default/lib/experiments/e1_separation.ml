(* E1 — "Table 1": the Section 4 separation table.

   For each primitive: is it historyless (decided exhaustively on its
   finite spec), its deterministic consensus number (the wait-free
   hierarchy), and the randomized space our implementations realize for
   n-process consensus, against the paper's lower bound.  The "verified"
   column reports live evidence produced while building the row: exhaustive
   model checking for the small deterministic protocols, adversarial
   random-schedule batteries for the randomized ones. *)

open Sim
open Consensus

type row = {
  primitive : string;
  historyless : bool;
  consensus_number : string;
  randomized_space : string;  (** objects our protocol uses, as a formula *)
  space_at_8 : int option;  (** measured at n = 8 *)
  lower_bound : string;
  verified : string;
}

let classify_name = function
  | "fetch&add" -> Some "fetch&add[mod 5]"
  | "fetch&inc" -> Some "fetch&inc[mod 5]"
  | "counter" -> Some "counter[mod 5]"
  | ("register" | "swap-register" | "test&set" | "compare&swap") as s -> Some s
  | _ -> None

let is_historyless name =
  match classify_name name with
  | Some spec_name -> (
      match Objects.Specs.find spec_name with
      | Some spec -> Objclass.Classify.is_historyless spec
      | None -> false)
  | None -> false

(* run a protocol battery: [reps] random-scheduler runs at n = 8 (or its
   supported size), all must be consistent, valid and terminating *)
let battery (p : Protocol.t) ~reps =
  let n = if p.Protocol.supports_n 8 then 8 else 2 in
  let ok = ref 0 in
  for seed = 1 to reps do
    let rng = Rng.create (seed * 13) in
    let inputs = List.init n (fun _ -> Rng.int rng 2) in
    let report = Protocol.run_once p ~inputs ~sched:(Sched.random ~seed) in
    if
      Checker.ok report.Protocol.verdict
      && report.Protocol.result.Run.outcome = Run.All_decided
    then incr ok
  done;
  Printf.sprintf "%d/%d runs ok (n=%d)" !ok reps n

(* exhaustive model check at n = 2 for the deterministic 2-process rows *)
let mc_verify (p : Protocol.t) =
  let results =
    List.map
      (fun inputs ->
        let config = Protocol.initial_config p ~inputs in
        Mc.Explore.search ~max_depth:40 ~inputs config)
      [ [ 0; 1 ]; [ 1; 0 ]; [ 0; 0 ]; [ 1; 1 ] ]
  in
  if
    List.for_all
      (fun r -> r.Mc.Explore.violation = None && not r.Mc.Explore.truncated)
      results
  then "exhaustively checked (n=2)"
  else "MC FAILED"

let rows ?(reps = 30) () =
  [
    {
      primitive = "register";
      historyless = is_historyless "register";
      consensus_number = "1";
      randomized_space = "3n (rw-3n)";
      space_at_8 = Some (Protocol.space Rw_consensus.protocol ~n:8);
      lower_bound = "Omega(sqrt n) [Thm 3.7]";
      verified = battery Rw_consensus.protocol ~reps;
    };
    {
      primitive = "swap-register";
      historyless = is_historyless "swap-register";
      consensus_number = "2";
      randomized_space = "3n (via registers)";
      space_at_8 = None;
      lower_bound = "Omega(sqrt n) [Thm 3.7]";
      verified = mc_verify Swap2.protocol ^ " (2-proc det.)";
    };
    {
      primitive = "test&set";
      historyless = is_historyless "test&set";
      consensus_number = "2";
      randomized_space = "3n (via registers)";
      space_at_8 = None;
      lower_bound = "Omega(sqrt n) [Thm 3.7]";
      verified = mc_verify Tas2.protocol ^ " (2-proc det.)";
    };
    {
      primitive = "counter";
      historyless = is_historyless "counter";
      consensus_number = "1";
      randomized_space = "3 bounded [Thm 4.2]";
      space_at_8 = Some (Protocol.space Counter_consensus.protocol ~n:8);
      lower_bound = "1 (trivially)";
      verified = battery Counter_consensus.protocol ~reps;
    };
    {
      primitive = "fetch&add";
      historyless = is_historyless "fetch&add";
      consensus_number = "2";
      randomized_space = "1 [Thm 4.4]";
      space_at_8 = Some (Protocol.space Fa_consensus.protocol ~n:8);
      lower_bound = "1 (trivially)";
      verified = battery Fa_consensus.protocol ~reps;
    };
    {
      primitive = "compare&swap";
      historyless = is_historyless "compare&swap";
      consensus_number = "inf";
      randomized_space = "1 [Herlihy]";
      space_at_8 = Some (Protocol.space Cas_consensus.protocol ~n:8);
      lower_bound = "1 (trivially)";
      verified = battery Cas_consensus.protocol ~reps;
    };
  ]

let table ?reps () =
  let t =
    Stats.Table.create
      ~header:
        [
          "primitive";
          "historyless";
          "det. consensus #";
          "rand. space (ours)";
          "@n=8";
          "rand. space lower bound";
          "evidence";
        ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          r.primitive;
          string_of_bool r.historyless;
          r.consensus_number;
          r.randomized_space;
          (match r.space_at_8 with Some s -> string_of_int s | None -> "-");
          r.lower_bound;
          r.verified;
        ])
    (rows ?reps ());
  t
