(* E10 — "Figure 8": why randomization is needed at all.

   The FLP/Herlihy bivalence argument, played greedily by the model
   checker: starting from a mixed-input initial configuration, how many
   steps can an adversary take while keeping both decisions reachable?
   For consensus over registers the adversary survives every probed depth
   (deterministic wait-free consensus from registers is impossible — the
   starting point of the whole randomized story); for one compare&swap
   the first step already decides the game. *)

open Consensus

type row = {
  protocol : string;
  n : int;
  survival : int;  (** bivalent steps achieved (capped at [probe]) *)
  probe : int;
  capped : bool;  (** survived to the cap: "forever" as far as we probed *)
}

let measure (p : Protocol.t) ~inputs ~probe =
  let config = Protocol.initial_config p ~inputs in
  let survival = Mc.Valency.bivalence_survival ~max_depth:probe config in
  {
    protocol = p.Protocol.name;
    n = List.length inputs;
    survival;
    probe;
    capped = survival >= probe;
  }

let default_probe = 10

let rows ?(probe = default_probe) () =
  [
    measure Cas_consensus.protocol ~inputs:[ 0; 1 ] ~probe;
    measure Tas2.protocol ~inputs:[ 0; 1 ] ~probe;
    measure Swap2.protocol ~inputs:[ 0; 1 ] ~probe;
    measure Rw_consensus.protocol ~inputs:[ 0; 1 ] ~probe;
  ]

let table ?probe () =
  let t =
    Stats.Table.create
      ~header:[ "protocol"; "n"; "bivalent steps"; "probe depth"; "survives cap" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          r.protocol;
          string_of_int r.n;
          string_of_int r.survival;
          string_of_int r.probe;
          string_of_bool r.capped;
        ])
    (rows ?probe ());
  t
