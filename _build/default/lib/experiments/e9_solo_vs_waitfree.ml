(* E9 — "Figure 7": nondeterministic solo termination is strictly weaker
   than wait-freedom, measured on the paper's own example (the simple
   snapshot algorithm of Section 2, here as the double-collect counter
   reader).

   A solo read finishes in a fixed number of steps; under w concurrent
   incrementers, the double collect must get lucky, and an adversarial
   schedule starves it outright.  The collect-based reader is wait-free
   but pays with non-linearizability (E-note in EXPERIMENTS.md; the
   directed refutation lives in the test suite). *)

open Objects
open Objimpl

type row = {
  writers : int;
  reader_steps : Stats.Summary.t option;  (** completed reads *)
  starved : int;  (** runs where the read did not finish in budget *)
  runs : int;
}

(* one run: 1 reader (pid 0) + [writers] incrementing processes *)
let run_once ~writers ~seed ~max_steps =
  let n = writers + 1 in
  let workload =
    (0, [ Counter.read ])
    :: List.init writers (fun i -> (i + 1, List.init 40 (fun _ -> Counter.inc)))
  in
  let outcome =
    Harness.run Counters.snapshot ~n ~workload
      ~schedule:(Harness.Random_sched seed) ~max_steps ()
  in
  let reader_response =
    List.find_opt
      (fun (c : History.call) -> c.History.pid = 0 && c.History.response <> None)
      (History.calls outcome.Harness.history)
  in
  match reader_response with
  | Some _ -> `Finished outcome.Harness.steps
  | None -> `Starved

let measure ~writers ~reps ~seed ~max_steps =
  let finished = ref [] and starved = ref 0 in
  for i = 1 to reps do
    match run_once ~writers ~seed:(seed + (i * 7)) ~max_steps with
    | `Finished steps -> finished := float_of_int steps :: !finished
    | `Starved -> incr starved
  done;
  {
    writers;
    reader_steps =
      (match !finished with [] -> None | xs -> Some (Stats.Summary.of_list xs));
    starved = !starved;
    runs = reps;
  }

let default_writers = [ 0; 1; 2; 4; 8 ]

let rows ?(writers = default_writers) ?(reps = 25) ?(seed = 5)
    ?(max_steps = 4_000) () =
  List.map (fun w -> measure ~writers:w ~reps ~seed ~max_steps) writers

let table ?writers ?reps ?seed ?max_steps () =
  let t =
    Stats.Table.create
      ~header:
        [
          "concurrent writers";
          "reader steps (mean)";
          "reader steps (p90)";
          "starved runs";
          "runs";
        ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          string_of_int r.writers;
          (match r.reader_steps with
          | Some s -> Printf.sprintf "%.0f" s.Stats.Summary.mean
          | None -> "-");
          (match r.reader_steps with
          | Some s -> Printf.sprintf "%.0f" s.Stats.Summary.p90
          | None -> "-");
          string_of_int r.starved;
          string_of_int r.runs;
        ])
    (rows ?writers ?reps ?seed ?max_steps ());
  t
