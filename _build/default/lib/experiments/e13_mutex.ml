(* E13 — "Table 5": the mutual-exclusion foil.

   The paper's introduction sets wait-free synchronization against
   classical mutual exclusion, and its Section 3 technique descends from
   Burns-Lynch's register lower bound for mutex.  The table shows the
   same space story on the mutex side: registers-only mutual exclusion
   spends registers (Peterson: 3 for two processes; Burns-Lynch: >= n in
   general), one historyless swap object locks any n — and the checker
   separates the correct locks from the textbook-broken one mechanically. *)

type row = {
  protocol : string;
  n : int;
  objects : int;
  exhaustive : string;  (** checker verdict *)
  stress_max_occupancy : int;
  stress_runs : int;
}

let measure (m : Mutex.t) ~n ~depth ~reps ~seed =
  let exhaustive =
    match Mutex.check_exclusion ~max_depth:depth m ~n with
    | Mutex.Safe_to_depth d -> Printf.sprintf "safe to depth %d" d
    | Mutex.Violation trace ->
        Printf.sprintf "VIOLATION in %d steps" (Sim.Trace.steps trace)
  in
  let max_occ = ref 0 in
  for i = 1 to reps do
    let occ, _ = Mutex.stress m ~n ~seed:(seed + i) ~max_steps:10_000 in
    max_occ := max !max_occ occ
  done;
  {
    protocol = m.Mutex.name;
    n;
    objects = m.Mutex.registers ~n;
    exhaustive;
    stress_max_occupancy = !max_occ;
    stress_runs = reps;
  }

let rows ?(reps = 15) ?(seed = 2) () =
  [
    measure Mutex.peterson ~n:2 ~depth:20 ~reps ~seed;
    measure Mutex.naive_flag ~n:2 ~depth:16 ~reps ~seed;
    measure Mutex.tas_lock ~n:2 ~depth:14 ~reps ~seed;
    measure Mutex.tas_lock ~n:3 ~depth:12 ~reps ~seed;
  ]

let table ?reps ?seed () =
  let t =
    Stats.Table.create
      ~header:
        [ "protocol"; "n"; "objects"; "exhaustive check"; "stress max occ"; "runs" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          r.protocol;
          string_of_int r.n;
          string_of_int r.objects;
          r.exhaustive;
          string_of_int r.stress_max_occupancy;
          string_of_int r.stress_runs;
        ])
    (rows ?reps ?seed ());
  t
