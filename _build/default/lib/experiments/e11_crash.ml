(* E11 — "Figure 9": wait-freedom under crash failures.

   Randomized wait-free consensus tolerates any number of crash faults:
   survivors decide no matter how many of the other processes halt, and
   safety is never at risk.  We crash f of n processes at staggered points
   mid-run and measure the survivors' work; the claim to reproduce is the
   definition itself — every run safe, every survivor decides — plus the
   unsurprising-but-measurable shape that work *decreases* as crashed
   processes stop contending. *)

open Sim
open Consensus

type row = {
  protocol : string;
  n : int;
  crashed : int;
  safe_runs : int;
  decided_runs : int;  (** all survivors decided *)
  runs : int;
  mean_steps : float option;
}

let measure (p : Protocol.t) ~n ~crashed ~reps ~seed =
  let safe = ref 0 and decided = ref 0 and steps = ref [] in
  for i = 1 to reps do
    let s = seed + (i * 97) in
    let rng = Rng.create s in
    let inputs = List.init n (fun _ -> Rng.int rng 2) in
    let config = Protocol.initial_config p ~inputs in
    (* crash pids 0..crashed-1 at staggered steps 5, 10, 15, ... *)
    let crashes = List.init crashed (fun i -> ((i + 1) * 5, i)) in
    let result =
      Run.exec_with_crashes ~max_steps:500_000 ~crashes (Sched.random ~seed:s)
        config
    in
    let verdict = Checker.of_config ~inputs result.Run.config in
    if Checker.ok verdict then incr safe;
    if result.Run.outcome = Run.All_decided then begin
      incr decided;
      steps := float_of_int result.Run.steps :: !steps
    end
  done;
  {
    protocol = p.Protocol.name;
    n;
    crashed;
    safe_runs = !safe;
    decided_runs = !decided;
    runs = reps;
    mean_steps =
      (match !steps with
      | [] -> None
      | xs -> Some (Stats.Summary.of_list xs).Stats.Summary.mean);
  }

let protocols : Protocol.t list =
  [ Fa_consensus.protocol; Counter_consensus.protocol; Rw_consensus.protocol ]

let rows ?(n = 8) ?(fs = [ 0; 2; 4; 6 ]) ?(reps = 20) ?(seed = 11) () =
  List.concat_map
    (fun p -> List.map (fun f -> measure p ~n ~crashed:f ~reps ~seed) fs)
    protocols

let table ?n ?fs ?reps ?seed () =
  let t =
    Stats.Table.create
      ~header:[ "protocol"; "n"; "crashed"; "safe"; "survivors decided"; "mean steps" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          r.protocol;
          string_of_int r.n;
          string_of_int r.crashed;
          Printf.sprintf "%d/%d" r.safe_runs r.runs;
          Printf.sprintf "%d/%d" r.decided_runs r.runs;
          (match r.mean_steps with
          | Some m -> Printf.sprintf "%.0f" m
          | None -> "-");
        ])
    (rows ?n ?fs ?reps ?seed ());
  t
