(* E6 — "Figure 6": the shared-coin random walk that underlies both
   Aspnes's counter consensus and our walk protocols.

   n processes flip fair coins and push a shared counter; the walk absorbs
   at +-(k * n).  Measured: total flips until the first process returns
   (expected Theta((k n)^2) — the quadratic shape the paper's work-lower-
   bound discussion, citing Aspnes [6], predicts for shared coins), and
   agreement probability (all processes return the same side), which
   grows with k. *)

open Sim
open Objects
open Consensus

type row = {
  n : int;
  k : int;
  mean_flips : float;
  agreement : float;  (** fraction of runs where all outputs equal *)
  runs : int;
}

(* run n processes of counter_coin to completion; outputs + flips *)
let run_once ~n ~k ~seed =
  let procs = List.init n (fun _ -> Shared_coin.counter_coin ~n ~obj:0 ~k) in
  let config = Config.make ~optypes:[ Counter.optype () ] ~procs in
  let result = Run.exec_fast ~max_steps:5_000_000 (Sched.random ~seed) config in
  if result.Run.outcome <> Run.All_decided then None
  else
    let outputs = Config.decisions result.Run.config in
    let flips = List.length (Trace.coins result.Run.trace) in
    Some (outputs, flips)

let measure ~n ~k ~reps ~seed =
  let agree = ref 0 and flips = ref [] and runs = ref 0 in
  for i = 1 to reps do
    match run_once ~n ~k ~seed:(seed + (i * 101)) with
    | None -> ()
    | Some (outputs, f) ->
        incr runs;
        flips := float_of_int f :: !flips;
        let distinct = List.sort_uniq compare outputs in
        if List.length distinct = 1 then incr agree
  done;
  if !runs = 0 then None
  else
    Some
      {
        n;
        k;
        mean_flips = (Stats.Summary.of_list !flips).Stats.Summary.mean;
        agreement = float_of_int !agree /. float_of_int !runs;
        runs = !runs;
      }

let default_ns = [ 2; 4; 8; 16 ]
let default_ks = [ 1; 2; 3 ]

let rows ?(ns = default_ns) ?(ks = default_ks) ?(reps = 40) ?(seed = 3) () =
  List.concat_map
    (fun n ->
      List.filter_map (fun k -> measure ~n ~k ~reps ~seed) ks)
    ns

let table ?ns ?ks ?reps ?seed () =
  let t =
    Stats.Table.create
      ~header:[ "n"; "k (barrier = k*n)"; "mean flips"; "agreement"; "runs" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          string_of_int r.n;
          string_of_int r.k;
          Printf.sprintf "%.0f" r.mean_flips;
          Printf.sprintf "%.2f" r.agreement;
          string_of_int r.runs;
        ])
    (rows ?ns ?ks ?reps ?seed ());
  t
