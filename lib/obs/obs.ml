(* Observability primitives.  See obs.mli for the contracts; the short
   version: accumulators are single-domain, merging is explicit and
   happens on the caller after parallel barriers, and the only
   multi-domain-safe entry point is the Progress heartbeat. *)

module Metrics = struct
  type histogram = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : (float * int) list;
  }

  (* One mutable cell per recorded histogram; [buckets] maps a bucket
     index [e] (bound = 2^e, or the dedicated <=0 bucket) to its count. *)
  type histo = {
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    h_buckets : (int, int ref) Hashtbl.t;
  }

  type t = {
    counters : (string, int ref) Hashtbl.t;
    watermarks : (string, int ref) Hashtbl.t;
    histos : (string, histo) Hashtbl.t;
  }

  let create () =
    {
      counters = Hashtbl.create 16;
      watermarks = Hashtbl.create 8;
      histos = Hashtbl.create 8;
    }

  let cell tbl name =
    match Hashtbl.find_opt tbl name with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add tbl name r;
        r

  let add t name k =
    if k > 0 then begin
      let r = cell t.counters name in
      r := !r + k
    end

  let incr t name = add t name 1

  let record_max t name v =
    let r = cell t.watermarks name in
    if v > !r then r := v

  (* Bucket index for a sample: the exponent [e] with 2^(e-1) < v <= 2^e
     (so the bound [2^e] is the inclusive upper edge); non-positive
     samples share one underflow bucket with bound 0. *)
  let underflow = min_int

  let bucket_index v =
    if v <= 0. then underflow
    else
      let m, e = Float.frexp v in
      if m = 0.5 then e - 1 else e

  let bucket_bound i = if i = underflow then 0. else Float.ldexp 1.0 i

  let histo_cell t name =
    match Hashtbl.find_opt t.histos name with
    | Some h -> h
    | None ->
        let h =
          {
            h_count = 0;
            h_sum = 0.;
            h_min = infinity;
            h_max = neg_infinity;
            h_buckets = Hashtbl.create 8;
          }
        in
        Hashtbl.add t.histos name h;
        h

  let observe t name v =
    let h = histo_cell t name in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let i = bucket_index v in
    match Hashtbl.find_opt h.h_buckets i with
    | Some r -> Stdlib.incr r
    | None -> Hashtbl.add h.h_buckets i (ref 1)

  let counter t name =
    match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

  let watermark t name =
    match Hashtbl.find_opt t.watermarks name with Some r -> !r | None -> 0

  let freeze (h : histo) =
    let buckets =
      Hashtbl.fold (fun i r acc -> (i, !r) :: acc) h.h_buckets []
      |> List.sort compare
      |> List.map (fun (i, c) -> (bucket_bound i, c))
    in
    { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max; buckets }

  let histogram t name = Option.map freeze (Hashtbl.find_opt t.histos name)

  let sorted_bindings tbl project =
    Hashtbl.fold (fun name v acc -> (name, project v) :: acc) tbl []
    |> List.sort compare

  let counters t = sorted_bindings t.counters (fun r -> !r)
  let watermarks t = sorted_bindings t.watermarks (fun r -> !r)
  let histograms t = sorted_bindings t.histos freeze

  let merge_into ~into src =
    Hashtbl.iter (fun name r -> add into name !r) src.counters;
    Hashtbl.iter (fun name r -> record_max into name !r) src.watermarks;
    Hashtbl.iter
      (fun name h ->
        let dst = histo_cell into name in
        dst.h_count <- dst.h_count + h.h_count;
        dst.h_sum <- dst.h_sum +. h.h_sum;
        if h.h_min < dst.h_min then dst.h_min <- h.h_min;
        if h.h_max > dst.h_max then dst.h_max <- h.h_max;
        Hashtbl.iter
          (fun i r ->
            match Hashtbl.find_opt dst.h_buckets i with
            | Some d -> d := !d + !r
            | None -> Hashtbl.add dst.h_buckets i (ref !r))
          h.h_buckets)
      src.histos
end

module Sink = struct
  type kind =
    | Null
    | Memory of string list ref  (* reversed emission order *)
    | File of { path : string; buf : Buffer.t }

  type t = kind

  let null = Null
  let memory () = Memory (ref [])
  let file path = File { path; buf = Buffer.create 1024 }
  let enabled = function Null -> false | Memory _ | File _ -> true

  let emit t line =
    match t with
    | Null -> ()
    | Memory lines -> lines := line :: !lines
    | File { buf; _ } ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n'

  let contents = function
    | Memory lines -> List.rev !lines
    | Null | File _ -> []

  (* Same atomic discipline as [Sim.Trace_io.save_text]: land the bytes in
     a sibling temp file, then rename over the target, so a crash
     mid-flush leaves the previous version intact. *)
  let flush = function
    | Null | Memory _ -> ()
    | File { path; buf } ->
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        output_string oc (Buffer.contents buf);
        close_out oc;
        Sys.rename tmp path
end

type t = {
  metrics : Metrics.t;
  sink : Sink.t;
  mutable span_path : string list;  (* innermost first *)
}

let create ?(sink = Sink.null) () =
  { metrics = Metrics.create (); sink; span_path = [] }

let metrics t = t.metrics
let sink t = t.sink

let add obs name k =
  match obs with None -> () | Some t -> Metrics.add t.metrics name k

let incr obs name =
  match obs with None -> () | Some t -> Metrics.incr t.metrics name

let record_max obs name v =
  match obs with None -> () | Some t -> Metrics.record_max t.metrics name v

let observe obs name v =
  match obs with None -> () | Some t -> Metrics.observe t.metrics name v

(* %S produces escaping that is valid JSON for the ASCII metric names and
   values used here (no exotic control characters, no unicode). *)
let json_field (k, v) = Printf.sprintf "%S:%S" k v

let span obs name f =
  match obs with
  | None -> f ()
  | Some t ->
      let path = String.concat "/" (List.rev (name :: t.span_path)) in
      t.span_path <- name :: t.span_path;
      let t0 = Unix.gettimeofday () in
      let finally () =
        let dt = Unix.gettimeofday () -. t0 in
        t.span_path <-
          (match t.span_path with [] -> [] | _ :: rest -> rest);
        Metrics.observe t.metrics ("span/" ^ path) dt;
        if Sink.enabled t.sink then
          Sink.emit t.sink
            (Printf.sprintf {|{"type":"span","name":%S,"seconds":%.6f}|} path
               dt)
      in
      Fun.protect ~finally f

let alloc_span obs name f =
  match obs with
  | None -> f ()
  | Some t ->
      let w0 = Gc.minor_words () in
      let finally () =
        Metrics.add t.metrics
          (name ^ "/minor-words")
          (int_of_float (Gc.minor_words () -. w0))
      in
      Fun.protect ~finally f

let dump ?(extra = []) t =
  let emit = Sink.emit t.sink in
  emit
    (Printf.sprintf {|{"type":"meta"%s}|}
       (String.concat ""
          (List.map (fun kv -> "," ^ json_field kv) extra)));
  List.iter
    (fun (name, v) ->
      emit
        (Printf.sprintf {|{"type":"counter","name":%S,"value":%d}|} name v))
    (Metrics.counters t.metrics);
  List.iter
    (fun (name, v) ->
      emit
        (Printf.sprintf {|{"type":"watermark","name":%S,"value":%d}|} name v))
    (Metrics.watermarks t.metrics);
  List.iter
    (fun (name, (h : Metrics.histogram)) ->
      emit
        (Printf.sprintf
           {|{"type":"histogram","name":%S,"count":%d,"sum":%.9g,"min":%.9g,"max":%.9g,"buckets":[%s]}|}
           name h.Metrics.count h.Metrics.sum h.Metrics.min h.Metrics.max
           (String.concat ","
              (List.map
                 (fun (bound, c) -> Printf.sprintf "[%.9g,%d]" bound c)
                 h.Metrics.buckets))))
    (Metrics.histograms t.metrics);
  Sink.flush t.sink

module Progress = struct
  let heartbeat ?(interval = 1.0) ?(out = stderr) ~render () =
    (* last successful print instant; 0. means "never printed", so the
       first poll always reports.  CAS makes exactly one concurrent
       caller win each interval — losers skip, they never block. *)
    let last = Atomic.make 0. in
    fun ~nodes ~steps ->
      let now = Unix.gettimeofday () in
      let prev = Atomic.get last in
      if now -. prev >= interval && Atomic.compare_and_set last prev now then begin
        output_string out (render ~nodes ~steps);
        output_char out '\n';
        flush out
      end
end
