(** Zero-dependency observability: named monotonic counters, high-water
    marks and histograms ({!Metrics}), nested wall-clock span timers
    ({!span}), and a pluggable {!Sink} (null / in-memory / line-JSON file
    with the same atomic tmp+rename discipline as [Sim.Trace_io]).

    The layer is built for the determinism contracts of this repo: engines
    never tick shared metrics from worker domains.  Instead each parallel
    task accumulates into its own {!Metrics.t} (or returns plain counters
    in its result record) and the caller merges after the barrier, in task
    order — instrumentation can therefore never introduce cross-domain
    contention or perturb the bit-identical-at-any-jobs guarantees pinned
    by [test/test_determinism.ml].  A {!t} handle must only be touched by
    the domain that created it; the one exception is {!Progress.heartbeat},
    which is explicitly multi-domain safe.

    Cost model: every instrumentation point in the engines is either
    guarded by [match obs with None -> ...] or records once at a merge
    boundary, so [?obs:None] (the default everywhere) costs one branch and
    the null sink costs a hash-table update per recorded name per run —
    the [bench --obs-bench] table pins the total at ≲2% on the
    [BENCH_mc.json] scenarios. *)

module Metrics : sig
  (** A named-metric accumulator: monotonic counters, high-water marks and
      float histograms, each keyed by a slash-separated name such as
      ["mc/nodes_visited"].  Not thread-safe — one accumulator per
      domain, merged with {!merge_into} after the barrier. *)
  type t

  val create : unit -> t

  (** [add t name k] bumps counter [name] by [k] ([k < 0] is clamped to 0:
      counters are monotonic). *)
  val add : t -> string -> int -> unit

  val incr : t -> string -> unit

  (** [record_max t name v] keeps the high-water mark of [v] under
      [name] (e.g. a depth watermark). *)
  val record_max : t -> string -> int -> unit

  (** [observe t name v] adds one sample to histogram [name]. *)
  val observe : t -> string -> float -> unit

  (** Count / sum / extrema plus power-of-two buckets: [buckets] lists
      [(upper_bound, samples <= upper_bound in this bucket)] pairs in
      increasing bound order. *)
  type histogram = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : (float * int) list;
  }

  (** Reads return 0 / [None] for never-recorded names. *)
  val counter : t -> string -> int

  val watermark : t -> string -> int
  val histogram : t -> string -> histogram option

  (** Snapshots, sorted by name (deterministic dump order). *)
  val counters : t -> (string * int) list

  val watermarks : t -> (string * int) list
  val histograms : t -> (string * histogram) list

  (** [merge_into ~into src] folds [src] into [into]: counters add,
      watermarks max, histograms merge bucket-wise.  [src] is unchanged. *)
  val merge_into : into:t -> t -> unit
end

module Sink : sig
  (** Where emitted lines go.  [null] drops them, [memory] keeps them (in
      emission order) for tests, [file] buffers them and writes the whole
      file atomically (tmp + rename) on {!flush} — an interrupted process
      never leaves a half-written metrics file. *)
  type t

  val null : t
  val memory : unit -> t

  (** [file path] buffers lines until {!flush}. *)
  val file : string -> t

  (** [false] exactly for {!null}: callers may skip formatting work. *)
  val enabled : t -> bool

  (** Emit one line (the line-JSON framing is the caller's business). *)
  val emit : t -> string -> unit

  (** Lines emitted so far, oldest first.  [[]] for null/file sinks. *)
  val contents : t -> string list

  (** Atomic write-out for [file] sinks; no-op otherwise.  Idempotent:
      flushing twice rewrites the same contents. *)
  val flush : t -> unit
end

(** One observability handle: a metrics accumulator plus a sink plus the
    span stack.  Owned by the creating domain. *)
type t

val create : ?sink:Sink.t -> unit -> t
val metrics : t -> Metrics.t
val sink : t -> Sink.t

(** The option-threading helpers the engines use ([?obs] parameters are
    [t option]); all are no-ops on [None]. *)

val add : t option -> string -> int -> unit

val incr : t option -> string -> unit
val record_max : t option -> string -> int -> unit
val observe : t option -> string -> float -> unit

(** [span obs name f] times [f ()] and records the duration (seconds)
    into histogram ["span/<path>"], where [<path>] is [name] prefixed by
    the names of the enclosing spans ("mc/search/subtree" when nested);
    an enabled sink additionally gets one
    [{"type":"span","name":...,"seconds":...}] line per completed span.
    Exception-safe: the span closes (and records) even if [f] raises. *)
val span : t option -> string -> (unit -> 'a) -> 'a

(** [alloc_span obs name f] runs [f] and adds the minor-heap words it
    allocated (the [Gc.minor_words] delta, rounded down; calling-domain
    only) to the ["<name>/minor-words"] counter.  The bench harness's
    per-row allocation column.  Exception-safe like {!span}; [None] just
    runs [f]. *)
val alloc_span : t option -> string -> (unit -> 'a) -> 'a

(** [dump ?extra obs] emits the whole metrics snapshot as line-JSON to the
    sink — one [{"type":"counter"|"watermark"|"histogram",...}] object per
    line, name-sorted within each type, preceded by a single
    [{"type":"meta",...}] line carrying the [extra] key/value pairs — and
    flushes.  Every line is a complete JSON object, so consumers can
    stream-parse without reading the whole file. *)
val dump : ?extra:(string * string) list -> t -> unit

module Progress : sig
  (** A throttled heartbeat for [--progress]: the returned closure prints
      [render ()] to [out] at most once per [interval] seconds (first call
      prints immediately) and is safe to call concurrently from any
      domain — exactly one caller wins each interval.  Designed to ride
      [Robust.Budget]'s poll cadence via the budget's [on_poll] hook. *)
  val heartbeat :
    ?interval:float ->
    ?out:out_channel ->
    render:(nodes:int -> steps:int -> string) ->
    unit ->
    nodes:int ->
    steps:int ->
    unit
end
