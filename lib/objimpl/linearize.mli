(** A Wing–Gong-style linearizability checker: is a concurrent history
    explainable by a sequential specification, respecting real-time
    order?  Handles pending calls per the Herlihy–Wing definition: a
    call that never responded may be linearized with the spec's response
    (it may have taken effect before the crash/cutoff) or dropped. *)

open Sim

type verdict =
  | Linearizable of History.call list  (** a witness linearization *)
  | Not_linearizable
  | Unknown  (** node budget exhausted *)
  | Malformed of string
      (** the log failed {!History.validate}; carries the diagnostic *)

(** Checks the history — pending calls included — against [spec], after
    validating well-formedness (malformed logs yield [Malformed], never an
    exception).  Complete calls must all be placed with their recorded
    responses; pending calls are placed freely or dropped. *)
val check : ?max_nodes:int -> Optype.t -> History.t -> verdict

val is_linearizable : ?max_nodes:int -> Optype.t -> History.t -> bool
