(* Concurrent histories, in the sense of Herlihy-Wing linearizability
   (the correctness condition Section 2 assumes of all objects): a
   real-time-ordered sequence of invocation and response events of
   operations on one implemented object. *)

open Sim

type event =
  | Inv of { call : int; pid : int; op : Op.t }
  | Res of { call : int; pid : int; value : Value.t }

type t = event list  (* in real-time order *)

type call = {
  id : int;
  pid : int;
  op : Op.t;
  response : Value.t option;  (** [None]: the call never returned *)
  inv_index : int;  (** position of the invocation in the history *)
  res_index : int option;
}

(* Well-formedness, checked event by event: every response must match an
   open invocation by the same process, no call id is invoked twice, no
   call responds twice, and a process never invokes a new call while its
   previous one is still open (processes are sequential threads of
   control).  Checkers validate before interpreting, so malformed logs are
   rejected with a diagnostic instead of crashing in [calls]. *)
let validate (history : t) =
  let invoked = Hashtbl.create 16 in (* call id -> (pid, returned) *)
  let open_call = Hashtbl.create 8 in (* pid -> call id *)
  let rec go = function
    | [] -> Ok ()
    | Inv { call; pid; _ } :: rest ->
        if Hashtbl.mem invoked call then
          Error (Printf.sprintf "call %d invoked twice" call)
        else (
          match Hashtbl.find_opt open_call pid with
          | Some prev ->
              Error
                (Printf.sprintf
                   "P%d invokes call %d while its call %d is still pending"
                   pid call prev)
          | None ->
              Hashtbl.replace invoked call (pid, false);
              Hashtbl.replace open_call pid call;
              go rest)
    | Res { call; pid; _ } :: rest -> (
        match Hashtbl.find_opt invoked call with
        | None ->
            Error (Printf.sprintf "response for call %d without invocation" call)
        | Some (_, true) -> Error (Printf.sprintf "call %d responds twice" call)
        | Some (ipid, false) ->
            if ipid <> pid then
              Error
                (Printf.sprintf "call %d invoked by P%d but answered by P%d"
                   call ipid pid)
            else (
              Hashtbl.replace invoked call (pid, true);
              Hashtbl.remove open_call pid;
              go rest))
  in
  go history

let calls (history : t) =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun idx ev ->
      match ev with
      | Inv { call; pid; op } ->
          Hashtbl.replace tbl call
            {
              id = call;
              pid;
              op;
              response = None;
              inv_index = idx;
              res_index = None;
            }
      | Res { call; value; _ } -> (
          match Hashtbl.find_opt tbl call with
          | Some c ->
              Hashtbl.replace tbl call
                { c with response = Some value; res_index = Some idx }
          | None -> invalid_arg "History.calls: response without invocation"))
    history;
  Hashtbl.fold (fun _ c acc -> c :: acc) tbl []
  |> List.sort (fun a b -> compare a.inv_index b.inv_index)

let complete_calls history =
  List.filter (fun c -> c.response <> None) (calls history)

let is_complete history = List.for_all (fun c -> c.response <> None) (calls history)

(** [precedes a b]: call [a] returned before call [b] was invoked (the
    real-time order linearizability must respect). *)
let precedes a b =
  match a.res_index with Some r -> r < b.inv_index | None -> false

let pp ppf (history : t) =
  List.iter
    (fun ev ->
      match ev with
      | Inv { call; pid; op } ->
          Fmt.pf ppf "  [%d] P%d invokes %s@." call pid (Op.to_string op)
      | Res { call; pid; value } ->
          Fmt.pf ppf "  [%d] P%d returns %s@." call pid (Value.to_string value))
    history

let to_string history = Fmt.str "%a" pp history
