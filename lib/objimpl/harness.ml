(* Driving implementations with concurrent workloads and recording the
   history of invocations and responses.

   Each process is given a planned sequence of operations on the
   implemented object; the harness interleaves the *base-object steps* of
   the procedures under a seeded random, fixed, or starving schedule,
   recording an invocation event when a call starts and a response event
   when its procedure decides.  The recorded {!History.t} is then judged
   by {!Linearize.check} against the implementation's sequential spec.

   Progress is judged by the {e drain probe} (Lowe's progress-testing
   idea): after the adversarial schedule ends, every in-flight call of a
   surviving process is repeatedly offered a solo run — its own steps
   only, coins resolved from deterministic streams — and completions keep
   their effects, so a call that can only be unblocked by {e another}
   pending call finishing first (a lock holder still inside its critical
   section) is found by the fixpoint.  Calls that no iteration can finish
   are reported in [stuck]: with nobody crashed that is a deadlock, which
   even a [Blocking] implementation must not exhibit. *)

open Sim

type outcome = {
  history : History.t;
  steps : int;
  completed : bool;  (** every planned call responded *)
  pids : int list;
      (** the pids actually stepped, in order — replaying them as [Fixed]
          with the same [coin_seed] and [crashes] reproduces the run *)
  crashed : int list;  (** pids killed by [crashes], ascending *)
  stuck : (int * int) list;
      (** (pid, call id) of surviving in-flight calls the drain probe
          could not finish; empty unless [probe] was set *)
}

type schedule =
  | Random_sched of int  (** seed *)
  | Fixed of int list
  | Starving of { victim : int; seed : int; len : int }
      (** the victim moves only when no other process is active — the
          {!Sim.Sched.starving} adversary, transplanted to the harness *)

(* per-process driver state *)
type slot = {
  mutable current : Value.t Proc.t option;  (** in-flight procedure *)
  mutable call_id : int;  (** id of the in-flight call *)
  mutable remaining : Op.t list;
  mutable crashed : bool;
}

(* The two step engines.  [Closure] walks the procedure closure trees
   directly — the reference semantics.  [Interned] runs the same loop
   over {!Sim.Intern} state ids: object values become dense ints, every
   procedure step a memoized table lookup, and a shared {!runtime} keeps
   the forced states across runs — the fuzzer's hot path.  Both engines
   draw from their RNGs in identical order and record identical
   histories; the differential suite pins that. *)
type engine = Closure | Interned

let run_closure (impl : Implementation.t) ~n ~workload ~schedule ?(coin_seed = 0)
    ?(max_steps = 100_000) ?(crashes = []) ?(probe = false)
    ?(solo_bound = 4096) () =
  let optypes = Array.of_list (impl.Implementation.base ~n) in
  let objects = Array.map (fun (ot : Optype.t) -> ot.Optype.init) optypes in
  let slots =
    Array.init n (fun pid ->
        {
          current = None;
          call_id = -1;
          remaining =
            (match List.assoc_opt pid workload with Some ops -> ops | None -> []);
          crashed = false;
        })
  in
  let history = ref [] in
  let next_call_id = ref 0 in
  (* [Fixed] and [Starving] schedules resolve internal coin flips from
     [coin_seed] (default 0), so a fixed pid list — or the [pids] a
     starving run realized — is a complete, replayable record of the run:
     the property the fuzzer's shrinker relies on.  [Random_sched] keeps
     its historical contract of one rng shared by scheduling and coins. *)
  let rng =
    match schedule with
    | Random_sched seed -> Rng.create seed
    | Fixed _ | Starving _ -> Rng.create coin_seed
  in
  let sched_rng =
    match schedule with Starving { seed; _ } -> Rng.create seed | _ -> rng
  in
  let fixed = ref (match schedule with Fixed pids -> pids | _ -> []) in
  (* start the next call of [pid] if idle and work remains *)
  let refill pid =
    let slot = slots.(pid) in
    match (slot.current, slot.remaining) with
    | None, op :: rest when not slot.crashed ->
        let id = !next_call_id in
        incr next_call_id;
        slot.current <- Some (impl.Implementation.procedure ~n ~pid op);
        slot.call_id <- id;
        slot.remaining <- rest;
        history := History.Inv { call = id; pid; op } :: !history
    | _ -> ()
  in
  Array.iteri (fun pid _ -> refill pid) slots;
  let active () =
    List.filter
      (fun pid -> slots.(pid).current <> None && not slots.(pid).crashed)
      (List.init n Fun.id)
  in
  let steps = ref 0 in
  (* schedule entries consumed so far — the clock crash points count
     against (a Fixed entry that finds its pid idle still ticks, so crash
     indices survive replay of the same pid list) *)
  let ticks = ref 0 in
  let realized = ref [] in
  let crash_list = ref (List.sort compare crashes) in
  let fire_due_crashes () =
    let rec go () =
      match !crash_list with
      | (at, pid) :: rest when at <= !ticks ->
          crash_list := rest;
          if pid >= 0 && pid < n && not slots.(pid).crashed then (
            let slot = slots.(pid) in
            slot.crashed <- true;
            (* the in-flight call never responds; planned work is lost *)
            slot.remaining <- []);
          go ()
      | _ -> ()
    in
    go ()
  in
  let step pid =
    let slot = slots.(pid) in
    if slot.crashed then ()
    else
      match slot.current with
      | None -> ()
      | Some proc -> (
          incr steps;
          realized := pid :: !realized;
          match proc with
          | Proc.Decide value ->
              history :=
                History.Res { call = slot.call_id; pid; value } :: !history;
              slot.current <- None;
              refill pid
          | Proc.Apply { obj; op; k } ->
              let value', resp = Optype.apply optypes.(obj) objects.(obj) op in
              objects.(obj) <- value';
              slot.current <- Some (k resp)
          | Proc.Choose { n = outcomes; k } ->
              slot.current <- Some (k (Rng.int rng outcomes)))
  in
  let rec loop () =
    fire_due_crashes ();
    if !steps >= max_steps then ()
    else
      match schedule with
      | Fixed _ -> (
          match !fixed with
          | [] -> ()
          | pid :: rest ->
              fixed := rest;
              incr ticks;
              if pid >= 0 && pid < n then step pid;
              loop ())
      | Random_sched _ -> (
          match active () with
          | [] -> ()
          | pids ->
              incr ticks;
              step (List.nth pids (Rng.int rng (List.length pids)));
              loop ())
      | Starving { victim; len; _ } -> (
          if !ticks >= len then ()
          else
            match active () with
            | [] -> ()
            | pids -> (
                incr ticks;
                match List.filter (fun p -> p <> victim) pids with
                | [] -> step victim; loop ()
                | others ->
                    step (List.nth others (Rng.int sched_rng (List.length others)));
                    loop ()))
  in
  loop ();
  (* drain: a Decide that has not been consumed yet still responds *)
  Array.iteri
    (fun pid slot ->
      match slot.current with
      | Some (Proc.Decide value) when not slot.crashed ->
          history := History.Res { call = slot.call_id; pid; value } :: !history;
          slot.current <- None
      | _ -> ())
    slots;
  (* The drain probe.  Each surviving in-flight call gets solo runs of up
     to [solo_bound] own-steps with coins from deterministic per-attempt
     streams; a completion keeps its object effects (that is what
     "unblocked" means — the lock holder finishing its critical section
     frees the waiter), a failure reverts them.  Iterate to a fixpoint so
     chains of dependent calls drain in any order. *)
  let stuck = ref [] in
  if probe then begin
    let attempts = 3 in
    let try_solo pid attempt =
      let slot = slots.(pid) in
      let coins = Rng.create (coin_seed + (31 * pid) + (1009 * (attempt + 1))) in
      let snapshot = Array.copy objects in
      let rec go proc k =
        if k > solo_bound then None
        else
          match proc with
          | Proc.Decide value -> Some value
          | Proc.Apply { obj; op; k = cont } ->
              let value', resp = Optype.apply optypes.(obj) objects.(obj) op in
              objects.(obj) <- value';
              go (cont resp) (k + 1)
          | Proc.Choose { n = outcomes; k = cont } ->
              go (cont (Rng.int coins outcomes)) (k + 1)
      in
      match go (Option.get slot.current) 0 with
      | Some value ->
          history := History.Res { call = slot.call_id; pid; value } :: !history;
          slot.current <- None;
          true
      | None ->
          Array.blit snapshot 0 objects 0 (Array.length objects);
          false
    in
    let progress = ref true in
    while !progress do
      progress := false;
      Array.iteri
        (fun pid slot ->
          if (not slot.crashed) && slot.current <> None then
            let rec attempt a =
              if a < attempts then
                if try_solo pid a then progress := true else attempt (a + 1)
            in
            attempt 0)
        slots
    done;
    Array.iteri
      (fun pid slot ->
        if (not slot.crashed) && slot.current <> None then
          stuck := (pid, slot.call_id) :: !stuck)
      slots
  end;
  let history = List.rev !history in
  {
    history;
    steps = !steps;
    completed =
      Array.for_all
        (fun slot -> slot.current = None && slot.remaining = [])
        slots;
    pids = List.rev !realized;
    crashed =
      Array.to_list slots
      |> List.mapi (fun pid slot -> (pid, slot.crashed))
      |> List.filter_map (fun (pid, c) -> if c then Some pid else None);
    stuck = List.rev !stuck;
  }

(* ---- the interned engine -------------------------------------------- *)

(* Long-lived interning state shared across runs of one implementation:
   the {!Sim.Intern} table (procedure states forced at most once per
   distinct consumed-history), the root state id of each (pid, op)
   procedure, and the initial object value ids.  [run] rebuilds it
   transparently when the id space nears capacity. *)
type runtime = {
  impl : Implementation.t;
  n : int;
  mutable rt : Value.t Intern.t;
  mutable roots : (int * Op.t, int) Hashtbl.t;  (* (pid, op) -> root sid *)
  mutable obj_init : int array;  (* initial object value ids *)
}

let fresh_tables (impl : Implementation.t) ~n =
  let optypes = Array.of_list (impl.Implementation.base ~n) in
  let rt = Intern.create ~optypes in
  let obj_init =
    Array.map (fun (ot : Optype.t) -> Intern.value_id rt ot.Optype.init) optypes
  in
  (rt, obj_init)

let runtime (impl : Implementation.t) ~n =
  let rt, obj_init = fresh_tables impl ~n in
  { impl; n; rt; roots = Hashtbl.create 64; obj_init }

let rebuild u =
  let rt, obj_init = fresh_tables u.impl ~n:u.n in
  u.rt <- rt;
  u.roots <- Hashtbl.create 64;
  u.obj_init <- obj_init

(* Root sid of [pid] running [op]: forced once per distinct (pid, op) for
   the runtime's lifetime.  Keyed on the operation itself (pure data), so
   a runtime serves any workload over the implementation. *)
let root_sid u ~pid op =
  match Hashtbl.find_opt u.roots (pid, op) with
  | Some sid -> sid
  | None ->
      let sid =
        Intern.root_fresh u.rt ~fp:0
          (u.impl.Implementation.procedure ~n:u.n ~pid op)
      in
      Hashtbl.add u.roots (pid, op) sid;
      sid

(* interned per-process driver state: [sid = -1] means idle *)
type islot = {
  mutable sid : int;
  mutable icall_id : int;
  mutable iremaining : Op.t list;
  mutable icrashed : bool;
}

(* Mirrors [run_closure] statement for statement — same RNG draw order
   (one coin draw per [Choose] step, scheduling draws in the same
   places), same tick/step accounting, same history events — with every
   procedure step an [Intern] table lookup and objects held as value
   ids. *)
let run_interned u ~n ~workload ~schedule ?(coin_seed = 0)
    ?(max_steps = 100_000) ?(crashes = []) ?(probe = false)
    ?(solo_bound = 4096) () =
  if u.n <> n then invalid_arg "Harness.run: runtime built for a different n";
  if Intern.near_capacity u.rt then rebuild u;
  let rt = u.rt in
  let objects = Array.copy u.obj_init in
  let slots =
    Array.init n (fun pid ->
        {
          sid = -1;
          icall_id = -1;
          iremaining =
            (match List.assoc_opt pid workload with Some ops -> ops | None -> []);
          icrashed = false;
        })
  in
  let history = ref [] in
  let next_call_id = ref 0 in
  let rng =
    match schedule with
    | Random_sched seed -> Rng.create seed
    | Fixed _ | Starving _ -> Rng.create coin_seed
  in
  let sched_rng =
    match schedule with Starving { seed; _ } -> Rng.create seed | _ -> rng
  in
  let fixed = ref (match schedule with Fixed pids -> pids | _ -> []) in
  let refill pid =
    let slot = slots.(pid) in
    if slot.sid < 0 && not slot.icrashed then
      match slot.iremaining with
      | op :: rest ->
          let id = !next_call_id in
          incr next_call_id;
          slot.sid <- root_sid u ~pid op;
          slot.icall_id <- id;
          slot.iremaining <- rest;
          history := History.Inv { call = id; pid; op } :: !history
      | [] -> ()
  in
  Array.iteri (fun pid _ -> refill pid) slots;
  let active () =
    List.filter
      (fun pid -> slots.(pid).sid >= 0 && not slots.(pid).icrashed)
      (List.init n Fun.id)
  in
  let steps = ref 0 in
  let ticks = ref 0 in
  let realized = ref [] in
  let crash_list = ref (List.sort compare crashes) in
  let fire_due_crashes () =
    let rec go () =
      match !crash_list with
      | (at, pid) :: rest when at <= !ticks ->
          crash_list := rest;
          if pid >= 0 && pid < n && not slots.(pid).icrashed then (
            let slot = slots.(pid) in
            slot.icrashed <- true;
            slot.iremaining <- []);
          go ()
      | _ -> ()
    in
    go ()
  in
  let step pid =
    let slot = slots.(pid) in
    if slot.icrashed || slot.sid < 0 then ()
    else begin
      incr steps;
      realized := pid :: !realized;
      let code = Intern.code rt slot.sid in
      let tag = code land 3 in
      if tag = Intern.tag_decided then begin
        let value = Option.get (Intern.decision rt slot.sid) in
        history := History.Res { call = slot.icall_id; pid; value } :: !history;
        slot.sid <- -1;
        refill pid
      end
      else if tag = Intern.tag_apply then begin
        let obj = code lsr 2 in
        let packed =
          Intern.apply_packed rt ~sid:slot.sid ~vid:(Array.unsafe_get objects obj)
        in
        Array.unsafe_set objects obj (Intern.vid_of packed);
        slot.sid <- Intern.sid_of packed
      end
      else
        slot.sid <-
          Intern.choose rt ~sid:slot.sid ~outcome:(Rng.int rng (code lsr 2))
    end
  in
  let rec loop () =
    fire_due_crashes ();
    if !steps >= max_steps then ()
    else
      match schedule with
      | Fixed _ -> (
          match !fixed with
          | [] -> ()
          | pid :: rest ->
              fixed := rest;
              incr ticks;
              if pid >= 0 && pid < n then step pid;
              loop ())
      | Random_sched _ -> (
          match active () with
          | [] -> ()
          | pids ->
              incr ticks;
              step (List.nth pids (Rng.int rng (List.length pids)));
              loop ())
      | Starving { victim; len; _ } -> (
          if !ticks >= len then ()
          else
            match active () with
            | [] -> ()
            | pids -> (
                incr ticks;
                match List.filter (fun p -> p <> victim) pids with
                | [] -> step victim; loop ()
                | others ->
                    step (List.nth others (Rng.int sched_rng (List.length others)));
                    loop ()))
  in
  loop ();
  Array.iteri
    (fun pid slot ->
      if slot.sid >= 0 && (not slot.icrashed) && Intern.is_decided rt slot.sid
      then begin
        let value = Option.get (Intern.decision rt slot.sid) in
        history := History.Res { call = slot.icall_id; pid; value } :: !history;
        slot.sid <- -1
      end)
    slots;
  let stuck = ref [] in
  if probe then begin
    let attempts = 3 in
    let try_solo pid attempt =
      let slot = slots.(pid) in
      let coins = Rng.create (coin_seed + (31 * pid) + (1009 * (attempt + 1))) in
      let snapshot = Array.copy objects in
      let rec go sid k =
        if k > solo_bound then None
        else
          let code = Intern.code rt sid in
          let tag = code land 3 in
          if tag = Intern.tag_decided then Intern.decision rt sid
          else if tag = Intern.tag_apply then begin
            let obj = code lsr 2 in
            let packed =
              Intern.apply_packed rt ~sid ~vid:(Array.unsafe_get objects obj)
            in
            Array.unsafe_set objects obj (Intern.vid_of packed);
            go (Intern.sid_of packed) (k + 1)
          end
          else
            go
              (Intern.choose rt ~sid ~outcome:(Rng.int coins (code lsr 2)))
              (k + 1)
      in
      match go slot.sid 0 with
      | Some value ->
          history :=
            History.Res { call = slot.icall_id; pid; value } :: !history;
          slot.sid <- -1;
          true
      | None ->
          Array.blit snapshot 0 objects 0 (Array.length objects);
          false
    in
    let progress = ref true in
    while !progress do
      progress := false;
      Array.iteri
        (fun pid slot ->
          if (not slot.icrashed) && slot.sid >= 0 then
            let rec attempt a =
              if a < attempts then
                if try_solo pid a then progress := true else attempt (a + 1)
            in
            attempt 0)
        slots
    done;
    Array.iteri
      (fun pid slot ->
        if (not slot.icrashed) && slot.sid >= 0 then
          stuck := (pid, slot.icall_id) :: !stuck)
      slots
  end;
  let history = List.rev !history in
  {
    history;
    steps = !steps;
    completed =
      Array.for_all (fun slot -> slot.sid < 0 && slot.iremaining = []) slots;
    pids = List.rev !realized;
    crashed =
      Array.to_list slots
      |> List.mapi (fun pid slot -> (pid, slot.icrashed))
      |> List.filter_map (fun (pid, c) -> if c then Some pid else None);
    stuck = List.rev !stuck;
  }

(* Dispatcher.  [Closure] (the default for bare calls) needs no state;
   [Interned] uses [rt] when given — sharing forced states across runs,
   the whole point — or a throwaway runtime otherwise. *)
let run ?(engine = Closure) ?rt (impl : Implementation.t) ~n ~workload
    ~schedule ?coin_seed ?max_steps ?crashes ?probe ?solo_bound () =
  match engine with
  | Closure ->
      run_closure impl ~n ~workload ~schedule ?coin_seed ?max_steps ?crashes
        ?probe ?solo_bound ()
  | Interned ->
      let u = match rt with Some u -> u | None -> runtime impl ~n in
      run_interned u ~n ~workload ~schedule ?coin_seed ?max_steps ?crashes
        ?probe ?solo_bound ()

(** Run and check in one go: the verdict of {!Linearize.check} on the
    recorded history (complete calls only). *)
let run_and_check ?engine ?rt impl ~n ~workload ~schedule ?coin_seed ?max_steps
    ?crashes ?probe ?solo_bound () =
  let outcome =
    run ?engine ?rt impl ~n ~workload ~schedule ?coin_seed ?max_steps ?crashes
      ?probe ?solo_bound ()
  in
  (outcome, Linearize.check impl.Implementation.spec outcome.history)

(** A random mixed workload: [calls] operations per process drawn from
    [ops] (by index). *)
let random_workload ~n ~calls ~ops ~seed =
  let rng = Rng.create seed in
  List.init n (fun pid ->
      ( pid,
        List.init calls (fun _ -> List.nth ops (Rng.int rng (List.length ops)))
      ))
