(* Driving implementations with concurrent workloads and recording the
   history of invocations and responses.

   Each process is given a planned sequence of operations on the
   implemented object; the harness interleaves the *base-object steps* of
   the procedures under a seeded random (or fixed) schedule, recording an
   invocation event when a call starts and a response event when its
   procedure decides.  The recorded {!History.t} is then judged by
   {!Linearize.check} against the implementation's sequential spec. *)

open Sim

type outcome = {
  history : History.t;
  steps : int;
  completed : bool;  (** every planned call responded *)
}

type schedule = Random_sched of int  (** seed *) | Fixed of int list

(* per-process driver state *)
type slot = {
  mutable current : Value.t Proc.t option;  (** in-flight procedure *)
  mutable call_id : int;  (** id of the in-flight call *)
  mutable remaining : Op.t list;
}

let run (impl : Implementation.t) ~n ~workload ~schedule ?(coin_seed = 0)
    ?(max_steps = 100_000) () =
  let optypes = Array.of_list (impl.Implementation.base ~n) in
  let objects = Array.map (fun (ot : Optype.t) -> ot.Optype.init) optypes in
  let slots =
    Array.init n (fun pid ->
        {
          current = None;
          call_id = -1;
          remaining =
            (match List.assoc_opt pid workload with Some ops -> ops | None -> []);
        })
  in
  let history = ref [] in
  let next_call_id = ref 0 in
  (* [Fixed] schedules resolve internal coin flips from [coin_seed]
     (default 0), so a fixed pid list is a complete, replayable record of
     the run — the property the fuzzer's shrinker relies on. *)
  let rng =
    match schedule with
    | Random_sched seed -> Rng.create seed
    | Fixed _ -> Rng.create coin_seed
  in
  let fixed = ref (match schedule with Fixed pids -> pids | Random_sched _ -> []) in
  (* start the next call of [pid] if idle and work remains *)
  let refill pid =
    let slot = slots.(pid) in
    match (slot.current, slot.remaining) with
    | None, op :: rest ->
        let id = !next_call_id in
        incr next_call_id;
        slot.current <- Some (impl.Implementation.procedure ~n ~pid op);
        slot.call_id <- id;
        slot.remaining <- rest;
        history := History.Inv { call = id; pid; op } :: !history
    | _ -> ()
  in
  Array.iteri (fun pid _ -> refill pid) slots;
  let active () =
    List.filter
      (fun pid -> slots.(pid).current <> None)
      (List.init n Fun.id)
  in
  let steps = ref 0 in
  let step pid =
    let slot = slots.(pid) in
    match slot.current with
    | None -> ()
    | Some proc -> (
        incr steps;
        match proc with
        | Proc.Decide value ->
            history :=
              History.Res { call = slot.call_id; pid; value } :: !history;
            slot.current <- None;
            refill pid
        | Proc.Apply { obj; op; k } ->
            let value', resp = Optype.apply optypes.(obj) objects.(obj) op in
            objects.(obj) <- value';
            slot.current <- Some (k resp)
        | Proc.Choose { n = outcomes; k } ->
            slot.current <- Some (k (Rng.int rng outcomes)))
  in
  let rec loop () =
    if !steps >= max_steps then ()
    else
      match schedule with
      | Fixed _ -> (
          match !fixed with
          | [] -> ()
          | pid :: rest ->
              fixed := rest;
              step pid;
              loop ())
      | Random_sched _ -> (
          match active () with
          | [] -> ()
          | pids ->
              step (List.nth pids (Rng.int rng (List.length pids)));
              loop ())
  in
  loop ();
  (* drain: a Decide that has not been consumed yet still responds *)
  Array.iteri
    (fun pid slot ->
      match slot.current with
      | Some (Proc.Decide value) ->
          history := History.Res { call = slot.call_id; pid; value } :: !history;
          slot.current <- None
      | _ -> ())
    slots;
  let history = List.rev !history in
  {
    history;
    steps = !steps;
    completed =
      Array.for_all
        (fun slot -> slot.current = None && slot.remaining = [])
        slots;
  }

(** Run and check in one go: the verdict of {!Linearize.check} on the
    recorded history (complete calls only). *)
let run_and_check impl ~n ~workload ~schedule ?coin_seed ?max_steps () =
  let outcome = run impl ~n ~workload ~schedule ?coin_seed ?max_steps () in
  (outcome, Linearize.check impl.Implementation.spec outcome.history)

(** A random mixed workload: [calls] operations per process drawn from
    [ops] (by index). *)
let random_workload ~n ~calls ~ops ~seed =
  let rng = Rng.create seed in
  List.init n (fun pid ->
      ( pid,
        List.init calls (fun _ -> List.nth ops (Rng.int rng (List.length ops)))
      ))
