(* A linearizability checker in the Wing-Gong style: a concurrent history
   is linearizable w.r.t. a sequential specification (an [Sim.Optype.t])
   iff some extension (appending responses to a subset of the pending
   calls) and completion (dropping the rest) yields a legal sequential
   execution respecting real-time precedence — the Herlihy-Wing
   definition, pending calls included.  A pending call may have taken
   effect (a crashed swap winner, a writer cut off mid-operation), so it
   may be linearized with whatever response the spec produces, or omitted
   entirely; a complete call must be linearized and its recorded response
   must match.

   Search: repeatedly pick a minimal unlinearized call (no other
   unlinearized call's response precedes its invocation), apply its
   operation to the current specification state; accept the branch if the
   recorded response matches (pending calls match anything); accept the
   leaf once every complete call is placed — unplaced pending calls are
   the dropped ones.  Exponential in the worst case, fine for the
   harness's history sizes; a node budget turns pathological instances
   into an explicit [Unknown]. *)

open Sim

type verdict =
  | Linearizable of History.call list  (** a witness order *)
  | Not_linearizable
  | Unknown  (** node budget exhausted *)
  | Malformed of string  (** not a well-formed history; diagnostic *)

let check ?(max_nodes = 2_000_000) (spec : Optype.t) (history : History.t) =
  match History.validate history with
  | Error msg -> Malformed msg
  | Ok () ->
  let calls = History.calls history in
  let nodes = ref 0 in
  let exception Budget in
  (* candidates among [pending] that can be linearized next *)
  let minimal pending =
    List.filter
      (fun c ->
        not (List.exists (fun d -> d.History.id <> c.History.id && History.precedes d c) pending))
      pending
  in
  let open_call c = c.History.response = None in
  let rec go state pending acc =
    incr nodes;
    if !nodes > max_nodes then raise Budget;
    if List.for_all open_call pending then
      (* every complete call placed; the rest are dropped pending calls *)
      Some (List.rev acc)
    else
      let rec try_candidates = function
        | [] -> None
        | c :: rest -> (
            let state', resp = Optype.apply spec state c.History.op in
            let matches =
              match c.History.response with
              | Some r -> Value.equal r resp
              | None -> true (* pending: the extension picks the response *)
            in
            if not matches then try_candidates rest
            else
              let pending' =
                List.filter (fun d -> d.History.id <> c.History.id) pending
              in
              match go state' pending' (c :: acc) with
              | Some _ as found -> found
              | None -> try_candidates rest)
      in
      try_candidates (minimal pending)
  in
  match go spec.Optype.init calls [] with
  | Some order -> Linearizable order
  | None -> Not_linearizable
  | exception Budget -> Unknown

let is_linearizable ?max_nodes spec history =
  match check ?max_nodes spec history with
  | Linearizable _ -> true
  | Not_linearizable | Unknown | Malformed _ -> false
