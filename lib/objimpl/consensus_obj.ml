(* A 2-process consensus (sticky-bit) object from ONE swap register and
   read-write registers — the related-work object of Ovens ("The space
   complexity of consensus from swap", 2023): a single swap register plus
   registers solves 2-process consensus deterministically and wait-free,
   matching swap's consensus number 2 (cf. {!Consensus.Swap2}, the same
   race packaged as a protocol rather than an implemented object).

   Layout: object 0 is the swap register (0 = untouched), objects 1 and 2
   are single-writer proposal registers, object 3 caches the decision.

     PROPOSE(v) by pid: if the decision register is set, return it
       (handles repeated proposals after the object stuck); else publish v
       in the own proposal register, swap 1 into the race object; the
       first swapper (old = 0) wins with its own value, the loser reads
       the winner's proposal — published before the winner's swap, so
       never empty.  Both write the decision register before returning.
     READ returns the decision register as-is (None until some proposal
       completes — any such read linearizes before the winning propose).

   The implemented type is exactly {!Objects.Sticky}, whose consensus
   number is infinite; with 2 processes this implementation realizes it
   from historyless base objects only. *)

open Sim
open Objects

let spec = Optype.rename (Sticky.optype ()) "sticky(spec)"

let base ~n:_ =
  [
    Swap_register.optype ~init:(Value.int 0) ();
    Register.optype ~init:Value.none ();
    Register.optype ~init:Value.none ();
    Register.optype ~init:Value.none ();
  ]

let race = 0
let proposal pid = 1 + pid
let dec = 3

let procedure ~n:_ ~pid (op : Op.t) : Value.t Proc.t =
  let open Proc in
  match op.Op.name with
  | "read" -> apply dec Register.read
  | "propose" -> (
      let* cached = apply dec Register.read in
      match cached with
      | Value.Opt (Some w) -> return w
      | _ ->
          let* _ = apply (proposal pid) (Register.write op.Op.arg) in
          let* old = apply race (Swap_register.swap (Value.int 1)) in
          let* winner =
            if Value.to_int old = 0 then return op.Op.arg
            else
              let* theirs = apply (proposal (1 - pid)) Register.read in
              return theirs
          in
          let* _ = apply dec (Register.write (Value.some winner)) in
          return winner)
  | _ -> Optype.bad_op "consensus-from-swap" op

(* 2 processes only: the loser reads "the other" proposal register *)
let implementation =
  Implementation.make ~name:"consensus-from-swap" ~spec ~base ~procedure
    ~progress:Implementation.Wait_free
