(* Implementations of one object type from others — "an implementation of
   an object X is a set of objects Y_1 .. Y_m representing X together with
   procedures F_1 .. F_n called by processes P_1 .. P_n to execute
   operations on X" (Section 2), packaged.

   The [spec] is the implemented type's *sequential* specification; the
   [Harness] runs concurrent workloads through [procedure] and the
   {!Linearize} checker decides whether the recorded history is
   explainable by [spec] — linearizability exactly as Section 2 requires
   of all objects. *)

open Sim

type progress =
  | Wait_free  (** every call finishes in bounded own-steps *)
  | Lock_free  (** some call always finishes (non-blocking) *)
  | Solo_terminating
      (** finishes when run alone — nondeterministic solo termination
          without wait-freedom, the paper's snapshot example *)
  | Blocking
      (** may wait on other processes (lock-based); deadlock-freedom is
          still owed when nobody crashes *)

type t = {
  name : string;
  spec : Optype.t;  (** sequential specification of the implemented type *)
  base : n:int -> Optype.t list;  (** base objects for n processes *)
  procedure : n:int -> pid:int -> Op.t -> Value.t Proc.t;
      (** the procedure process [pid] runs to apply an operation *)
  progress : progress;
  instances : n:int -> int;  (** base objects used, for Thm 2.1 talk *)
}

let progress_to_string = function
  | Wait_free -> "wait-free"
  | Lock_free -> "lock-free"
  | Solo_terminating -> "solo-terminating"
  | Blocking -> "blocking"

let make ~name ~spec ~base ~procedure ~progress =
  {
    name;
    spec;
    base;
    procedure;
    progress;
    instances = (fun ~n -> List.length (base ~n));
  }
