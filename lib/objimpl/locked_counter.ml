(* A counter guarded by a spinlock — the harness's [Blocking] specimen,
   and (in its deliberately flawed variant) the planted livelock the
   progress verdict must catch.

   The lock is a swap register (a test&set register has no RESET, so the
   release needs swap's WRITE): ACQUIRE spins on [swap lock 1] until the
   old value is 0, RELEASE writes 0 back.  Every counter operation runs
   inside the critical section, so linearizability is trivial — the whole
   call linearizes at its lock acquisition — and the interesting question
   is progress: a waiter can only finish after the holder's in-flight
   call completes, exactly the "unblocked by another pending call"
   subtlety Lowe's progress testing targets, and the reason the drain
   probe iterates to a fixpoint.

   [leaky] breaks the release: it writes 1 instead of 0, so the first
   critical section permanently wedges the lock and every later ACQUIRE
   spins forever — even solo.  The drain probe reports those calls as
   stuck; with nobody crashed that is a deadlock, a progress violation
   even for a [Blocking] implementation. *)

open Sim
open Objects

(* object 0: the lock (0 free / 1 held); object 1: the count *)
let base ~n:_ =
  [
    Swap_register.optype ~init:(Value.int 0) ();
    Register.optype ~init:(Value.int 0) ();
  ]

let rec acquire () : unit Proc.t =
  let open Proc in
  let* old = apply 0 (Swap_register.swap (Value.int 1)) in
  if Value.to_int old = 0 then return () else acquire ()

let release ~unlock : unit Proc.t =
  let open Proc in
  let* _ = apply 0 (Swap_register.write (Value.int unlock)) in
  return ()

let procedure ~unlock ~n:_ ~pid:_ (op : Op.t) : Value.t Proc.t =
  let open Proc in
  let locked body =
    let* () = acquire () in
    let* v = body in
    let* () = release ~unlock in
    return v
  in
  let adjust delta =
    locked
      (let* v = apply 1 Register.read in
       let* _ =
         apply 1 (Register.write (Value.int (Value.to_int v + delta)))
       in
       return Value.unit)
  in
  match op.Op.name with
  | "inc" -> adjust 1
  | "dec" -> adjust (-1)
  | "read" -> locked (apply 1 Register.read)
  | _ -> Optype.bad_op "locked-counter" op

let locked =
  Implementation.make ~name:"locked-counter" ~spec:Counters.spec ~base
    ~procedure:(procedure ~unlock:0) ~progress:Implementation.Blocking

(* the planted bug: release leaves the lock held *)
let leaky =
  Implementation.make ~name:"leaky-locked-counter" ~spec:Counters.spec ~base
    ~procedure:(procedure ~unlock:1) ~progress:Implementation.Blocking
