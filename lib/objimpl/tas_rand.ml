(* A randomized test&set register from read-write registers only, for two
   processes — the related-work direction of Giakkoupis-Helmi-Higham-
   Woelfel ("An O(sqrt n) space bound for obstruction-free leader
   election" / their space-optimal randomized test&set): registers have
   consensus number 1, so NO deterministic implementation exists, yet
   randomization buys test&set (consensus number 2) with probability-1
   termination.

   Shape: a "set" flag register plus an embedded randomized 2-process
   consensus on pids in the Aspnes-Herlihy round style.  Each round r has
   four fresh multi-writer registers — two presence bits a_r[0], a_r[1],
   a proposal register d_r, and a conciliator register c_r:

     conciliator_r(v): read c_r; non-empty: that's the new preference;
       empty: a coin decides whether to publish v in c_r first; either
       way the preference stays v.  (All participants leave with equal
       preferences with constant probability per round.)
     adopt-commit_r(v): set a_r[v]; read d_r, publishing v if empty
       (adopting its value otherwise); COMMIT the result iff the opposite
       presence bit is still clear.  Announce-before-read makes a commit
       stable: any dissenter must have announced before its d_r read, so
       the committer would have seen its bit (the Gafni-style argument,
       here with anonymous presence bits instead of a collect).

   A committed preference decides; an adopted one carries to the next
   round.  Safety is coin-independent; termination holds with
   probability 1 (and, solo, within two rounds — the drain probe relies
   on this).  Rounds are capped by the register bank; past the cap the
   call spins instead of ever deciding wrongly — unreachable in practice
   (a round costs ~8 steps, and the bank holds 64).

   TEST&SET(pid): if the set flag is up, lose (return 1); otherwise run
   the consensus on the own pid, raise the flag, and return 0 exactly
   when the consensus chose this pid.  Each pid passes the flag gate at
   most once, so the one-shot consensus suffices.  READ returns the
   flag. *)

open Sim
open Objects

let rounds = 64

let spec = Optype.rename (Test_and_set.optype ()) "test&set(spec)"

(* object 0: the set flag; objects 1 .. 4*rounds: the round banks *)
let base ~n:_ =
  Register.optype ~init:(Value.int 0) ()
  :: List.concat
       (List.init rounds (fun _ ->
            List.init 4 (fun _ -> Register.optype ~init:Value.none ())))

let flag = 0
let presence r v = 1 + (4 * r) + v
let proposal r = 1 + (4 * r) + 2
let conciliator r = 1 + (4 * r) + 3

let consensus ~pref : Value.t Proc.t =
  let open Proc in
  (* past the round cap: spin (never decide wrongly); unreachable *)
  let rec cap_spin () =
    let* _ = apply (proposal (rounds - 1)) Register.read in
    cap_spin ()
  in
  let rec round r pref =
    if r >= rounds then cap_spin ()
    else
      (* conciliator *)
      let* cur = apply (conciliator r) Register.read in
      let* pref =
        match cur with
        | Value.Int x -> return x
        | _ ->
            let* publish = flip in
            if publish then
              let* _ =
                apply (conciliator r) (Register.write (Value.int pref))
              in
              return pref
            else return pref
      in
      (* adopt-commit: announce, then read-or-publish the proposal *)
      let* _ = apply (presence r pref) (Register.write (Value.int 1)) in
      let* d = apply (proposal r) Register.read in
      let* pref =
        match d with
        | Value.Int x -> return x
        | _ ->
            let* _ = apply (proposal r) (Register.write (Value.int pref)) in
            return pref
      in
      let* other = apply (presence r (1 - pref)) Register.read in
      match other with
      | Value.Int 1 -> round (r + 1) pref (* adopt *)
      | _ -> return (Value.int pref) (* commit *)
  in
  round 0 pref

let procedure ~n:_ ~pid (op : Op.t) : Value.t Proc.t =
  let open Proc in
  match op.Op.name with
  | "read" -> apply flag Register.read
  | "test&set" -> (
      let* set = apply flag Register.read in
      match set with
      | Value.Int 1 -> return (Value.int 1)
      | _ ->
          let* winner = consensus ~pref:pid in
          let* _ = apply flag (Register.write (Value.int 1)) in
          return (Value.int (if Value.to_int winner = pid then 0 else 1)))
  | _ -> Optype.bad_op "tas-rand" op

(* 2 processes only: preferences are pids, presence bits are binary *)
let implementation =
  Implementation.make ~name:"tas-from-registers" ~spec ~base ~procedure
    ~progress:Implementation.Wait_free
