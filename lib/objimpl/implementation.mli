(** Implementations of one object type from others (Section 2), packaged
    for the {!Harness} and the {!Linearize} checker. *)

open Sim

type progress =
  | Wait_free
  | Lock_free
  | Solo_terminating
      (** nondeterministic solo termination without wait-freedom — the
          paper's snapshot example *)
  | Blocking
      (** may wait on other processes (lock-based); still owes
          deadlock-freedom when nobody crashes *)

type t = {
  name : string;
  spec : Optype.t;  (** sequential specification of the implemented type *)
  base : n:int -> Optype.t list;
  procedure : n:int -> pid:int -> Op.t -> Value.t Proc.t;
  progress : progress;
  instances : n:int -> int;
}

val progress_to_string : progress -> string

val make :
  name:string ->
  spec:Optype.t ->
  base:(n:int -> Optype.t list) ->
  procedure:(n:int -> pid:int -> Op.t -> Value.t Proc.t) ->
  progress:progress ->
  t
