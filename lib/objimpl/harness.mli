(** Drive an implementation with a concurrent workload, record the
    history, and judge it with the linearizability checker.  The drain
    probe (Lowe-style progress testing) additionally reports in-flight
    calls that can never finish — deadlock/starvation verdicts. *)

open Sim

type outcome = {
  history : History.t;
  steps : int;
  completed : bool;  (** every planned call responded *)
  pids : int list;
      (** pids actually stepped, in order; replayable as [Fixed] with the
          same [coin_seed] and [crashes] *)
  crashed : int list;  (** pids killed by [crashes], ascending *)
  stuck : (int * int) list;
      (** (pid, call id) of surviving in-flight calls the drain probe
          could not finish solo; empty unless [probe] was set.  With
          [crashed = []] a nonempty [stuck] is a deadlock — a progress
          violation even for [Implementation.Blocking]. *)
}

type schedule =
  | Random_sched of int  (** seed *)
  | Fixed of int list
  | Starving of { victim : int; seed : int; len : int }
      (** [victim] moves only when no other process is active
          ({!Sim.Sched.starving} semantics); [len] bounds the schedule *)

(** The step engines: [Closure] walks the procedure closure trees (the
    reference semantics, the default); [Interned] runs the same loop over
    {!Sim.Intern} state ids — objects as dense value ids, each step a
    memoized table lookup.  Both draw RNGs in identical order and record
    identical outcomes; the differential suite pins the equality. *)
type engine = Closure | Interned

type runtime
(** Long-lived [Interned] state for one (implementation, n): the intern
    table plus per-(pid, op) procedure roots, shared across runs so each
    distinct consumed-history is forced at most once ever.  Rebuilt
    transparently by {!run} when the id space nears capacity. *)

val runtime : Implementation.t -> n:int -> runtime

(** [run impl ~n ~workload ~schedule ()] interleaves the base-object steps
    of the per-process planned calls ([workload]: pid to operation list)
    under the schedule.  [Fixed] and [Starving] schedules resolve internal
    coin flips from [coin_seed] (default 0), so a fixed pid list — or the
    realized [pids] of a starving run — is a complete, replayable record
    of the run; [coin_seed] is ignored for [Random_sched].

    [crashes] is a list of [(tick, pid)] pairs: before schedule entry
    [tick] (0-based, counted over consumed entries) is processed, [pid]
    halts — its in-flight call never responds and its remaining planned
    operations are dropped.

    With [probe] set, after the schedule ends each surviving in-flight
    call is repeatedly offered solo runs of up to [solo_bound] own-steps
    (coins from deterministic streams; completions keep their effects,
    failures revert them) until a fixpoint; what still cannot finish is
    reported in [stuck].

    [engine] selects the step engine (default [Closure]); with
    [Interned], pass [rt] (from {!runtime}, for the same implementation
    and [n]) to share forced states across runs — omitting it builds a
    throwaway runtime, which is correct but buys nothing. *)
val run :
  ?engine:engine ->
  ?rt:runtime ->
  Implementation.t ->
  n:int ->
  workload:(int * Op.t list) list ->
  schedule:schedule ->
  ?coin_seed:int ->
  ?max_steps:int ->
  ?crashes:(int * int) list ->
  ?probe:bool ->
  ?solo_bound:int ->
  unit ->
  outcome

val run_and_check :
  ?engine:engine ->
  ?rt:runtime ->
  Implementation.t ->
  n:int ->
  workload:(int * Op.t list) list ->
  schedule:schedule ->
  ?coin_seed:int ->
  ?max_steps:int ->
  ?crashes:(int * int) list ->
  ?probe:bool ->
  ?solo_bound:int ->
  unit ->
  outcome * Linearize.verdict

(** [calls] operations per process, drawn uniformly from [ops]. *)
val random_workload :
  n:int -> calls:int -> ops:Op.t list -> seed:int -> (int * Op.t list) list
