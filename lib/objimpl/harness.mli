(** Drive an implementation with a concurrent workload, record the
    history, and judge it with the linearizability checker.  The drain
    probe (Lowe-style progress testing) additionally reports in-flight
    calls that can never finish — deadlock/starvation verdicts. *)

open Sim

type outcome = {
  history : History.t;
  steps : int;
  completed : bool;  (** every planned call responded *)
  pids : int list;
      (** pids actually stepped, in order; replayable as [Fixed] with the
          same [coin_seed] and [crashes] *)
  crashed : int list;  (** pids killed by [crashes], ascending *)
  stuck : (int * int) list;
      (** (pid, call id) of surviving in-flight calls the drain probe
          could not finish solo; empty unless [probe] was set.  With
          [crashed = []] a nonempty [stuck] is a deadlock — a progress
          violation even for [Implementation.Blocking]. *)
}

type schedule =
  | Random_sched of int  (** seed *)
  | Fixed of int list
  | Starving of { victim : int; seed : int; len : int }
      (** [victim] moves only when no other process is active
          ({!Sim.Sched.starving} semantics); [len] bounds the schedule *)

(** [run impl ~n ~workload ~schedule ()] interleaves the base-object steps
    of the per-process planned calls ([workload]: pid to operation list)
    under the schedule.  [Fixed] and [Starving] schedules resolve internal
    coin flips from [coin_seed] (default 0), so a fixed pid list — or the
    realized [pids] of a starving run — is a complete, replayable record
    of the run; [coin_seed] is ignored for [Random_sched].

    [crashes] is a list of [(tick, pid)] pairs: before schedule entry
    [tick] (0-based, counted over consumed entries) is processed, [pid]
    halts — its in-flight call never responds and its remaining planned
    operations are dropped.

    With [probe] set, after the schedule ends each surviving in-flight
    call is repeatedly offered solo runs of up to [solo_bound] own-steps
    (coins from deterministic streams; completions keep their effects,
    failures revert them) until a fixpoint; what still cannot finish is
    reported in [stuck]. *)
val run :
  Implementation.t ->
  n:int ->
  workload:(int * Op.t list) list ->
  schedule:schedule ->
  ?coin_seed:int ->
  ?max_steps:int ->
  ?crashes:(int * int) list ->
  ?probe:bool ->
  ?solo_bound:int ->
  unit ->
  outcome

val run_and_check :
  Implementation.t ->
  n:int ->
  workload:(int * Op.t list) list ->
  schedule:schedule ->
  ?coin_seed:int ->
  ?max_steps:int ->
  ?crashes:(int * int) list ->
  ?probe:bool ->
  ?solo_bound:int ->
  unit ->
  outcome * Linearize.verdict

(** [calls] operations per process, drawn uniformly from [ops]. *)
val random_workload :
  n:int -> calls:int -> ops:Op.t list -> seed:int -> (int * Op.t list) list
