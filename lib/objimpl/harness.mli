(** Drive an implementation with a concurrent workload, record the
    history, and judge it with the linearizability checker. *)

open Sim

type outcome = {
  history : History.t;
  steps : int;
  completed : bool;  (** every planned call responded *)
}

type schedule = Random_sched of int  (** seed *) | Fixed of int list

(** [run impl ~n ~workload ~schedule ()] interleaves the base-object steps
    of the per-process planned calls ([workload]: pid to operation list)
    under the schedule.  [Fixed] schedules resolve internal coin flips
    from [coin_seed] (default 0), so a fixed pid list is a complete,
    replayable record of the run; [coin_seed] is ignored for
    [Random_sched]. *)
val run :
  Implementation.t ->
  n:int ->
  workload:(int * Op.t list) list ->
  schedule:schedule ->
  ?coin_seed:int ->
  ?max_steps:int ->
  unit ->
  outcome

val run_and_check :
  Implementation.t ->
  n:int ->
  workload:(int * Op.t list) list ->
  schedule:schedule ->
  ?coin_seed:int ->
  ?max_steps:int ->
  unit ->
  outcome * Linearize.verdict

(** [calls] operations per process, drawn uniformly from [ops]. *)
val random_workload :
  n:int -> calls:int -> ops:Op.t list -> seed:int -> (int * Op.t list) list
