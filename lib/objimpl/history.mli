(** Concurrent histories (Herlihy–Wing): real-time-ordered invocation and
    response events of operations on one implemented object. *)

open Sim

type event =
  | Inv of { call : int; pid : int; op : Op.t }
  | Res of { call : int; pid : int; value : Value.t }

type t = event list

type call = {
  id : int;
  pid : int;
  op : Op.t;
  response : Value.t option;  (** [None]: never returned *)
  inv_index : int;
  res_index : int option;
}

(** Well-formedness: every response matches an open invocation by the
    same process, no duplicate invocations or responses, and each process
    is sequential (never invokes while its previous call is open).  The
    error carries a human-readable diagnostic. *)
val validate : t -> (unit, string) result

(** All calls, ordered by invocation. *)
val calls : t -> call list

val complete_calls : t -> call list
val is_complete : t -> bool

(** Real-time precedence: [a] returned before [b] was invoked. *)
val precedes : call -> call -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
