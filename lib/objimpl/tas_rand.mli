(** A randomized test&set register from read-write registers only
    (Giakkoupis–Helmi–Higham–Woelfel direction): impossible
    deterministically, probability-1 terminating with coins; [n = 2]
    only. *)

val spec : Sim.Optype.t
val implementation : Implementation.t
