(** A counter guarded by a swap-register spinlock: the [Blocking]
    progress-class specimen, plus the deliberately [leaky] variant whose
    release never frees the lock — the planted deadlock the drain probe
    and the [Stuck] fuzz verdict must detect. *)

val locked : Implementation.t
val leaky : Implementation.t
