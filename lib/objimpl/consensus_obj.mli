(** A 2-process consensus (sticky-bit) object from one swap register plus
    read-write registers (Ovens 2023); wait-free, [n = 2] only. *)

val spec : Sim.Optype.t
val implementation : Implementation.t
