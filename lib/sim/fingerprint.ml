(* Incremental state fingerprints for deterministic step machines.

   A ['a Proc.t] is a closure and cannot be hashed — but it never needs to
   be: a process is a *deterministic* step machine, so its state is fully
   determined by (initial protocol term, sequence of inputs consumed),
   where an input is either the response of a shared-memory operation
   ([Apply]) or the outcome of an internal coin flip ([Choose]).  Hashing
   the consumed-input history therefore hashes the state, and the hash can
   be maintained incrementally in O(1) per step: [h' = mix h input].

   Whether the next consumed input is a response or a coin outcome is
   itself determined by the current state (the step machine is at an
   [Apply] or at a [Choose], never a choice of the environment), so
   responses and outcomes need no distinguishing tag: equal histories from
   equal initial terms replay to equal states, kind by kind.

   The mixer is SplitMix64's finalizer — the same mixing already used by
   [Rng] — carried out directly on OCaml's native 63-bit immediate [int]
   (the 64-bit constants truncated to 63 bits): multiply-xorshift
   avalanches just as well over Z/2^63, and unlike an [Int64] pipeline it
   never boxes, which matters because [mix] sits on the hot path of every
   simulator step and every hash-table probe of the interned engine.
   Collisions are the usual transposition-table caveat: two *different*
   histories may (with probability ~2^-63 per pair) receive equal
   fingerprints; see DESIGN.md for the soundness discussion. *)

type t = int

(* 0x9E3779B97F4A7C15 mod 2^63 *)
let golden = 0x1E3779B97F4A7C15

(* SplitMix64 finalizer over the combination of [h] and [v], mod 2^63. *)
let mix (h : t) (v : int) : t =
  let z = h + ((v + 1) * golden) in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

(** Fingerprint of a process that has consumed nothing yet.  Two processes
    with this fingerprint are interchangeable only if their initial
    protocol terms are equal — seed with {!mix} (see [Config.make]
    [~fp_seeds]) when they are not. *)
let initial : t = 0x243F6A8885A308D3 (* pi, as arbitrary as it looks *)

(* Structural 63-bit hash of a [Value.t]; constructor-tagged so values of
   different shapes never collide trivially. *)
let rec value_hash (v : Value.t) : int =
  match v with
  | Value.Unit -> mix 1 0
  | Value.Bool b -> mix 2 (Bool.to_int b)
  | Value.Int i -> mix 3 i
  | Value.Sym s ->
      let h = ref (mix 4 (String.length s)) in
      String.iter (fun c -> h := mix !h (Char.code c)) s;
      !h
  | Value.Pair (a, b) -> mix (mix 5 (value_hash a)) (value_hash b)
  | Value.Opt None -> mix 6 0
  | Value.Opt (Some x) -> mix 7 (value_hash x)
  | Value.List vs -> List.fold_left (fun h x -> mix h (value_hash x)) (mix 8 0) vs
