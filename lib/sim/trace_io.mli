(** Durable witness artifacts: serialize and parse traces in a stable,
    line-oriented text format, so counterexample executions can be saved,
    diffed and reloaded.  Symbols must not contain whitespace or the
    delimiters [,;)\]] (every symbol this repository uses qualifies). *)

exception Parse_error of string

val encode_value : Value.t -> string

(** Raises {!Parse_error} on malformed input. *)
val decode_value : string -> Value.t

val to_text : encode_decision:('a -> string) -> 'a Trace.t -> string
val of_text : decode_decision:(string -> 'a) -> string -> 'a Trace.t

(** Convenience for int-decision (binary consensus) traces. *)
val to_text_int : int Trace.t -> string

val of_text_int : string -> int Trace.t
val save_int : path:string -> int Trace.t -> unit
val load_int : path:string -> int Trace.t

(** Atomic whole-file text write (temp file + rename): a crash mid-write
    never leaves a partial file at [path].  Shared by trace saving and
    the model-checker checkpoint format. *)
val save_text : path:string -> string -> unit

val load_text : path:string -> string
