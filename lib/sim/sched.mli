(** Schedulers — the adversaries of the model.  At each step a scheduler
    picks which enabled process moves and resolves internal coin flips.
    (The model checker and the lower-bound machinery bypass schedulers and
    drive {!Run.step} directly, enumerating outcomes.) *)

type 'a t = {
  name : string;
  choose : 'a Config.t -> step:int -> int option;
      (** Pick an enabled pid, or [None] to stop the run. *)
  coin : pid:int -> n:int -> int;  (** Resolve a coin flip. *)
}

(** Cycle through processes in pid order, skipping disabled ones. *)
val round_robin : ?seed:int -> unit -> 'a t

(** Uniformly random enabled process; fair coins. *)
val random : seed:int -> 'a t

(** Run one process solo; everyone else stalls. *)
val solo : pid:int -> seed:int -> 'a t

(** Replay a fixed pid sequence, skipping pids that are no longer enabled,
    then stop. *)
val replay : pids:int list -> seed:int -> 'a t

(** Starve [victim]: uniformly random among the other enabled processes;
    the victim moves only when nobody else can.  Fair coins. *)
val starving : victim:int -> seed:int -> 'a t

(** An adaptive adversary from a decision function. *)
val adaptive :
  name:string ->
  seed:int ->
  (Rng.t -> 'a Config.t -> step:int -> int option) ->
  'a t

(** Maximize contention: schedule among the processes poised at the most
    crowded object. *)
val contention : seed:int -> 'a t
