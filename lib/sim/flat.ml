(* A flat, arena-backed configuration: one int slab instead of four
   heap-object arrays.

   Layout of [slab] (all small dense ids from the shared {!Intern} table):

     index            0 .. n_objs-1          n_objs .. n_objs+n_procs-1
     contents         object value ids       per-process state ids

   plus a [halted] byte per process outside the slab (crash flags are not
   part of the transposition key — the closure engine's key omits them
   too, and they are constant within one search).

   Two hashes are maintained incrementally, O(1) per slot write:

   - [hexact]: XOR over slots of [mix (index+1) id] — the [`Exact]
     transposition key hash; order- and slot-sensitive.
   - [hsym]: the same for object slots, but state ids enter *unindexed*
     ([mix 0 sid]) and XOR is commutative, so [hsym] is invariant under
     process permutation — the [`Symmetric] key hash without any per-node
     sort.

   XOR composition makes every write self-inverse: un-writing a slot
   (DFS backtracking) applies the same two mixes again.  Hash equality is
   never trusted: table lookups compare the slab slices themselves
   (sorted for [`Symmetric]).

   The per-(slot, id) contributions are memoized Zobrist-style in [z]:
   one row of [width + 1] precomputed mixes per id ([mix 0 id] first,
   then [mix (i+1) id] per slot), lazily extended as the intern table
   grows.  A slot write then costs four array loads from two rows
   instead of four three-multiply SplitMix chains — the chains, not the
   table probes, dominated dedup'd sweeps.  The cached values ARE
   [Fingerprint.mix] outputs, so hashes are bit-identical to the
   uncached definition.

   Clone is a blit of one int array (plus the crash bytes); the model
   checker does not even clone — it steps in place and undoes
   ({!Flat_run.step_det} + the undo discipline in [Mc.Explore]). *)

type 'a t = {
  rt : 'a Intern.t;
  n_objs : int;
  n_procs : int;
  hashed : bool;
      (** maintain [hexact]/[hsym] on writes; off for callers that never
          consult a transposition table (fuzz executors, dedup-free DFS),
          saving the mix calls on every slot write *)
  slab : int array;
  halted : Bytes.t;
  mutable z : int array;
      (** Zobrist rows: [z.(id * zw + 0) = mix 0 id] (the [hsym]
          contribution of state id [id]) and [z.(id * zw + 1 + i) =
          mix (i + 1) id] (slot [i]'s contribution to [hexact]) *)
  mutable z_ids : int;  (** ids covered by [z] *)
  mutable hexact : int;
  mutable hsym : int;
  mutable enabled : int;  (** processes neither decided nor halted *)
}

let slot_hash i id = Fingerprint.mix (i + 1) id
let sym_hash sid = Fingerprint.mix 0 sid

(* row width: one sym contribution + one per slab slot *)
let zw t = t.n_objs + t.n_procs + 1

let grow_z t id =
  let w = zw t in
  let cap = max (2 * t.z_ids) (id + 1) in
  let z = Array.make (cap * w) 0 in
  Array.blit t.z 0 z 0 (t.z_ids * w);
  for id = t.z_ids to cap - 1 do
    for i = 0 to w - 1 do
      z.((id * w) + i) <- Fingerprint.mix i id
    done
  done;
  t.z <- z;
  t.z_ids <- cap

(* base index of [id]'s row, growing the cache on first sight *)
let zrow t id =
  if id >= t.z_ids then grow_z t id;
  id * zw t

type roots = Per_slot | By_fp

(** Flatten a closure configuration.  [~roots] decides root-state
    sharing: [Per_slot] gives every process its own root id (always
    sound, the [`Exact]/[`Off] engine default); [By_fp] shares roots
    between processes whose current fingerprints are equal — the
    assertion [Config.make_seeded] encodes and [`Symmetric] dedup
    requires (equal fingerprint seeds ⇒ equal protocol terms). *)
let of_config ?rt ?(hashed = true) ~roots (config : 'a Config.t) =
  let rt = match rt with Some rt -> rt | None -> Intern.of_config config in
  let n_objs = Config.n_objects config in
  let n_procs = Config.n_procs config in
  let slab = Array.make (n_objs + n_procs) 0 in
  let halted = Bytes.make n_procs '\000' in
  let t =
    {
      rt;
      n_objs;
      n_procs;
      hashed;
      slab;
      halted;
      z = [||];
      z_ids = 0;
      hexact = 0;
      hsym = 0;
      enabled = 0;
    }
  in
  for i = 0 to n_objs - 1 do
    slab.(i) <- Intern.value_id rt config.Config.objects.(i)
  done;
  for p = 0 to n_procs - 1 do
    let fp = config.Config.fps.(p) in
    let proc = config.Config.procs.(p) in
    let sid =
      match roots with
      | Per_slot -> Intern.root rt ~key:(-1 - p) ~fp proc
      | By_fp -> Intern.root rt ~key:fp ~fp proc
    in
    slab.(n_objs + p) <- sid;
    if config.Config.halted.(p) then Bytes.set halted p '\001'
    else if not (Intern.is_decided rt sid) then t.enabled <- t.enabled + 1
  done;
  if hashed then begin
    let hexact = ref 0 and hsym = ref 0 in
    for i = 0 to n_objs + n_procs - 1 do
      hexact := !hexact lxor slot_hash i slab.(i);
      hsym :=
        !hsym
        lxor (if i < n_objs then slot_hash i slab.(i) else sym_hash slab.(i))
    done;
    t.hexact <- !hexact;
    t.hsym <- !hsym
  end;
  t

let rt t = t.rt
let n_objs t = t.n_objs
let n_procs t = t.n_procs
(* unchecked slab loads/stores: object indices are validated once at
   intern time ([Intern.intern_state]) and pids are loop indices bounded
   by [n_procs] in every caller *)
let obj_vid t i = Array.unsafe_get t.slab i
let sid t p = Array.unsafe_get t.slab (t.n_objs + p)
let hexact t = t.hexact
let hsym t = t.hsym
let is_halted t p = Bytes.unsafe_get t.halted p <> '\000'
let is_decided t p = Intern.is_decided t.rt (sid t p)
let is_enabled t p = (not (is_decided t p)) && not (is_halted t p)
let enabled_count t = t.enabled
let all_decided t = t.enabled = 0
let decision t p = Intern.decision t.rt (sid t p)
let fingerprint t p = Intern.fp t.rt (sid t p)

(* Engine-independent serialization of the current configuration: the
   per-process fingerprints and decoded object values are exactly the
   closure engine's transposition key and the currency of the
   disk-backed table ([Mc.Dtbl]) — unlike slab ids or hexact/hsym they
   do not depend on this run's intern-table numbering, so two domains
   (or two runs) agree on them byte for byte. *)
let fingerprints t = Array.init t.n_procs (fun p -> fingerprint t p)
let objects t = Array.init t.n_objs (fun i -> Intern.value t.rt (obj_vid t i))

let decisions t =
  let acc = ref [] in
  for p = t.n_procs - 1 downto 0 do
    match decision t p with Some v -> acc := v :: !acc | None -> ()
  done;
  !acc

let slab_copy t ~into = Array.blit t.slab 0 into 0 (Array.length t.slab)

let clone t =
  {
    t with
    slab = Array.copy t.slab;
    halted = Bytes.copy t.halted;
  }

(** Overwrite [dst] with [src]'s state: the per-run reset of the fuzz
    loop, two blits and three scalar writes, no allocation. *)
let blit ~src ~dst =
  Array.blit src.slab 0 dst.slab 0 (Array.length src.slab);
  Bytes.blit src.halted 0 dst.halted 0 (Bytes.length src.halted);
  dst.hexact <- src.hexact;
  dst.hsym <- src.hsym;
  dst.enabled <- src.enabled

(* -- slot writes (hashes maintained; self-inverse under repetition) --- *)

let write_obj t i vid =
  let old = Array.unsafe_get t.slab i in
  if old <> vid then begin
    if t.hashed then begin
      let ro = zrow t old and rn = zrow t vid in
      let z = t.z in
      (* object slots enter both hashes slot-indexed: one shared delta *)
      let d =
        Array.unsafe_get z (ro + 1 + i) lxor Array.unsafe_get z (rn + 1 + i)
      in
      t.hexact <- t.hexact lxor d;
      t.hsym <- t.hsym lxor d
    end;
    Array.unsafe_set t.slab i vid
  end

let write_sid t p sid' =
  let i = t.n_objs + p in
  let old = Array.unsafe_get t.slab i in
  if old <> sid' then begin
    if t.hashed then begin
      let ro = zrow t old and rn = zrow t sid' in
      let z = t.z in
      t.hexact <-
        t.hexact
        lxor Array.unsafe_get z (ro + 1 + i)
        lxor Array.unsafe_get z (rn + 1 + i);
      t.hsym <- t.hsym lxor Array.unsafe_get z ro lxor Array.unsafe_get z rn
    end;
    Array.unsafe_set t.slab i sid'
  end

(** Crash process [p] in place (no further steps); mirrors
    [Run.exec_with_crashes]'s in-place halt. *)
let halt t p =
  if not (is_halted t p) then begin
    if not (is_decided t p) then t.enabled <- t.enabled - 1;
    Bytes.set t.halted p '\001'
  end

let note_decided t p = if not (is_halted t p) then t.enabled <- t.enabled - 1
let note_undecided t p = if not (is_halted t p) then t.enabled <- t.enabled + 1

let pp pp_decision ppf t =
  Fmt.pf ppf "@[<v>objects: %a@,procs: %a@]"
    Fmt.(list ~sep:sp Value.pp_compact)
    (List.init t.n_objs (fun i -> Intern.value t.rt (obj_vid t i)))
    Fmt.(list ~sep:sp (Proc.pp pp_decision))
    (List.init t.n_procs (fun p -> Intern.proc t.rt (sid t p)))
