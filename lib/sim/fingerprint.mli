(** Incremental state fingerprints for deterministic step machines.

    A process state is fully determined by (initial protocol term,
    sequence of responses and coin outcomes consumed), so hashing the
    consumed-input history hashes the state — in O(1) per step.  Used by
    [Mc.Explore]'s transposition table; maintained by [Run.step]. *)

type t = int

(** SplitMix64-finalizer combination of a running fingerprint and one
    consumed input (a hashed response, or a coin outcome). *)
val mix : t -> int -> t

(** Fingerprint of a process that has consumed nothing yet. *)
val initial : t

(** Structural hash of a value, for mixing in operation responses. *)
val value_hash : Value.t -> int
