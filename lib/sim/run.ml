(* Executing configurations.

   [step] is the *pure* single-step function: it copies the configuration, so
   callers (model checker, lower-bound adversaries) can keep the old one.
   [exec] drives a scheduler over the pure step.  [exec_fast] is an in-place
   variant with identical semantics for long measurement runs; a property
   test asserts trace equivalence between the two. *)

type outcome = All_decided | Max_steps | Scheduler_stopped

let outcome_to_string = function
  | All_decided -> "all-decided"
  | Max_steps -> "max-steps"
  | Scheduler_stopped -> "scheduler-stopped"

(* A new constructor must be added here too (the round-trip test sweeps
   this list), but it cannot silently diverge in naming: the parser is
   defined as the inverse of [outcome_to_string], whose match the
   compiler keeps exhaustive. *)
let all_outcomes = [ All_decided; Max_steps; Scheduler_stopped ]

let outcome_of_string s =
  List.find_opt (fun outcome -> outcome_to_string outcome = s) all_outcomes

type 'a result = {
  config : 'a Config.t;
  trace : 'a Trace.t;
  steps : int;
  outcome : outcome;
}

exception Step_disabled of int

(* Shared core: compute the successor state of process [pid] plus the events
   of that step, given the (already current) object array.  Also returns the
   process's updated consumed-history fingerprint (see [Fingerprint]): the
   response is mixed in on [Apply], the outcome on [Choose]. *)
let step_events (config : 'a Config.t) ~pid ~coin ~objects =
  match config.procs.(pid) with
  | Proc.Decide _ -> raise (Step_disabled pid)
  | Proc.Apply { obj; op; k } ->
      let value, resp = Optype.apply config.optypes.(obj) objects.(obj) op in
      let proc' = k resp in
      let fp' = Fingerprint.mix config.fps.(pid) (Fingerprint.value_hash resp) in
      let ev = Event.Applied { pid; obj; op; resp } in
      (proc', fp', Some (obj, value), ev)
  | Proc.Choose { n; k } ->
      let outcome = coin n in
      if outcome < 0 || outcome >= n then
        invalid_arg "Run.step: coin outcome out of range";
      let proc' = k outcome in
      let fp' = Fingerprint.mix config.fps.(pid) outcome in
      (proc', fp', None, Event.Coin { pid; n; outcome })

(** Pure step: returns the successor configuration and the events emitted
    (the step itself, plus [Decided] if the process just decided).  Raises
    [Step_disabled] on a decided process and ignores [halted] flags — the
    caller decides who is allowed to move. *)
let step (config : 'a Config.t) ~pid ~coin =
  let config' = Config.copy config in
  let proc', fp', write_back, ev =
    step_events config ~pid ~coin ~objects:config'.objects
  in
  (match write_back with
  | Some (obj, value) -> config'.objects.(obj) <- value
  | None -> ());
  config'.procs.(pid) <- proc';
  config'.fps.(pid) <- fp';
  let events =
    match Proc.decision proc' with
    | Some value -> [ ev; Event.Decided { pid; value } ]
    | None -> [ ev ]
  in
  (config', events)

(** Pure step without event construction — same successor configuration as
    {!step}, nothing else allocated beyond the configuration copy.  The
    model checker's happy path: whether the process just decided (and what
    it decided) is read back off the configuration. *)
let step_quiet (config : 'a Config.t) ~pid ~coin =
  let config' = Config.copy config in
  (match config.procs.(pid) with
  | Proc.Decide _ -> raise (Step_disabled pid)
  | Proc.Apply { obj; op; k } ->
      let value, resp =
        Optype.apply config.optypes.(obj) config'.objects.(obj) op
      in
      config'.objects.(obj) <- value;
      config'.procs.(pid) <- k resp;
      config'.fps.(pid) <-
        Fingerprint.mix config.fps.(pid) (Fingerprint.value_hash resp)
  | Proc.Choose { n; k } ->
      let outcome = coin n in
      if outcome < 0 || outcome >= n then
        invalid_arg "Run.step: coin outcome out of range";
      config'.procs.(pid) <- k outcome;
      config'.fps.(pid) <- Fingerprint.mix config.fps.(pid) outcome);
  config'

(* In-place step on a private copy owned by [exec_fast]. *)
let step_inplace (config : 'a Config.t) ~pid ~coin =
  let proc', fp', write_back, ev =
    step_events config ~pid ~coin ~objects:config.objects
  in
  (match write_back with
  | Some (obj, value) -> config.objects.(obj) <- value
  | None -> ());
  config.procs.(pid) <- proc';
  config.fps.(pid) <- fp';
  match Proc.decision proc' with
  | Some value -> [ ev; Event.Decided { pid; value } ]
  | None -> [ ev ]

let finish config rev_trace steps outcome =
  { config; trace = List.rev rev_trace; steps; outcome }

(** Drive [sched] from [config] for at most [max_steps] steps. *)
let exec ?(max_steps = 100_000) (sched : 'a Sched.t) (config : 'a Config.t) =
  let rec go config rev_trace steps =
    if Config.all_decided config then
      finish config rev_trace steps All_decided
    else if steps >= max_steps then finish config rev_trace steps Max_steps
    else
      match sched.choose config ~step:steps with
      | None -> finish config rev_trace steps Scheduler_stopped
      | Some pid ->
          let config', events =
            step config ~pid ~coin:(fun n -> sched.coin ~pid ~n)
          in
          go config' (List.rev_append events rev_trace) (steps + 1)
  in
  go config [] 0

(** Same contract as [exec], but mutates a private copy of [config] in
    place.  Use for long measurement runs. *)
let exec_fast ?(max_steps = 100_000) (sched : 'a Sched.t)
    (config : 'a Config.t) =
  let config = Config.copy config in
  let rev_trace = ref [] in
  let steps = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    if Config.all_decided config then outcome := Some All_decided
    else if !steps >= max_steps then outcome := Some Max_steps
    else
      match sched.choose config ~step:!steps with
      | None -> outcome := Some Scheduler_stopped
      | Some pid ->
          let events =
            step_inplace config ~pid ~coin:(fun n -> sched.coin ~pid ~n)
          in
          rev_trace := List.rev_append events !rev_trace;
          incr steps
  done;
  match !outcome with
  | Some o -> finish config !rev_trace !steps o
  | None -> assert false

(** Like {!exec_fast}, with crash injection: [crashes] maps step indices to
    pids halted just before that step — the paper's "a process may become
    faulty at a given point in an execution".  Crashes are recorded as
    [Halted] events. *)
let exec_with_crashes ?(max_steps = 100_000) ~crashes (sched : 'a Sched.t)
    (config : 'a Config.t) =
  let config = Config.copy config in
  let rev_trace = ref [] in
  let steps = ref 0 in
  let outcome = ref None in
  let remaining = ref (List.sort compare crashes) in
  while !outcome = None do
    (match !remaining with
    | (at, pid) :: rest when at <= !steps ->
        remaining := rest;
        if Config.is_enabled config pid then begin
          config.Config.halted.(pid) <- true;
          rev_trace := Event.Halted { pid } :: !rev_trace
        end
    | _ -> ());
    if Config.all_decided config then outcome := Some All_decided
    else if !steps >= max_steps then outcome := Some Max_steps
    else
      match sched.Sched.choose config ~step:!steps with
      | None -> outcome := Some Scheduler_stopped
      | Some pid ->
          let events =
            step_inplace config ~pid ~coin:(fun n -> sched.Sched.coin ~pid ~n)
          in
          rev_trace := List.rev_append events !rev_trace;
          incr steps
  done;
  match !outcome with
  | Some o -> finish config !rev_trace !steps o
  | None -> assert false

(** Deterministically replay a recorded schedule script (see [Fuzz.Schedule]
    for the recording side).  Each element either crashes a process
    ([`Crash pid], a no-op when the pid is out of range or already
    disabled) or steps one ([`Step (pid, coin)]), where [coin] supplies
    the outcome if the process is poised at an internal flip — [None] or
    an out-of-range outcome falls back to 0, so a script spliced by the
    shrinker can never desynchronize the replay into an error.  Elements
    whose pid is disabled are skipped rather than rejected: deleting
    earlier script elements may change who is still enabled, and total
    replays are exactly what makes delta-debugging candidates cheap to
    evaluate. *)
let exec_script ?(max_steps = 100_000) ~script (config : 'a Config.t) =
  let config = Config.copy config in
  let n = Config.n_procs config in
  let rev_trace = ref [] in
  let steps = ref 0 in
  let rec go script =
    if Config.all_decided config then All_decided
    else if !steps >= max_steps then Max_steps
    else
      match script with
      | [] -> Scheduler_stopped
      | `Crash pid :: rest ->
          if pid >= 0 && pid < n && Config.is_enabled config pid then begin
            config.Config.halted.(pid) <- true;
            rev_trace := Event.Halted { pid } :: !rev_trace
          end;
          go rest
      | `Step (pid, coin) :: rest ->
          if pid >= 0 && pid < n && Config.is_enabled config pid then begin
            let coin k =
              match coin with Some c when c >= 0 && c < k -> c | _ -> 0
            in
            let events = step_inplace config ~pid ~coin in
            rev_trace := List.rev_append events !rev_trace;
            incr steps
          end;
          go rest
  in
  let outcome = go script in
  finish config !rev_trace !steps outcome

(** Run process [pid] solo with explicitly given coin outcomes; stops when
    the process decides, the coins run out, or [max_steps] is reached.
    Returns the final configuration, trace, and unused coins.  This is the
    workhorse of the solo-termination search in [lowerbound]. *)
let run_solo_with_coins (config : 'a Config.t) ~pid ~coins
    ?(max_steps = 10_000) () =
  let rec go config rev_trace coins steps =
    if (not (Config.is_enabled config pid)) || steps >= max_steps then
      (config, List.rev rev_trace, coins)
    else
      match (config.procs.(pid), coins) with
      | Proc.Choose _, [] -> (config, List.rev rev_trace, [])
      | _ ->
          let used = ref false in
          let coin _n =
            used := true;
            match coins with c :: _ -> c | [] -> assert false
          in
          let config', events = step config ~pid ~coin in
          let coins = if !used then List.tl coins else coins in
          go config' (List.rev_append events rev_trace) coins (steps + 1)
  in
  go config [] coins 0
