(* Durable witness artifacts: a stable, line-oriented text format for
   traces (the counterexample executions the adversaries produce), with a
   parser, so witnesses can be saved, diffed and reloaded.

   Format, one event per line:

     A <pid> <obj> <op-name> <arg> <resp>
     C <pid> <n> <outcome>
     D <pid> <value>
     H <pid>

   Values use a prefix encoding closed under the [Value.t] constructors:

     u            unit          b0 / b1       booleans
     i<digits>    integers      s<chars>      symbols (no whitespace)
     p(<v>,<v>)   pairs         n             None
     o<v>         Some          l[<v>;...]    lists
*)

type 'a t = 'a Trace.t

let rec encode_value (v : Value.t) =
  match v with
  | Value.Unit -> "u"
  | Value.Bool false -> "b0"
  | Value.Bool true -> "b1"
  | Value.Int i -> "i" ^ string_of_int i
  | Value.Sym s -> "s" ^ s
  | Value.Pair (a, b) ->
      Printf.sprintf "p(%s,%s)" (encode_value a) (encode_value b)
  | Value.Opt None -> "n"
  | Value.Opt (Some v) -> "o" ^ encode_value v
  | Value.List vs ->
      Printf.sprintf "l[%s]" (String.concat ";" (List.map encode_value vs))

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* decode a value starting at position [i]; returns (value, next position) *)
let decode_value str =
  let len = String.length str in
  let rec value i =
    if i >= len then parse_error "unexpected end of value"
    else
      match str.[i] with
      | 'u' -> (Value.Unit, i + 1)
      | 'n' -> (Value.Opt None, i + 1)
      | 'b' ->
          if i + 1 >= len then parse_error "truncated bool"
          else (Value.Bool (str.[i + 1] = '1'), i + 2)
      | 'i' ->
          let j = scan_int (i + 1) in
          if j = i + 1 then parse_error "empty integer"
          else (Value.Int (int_of_string (String.sub str (i + 1) (j - i - 1))), j)
      | 's' ->
          let j = scan_sym (i + 1) in
          (Value.Sym (String.sub str (i + 1) (j - i - 1)), j)
      | 'o' ->
          let v, j = value (i + 1) in
          (Value.Opt (Some v), j)
      | 'p' ->
          if i + 1 >= len || str.[i + 1] <> '(' then parse_error "expected ("
          else
            let a, j = value (i + 2) in
            if j >= len || str.[j] <> ',' then parse_error "expected ,"
            else
              let b, k = value (j + 1) in
              if k >= len || str.[k] <> ')' then parse_error "expected )"
              else (Value.Pair (a, b), k + 1)
      | 'l' ->
          if i + 1 >= len || str.[i + 1] <> '[' then parse_error "expected ["
          else if i + 2 < len && str.[i + 2] = ']' then (Value.List [], i + 3)
          else
            let rec elements i acc =
              let v, j = value i in
              if j >= len then parse_error "unterminated list"
              else if str.[j] = ';' then elements (j + 1) (v :: acc)
              else if str.[j] = ']' then (Value.List (List.rev (v :: acc)), j + 1)
              else parse_error "expected ; or ] at %d" j
            in
            elements (i + 2) []
      | c -> parse_error "unknown value tag %c" c
  and scan_int i =
    let i = if i < len && str.[i] = '-' then i + 1 else i in
    let rec go i = if i < len && str.[i] >= '0' && str.[i] <= '9' then go (i + 1) else i in
    go i
  and scan_sym i =
    let rec go i =
      if i < len && str.[i] <> ',' && str.[i] <> ')' && str.[i] <> ';' && str.[i] <> ']'
      then go (i + 1)
      else i
    in
    go i
  in
  let v, j = value 0 in
  if j <> len then parse_error "trailing garbage in value %S" str else v

let encode_event encode_decision (ev : 'a Event.t) =
  match ev with
  | Event.Applied { pid; obj; op; resp } ->
      Printf.sprintf "A %d %d %s %s %s" pid obj op.Op.name
        (encode_value op.Op.arg) (encode_value resp)
  | Event.Coin { pid; n; outcome } -> Printf.sprintf "C %d %d %d" pid n outcome
  | Event.Decided { pid; value } ->
      Printf.sprintf "D %d %s" pid (encode_decision value)
  | Event.Halted { pid } -> Printf.sprintf "H %d" pid

let decode_event decode_decision line =
  match String.split_on_char ' ' line with
  | [ "A"; pid; obj; name; arg; resp ] ->
      Event.Applied
        {
          pid = int_of_string pid;
          obj = int_of_string obj;
          op = { Op.name; arg = decode_value arg };
          resp = decode_value resp;
        }
  | [ "C"; pid; n; outcome ] ->
      Event.Coin
        {
          pid = int_of_string pid;
          n = int_of_string n;
          outcome = int_of_string outcome;
        }
  | [ "D"; pid; value ] ->
      Event.Decided { pid = int_of_string pid; value = decode_decision value }
  | [ "H"; pid ] -> Event.Halted { pid = int_of_string pid }
  | _ -> parse_error "bad event line %S" line

(** Serialize a trace, one event per line. *)
let to_text ~encode_decision (trace : 'a t) =
  String.concat "\n"
    (List.map (encode_event encode_decision) (Trace.events trace))

(** Parse a serialized trace.  Raises {!Parse_error} on malformed input. *)
let of_text ~decode_decision text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  Trace.of_events (List.map (decode_event decode_decision) lines)

(** Int-decision convenience (binary consensus traces). *)
let to_text_int trace = to_text ~encode_decision:string_of_int trace

let of_text_int text = of_text ~decode_decision:int_of_string text

(* Atomic whole-file write: the contents land in a sibling temp file that
   is renamed over [path], so a crash mid-write leaves the previous
   version intact.  Periodic checkpoints (see [Mc.Checkpoint]) depend on
   this — an interrupted run must always find a complete file. *)
let save_text ~path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc text;
  close_out oc;
  Sys.rename tmp path

let load_text ~path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let buf = really_input_string ic len in
  close_in ic;
  buf

let save_int ~path trace = save_text ~path (to_text_int trace ^ "\n")
let load_int ~path = of_text_int (load_text ~path)
