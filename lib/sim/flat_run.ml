(* Executing flat configurations ({!Flat}): the measurement-loop
   counterparts of [Run.exec_fast] / [Run.exec_with_crashes] /
   [Run.exec_script], mutating the slab in place.

   The randomized executors consume their [Rng.t] in *exactly* the draw
   order of the closure engine ([Sched.random] / [Sched.starving] driven
   by [Run.exec_fast]): one draw bounded by the enabled count to pick the
   process, then one draw for the coin iff the chosen process is poised
   at a [Choose] — so a flat run and a closure run from the same seed
   take bit-identical executions.  Instead of a trace (events carry
   operations and responses, which the slab has interned away) each
   executor records the *schedule* — precisely what [Fuzz.Schedule.of_trace]
   would have extracted from the closure trace: [`Step (pid, coin)] per
   step and [`Crash pid] per effective crash — so recorded artifacts,
   shrinker input, and replays are engine-independent. *)

type outcome = Run.outcome = All_decided | Max_steps | Scheduler_stopped

type 'a result = {
  flat : 'a Flat.t;  (** the final configuration (mutated in place) *)
  steps : int;
  outcome : outcome;
  schedule : [ `Step of int * int option | `Crash of int ] list;
}

exception Step_disabled = Run.Step_disabled

(** One in-place step of process [pid]; [coin n] resolves a [Choose].
    Returns the consumed coin outcome ([None] for an [Apply] step).
    Raises {!Step_disabled} on a decided process, like [Run.step]. *)
let step (t : 'a Flat.t) ~pid ~coin =
  let rt = Flat.rt t in
  let sid = Flat.sid t pid in
  match Intern.kind rt sid with
  | Intern.Decided -> raise (Step_disabled pid)
  | Intern.Apply ->
      let obj = Intern.arg rt sid in
      let packed = Intern.apply_packed rt ~sid ~vid:(Flat.obj_vid t obj) in
      let sid' = Intern.sid_of packed in
      Flat.write_obj t obj (Intern.vid_of packed);
      Flat.write_sid t pid sid';
      if Intern.is_decided rt sid' then Flat.note_decided t pid;
      None
  | Intern.Choose ->
      let n = Intern.arg rt sid in
      let outcome = coin n in
      let sid' = Intern.choose rt ~sid ~outcome in
      Flat.write_sid t pid sid';
      if Intern.is_decided rt sid' then Flat.note_decided t pid;
      Some outcome

(* k-th enabled pid in ascending order, excluding [skip] (pass -1 for
   none) — the flat equivalent of [List.nth (Config.enabled_pids c) k].
   Toplevel recursion: a local [let rec] closing over [t]/[skip] would
   allocate its closure on every pick. *)
let rec nth_from t n skip pid k =
  if pid >= n then invalid_arg "Flat_run.nth_enabled"
  else if pid <> skip && Flat.is_enabled t pid then
    if k = 0 then pid else nth_from t n skip (pid + 1) (k - 1)
  else nth_from t n skip (pid + 1) k

let nth_enabled t ~skip k = nth_from t (Flat.n_procs t) skip 0 k

let count_enabled_excluding t ~skip =
  let c = Flat.enabled_count t in
  if skip >= 0 && skip < Flat.n_procs t && Flat.is_enabled t skip then c - 1
  else c

let finish flat rev_schedule steps outcome =
  { flat; steps; outcome; schedule = List.rev rev_schedule }

(* Shared driver: [pick] chooses the next pid (drawing from [rng] in the
   closure scheduler's order); coins come from the same [rng]. *)
let exec_loop ~max_steps ~rng ~pick ?(crashes = []) (t : 'a Flat.t) =
  let rev_schedule = ref [] in
  let steps = ref 0 in
  let outcome = ref None in
  let remaining = ref (List.sort compare crashes) in
  let coin n = Rng.int rng n in
  while !outcome = None do
    (match !remaining with
    | (at, pid) :: rest when at <= !steps ->
        remaining := rest;
        if pid >= 0 && pid < Flat.n_procs t && Flat.is_enabled t pid then begin
          Flat.halt t pid;
          rev_schedule := `Crash pid :: !rev_schedule
        end
    | _ -> ());
    if Flat.all_decided t then outcome := Some All_decided
    else if !steps >= max_steps then outcome := Some Max_steps
    else begin
      let pid = pick t in
      let coin_used = step t ~pid ~coin in
      rev_schedule := `Step (pid, coin_used) :: !rev_schedule;
      incr steps
    end
  done;
  match !outcome with
  | Some o -> finish t !rev_schedule !steps o
  | None -> assert false

(** [Run.exec_fast] over [Sched.random ~seed] with [rng = Rng.create
    seed]: uniformly random enabled process, fair coins, one rng. *)
let exec_random ?(max_steps = 100_000) ~rng t =
  let pick t = nth_enabled t ~skip:(-1) (Rng.int rng (Flat.enabled_count t)) in
  exec_loop ~max_steps ~rng ~pick t

(** [Run.exec_fast] over [Sched.starving ~victim ~seed]: uniform among
    the non-victim enabled processes; the victim moves (with no rng
    draw) only when nobody else can. *)
let exec_starving ?(max_steps = 100_000) ~victim ~rng t =
  let pick t =
    let others = count_enabled_excluding t ~skip:victim in
    if others = 0 then victim
    else nth_enabled t ~skip:victim (Rng.int rng others)
  in
  exec_loop ~max_steps ~rng ~pick t

(** [Run.exec_with_crashes] over [Sched.random]: before each loop
    iteration at most one due crash fires (recorded as [`Crash] when the
    pid was still enabled), then one uniformly random step. *)
let exec_with_crashes ?(max_steps = 100_000) ~crashes ~rng t =
  let pick t = nth_enabled t ~skip:(-1) (Rng.int rng (Flat.enabled_count t)) in
  exec_loop ~max_steps ~rng ~pick ~crashes t

(** Deterministic script replay, mirroring [Run.exec_script]: disabled
    or out-of-range pids are skipped, absent/out-of-range coins fall
    back to outcome 0, and only executed steps count. *)
let exec_script ?(max_steps = 100_000) ~script (t : 'a Flat.t) =
  let n = Flat.n_procs t in
  let rev_schedule = ref [] in
  let steps = ref 0 in
  let rec go script =
    if Flat.all_decided t then All_decided
    else if !steps >= max_steps then Max_steps
    else
      match script with
      | [] -> Scheduler_stopped
      | `Crash pid :: rest ->
          if pid >= 0 && pid < n && Flat.is_enabled t pid then begin
            Flat.halt t pid;
            rev_schedule := `Crash pid :: !rev_schedule
          end;
          go rest
      | `Step (pid, coin) :: rest ->
          if pid >= 0 && pid < n && Flat.is_enabled t pid then begin
            let coin k =
              match coin with Some c when c >= 0 && c < k -> c | _ -> 0
            in
            let coin_used = step t ~pid ~coin in
            rev_schedule := `Step (pid, coin_used) :: !rev_schedule;
            incr steps
          end;
          go rest
  in
  let outcome = go script in
  finish t !rev_schedule !steps outcome
