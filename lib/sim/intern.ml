(* Interned process states: the heart of the flat slab-state hot path.

   A ['a Proc.t] is a closure tree, expensive to walk and impossible to
   hash — but a process is a *deterministic* step machine, so its state is
   fully determined by (initial protocol term, sequence of consumed
   inputs), where an input is an operation response ([Apply]) or a coin
   outcome ([Choose]); the same fact [Fingerprint] exploits, made total:
   instead of hashing the consumed history we *intern* it.  Each distinct
   (root, consumed-history) pair is assigned a small dense int — a state
   id — the first time it is reached, and the closure tree behind it is
   forced exactly once.  Afterwards, stepping a process is a single
   int-keyed hashtable lookup:

     succ       : (sid, input id)        -> sid'
     apply_memo : (sid, object value id) -> (object value id', sid')

   [apply_memo] caches the whole shared-memory step — the object
   transition *and* the response-determined successor state — so the
   model checker's and fuzzer's inner loops never allocate or force a
   closure on a path they have seen before.  Shared-object values are
   interned to small ints by the same table ([value_id]/[value]), which
   is what lets a whole configuration flatten into one int slab
   ({!Flat}).

   Soundness of the successor sharing: [succ] keys children on the
   *consumed input* (the response value id, or the coin outcome), not on
   the pre-step object value — two different object values that produce
   the same response lead to the same consumed history and therefore the
   same state.  State id equality is consumed-history equality from equal
   roots, by construction; no hash is trusted anywhere (value interning
   compares with [Value.equal] on collision, and ids are dense indices).

   Root sharing is the caller's assertion: [root] with equal [~key]s
   returns one id, claiming the supplied protocol terms are equal —
   exactly the precondition [Mc.Explore]'s [`Symmetric] dedup already
   places on equal fingerprint seeds.  [root_fresh] never shares.

   Per-state fingerprints are carried along ([fp]): the fingerprint of a
   state id equals the fingerprint [Run.step] would have maintained for
   the same consumed history, so flat and closure engines can be compared
   (and mixed) fingerprint-for-fingerprint.

   Capacity: ids are packed two-per-int in table keys, so both id spaces
   are capped at [2^25].  The cap is far beyond any bounded exploration
   (a search visiting that many *distinct* states holds 32M closures),
   but an unbounded fuzz campaign over a randomized protocol can creep:
   long-lived callers poll [near_capacity] between runs and rebuild.
   Breaching the cap raises [Overflow] rather than silently corrupting
   keys. *)

type kind = Apply | Choose | Decided

exception Overflow
exception Step_disabled

(* 2^25 ids per space: packed pairs stay within 50 bits. *)
let id_bits = 25
let max_ids = 1 lsl id_bits

let pack a b = (a lsl id_bits) lor b
let fst_of p = p lsr id_bits
let snd_of p = p land (max_ids - 1)

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash v = Fingerprint.value_hash v land max_int
end)

(* Open-addressing int->int table for the two per-step lookups ([succ],
   [apply_memo]).  Keys are packed id pairs (always >= 0), so -1 marks an
   empty slot and [find] returns -1 for absent — no option allocation,
   no polymorphic hashing.  The slot hash is Fibonacci multiplicative
   hashing: one multiply, take the *top* bits ([lsr shift]) — the high
   half of [key * odd] mixes every input bit, unlike masking the low
   half, and it is a fraction of the full SplitMix finalizer's latency.
   [find]'s first probe is laid out inline (a straight-line
   multiply/load/compare) so callers' hit paths flatten completely; the
   wrap-around scan lives in a toplevel recursion — a local [let rec]
   closing over [keys]/[key] would heap-allocate its closure on every
   call, measurably one block per DFS node.  Grows at 50% load. *)
module Itbl = struct
  type t = {
    mutable keys : int array;
    mutable vals : int array;
    mutable mask : int;  (** capacity - 1 (capacity a power of two) *)
    mutable shift : int;  (** 63 - log2 capacity *)
    mutable size : int;
  }

  let fib = 0x1E3779B97F4A7C15 (* odd: golden ratio mod 2^63 *)

  let create cap =
    let bits = ref 4 in
    while 1 lsl !bits < cap do incr bits done;
    let cap = 1 lsl !bits in
    {
      keys = Array.make cap (-1);
      vals = Array.make cap 0;
      mask = cap - 1;
      shift = 63 - !bits;
      size = 0;
    }

  let rec probe keys vals key mask i =
    let k = Array.unsafe_get keys i in
    if k = key then Array.unsafe_get vals i
    else if k = -1 then -1
    else probe keys vals key mask ((i + 1) land mask)

  let[@inline] find t key =
    let i = (key * fib) lsr t.shift in
    let keys = t.keys in
    let k = Array.unsafe_get keys i in
    if k = key then Array.unsafe_get t.vals i
    else if k = -1 then -1
    else probe keys t.vals key t.mask ((i + 1) land t.mask)

  let rec add_probe keys vals key v mask i =
    let k = Array.unsafe_get keys i in
    if k = -1 then begin
      keys.(i) <- key;
      vals.(i) <- v;
      true
    end
    else if k = key then begin
      vals.(i) <- v;
      false
    end
    else add_probe keys vals key v mask ((i + 1) land mask)

  let rec add t key v =
    if 2 * (t.size + 1) > t.mask + 1 then begin
      let old_keys = t.keys and old_vals = t.vals and cap = t.mask + 1 in
      t.keys <- Array.make (2 * cap) (-1);
      t.vals <- Array.make (2 * cap) 0;
      t.mask <- (2 * cap) - 1;
      t.shift <- t.shift - 1;
      t.size <- 0;
      for i = 0 to cap - 1 do
        if old_keys.(i) >= 0 then add t old_keys.(i) old_vals.(i)
      done;
      add t key v
    end
    else if add_probe t.keys t.vals key v t.mask ((key * fib) lsr t.shift) then
      t.size <- t.size + 1
end

(* One int per state for the hot kind/arg pair: [(arg lsl 2) lor tag].
   A single (unsafe) array load answers "what is this state poised at,
   and on what" — the inner DFS loop's most frequent question. *)
let tag_apply = 0
let tag_choose = 1
let tag_decided = 2

type 'a t = {
  optypes : Optype.t array;
  (* value interning: id <-> Value.t *)
  val_ids : int Vtbl.t;
  mutable values : Value.t array;
  mutable n_values : int;
  (* state interning: parallel arrays, hot fields unboxed *)
  mutable st_code : int array;
      (** [(arg lsl 2) lor tag]; arg = object index ([Apply]) or outcome
          count ([Choose]), 0 for [Decided] *)
  mutable st_fp : int array;
  mutable st_proc : 'a Proc.t option array;  (** forced closure, miss path only *)
  mutable st_dec : 'a option array;
  mutable n_states : int;
  roots : (int, int) Hashtbl.t;  (** caller key -> root sid (cold; keys may be negative) *)
  succ : Itbl.t;  (** pack (sid, input id) -> sid' *)
  apply_memo : Itbl.t;  (** pack (sid, vid) -> pack (vid', sid') *)
  mutable last_vid : int;
      (** out-parameter of [apply]: the post-step object value id *)
}

let create ~optypes =
  {
    optypes;
    val_ids = Vtbl.create 256;
    values = Array.make 64 Value.Unit;
    n_values = 0;
    st_code = Array.make 64 (tag_decided lor 0);
    st_fp = Array.make 64 0;
    st_proc = Array.make 64 None;
    st_dec = Array.make 64 None;
    n_states = 0;
    roots = Hashtbl.create 16;
    succ = Itbl.create 1024;
    apply_memo = Itbl.create 1024;
    last_vid = 0;
  }

let of_config (config : 'a Config.t) =
  create ~optypes:(Array.copy config.Config.optypes)

let n_states t = t.n_states
let n_values t = t.n_values

(* rebuild well before ids stop fitting: one fuzz run adds at most its
   step bound of fresh ids, so a half-space headroom check between runs
   cannot be outrun inside a single run *)
let near_capacity t = t.n_states >= max_ids / 2 || t.n_values >= max_ids / 2

let value_id t v =
  match Vtbl.find_opt t.val_ids v with
  | Some id -> id
  | None ->
      let id = t.n_values in
      if id >= max_ids then raise Overflow;
      if id = Array.length t.values then
        t.values <-
          Array.init (2 * id) (fun i -> if i < id then t.values.(i) else Value.Unit);
      t.values.(id) <- v;
      t.n_values <- id + 1;
      Vtbl.add t.val_ids v id;
      id

let value t id = t.values.(id)

let grow (type x) (dummy : x) (arr : x array) len : x array =
  Array.init (2 * len) (fun i -> if i < len then arr.(i) else dummy)

(* Force one closure node into a fresh state id. *)
let intern_state (t : 'a t) (proc : 'a Proc.t) ~fp =
  let sid = t.n_states in
  if sid >= max_ids then raise Overflow;
  if sid = Array.length t.st_code then begin
    t.st_code <- grow 0 t.st_code sid;
    t.st_fp <- grow 0 t.st_fp sid;
    t.st_proc <- grow None t.st_proc sid;
    t.st_dec <- grow None t.st_dec sid
  end;
  (match proc with
  | Proc.Apply { obj; _ } ->
      (* validated here, once per distinct state, so every later consumer
         (slab writes, [apply]) may index unchecked *)
      if obj < 0 || obj >= Array.length t.optypes then
        invalid_arg "Run.step: no such object";
      t.st_code.(sid) <- (obj lsl 2) lor tag_apply
  | Proc.Choose { n; _ } -> t.st_code.(sid) <- (n lsl 2) lor tag_choose
  | Proc.Decide v ->
      t.st_code.(sid) <- tag_decided;
      t.st_dec.(sid) <- Some v);
  t.st_fp.(sid) <- fp;
  t.st_proc.(sid) <- Some proc;
  t.n_states <- sid + 1;
  sid

let root t ~key ~fp proc =
  match Hashtbl.find_opt t.roots key with
  | Some sid -> sid
  | None ->
      let sid = intern_state t proc ~fp in
      Hashtbl.add t.roots key sid;
      sid

let root_fresh t ~fp proc = intern_state t proc ~fp

let code t sid = Array.unsafe_get t.st_code sid

let kind t sid =
  match t.st_code.(sid) land 3 with
  | 0 -> Apply
  | 1 -> Choose
  | _ -> Decided

let arg t sid = t.st_code.(sid) lsr 2
let fp t sid = t.st_fp.(sid)
let is_decided t sid = Array.unsafe_get t.st_code sid land 3 = tag_decided
let decision t sid = t.st_dec.(sid)

let proc (t : 'a t) sid : 'a Proc.t =
  match t.st_proc.(sid) with Some p -> p | None -> assert false

let last_vid t = t.last_vid

(* Cold path of [apply_packed]: force the closure one step, intern the
   results, memoize.  Out of line so the hit path stays straight-line
   code small enough to inline into callers. *)
let apply_miss t key sid vid =
  match proc t sid with
  | Proc.Apply { obj; op; k } ->
      let value', resp = Optype.apply t.optypes.(obj) t.values.(vid) op in
      let vid' = value_id t value' in
      let resp_id = value_id t resp in
      let skey = pack sid resp_id in
      let sid' =
        match Itbl.find t.succ skey with
        | -1 ->
            let sid' =
              intern_state t (k resp)
                ~fp:
                  (Fingerprint.mix t.st_fp.(sid)
                     (Fingerprint.value_hash resp))
            in
            Itbl.add t.succ skey sid';
            sid'
        | sid' -> sid'
      in
      let packed = pack vid' sid' in
      Itbl.add t.apply_memo key packed;
      packed
  | Proc.Choose _ | Proc.Decide _ -> raise Step_disabled

(** One shared-memory step of an [Apply] state against the object value
    [~vid], as the packed pair [pack (vid', sid')] (split with {!vid_of}
    / {!sid_of}).  Exactly [Run.step]'s semantics (the response is mixed
    into the fingerprint), memoized on (sid, vid); the successor is
    additionally shared across [vid]s that produce the same response,
    because the consumed history only sees the response. *)
let[@inline] apply_packed t ~sid ~vid =
  let key = (sid lsl id_bits) lor vid in
  let packed = Itbl.find t.apply_memo key in
  if packed >= 0 then packed else apply_miss t key sid vid

let vid_of = fst_of
let sid_of = snd_of

let apply t ~sid ~vid =
  let packed = apply_packed t ~sid ~vid in
  t.last_vid <- fst_of packed;
  snd_of packed

let choose_miss t key sid outcome =
  match proc t sid with
  | Proc.Choose { k; _ } ->
      let sid' =
        intern_state t (k outcome) ~fp:(Fingerprint.mix t.st_fp.(sid) outcome)
      in
      Itbl.add t.succ key sid';
      sid'
  | Proc.Apply _ | Proc.Decide _ -> raise Step_disabled

(** Successor of a [Choose] state on [~outcome]; range-checked like
    [Run.step]. *)
let[@inline] choose t ~sid ~outcome =
  let n = Array.unsafe_get t.st_code sid lsr 2 in
  if outcome < 0 || outcome >= n then
    invalid_arg "Run.step: coin outcome out of range";
  let key = (sid lsl id_bits) lor outcome in
  let sid' = Itbl.find t.succ key in
  if sid' >= 0 then sid' else choose_miss t key sid outcome
