(** Executing configurations: the pure single-step function and two
    scheduler-driven runners with identical semantics (a property test
    asserts trace equivalence). *)

type outcome = All_decided | Max_steps | Scheduler_stopped

val outcome_to_string : outcome -> string

(** Inverse of {!outcome_to_string}; [None] on unknown input.  Used by
    durable formats (trace dumps, checkpoints) that must re-parse what
    they print. *)
val outcome_of_string : string -> outcome option

(** Every [outcome] constructor, for round-trip sweeps. *)
val all_outcomes : outcome list

type 'a result = {
  config : 'a Config.t;
  trace : 'a Trace.t;
  steps : int;
  outcome : outcome;
}

(** Raised when stepping an already-decided process. *)
exception Step_disabled of int

(** Pure step of process [pid]: returns the successor configuration (the
    input is unchanged) and the emitted events — the step itself plus
    [Decided] if the process just decided.  [coin] supplies outcomes for
    internal flips; out-of-range outcomes raise [Invalid_argument].
    Ignores [halted] flags: the caller decides who may move. *)
val step :
  'a Config.t -> pid:int -> coin:(int -> int) -> 'a Config.t * 'a Event.t list

(** {!step} without event construction: same successor configuration,
    nothing allocated beyond the configuration copy.  The model checker's
    happy path; decisions are read back off the configuration. *)
val step_quiet : 'a Config.t -> pid:int -> coin:(int -> int) -> 'a Config.t

(** Drive a scheduler for at most [max_steps] steps (default 100_000),
    copying configurations (persistent). *)
val exec : ?max_steps:int -> 'a Sched.t -> 'a Config.t -> 'a result

(** Same contract as {!exec} but mutates a private copy in place; use for
    long measurement runs. *)
val exec_fast : ?max_steps:int -> 'a Sched.t -> 'a Config.t -> 'a result

(** {!exec_fast} with crash injection: [crashes] maps step indices to pids
    halted just before that step; recorded as [Halted] events. *)
val exec_with_crashes :
  ?max_steps:int ->
  crashes:(int * int) list ->
  'a Sched.t ->
  'a Config.t ->
  'a result

(** Deterministically replay a recorded schedule script.  [`Crash pid]
    halts a process (skipped when out of range or already disabled);
    [`Step (pid, coin)] steps one, with [coin] supplying the outcome if
    the process is poised at an internal flip ([None] or an out-of-range
    outcome falls back to 0).  Elements whose pid is disabled are skipped,
    so {e any} script replays to completion — the property the fuzzer's
    shrinker relies on (deleting elements can deactivate later ones but
    never wedge the replay).  Stops at [All_decided] as soon as every
    process has decided; an exhausted script is [Scheduler_stopped]. *)
val exec_script :
  ?max_steps:int ->
  script:[ `Step of int * int option | `Crash of int ] list ->
  'a Config.t ->
  'a result

(** Run [pid] solo with the given coin outcomes until it decides, runs out
    of coins at a flip, or [max_steps] is reached.  Returns final
    configuration, trace, and unused coins. *)
val run_solo_with_coins :
  'a Config.t ->
  pid:int ->
  coins:int list ->
  ?max_steps:int ->
  unit ->
  'a Config.t * 'a Trace.t * int list
