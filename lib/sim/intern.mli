(** Interned process states and object values: closure-tree states are
    lazily forced into small dense ints — one id per distinct (root,
    consumed-history) pair — and every step thereafter is an int-keyed
    table lookup.  The representation {!Flat} configurations are built
    on; see the module comment in the implementation for the soundness
    argument (state id equality ⇔ consumed-history equality from equal
    roots; no hash is trusted). *)

type 'a t

type kind =
  | Apply  (** poised at a shared-memory operation *)
  | Choose  (** poised at an internal coin flip *)
  | Decided

exception Overflow
(** An id space outgrew the packed-key capacity ([2^25] ids); rebuild the
    table.  Long-lived callers avoid this by polling {!near_capacity}
    between runs. *)

exception Step_disabled
(** [apply]/[choose] on a decided state (mirrors [Run.Step_disabled]). *)

val create : optypes:Optype.t array -> 'a t
val of_config : 'a Config.t -> 'a t
(** Fresh table over the configuration's object types. *)

val n_states : 'a t -> int
val n_values : 'a t -> int

val near_capacity : 'a t -> bool
(** True once either id space passed half capacity: rebuild between runs. *)

val value_id : 'a t -> Value.t -> int
val value : 'a t -> int -> Value.t

val root : 'a t -> key:int -> fp:Fingerprint.t -> 'a Proc.t -> int
(** Intern a root protocol term under [key]; equal keys share one id —
    the caller asserts the terms are equal (the [`Symmetric]
    precondition). *)

val root_fresh : 'a t -> fp:Fingerprint.t -> 'a Proc.t -> int
(** Intern a root with a guaranteed-fresh id (never shared). *)

val kind : 'a t -> int -> kind
val arg : 'a t -> int -> int
(** [Apply]: the object index the state is poised at; [Choose]: the
    number of outcomes.  Unspecified for [Decided]. *)

val code : 'a t -> int -> int
(** Packed kind/arg in one unchecked load: [(arg t sid lsl 2) lor tag]
    with tag {!tag_apply} / {!tag_choose} / {!tag_decided}.  The inner
    DFS loops branch on this instead of {!kind} + {!arg}. *)

val tag_apply : int
val tag_choose : int
val tag_decided : int

val fp : 'a t -> int -> Fingerprint.t
(** The fingerprint [Run.step] would carry for this consumed history. *)

val is_decided : 'a t -> int -> bool
val decision : 'a t -> int -> 'a option
val proc : 'a t -> int -> 'a Proc.t
(** The forced closure behind a state id (diagnostics / trace rebuild). *)

val apply : 'a t -> sid:int -> vid:int -> int
(** One shared-memory step of an [Apply] state against object value id
    [vid]: the successor state id; the post-step object value id is left
    in {!last_vid}.  Memoized on (sid, vid). *)

val last_vid : 'a t -> int

val apply_packed : 'a t -> sid:int -> vid:int -> int
(** Allocation- and side-effect-free variant of {!apply}: the packed
    pair of post-step ids, split with {!vid_of} / {!sid_of}.  The inner
    loops use this form — the memo-hit path is straight-line code that
    inlines into the caller. *)

val vid_of : int -> int
val sid_of : int -> int

val choose : 'a t -> sid:int -> outcome:int -> int
(** Successor of a [Choose] state on a coin outcome (range-checked). *)
