(** SplitMix64: a small, fast pseudorandom generator implemented in-repo so
    every measurement is reproducible from a seed independent of the OCaml
    stdlib. *)

type t

val create : int -> t
val copy : t -> t
val next_int64 : t -> int64

(** Uniform in [0, bound).  Raises [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform in [0, 1). *)
val float : t -> float

(** Derive an independent generator. *)
val split : t -> t

(** [split_n t n] derives [n] independent generators by [n] sequential
    splits of [t].  Generator [i] depends only on [t]'s state and [i], so a
    parallel harness can hand stream [i] to task [i] and get bit-identical
    results regardless of domain count or scheduling.  Raises
    [Invalid_argument] on a negative count. *)
val split_n : t -> int -> t array

(** Fisher–Yates shuffle, in place. *)
val shuffle : t -> 'a array -> unit
