(** A flat configuration: one int slab of interned ids ({!Intern}) —
    object value ids followed by per-process state ids — plus crash
    flags, with two incrementally maintained transposition hashes
    (slot-exact and process-permutation-invariant).  Clone is a blit;
    slot writes are O(1) including hash maintenance and self-inverse,
    which is what makes the model checker's in-place DFS undo
    discipline work.  See the implementation's module comment for the
    slab layout. *)

type 'a t

type roots =
  | Per_slot  (** every process gets its own root id; always sound *)
  | By_fp
      (** processes with equal initial fingerprints share a root id —
          requires the [`Symmetric] precondition (equal fingerprint
          seeds ⇒ equal protocol terms) *)

val of_config :
  ?rt:'a Intern.t -> ?hashed:bool -> roots:roots -> 'a Config.t -> 'a t
(** Flatten a closure configuration, interning into [rt] (fresh table
    when omitted).  Pass an existing [rt] to share forced states across
    many runs of the same protocol.  [~hashed:false] (default [true])
    skips maintaining {!hexact}/{!hsym} on every write — for callers
    that never consult a transposition table; the hash accessors are
    then meaningless. *)

val rt : 'a t -> 'a Intern.t
val n_objs : 'a t -> int
val n_procs : 'a t -> int

val obj_vid : 'a t -> int -> int
(** Current value id of object [i]. *)

val sid : 'a t -> int -> int
(** Current state id of process [p]. *)

val hexact : 'a t -> int
(** Slot-indexed slab hash (the [`Exact] transposition hash). *)

val hsym : 'a t -> int
(** Process-permutation-invariant slab hash (the [`Symmetric] one). *)

val is_halted : 'a t -> int -> bool
val is_decided : 'a t -> int -> bool
val is_enabled : 'a t -> int -> bool

val enabled_count : 'a t -> int
(** Number of enabled processes, maintained incrementally. *)

val all_decided : 'a t -> bool
val decision : 'a t -> int -> 'a option
val fingerprint : 'a t -> int -> Fingerprint.t

val fingerprints : 'a t -> Fingerprint.t array
(** Fresh array of every process's consumed-history fingerprint, in pid
    order.  Together with {!objects} this is the engine- and
    intern-table-independent serialization of the configuration: the
    canonical key the sharded model checker routes and deduplicates on
    ([Mc.Dtbl.Skey]), identical to what the closure engine derives from
    [Config.fps]. *)

val objects : 'a t -> Value.t array
(** Fresh array of the current object values, decoded from their interned
    ids ({!Intern.value}); companion of {!fingerprints}. *)

val decisions : 'a t -> 'a list
(** Decided values in pid order (same order as [Config.decisions]). *)

val slab_copy : 'a t -> into:int array -> unit
(** Copy the whole slab (object vids then sids) into [into], which must
    have length [n_objs + n_procs]: the transposition-key fill of the
    [`Exact] flat search is this one blit. *)

val clone : 'a t -> 'a t
(** Independent copy sharing the intern table: one array copy + one
    bytes copy. *)

val blit : src:'a t -> dst:'a t -> unit
(** Overwrite [dst] with [src]'s state (same shapes assumed): the
    allocation-free per-run reset. *)

val write_obj : 'a t -> int -> int -> unit
(** [write_obj t i vid] sets object [i]'s value id, maintaining both
    hashes.  Writes are self-inverse: writing the old id back restores
    the hashes exactly. *)

val write_sid : 'a t -> int -> int -> unit
(** [write_sid t p sid] sets process [p]'s state id, maintaining both
    hashes; does NOT touch the enabled count (see {!note_decided}). *)

val halt : 'a t -> int -> unit
(** Crash process [p] in place (idempotent). *)

val note_decided : 'a t -> int -> unit
(** Account for process [p] having just transitioned to a decided
    state: call exactly once per undecided→decided [write_sid] (and its
    inverse is re-incrementing via {!note_undecided} when undoing). *)

val note_undecided : 'a t -> int -> unit
(** Inverse of {!note_decided}, for DFS undo. *)

val pp : 'a Fmt.t -> 'a t Fmt.t
