(* SplitMix64: a small, fast, splittable pseudorandom generator implemented
   in-repo so every measurement in the experiment harness is reproducible
   from a seed, independent of the OCaml stdlib Random implementation. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 random bits scaled to [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

(** Derive an independent generator; used to give each process / repetition
    its own stream. *)
let split t = create (Int64.to_int (next_int64 t))

(** [split_n t n] derives [n] independent generators by splitting [t]
    sequentially.  The derivation consumes exactly [n] draws of [t], so the
    result depends only on [t]'s state and [n] — this is the deterministic
    per-task seeding used by [Par]: generator [i] is the same no matter how
    many domains later consume it or in which order tasks are scheduled. *)
let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  Array.init n (fun _ -> split t)

(** Fisher–Yates shuffle of an array, in place. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
