(* A configuration (Section 2): the value of every shared object plus the
   state of every process.  Configurations here are persistent: [step]-style
   updates in [Run.pure] copy the arrays, so the model checker and the
   lower-bound adversaries can hold many configurations at once.

   [halted] supports crash-failure injection: a halted process performs no
   further steps (the paper's "a process may become faulty at a given point
   in an execution").

   [fps] carries one incrementally maintained {!Fingerprint.t} per process
   ([Run.step] mixes in every consumed response / coin outcome), giving the
   model checker an O(1)-per-step hashable key for states whose process
   components are otherwise unhashable closures. *)

type 'a t = {
  optypes : Optype.t array;  (** type of each shared object, fixed *)
  objects : Value.t array;  (** current value of each shared object *)
  procs : 'a Proc.t array;  (** current state of each process *)
  halted : bool array;  (** crash-failure flags *)
  fps : Fingerprint.t array;  (** per-process consumed-history fingerprints *)
}

let make_with_seeds fp_seeds ~optypes ~procs =
  let optypes = Array.of_list optypes in
  let n = List.length procs in
  let fps =
    match fp_seeds with
    | None -> Array.make n Fingerprint.initial
    | Some seeds ->
        if List.length seeds <> n then
          invalid_arg "Config.make: fp_seeds length <> number of processes";
        Array.of_list
          (List.map (fun s -> Fingerprint.mix Fingerprint.initial s) seeds)
  in
  {
    optypes;
    objects = Array.map (fun (ot : Optype.t) -> ot.init) optypes;
    procs = Array.of_list procs;
    halted = Array.make n false;
    fps;
  }

let make ~optypes ~procs = make_with_seeds None ~optypes ~procs

(** [make] with the initial fingerprints seeded, distinguishing processes
    whose initial protocol terms differ (e.g. by input value): fingerprint
    equality then implies state equality across processes, the
    precondition of [Mc.Explore]'s [`Symmetric] canonicalization.  Under
    plain [make] all processes start from [Fingerprint.initial] and only
    same-slot fingerprint comparisons are meaningful. *)
let make_seeded ~fp_seeds ~optypes ~procs =
  make_with_seeds (Some fp_seeds) ~optypes ~procs

let n_objects t = Array.length t.objects
let n_procs t = Array.length t.procs

let copy t =
  {
    t with
    objects = Array.copy t.objects;
    procs = Array.copy t.procs;
    halted = Array.copy t.halted;
    fps = Array.copy t.fps;
  }

let decision t pid = Proc.decision t.procs.(pid)
let is_decided t pid = Proc.is_decided t.procs.(pid)
let is_halted t pid = t.halted.(pid)
let fingerprint t pid = t.fps.(pid)

(** A process is enabled if it is neither decided nor crashed. *)
let is_enabled t pid = (not (is_decided t pid)) && not (is_halted t pid)

(** Index-iterating enabled-process traversal, ascending pid order; the
    model checker's inner loop uses these instead of materializing
    [enabled_pids] at every node. *)
let iter_enabled t f =
  for pid = 0 to n_procs t - 1 do
    if is_enabled t pid then f pid
  done

(* toplevel recursion — a local [let rec] would close over [t] and
   allocate on every [exists_enabled]/[all_decided] call *)
let rec exists_enabled_from t pid =
  pid < n_procs t && (is_enabled t pid || exists_enabled_from t (pid + 1))

let exists_enabled t = exists_enabled_from t 0

let enabled_pids t =
  let acc = ref [] in
  for pid = n_procs t - 1 downto 0 do
    if is_enabled t pid then acc := pid :: !acc
  done;
  !acc

let all_decided t = not (exists_enabled t)

let decisions t =
  let acc = ref [] in
  for pid = n_procs t - 1 downto 0 do
    match decision t pid with Some v -> acc := v :: !acc | None -> ()
  done;
  !acc

(** Crash process [pid]: it takes no further steps. *)
let halt t pid =
  let t = copy t in
  t.halted.(pid) <- true;
  t

(** Append a process in state [state]; returns the new configuration and the
    new process's id.  Used by the lower-bound adversaries to introduce
    clones (whose states are snapshots of existing processes).  [?fp], when
    given, is the fingerprint of the origin whose state was snapshotted, so
    the clone's fingerprint stays consistent with its state. *)
let add_proc ?fp t state =
  let n = n_procs t in
  let procs = Array.make (n + 1) state in
  Array.blit t.procs 0 procs 0 n;
  let halted = Array.make (n + 1) false in
  Array.blit t.halted 0 halted 0 n;
  let fps =
    Array.make (n + 1) (match fp with Some f -> f | None -> Fingerprint.initial)
  in
  Array.blit t.fps 0 fps 0 n;
  ({ t with procs; halted; fps }, n)

(** [pending t pid] is the shared-memory operation [pid] is poised at. *)
let pending t pid = Proc.pending t.procs.(pid)

(** Process ids poised at object [obj] (their next step applies to it). *)
let poised_at t obj =
  let acc = ref [] in
  for pid = n_procs t - 1 downto 0 do
    if
      is_enabled t pid
      &&
      match pending t pid with Some (o, _) -> Int.equal o obj | None -> false
    then acc := pid :: !acc
  done;
  !acc

let pp pp_decision ppf t =
  Fmt.pf ppf "@[<v>objects: %a@,procs: %a@]"
    Fmt.(array ~sep:sp Value.pp_compact)
    t.objects
    Fmt.(array ~sep:sp (Proc.pp pp_decision))
    t.procs
