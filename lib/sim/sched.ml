(* Schedulers are the adversaries of the model: at each step they pick which
   enabled process moves next, and they resolve coin flips.  In the paper's
   strong-adversary model the scheduler observes the full configuration; our
   [choose] accordingly receives it.

   Coin flips in *measurement* runs are random (honest coins, adversarial
   scheduling); the model checker and the lower-bound machinery bypass
   schedulers entirely and drive [Run.step] directly, enumerating outcomes. *)

type 'a t = {
  name : string;
  choose : 'a Config.t -> step:int -> int option;
      (** Pick an enabled process id, or [None] to stop the run. *)
  coin : pid:int -> n:int -> int;
      (** Resolve a coin flip with [n] outcomes for process [pid]. *)
}

let fair_coin rng ~pid:_ ~n = Rng.int rng n

(** Cycle through processes in id order, skipping decided/halted ones. *)
let round_robin ?(seed = 1) () =
  let rng = Rng.create seed in
  let cursor = ref 0 in
  let choose config ~step:_ =
    let n = Config.n_procs config in
    let rec find tried i =
      if tried >= n then None
      else if Config.is_enabled config i then (
        cursor := (i + 1) mod n;
        Some i)
      else find (tried + 1) ((i + 1) mod n)
    in
    find 0 (!cursor mod n)
  in
  { name = "round-robin"; choose; coin = fair_coin rng }

(** Uniformly random enabled process each step; coins are fair. *)
let random ~seed =
  let rng = Rng.create seed in
  let choose config ~step:_ =
    match Config.enabled_pids config with
    | [] -> None
    | pids -> Some (List.nth pids (Rng.int rng (List.length pids)))
  in
  { name = Printf.sprintf "random(seed=%d)" seed; choose; coin = fair_coin rng }

(** Run a single process solo; everyone else is stalled.  Used to measure
    solo executions and to test (nondeterministic) solo termination. *)
let solo ~pid ~seed =
  let rng = Rng.create seed in
  let choose config ~step:_ =
    if Config.is_enabled config pid then Some pid else None
  in
  { name = Printf.sprintf "solo(P%d)" pid; choose; coin = fair_coin rng }

(** Replay a recorded schedule: a fixed list of pids, then stop.  Skips a
    scheduled pid silently if it is no longer enabled (decided earlier than
    the recording expected), which keeps replays robust. *)
let replay ~pids ~seed =
  let rng = Rng.create seed in
  let remaining = ref pids in
  let rec choose config ~step =
    match !remaining with
    | [] -> None
    | pid :: rest ->
        remaining := rest;
        if Config.is_enabled config pid then Some pid
        else choose config ~step
  in
  { name = "replay"; choose; coin = fair_coin rng }

(** Starve [victim]: schedule uniformly among the {e other} enabled
    processes, letting the victim move only when nobody else can.  The
    classic adversary against protocols that implicitly assume every
    process keeps pace; the fuzzer's process-starving schedule family. *)
let starving ~victim ~seed =
  let rng = Rng.create seed in
  let choose config ~step:_ =
    let others =
      List.filter (fun pid -> pid <> victim) (Config.enabled_pids config)
    in
    match others with
    | [] -> if Config.is_enabled config victim then Some victim else None
    | pids -> Some (List.nth pids (Rng.int rng (List.length pids)))
  in
  {
    name = Printf.sprintf "starving(P%d)" victim;
    choose;
    coin = fair_coin rng;
  }

(** An adaptive adversary built from a user decision function. *)
let adaptive ~name ~seed f =
  let rng = Rng.create seed in
  let choose config ~step = f rng config ~step in
  { name; choose; coin = fair_coin rng }

(** Adversary that tries to maximize contention: always schedules, among
    enabled processes, one poised at the object most processes are poised
    at.  A useful stress scheduler for randomized protocols. *)
let contention ~seed =
  let rng = Rng.create seed in
  let choose config ~step:_ =
    let pids = Config.enabled_pids config in
    match pids with
    | [] -> None
    | _ ->
        let n_obj = Config.n_objects config in
        let counts = Array.make (max 1 n_obj) 0 in
        List.iter
          (fun pid ->
            match Config.pending config pid with
            | Some (obj, _) -> counts.(obj) <- counts.(obj) + 1
            | None -> ())
          pids;
        let crowded =
          List.filter
            (fun pid ->
              match Config.pending config pid with
              | Some (obj, _) ->
                  counts.(obj) = Array.fold_left max 0 counts
              | None -> false)
            pids
        in
        let pool = if crowded = [] then pids else crowded in
        Some (List.nth pool (Rng.int rng (List.length pool)))
  in
  { name = "contention"; choose; coin = fair_coin rng }
