(* Schedulers are the adversaries of the model: at each step they pick which
   enabled process moves next, and they resolve coin flips.  In the paper's
   strong-adversary model the scheduler observes the full configuration; our
   [choose] accordingly receives it.

   Coin flips in *measurement* runs are random (honest coins, adversarial
   scheduling); the model checker and the lower-bound machinery bypass
   schedulers entirely and drive [Run.step] directly, enumerating outcomes. *)

type 'a t = {
  name : string;
  choose : 'a Config.t -> step:int -> int option;
      (** Pick an enabled process id, or [None] to stop the run. *)
  coin : pid:int -> n:int -> int;
      (** Resolve a coin flip with [n] outcomes for process [pid]. *)
}

let fair_coin rng ~pid:_ ~n = Rng.int rng n

(** Cycle through processes in id order, skipping decided/halted ones. *)
let round_robin ?(seed = 1) () =
  let rng = Rng.create seed in
  let cursor = ref 0 in
  let choose config ~step:_ =
    let n = Config.n_procs config in
    let rec find tried i =
      if tried >= n then None
      else if Config.is_enabled config i then (
        cursor := (i + 1) mod n;
        Some i)
      else find (tried + 1) ((i + 1) mod n)
    in
    find 0 (!cursor mod n)
  in
  { name = "round-robin"; choose; coin = fair_coin rng }

(* Allocation-free helpers for the adversaries below: counting and
   rank-selection over enabled pids replace materializing
   [Config.enabled_pids] (a fresh list every step of every measurement
   run).  [skip] excludes one pid (pass a negative to exclude nobody).
   RNG draw order is exactly the list-based code's: one [Rng.int] per
   step, over the same range — pinned by the golden-schedule test. *)
let count_enabled config ~skip =
  let n = Config.n_procs config in
  let c = ref 0 in
  for pid = 0 to n - 1 do
    if pid <> skip && Config.is_enabled config pid then incr c
  done;
  !c

(* The [k]-th (0-based, ascending pid) enabled process, [skip] excluded;
   the caller guarantees [k < count_enabled ~skip]. *)
let nth_enabled config ~skip k =
  let rec go pid k =
    if pid = skip || not (Config.is_enabled config pid) then go (pid + 1) k
    else if k = 0 then pid
    else go (pid + 1) (k - 1)
  in
  go 0 k

(** Uniformly random enabled process each step; coins are fair. *)
let random ~seed =
  let rng = Rng.create seed in
  let choose config ~step:_ =
    match count_enabled config ~skip:(-1) with
    | 0 -> None
    | c -> Some (nth_enabled config ~skip:(-1) (Rng.int rng c))
  in
  { name = Printf.sprintf "random(seed=%d)" seed; choose; coin = fair_coin rng }

(** Run a single process solo; everyone else is stalled.  Used to measure
    solo executions and to test (nondeterministic) solo termination. *)
let solo ~pid ~seed =
  let rng = Rng.create seed in
  let choose config ~step:_ =
    if Config.is_enabled config pid then Some pid else None
  in
  { name = Printf.sprintf "solo(P%d)" pid; choose; coin = fair_coin rng }

(** Replay a recorded schedule: a fixed list of pids, then stop.  Skips a
    scheduled pid silently if it is no longer enabled (decided earlier than
    the recording expected), which keeps replays robust. *)
let replay ~pids ~seed =
  let rng = Rng.create seed in
  let remaining = ref pids in
  let rec choose config ~step =
    match !remaining with
    | [] -> None
    | pid :: rest ->
        remaining := rest;
        if Config.is_enabled config pid then Some pid
        else choose config ~step
  in
  { name = "replay"; choose; coin = fair_coin rng }

(** Starve [victim]: schedule uniformly among the {e other} enabled
    processes, letting the victim move only when nobody else can.  The
    classic adversary against protocols that implicitly assume every
    process keeps pace; the fuzzer's process-starving schedule family. *)
let starving ~victim ~seed =
  let rng = Rng.create seed in
  let choose config ~step:_ =
    match count_enabled config ~skip:victim with
    | 0 -> if Config.is_enabled config victim then Some victim else None
    | c -> Some (nth_enabled config ~skip:victim (Rng.int rng c))
  in
  {
    name = Printf.sprintf "starving(P%d)" victim;
    choose;
    coin = fair_coin rng;
  }

(** An adaptive adversary built from a user decision function. *)
let adaptive ~name ~seed f =
  let rng = Rng.create seed in
  let choose config ~step = f rng config ~step in
  { name; choose; coin = fair_coin rng }

(** Adversary that tries to maximize contention: always schedules, among
    enabled processes, one poised at the object most processes are poised
    at.  A useful stress scheduler for randomized protocols. *)
let contention ~seed =
  let rng = Rng.create seed in
  (* scratch histogram, reused across steps; grown on demand *)
  let counts = ref [||] in
  let choose config ~step:_ =
    match count_enabled config ~skip:(-1) with
    | 0 -> None
    | c ->
        let n_obj = max 1 (Config.n_objects config) in
        if Array.length !counts < n_obj then counts := Array.make n_obj 0
        else Array.fill !counts 0 n_obj 0;
        let counts = !counts in
        Config.iter_enabled config (fun pid ->
            match Config.pending config pid with
            | Some (obj, _) -> counts.(obj) <- counts.(obj) + 1
            | None -> ());
        let maxc = ref 0 in
        for obj = 0 to n_obj - 1 do
          if counts.(obj) > !maxc then maxc := counts.(obj)
        done;
        let is_crowded pid =
          match Config.pending config pid with
          | Some (obj, _) -> counts.(obj) = !maxc
          | None -> false
        in
        let crowded = ref 0 in
        Config.iter_enabled config (fun pid ->
            if is_crowded pid then incr crowded);
        if !crowded = 0 then
          Some (nth_enabled config ~skip:(-1) (Rng.int rng c))
        else begin
          (* the k-th crowded enabled pid, ascending — the same element
             [List.nth crowded k] picked *)
          let k = ref (Rng.int rng !crowded) in
          let picked = ref (-1) in
          (try
             Config.iter_enabled config (fun pid ->
                 if is_crowded pid then
                   if !k = 0 then begin
                     picked := pid;
                     raise Exit
                   end
                   else decr k)
           with Exit -> ());
          Some !picked
        end
  in
  { name = "contention"; choose; coin = fair_coin rng }
