(** Configurations (Section 2): the value of every shared object plus the
    state of every process, persistent (updates copy), with crash-failure
    flags and per-process state fingerprints (see {!Fingerprint}). *)

type 'a t = {
  optypes : Optype.t array;
  objects : Value.t array;
  procs : 'a Proc.t array;
  halted : bool array;
  fps : Fingerprint.t array;
      (** consumed-history fingerprint per process, maintained by
          [Run.step]; hashes the process state (see [Mc.Explore]) *)
}

(** [make ~optypes ~procs] is the initial configuration: objects at their
    initial values, no process halted, all fingerprints at
    [Fingerprint.initial]. *)
val make : optypes:Optype.t list -> procs:'a Proc.t list -> 'a t

(** [make] with seeded initial fingerprints ([fp_seeds], one int per
    process): seeds distinguish processes whose initial protocol terms
    differ — required for [Mc.Explore]'s [`Symmetric] dedup to be sound
    on non-identical process vectors; see
    [Consensus.Protocol.initial_config]. *)
val make_seeded :
  fp_seeds:int list -> optypes:Optype.t list -> procs:'a Proc.t list -> 'a t

val n_objects : 'a t -> int
val n_procs : 'a t -> int
val copy : 'a t -> 'a t

(** {1 Process status} *)

val decision : 'a t -> int -> 'a option
val is_decided : 'a t -> int -> bool
val is_halted : 'a t -> int -> bool

(** The process's current consumed-history fingerprint. *)
val fingerprint : 'a t -> int -> Fingerprint.t

(** Enabled: neither decided nor crashed. *)
val is_enabled : 'a t -> int -> bool

(** [iter_enabled t f] applies [f] to every enabled pid in ascending
    order, allocating nothing — the model checker's inner loop. *)
val iter_enabled : 'a t -> (int -> unit) -> unit

(** Whether any process is enabled ([not (all_decided t)], allocation-free). *)
val exists_enabled : 'a t -> bool

val enabled_pids : 'a t -> int list

(** Every process decided or halted. *)
val all_decided : 'a t -> bool

val decisions : 'a t -> 'a list

(** {1 Mutation (persistent)} *)

(** Crash a process: it takes no further steps. *)
val halt : 'a t -> int -> 'a t

(** Append a process in the given state; returns the new configuration and
    the new pid.  Used by the lower-bound adversaries to introduce clones;
    [?fp] carries over the fingerprint of the origin whose state was
    snapshotted. *)
val add_proc : ?fp:Fingerprint.t -> 'a t -> 'a Proc.t -> 'a t * int

(** {1 Poisedness} *)

(** The shared-memory operation the process is poised at, if any (trivial
    or not; see [Lowerbound.Triviality] for the paper's notion). *)
val pending : 'a t -> int -> (int * Op.t) option

(** Enabled processes whose next step applies to the given object. *)
val poised_at : 'a t -> int -> int list

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
