(* Exhaustive schedule sweep: run a small workload under EVERY fixed pid
   schedule up to a length bound and push every recorded history through
   the differential oracle pair.  For n processes and bound L this visits
   (n^(L+1)-1)/(n-1) schedules — n=2, L=13 is already 16383 histories, the
   workhorse behind the "both oracles agree on >= 10^4 histories per suite
   run" acceptance bar.  Histories here are tiny (a few calls), so the
   sweep is fast; any disagreement escapes as {!Cross.Divergence}. *)

module Harness = Objimpl.Harness
module Implementation = Objimpl.Implementation

type stats = {
  histories : int;  (** runs performed = histories cross-checked *)
  accepted : int;
  rejected : int;
}

let sweep ?(max_len = 12) ?(coin_seed = 0) ?max_nodes ?max_configs ~n ~workload
    (impl : Implementation.t) =
  let histories = ref 0 and accepted = ref 0 and rejected = ref 0 in
  let rec go rev_prefix len =
    let outcome =
      Harness.run impl ~n ~workload
        ~schedule:(Harness.Fixed (List.rev rev_prefix))
        ~coin_seed ()
    in
    let r =
      Cross.both ?max_nodes ?max_configs impl.Implementation.spec
        outcome.Harness.history
    in
    incr histories;
    (match r.Cross.wing_gong with
    | Objimpl.Linearize.Linearizable _ -> incr accepted
    | Objimpl.Linearize.Not_linearizable -> incr rejected
    | _ -> ());
    if len < max_len then
      for pid = 0 to n - 1 do
        go (pid :: rev_prefix) (len + 1)
      done
  in
  go [] 0;
  { histories = !histories; accepted = !accepted; rejected = !rejected }
