(* The differential-testing harness: every history is judged by BOTH
   oracles — the Wing-Gong order-enumeration checker
   ({!Objimpl.Linearize}) and the Lowe configuration-graph DFS ({!Dfs}) —
   and any decisive disagreement raises {!Divergence} with enough
   material to reproduce and pin it.  The cross-check is the product:
   with two independently written algorithms over independently designed
   search spaces, a bug in either has to be mirrored exactly in the other
   to go unnoticed. *)

module History = Objimpl.History
module Linearize = Objimpl.Linearize

type report = {
  history : History.t;
  wing_gong : Linearize.verdict;
  lowe : Dfs.verdict;
}

exception Divergence of report

let wing_gong_name = function
  | Linearize.Linearizable _ -> "linearizable"
  | Linearize.Not_linearizable -> "not-linearizable"
  | Linearize.Unknown -> "unknown"
  | Linearize.Malformed d -> "malformed: " ^ d

let lowe_name = function
  | Dfs.Accepted _ -> "accepted"
  | Dfs.Rejected -> "rejected"
  | Dfs.Unknown -> "unknown"
  | Dfs.Malformed d -> "malformed: " ^ d

(* [Unknown] on either side defers to the other: a budgeted answer is an
   under-approximation, not a disagreement.  Decisive answers must match,
   malformedness included (both run the same validator, so even the
   diagnostics must agree). *)
let agree (wg : Linearize.verdict) (lowe : Dfs.verdict) =
  match (wg, lowe) with
  | Linearize.Unknown, _ | _, Dfs.Unknown -> true
  | Linearize.Linearizable _, Dfs.Accepted _ -> true
  | Linearize.Not_linearizable, Dfs.Rejected -> true
  | Linearize.Malformed a, Dfs.Malformed b -> a = b
  | _ -> false

let render { history; wing_gong; lowe } =
  Printf.sprintf
    "LINEARIZATION ORACLE DIVERGENCE\nwing-gong: %s\nlowe-dfs:  %s\nhistory:\n%s"
    (wing_gong_name wing_gong) (lowe_name lowe) (History.to_string history)

let both ?max_nodes ?max_configs spec history =
  let wing_gong = Linearize.check ?max_nodes spec history in
  let lowe = Dfs.check ?max_configs spec history in
  let r = { history; wing_gong; lowe } in
  if not (agree wing_gong lowe) then raise (Divergence r);
  r

(* One resolved verdict in the {!Objimpl.Linearize} vocabulary: the
   Wing-Gong answer unless it ran out of budget and the DFS did not. *)
let verdict ?max_nodes ?max_configs spec history =
  let r = both ?max_nodes ?max_configs spec history in
  match (r.wing_gong, r.lowe) with
  | Linearize.Unknown, Dfs.Accepted w -> Linearize.Linearizable w
  | Linearize.Unknown, Dfs.Rejected -> Linearize.Not_linearizable
  | Linearize.Unknown, Dfs.Malformed d -> Linearize.Malformed d
  | wg, _ -> wg
