(** A Lowe-style configuration-graph DFS linearizability oracle over
    {!Objimpl.History} logs — independent of {!Objimpl.Linearize}, so the
    two can cross-check each other (see {!Cross}). *)

open Sim

type verdict =
  | Accepted of Objimpl.History.call list
      (** a witness order; may place pending calls *)
  | Rejected
  | Unknown  (** configuration budget exhausted, or > 62 calls *)
  | Malformed of string  (** failed {!Objimpl.History.validate} *)

(** Judges the history — pending calls included, Herlihy–Wing style,
    same stance as {!Objimpl.Linearize.check} — after validating
    well-formedness. *)
val check : ?max_configs:int -> Optype.t -> Objimpl.History.t -> verdict

val is_accepted : ?max_configs:int -> Optype.t -> Objimpl.History.t -> bool
