(** The differential-testing harness: run both linearizability oracles on
    a history and fail loudly on disagreement. *)

type report = {
  history : Objimpl.History.t;
  wing_gong : Objimpl.Linearize.verdict;
  lowe : Dfs.verdict;
}

(** Raised when the oracles decisively disagree. *)
exception Divergence of report

(** [Unknown] on either side defers to the other; decisive answers must
    match ([Malformed] diagnostics included). *)
val agree : Objimpl.Linearize.verdict -> Dfs.verdict -> bool

(** A committable artifact describing a divergence. *)
val render : report -> string

(** Run both oracles; raise {!Divergence} on disagreement. *)
val both :
  ?max_nodes:int ->
  ?max_configs:int ->
  Sim.Optype.t ->
  Objimpl.History.t ->
  report

(** Like {!both}, resolved to one {!Objimpl.Linearize.verdict}: the
    Wing-Gong answer, except an [Unknown] is upgraded by a decisive DFS
    answer. *)
val verdict :
  ?max_nodes:int ->
  ?max_configs:int ->
  Sim.Optype.t ->
  Objimpl.History.t ->
  Objimpl.Linearize.verdict
