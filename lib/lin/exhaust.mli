(** Exhaustive fixed-schedule sweep feeding the differential oracle pair:
    every pid schedule up to [max_len] over [n] processes, every recorded
    history judged by both checkers.  Raises {!Cross.Divergence} on any
    disagreement. *)

open Sim

type stats = {
  histories : int;  (** runs performed = histories cross-checked *)
  accepted : int;
  rejected : int;
}

val sweep :
  ?max_len:int ->
  ?coin_seed:int ->
  ?max_nodes:int ->
  ?max_configs:int ->
  n:int ->
  workload:(int * Op.t list) list ->
  Objimpl.Implementation.t ->
  stats
