(* A second, independent linearizability oracle in Lowe's
   configuration-graph style ("Testing for linearizability", Lowe 2017;
   see SNIPPETS.md): instead of enumerating witness orders over the call
   set like the Wing-Gong checker ({!Objimpl.Linearize}), walk the event
   log itself.  A {e configuration} is

     (next event index, pending calls, linearized-but-unreturned calls,
      specification state)

   and the transitions are: consume an invocation (the call becomes
   pending), consume a response (legal only once the call has been
   linearized), or linearize some pending call — apply its operation to
   the spec state and require the recorded response.  A call that never
   responds (a crashed or cut-off process) may still have taken effect,
   so per the Herlihy-Wing definition it may be linearized with whatever
   response the spec produces — or never, which drops it.  The history is
   linearizable iff a path consumes every event.

   Two reductions keep the graph small without losing completeness:
   invocation events and already-linearized responses are consumed
   eagerly (they commute with every linearization, so delaying them never
   helps), and configurations are memoized — the measure
   2*index + |linearized| strictly increases along every edge, so the
   graph is acyclic and a failed configuration can be cached.  Pending
   and linearized sets are bitmasks over the calls (histories beyond 62
   calls answer [Unknown], far above anything the harness records). *)

open Sim
module History = Objimpl.History

type verdict =
  | Accepted of History.call list
      (** a witness order; may place pending calls *)
  | Rejected
  | Unknown  (** configuration budget exhausted, or > 62 calls *)
  | Malformed of string  (** failed {!History.validate}; diagnostic *)

type ev = Ev_inv of int | Ev_res of int

let check ?(max_configs = 2_000_000) (spec : Optype.t) (history : History.t) =
  match History.validate history with
  | Error msg -> Malformed msg
  | Ok () ->
      let all_calls = History.calls history in
      let m = List.length all_calls in
      if m > 62 then Unknown
      else begin
        let index_of = Hashtbl.create 16 in
        List.iteri
          (fun i (c : History.call) -> Hashtbl.replace index_of c.History.id i)
          all_calls;
        let call = Array.of_list all_calls in
        let events =
          List.filter_map
            (fun evt ->
              match evt with
              | History.Inv { call = id; _ } ->
                  Option.map (fun i -> Ev_inv i) (Hashtbl.find_opt index_of id)
              | History.Res { call = id; _ } ->
                  Option.map (fun i -> Ev_res i) (Hashtbl.find_opt index_of id))
            history
          |> Array.of_list
        in
        let n_events = Array.length events in
        let seen = Hashtbl.create 1024 in
        let configs = ref 0 in
        let exception Budget in
        (* forced moves first; branch only when blocked at an
           unlinearized response *)
        let rec advance i pend lin state acc =
          if i >= n_events then Some (List.rev acc)
          else
            match events.(i) with
            | Ev_inv c -> advance (i + 1) (pend lor (1 lsl c)) lin state acc
            | Ev_res c when lin land (1 lsl c) <> 0 ->
                advance (i + 1) pend (lin land lnot (1 lsl c)) state acc
            | Ev_res _ -> branch i pend lin state acc
        and branch i pend lin state acc =
          let key = (i, pend, lin, state) in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            incr configs;
            if !configs > max_configs then raise Budget;
            let rec try_linearize c =
              if c >= m then None
              else if pend land (1 lsl c) = 0 then try_linearize (c + 1)
              else
                let cl = call.(c) in
                let state', resp = Optype.apply spec state cl.History.op in
                let matches =
                  match cl.History.response with
                  | Some r -> Value.equal r resp
                  | None -> true (* pending: the extension picks this *)
                in
                if not matches then try_linearize (c + 1)
                else
                  match
                    advance i
                      (pend land lnot (1 lsl c))
                      (lin lor (1 lsl c))
                      state' (cl :: acc)
                  with
                  | Some _ as witness -> witness
                  | None -> try_linearize (c + 1)
            in
            try_linearize 0
          end
        in
        match advance 0 0 0 spec.Optype.init [] with
        | Some order -> Accepted order
        | None -> Rejected
        | exception Budget -> Unknown
      end

let is_accepted ?max_configs spec history =
  match check ?max_configs spec history with
  | Accepted _ -> true
  | Rejected | Unknown | Malformed _ -> false
