(* A small domain pool tuned for the workloads in this repo: batches of a
   few dozen to a few thousand coarse, pure tasks (one adversary
   construction, one bounded DFS subtree, one experiment cell).

   Shape: [jobs - 1] persistent worker domains plus the submitting domain
   all drain the same batch.  A batch is an atomic cursor over task
   indices; workers claim [chunk] indices at a time with [fetch_and_add],
   so there is no per-task locking and no work-stealing machinery — for
   coarse tasks a shared cursor is contention-free enough and keeps the
   whole scheduler small enough to audit.

   Determinism: the pool never decides *what* a task computes, only *when*
   it runs.  Task [i] writes slot [i]; reductions happen after the barrier
   in index order; seeded tasks receive generators derived before
   dispatch.  Failure: task bodies passed to [for_] are wrapped so a raise
   marks the slot and never escapes a worker domain (an escaped exception
   would kill the domain and hang every later barrier); after the barrier
   the lowest-indexed failure is re-raised on the caller. *)

let default_jobs () =
  match Sys.getenv_opt "RANDSYNC_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

module Pool = struct
  type batch = {
    n : int;
    body : int -> unit;  (* never raises: wrapped by [for_] *)
    chunk : int;
    next : int Atomic.t;  (* the work queue: next unclaimed task index *)
    completed : int Atomic.t;
    cancel : Robust.Cancel.t option;
  }

  (* Per-domain instrumentation slot.  Written only by its owning domain
     while a batch is in flight; the submitter reads the slots after the
     barrier, so the worker's [fetch_and_add] on [completed] followed by
     the submitter's read of [completed] orders the plain writes before
     the plain reads (standard message-passing publication).  Untouched
     when the pool carries no [obs]. *)
  type slot = { mutable chunks : int; mutable tasks : int }

  type t = {
    jobs : int;
    mutex : Mutex.t;
    work_ready : Condition.t;
    work_done : Condition.t;
    mutable generation : int;  (* bumped once per batch *)
    mutable current : batch option;  (* the in-flight batch, if any *)
    mutable stopping : bool;
    mutable workers : unit Domain.t list;
    obs : Obs.t option;
    slots : slot array;  (* length [jobs]; slot 0 = the submitting domain *)
  }

  let jobs t = t.jobs

  let reset_slots t =
    if t.obs <> None then
      Array.iter
        (fun s ->
          s.chunks <- 0;
          s.tasks <- 0)
        t.slots

  (* Merge the per-domain slots into the metrics — submitter only, after
     the barrier.  The per-domain split is scheduling observability and is
     of course jobs-variant; engine-level counters stay jobs-invariant
     because engines record from merged results, never from here. *)
  let flush_slots t =
    if t.obs <> None then begin
      Obs.incr t.obs "par/batches";
      Array.iteri
        (fun i s ->
          Obs.add t.obs (Printf.sprintf "par/chunks/domain%d" i) s.chunks;
          Obs.add t.obs (Printf.sprintf "par/tasks/domain%d" i) s.tasks)
        t.slots
    end

  (* Claim and run chunks until the batch cursor is exhausted.  Runs on
     workers and on the submitting domain alike.  Cancellation is checked
     once per claimed chunk: a set token makes the chunk a no-op, but the
     cursor still advances and [completed] is still bumped, so the barrier
     below fires exactly as in the uncancelled case — cancellation skips
     work, it never skips bookkeeping. *)
  let drain t ~slot b =
    let cancelled () =
      match b.cancel with
      | Some c -> Robust.Cancel.is_set c
      | None -> false
    in
    let instrumented = t.obs <> None in
    let rec loop () =
      let k = Atomic.fetch_and_add b.next b.chunk in
      if k < b.n then begin
        let hi = min b.n (k + b.chunk) in
        let skip = cancelled () in
        if instrumented then begin
          let s = t.slots.(slot) in
          s.chunks <- s.chunks + 1;
          if not skip then s.tasks <- s.tasks + (hi - k)
        end;
        if not skip then
          for i = k to hi - 1 do
            b.body i
          done;
        ignore (Atomic.fetch_and_add b.completed (hi - k));
        loop ()
      end
    in
    loop ();
    if Atomic.get b.completed >= b.n then begin
      (* possibly the last finisher: wake the submitter *)
      Mutex.lock t.mutex;
      Condition.broadcast t.work_done;
      Mutex.unlock t.mutex
    end

  let rec worker t ~slot last_generation =
    Mutex.lock t.mutex;
    while (not t.stopping) && t.generation = last_generation do
      Condition.wait t.work_ready t.mutex
    done;
    let stop = t.stopping in
    let generation = t.generation in
    let b = t.current in
    Mutex.unlock t.mutex;
    if not stop then begin
      (match b with Some b -> drain t ~slot b | None -> ());
      worker t ~slot generation
    end

  let create ?jobs:j ?obs () =
    let jobs = match j with Some j -> max 1 j | None -> default_jobs () in
    let t =
      {
        jobs;
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        work_done = Condition.create ();
        generation = 0;
        current = None;
        stopping = false;
        workers = [];
        obs;
        slots = Array.init jobs (fun _ -> { chunks = 0; tasks = 0 });
      }
    in
    t.workers <-
      List.init (jobs - 1) (fun i ->
          Domain.spawn (fun () -> worker t ~slot:(i + 1) 0));
    t

  (* [body] must not raise (enforced by [for_]'s wrapper). *)
  let run_exn_free ?cancel t ~n body =
    let cancelled () =
      match cancel with Some c -> Robust.Cancel.is_set c | None -> false
    in
    if n > 0 then begin
      if t.jobs = 1 || n = 1 || t.stopping then begin
        reset_slots t;
        let ran = ref 0 in
        for i = 0 to n - 1 do
          if not (cancelled ()) then begin
            body i;
            incr ran
          end
        done;
        if t.obs <> None then begin
          let s = t.slots.(0) in
          s.chunks <- 1;
          s.tasks <- !ran
        end;
        flush_slots t
      end
      else begin
        let chunk = max 1 (n / (t.jobs * 4)) in
        let b =
          {
            n;
            body;
            chunk;
            next = Atomic.make 0;
            completed = Atomic.make 0;
            cancel;
          }
        in
        reset_slots t;
        Mutex.lock t.mutex;
        t.current <- Some b;
        t.generation <- t.generation + 1;
        Condition.broadcast t.work_ready;
        Mutex.unlock t.mutex;
        drain t ~slot:0 b;
        Mutex.lock t.mutex;
        (* Barrier wait: time the submitter spends with its own share
           drained, waiting for straggler domains — the load-imbalance
           histogram.  Clock reads only when somebody is looking. *)
        let wait0 = if t.obs <> None then Unix.gettimeofday () else 0. in
        while Atomic.get b.completed < b.n do
          Condition.wait t.work_done t.mutex
        done;
        if t.obs <> None then
          Obs.observe t.obs "par/barrier-wait-seconds"
            (Unix.gettimeofday () -. wait0);
        t.current <- None;
        Mutex.unlock t.mutex;
        flush_slots t
      end
    end

  let for_ ?cancel t ~n body =
    (* first failing task by index, so the surfaced exception matches a
       sequential left-to-right run no matter which domain hit it first *)
    let failure = Atomic.make None in
    let rec record i exn bt =
      let seen = Atomic.get failure in
      let better =
        match seen with None -> true | Some (j, _, _) -> i < j
      in
      if better && not (Atomic.compare_and_set failure seen (Some (i, exn, bt)))
      then record i exn bt
    in
    run_exn_free ?cancel t ~n (fun i ->
        try body i
        with exn -> record i exn (Printexc.get_raw_backtrace ()));
    match Atomic.get failure with
    | None -> ()
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt

  let shutdown t =
    (* Swap the worker list out under the mutex so that two concurrent
       [shutdown] calls cannot both try to join the same domains — the
       loser of the race sees [] and returns immediately. *)
    Mutex.lock t.mutex;
    t.stopping <- true;
    let workers = t.workers in
    t.workers <- [];
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    List.iter Domain.join workers
end

let with_pool ?jobs ?obs f =
  let pool = Pool.create ?jobs ?obs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let for_tasks ?pool ?cancel ~n body =
  match pool with
  | None ->
      (* sequential baseline: plain loop, exceptions propagate at the
         first failing index — exactly what [Pool.for_] reproduces *)
      let cancelled () =
        match cancel with Some c -> Robust.Cancel.is_set c | None -> false
      in
      for i = 0 to n - 1 do
        if not (cancelled ()) then body i
      done
  | Some p -> Pool.for_ ?cancel p ~n body

let mapi_array ?pool f xs =
  let n = Array.length xs in
  let out = Array.make n None in
  for_tasks ?pool ~n (fun i -> out.(i) <- Some (f i xs.(i)));
  Array.map
    (function Some y -> y | None -> assert false (* all slots filled *))
    out

let map_array ?pool f xs = mapi_array ?pool (fun _ x -> f x) xs

let mapi ?pool f xs = Array.to_list (mapi_array ?pool f (Array.of_list xs))
let map ?pool f xs = mapi ?pool (fun _ x -> f x) xs

let map_reduce ?pool ~map ~reduce ~init xs =
  let mapped = map_array ?pool map (Array.of_list xs) in
  Array.fold_left reduce init mapped

(* Unlike [map], skipped tasks are representable here, so this is the one
   combinator that may be handed a cancel token: a task whose chunk was
   claimed after the token was set leaves [None] in its slot. *)
let map_cancellable ?pool ~cancel f xs =
  let arr = Array.of_list xs in
  let out = Array.make (Array.length arr) None in
  for_tasks ?pool ~cancel ~n:(Array.length arr) (fun i ->
      out.(i) <- Some (f arr.(i)));
  Array.to_list out

let map_seeded ?pool ~seed f xs =
  let arr = Array.of_list xs in
  let rngs = Sim.Rng.split_n (Sim.Rng.create seed) (Array.length arr) in
  Array.to_list (mapi_array ?pool (fun i x -> f rngs.(i) x) arr)

module Wsq = struct
  (* A mutex-guarded growable ring with both-end removal.  The sharded
     model checker ([Mc.Shard]) keeps one per shard: the owning domain
     pushes and pops at the bottom (LIFO keeps the frontier shallow and
     cache-warm), thieves take from the top (FIFO steals the oldest —
     widest — items, the classic work-stealing heuristic).  Contention is
     coarse by design: every operation takes the lock.  The queues hold
     whole work items (hundreds of nodes of replay each), so the lock is
     a vanishing fraction of item cost; a Chase–Lev ring would buy
     nothing measurable here and costs a memory-model argument. *)

  type 'a t = {
    mutable buf : 'a option array;
    mutable head : int;  (* index of oldest element *)
    mutable len : int;
    lock : Mutex.t;
  }

  let create () = { buf = Array.make 16 None; head = 0; len = 0; lock = Mutex.create () }

  let grow t =
    let cap = Array.length t.buf in
    let buf' = Array.make (cap * 2) None in
    for i = 0 to t.len - 1 do
      buf'.(i) <- t.buf.((t.head + i) mod cap)
    done;
    t.buf <- buf';
    t.head <- 0

  let with_lock t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let push t x =
    with_lock t @@ fun () ->
    if t.len = Array.length t.buf then grow t;
    let cap = Array.length t.buf in
    t.buf.((t.head + t.len) mod cap) <- Some x;
    t.len <- t.len + 1

  let take t i =
    let cap = Array.length t.buf in
    let j = (t.head + i) mod cap in
    let x = t.buf.(j) in
    t.buf.(j) <- None;
    x

  let pop t =
    with_lock t @@ fun () ->
    if t.len = 0 then None
    else begin
      t.len <- t.len - 1;
      take t t.len
    end

  let steal t =
    with_lock t @@ fun () ->
    if t.len = 0 then None
    else begin
      let x = take t 0 in
      t.head <- (t.head + 1) mod Array.length t.buf;
      t.len <- t.len - 1;
      x
    end

  let length t = with_lock t @@ fun () -> t.len
end
