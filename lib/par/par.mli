(** Deterministic multicore execution for the search-shaped workloads in
    this repo: adversarial attack sweeps, bounded model checking, and
    experiment fan-out.

    Two invariants govern everything here:

    - {b Determinism}: every combinator produces bit-identical results
      regardless of the number of domains and of how the OS schedules
      them.  Parallelism changes wall-clock time, never answers.  This is
      achieved by (a) indexing tasks and writing each result into its own
      slot, (b) reducing sequentially in task order after the barrier, and
      (c) deriving per-task RNGs from a root seed {e before} dispatch
      ({!Sim.Rng.split_n}), never from worker-local state.
    - {b No hangs}: a task that raises never wedges the pool.  Exceptions
      are captured per task; after the batch barrier the exception of the
      {e lowest-indexed} failing task is re-raised on the caller's domain
      (the same exception a sequential left-to-right run would surface),
      and the pool remains usable.

    All combinators take [?pool].  [None] means run sequentially on the
    calling domain — the baseline the determinism tests compare against. *)

(** Default worker count: [RANDSYNC_JOBS] if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

module Pool : sig
  (** A persistent pool of [jobs - 1] worker domains plus the submitting
      domain, fed batches through a chunked work queue (an atomic cursor
      over the task index space; workers claim chunks with
      [fetch_and_add]). *)
  type t

  (** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs = 1]
      spawns none and runs everything on the caller).  Defaults to
      {!default_jobs}.

      [?obs] attaches scheduling observability: each batch bumps
      ["par/batches"], per-domain ["par/chunks/domain<i>"] and
      ["par/tasks/domain<i>"] counters (slot 0 is the submitting
      domain), and observes the submitter's straggler wait into the
      ["par/barrier-wait-seconds"] histogram.  Workers write only
      per-domain slots; the metrics accumulator itself is touched by the
      submitting domain alone, after the barrier.  These counters
      describe scheduling and are naturally jobs-variant — engine-level
      counters (["mc/*"], ["fuzz/*"]) stay jobs-invariant because
      engines record from merged results.  Without [?obs] the
      instrumentation paths are skipped entirely. *)
  val create : ?jobs:int -> ?obs:Obs.t -> unit -> t

  val jobs : t -> int

  (** [for_ t ~n body] runs [body i] for [0 <= i < n] across the pool and
      returns when all [n] tasks finished.  Exceptions are captured per
      task and the lowest-indexed one is re-raised after the barrier.

      [?cancel] is a cooperative kill switch, polled once per claimed
      chunk: after the token is set, remaining chunks are skipped (their
      tasks never run) but the barrier still completes normally and the
      pool stays usable.  Which tasks ran is {e not} deterministic under
      cancellation — only combinators whose result type can represent a
      skipped task (see {!map_cancellable}) accept a token. *)
  val for_ : ?cancel:Robust.Cancel.t -> t -> n:int -> (int -> unit) -> unit

  (** Stop and join the worker domains.  The pool degrades to sequential
      execution afterwards (it never deadlocks a late caller).  Safe to
      call from several domains concurrently; every call returns. *)
  val shutdown : t -> unit
end

(** [with_pool ~jobs f] runs [f pool] and shuts the pool down on exit,
    including on exceptions. *)
val with_pool : ?jobs:int -> ?obs:Obs.t -> (Pool.t -> 'a) -> 'a

(** Order-preserving parallel map: [map ?pool f xs] equals
    [List.map f xs] for any pool. *)
val map : ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list

(** Like {!map} with the task index. *)
val mapi : ?pool:Pool.t -> (int -> 'a -> 'b) -> 'a list -> 'b list

val map_array : ?pool:Pool.t -> ('a -> 'b) -> 'a array -> 'b array

(** [map_reduce ?pool ~map ~reduce ~init xs] maps in parallel and folds
    the results {e sequentially, in input order}:
    [fold_left reduce init (List.map map xs)].  [reduce] need not be
    commutative — order preservation makes the fold deterministic. *)
val map_reduce :
  ?pool:Pool.t ->
  map:('a -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a list ->
  'acc

(** [map_cancellable ?pool ~cancel f xs] is {!map} with a cooperative
    kill switch: task [i]'s slot is [Some (f x_i)] if it ran, [None] if
    its chunk was claimed after [cancel] was set.  With an unset token it
    equals [List.map (fun x -> Some (f x)) xs]; once the token fires, the
    [Some]/[None] split depends on scheduling and is {e not}
    deterministic (cancellation is best-effort by design — see
    DESIGN.md §4d). *)
val map_cancellable :
  ?pool:Pool.t ->
  cancel:Robust.Cancel.t ->
  ('a -> 'b) ->
  'a list ->
  'b option list

(** [map_seeded ?pool ~seed f xs] gives task [i] its own generator, the
    [i]-th sequential split of [Rng.create seed], computed before
    dispatch.  Task [i] therefore sees the same stream under any [?pool],
    which is what makes seeded sweeps reproducible across [--jobs]. *)
val map_seeded :
  ?pool:Pool.t -> seed:int -> (Sim.Rng.t -> 'a -> 'b) -> 'a list -> 'b list

(** A mutex-guarded double-ended work queue for the sharded frontier
    ([Mc.Shard]): the owner pushes and pops at the bottom (LIFO), other
    domains steal from the top (FIFO, oldest first).  Safe for any number
    of concurrent owners and thieves; every operation locks, which is
    deliberate — items are coarse (a whole replay-and-expand unit), so a
    lock-free ring would not be measurable here. *)
module Wsq : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit

  (** Owner end: most recently pushed. *)
  val pop : 'a t -> 'a option

  (** Thief end: oldest. *)
  val steal : 'a t -> 'a option

  (** Instantaneous size (racy under concurrency, exact when quiescent). *)
  val length : 'a t -> int
end
