(* E12 — "Table 4": exhaustive impossibility for bounded protocols.

   The paper's starting point — deterministic wait-free consensus from
   read-write registers is impossible — established by brute force for
   the class of bounded decision-tree protocols: EVERY protocol of depth
   <= 2 for two identical processes over one register is enumerated and
   model-checked; each either violates validity or admits an inconsistent
   interleaving.  (Bounded trees always terminate, so safety is the only
   thing left to fail — and it always does.)

   The randomized rows add internal coin flips to the protocol grammar.
   Consensus may never err on any execution (Section 2: no Monte Carlo),
   so the adversary resolves coins too, and bounded randomized protocols
   fail exactly like deterministic ones — which is why genuine randomized
   consensus (Aspnes-Herlihy, Theorem 4.2, ...) must have unbounded
   executions of vanishing probability. *)

type row = { coins : bool; census : Mc.Enumerate.census }

(* [dedup] reaches every model-checking call of the census; [`Symmetric]
   (the default) is sound here because each tree is a function of the
   input — see [Mc.Enumerate.check_inputs].  [budget] reaches them too:
   a governed census stays a valid impossibility witness only when it
   completes ungoverned — a truncated check counts its pair as not
   correct, so budgets can only shrink the survivor columns, never
   manufacture a correct protocol. *)
let rows ?dedup ?budget ?(depths = [ 0; 1; 2 ]) ?(randomized_depths = [ 1; 2 ])
    () =
  let census ~coins depth =
    Mc.Enumerate.census_of_trees ?budget ?dedup ~depth
      (Mc.Enumerate.enumerate_trees ~coins depth)
  in
  List.map
    (fun depth -> { coins = false; census = census ~coins:false depth })
    depths
  @ List.map
      (fun depth -> { coins = true; census = census ~coins:true depth })
      randomized_depths

let table ?dedup ?budget ?depths ?randomized_depths () =
  let t =
    Stats.Table.create
      ~header:
        [
          "depth";
          "coins";
          "protocol trees";
          "solo-valid pairs";
          "+ unanimous-valid";
          "fully correct";
        ]
  in
  List.iter
    (fun { coins; census = r } ->
      Stats.Table.add_row t
        [
          string_of_int r.Mc.Enumerate.depth;
          string_of_bool coins;
          string_of_int r.Mc.Enumerate.trees;
          string_of_int r.Mc.Enumerate.candidate_pairs;
          string_of_int r.Mc.Enumerate.survive_unanimous;
          string_of_int r.Mc.Enumerate.correct;
        ])
    (rows ?dedup ?budget ?depths ?randomized_depths ());
  t
