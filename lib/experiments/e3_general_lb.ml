(* E3 — "Figure 3": the general historyless lower bound (Lemma 3.6 /
   Theorem 3.7), witnessed without cloning.  For flawed protocols over
   r = 1..3 historyless objects (registers and swap registers), the
   Lemma 3.4 + 3.5 machinery constructs an inconsistent execution; we
   report the smallest process count at which the construction lands
   against the paper's 3r^2 + r, plus the structure of the interruptible
   executions (piece counts). *)

open Consensus
open Lowerbound

type row = {
  r : int;
  protocol : string;
  min_processes : int option;
  paper_bound : int;  (** 3r^2 + r *)
  pieces : (int * int) option;  (** pieces of alpha/beta at default budget *)
  witness_steps : int option;
  broke : bool;
  mc_confirms : bool option;
      (** independent [Mc.Explore] cross-check on a 2-process instance:
          [Some true] iff the model checker also reaches a violation;
          [None] when the cell is too large to check exhaustively or its
          governed check was cut short ([?budget]) before finding
          anything *)
}

let targets r =
  [
    Flawed.unanimous ~style:Flawed.Rw ~r;
    Flawed.unanimous ~style:Flawed.Swapping ~r;
    Flawed.first_writer ~r;
  ]

(* One cell = one (r, protocol): a minimum-process scan plus one default
   construction.  Cells fan out across [?pool]'s domains; the inner scan
   stays sequential (the pool is not reentrant), which is the right grain
   anyway — cells dominate the cost and there are plenty of them. *)
let rows ?pool ?budget ?(max_r = 3) () =
  let cells =
    List.concat_map
      (fun r -> List.map (fun p -> (r, p)) (targets r))
      (List.init max_r (fun i -> i + 1))
  in
  let cell (r, (p : Protocol.t)) =
    let min_processes = General_attack.minimum_processes p in
    let pieces, witness_steps, broke =
      match General_attack.run ?budget p with
      | Ok o ->
          ( Some (o.General_attack.pieces_alpha, o.General_attack.pieces_beta),
            Some (Sim.Trace.steps o.General_attack.trace),
            General_attack.succeeded o )
      | Error _ -> (None, None, false)
    in
    (* the r=1 cells are small enough for an exhaustive 2-process
       cross-check; the transposition table keeps it cheap *)
    let mc_confirms =
      if r > 1 then None
      else
        let res = General_attack.confirm ?budget ~dedup:`Symmetric p in
        if res.Mc.Explore.violation <> None then Some true
        else
          match res.Mc.Explore.completeness with
          | `Truncated (`Nodes | `Deadline | `Cancelled) -> None
          | `Exhaustive | `Truncated (`Depth | `States | `Steps) -> Some false
    in
    {
      r;
      protocol = p.Protocol.name;
      min_processes;
      paper_bound = Bounds.general_process_bound r;
      pieces;
      witness_steps;
      broke;
      mc_confirms;
    }
  in
  Par.map ?pool cell cells

let table ?pool ?budget ?max_r () =
  let t =
    Stats.Table.create
      ~header:
        [
          "r";
          "protocol";
          "min procs";
          "3r^2+r";
          "pieces a/b";
          "witness steps";
          "broken";
          "mc confirms";
        ]
  in
  List.iter
    (fun row ->
      Stats.Table.add_row t
        [
          string_of_int row.r;
          row.protocol;
          (match row.min_processes with Some m -> string_of_int m | None -> "?");
          string_of_int row.paper_bound;
          (match row.pieces with
          | Some (a, b) -> Printf.sprintf "%d/%d" a b
          | None -> "-");
          (match row.witness_steps with Some s -> string_of_int s | None -> "-");
          string_of_bool row.broke;
          (match row.mc_confirms with
          | Some b -> string_of_bool b
          | None -> "-");
        ])
    (rows ?pool ?budget ?max_r ());
  t
