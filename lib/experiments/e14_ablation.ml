(* E14 — "Table 6": ablation of the cursor-range staleness slack.

   The bounded-counter consensus keeps its random-walk cursor in
   [-(3+s)n, (3+s)n] with decision barriers at +-3n; the slack s*n exists
   to absorb one pending (stale) move per process so the bounded counter's
   modulo wrap-around is never exercised (DESIGN.md; Walk_core header).

   The ablation removes the slack (s = 0): a single stale +1 applied at
   the +3n barrier wraps the cursor to -3n, the far barrier, and processes
   decide both values.  Measured: violation rates per (n, slack) under a
   contention adversary — the design choice is load-bearing, massively so. *)

open Sim
open Consensus

type row = {
  n : int;
  slack : int;
  violations : int;
  runs : int;
}

let measure ~n ~slack ~reps ~seed =
  let p = Counter_consensus.protocol_with_slack ~slack in
  let violations = ref 0 in
  for i = 1 to reps do
    let inputs = List.init n (fun j -> j mod 2) in
    let report =
      Protocol.run_once ~max_steps:200_000 p ~inputs
        ~sched:(Sched.contention ~seed:(seed + i))
    in
    if not (Checker.ok report.Protocol.verdict) then incr violations
  done;
  { n; slack; violations = !violations; runs = reps }

(* One cell = one (n, slack) batch of [reps] adversarial runs.  Each
   cell's scheduler seeds are a pure function of [seed] and the rep
   index, so fanning cells out over [?pool] cannot change any count. *)
let rows ?pool ?(ns = [ 2; 4; 8 ]) ?(reps = 60) ?(seed = 1) () =
  let cells = List.concat_map (fun n -> [ (n, 0); (n, 1) ]) ns in
  Par.map ?pool (fun (n, slack) -> measure ~n ~slack ~reps ~seed) cells

let table ?pool ?ns ?reps ?seed () =
  let t =
    Stats.Table.create
      ~header:[ "n"; "cursor range"; "slack"; "violations / runs" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          string_of_int r.n;
          Printf.sprintf "[-%d, %d]" ((3 + r.slack) * r.n) ((3 + r.slack) * r.n);
          (if r.slack = 0 then "none (ablated)" else "n (default)");
          Printf.sprintf "%d / %d" r.violations r.runs;
        ])
    (rows ?pool ?ns ?reps ?seed ());
  t
