(* E4 — "Figure 4": space to solve randomized n-process consensus.

   The O(n) register upper bound (our rw-3n), the single-object protocols
   (fetch&add, compare&swap) and the three-counter protocol, against the
   paper's Omega(sqrt n) lower-bound curve for historyless objects — the
   separation at the heart of the paper, as numbers per n. *)

open Consensus
open Lowerbound

type row = {
  n : int;
  rw_registers : int;
  counter_objects : int;
  fa_objects : int;
  cas_objects : int;
  historyless_lb : int;  (** smallest r with 3r^2 + r >= n *)
  identical_lb : int;  (** smallest r with r^2 - r + 1 >= n *)
}

let row n =
  {
    n;
    rw_registers = Protocol.space Rw_consensus.protocol ~n;
    counter_objects = Protocol.space Counter_consensus.protocol ~n;
    fa_objects = Protocol.space Fa_consensus.protocol ~n;
    cas_objects = Protocol.space Cas_consensus.protocol ~n;
    historyless_lb = Bounds.objects_needed_general n;
    identical_lb = Bounds.registers_needed_identical n;
  }

let default_ns = [ 2; 4; 8; 16; 32; 64; 128; 256 ]

(* Mostly arithmetic, but [Protocol.space] instantiates each protocol at
   each n; one task per n keeps the cells independent. *)
let rows ?pool ?(ns = default_ns) () = Par.map ?pool row ns

let table ?pool ?ns () =
  let t =
    Stats.Table.create
      ~header:
        [
          "n";
          "registers (rw-3n)";
          "counters (Thm 4.2)";
          "fetch&add (Thm 4.4)";
          "cas (Herlihy)";
          "historyless LB";
          "identical-proc LB";
        ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          string_of_int r.n;
          string_of_int r.rw_registers;
          string_of_int r.counter_objects;
          string_of_int r.fa_objects;
          string_of_int r.cas_objects;
          string_of_int r.historyless_lb;
          string_of_int r.identical_lb;
        ])
    (rows ?pool ?ns ());
  t
