(* E4 — "Figure 4": space to solve randomized n-process consensus.

   The O(n) register upper bound (our rw-3n), the single-object protocols
   (fetch&add, compare&swap) and the three-counter protocol, against the
   paper's Omega(sqrt n) lower-bound curve for historyless objects — the
   separation at the heart of the paper, as numbers per n. *)

open Consensus
open Lowerbound

type row = {
  n : int;
  rw_registers : int;
  counter_objects : int;
  fa_objects : int;
  cas_objects : int;
  historyless_lb : int;  (** smallest r with 3r^2 + r >= n *)
  identical_lb : int;  (** smallest r with r^2 - r + 1 >= n *)
  mc_safe : bool option;
      (** bounded-safety cross-check of the register upper bound: the
          rw-3n protocol at this [n] admits no violation within a small
          exhaustive search ([Mc.Explore], [`Symmetric] dedup).  [None]
          for [n] beyond exhaustive reach, or when a governed check
          ([?budget]) was cut short — a truncated safe verdict is an
          under-approximation and must not be printed as safety. *)
}

let row ?budget n =
  (* the upper-bound protocol's space numbers are claims about a protocol
     that must actually BE safe; for the smallest n the model checker
     verifies that directly (depth-bounded, so a `no violation` here is
     bounded safety, not a proof) *)
  let mc_safe =
    if n > 3 then None
    else
      let inputs = List.init n (fun i -> i mod 2) in
      let config = Protocol.initial_config Rw_consensus.protocol ~inputs in
      let res =
        Mc.Explore.search ?budget ~dedup:`Symmetric ~max_depth:8
          ~max_states:50_000 ~inputs config
      in
      if res.Mc.Explore.violation <> None then Some false
      else
        match res.Mc.Explore.completeness with
        | `Truncated (`Nodes | `Deadline | `Cancelled) -> None
        | `Exhaustive | `Truncated (`Depth | `States | `Steps) -> Some true
  in
  {
    n;
    rw_registers = Protocol.space Rw_consensus.protocol ~n;
    counter_objects = Protocol.space Counter_consensus.protocol ~n;
    fa_objects = Protocol.space Fa_consensus.protocol ~n;
    cas_objects = Protocol.space Cas_consensus.protocol ~n;
    historyless_lb = Bounds.objects_needed_general n;
    identical_lb = Bounds.registers_needed_identical n;
    mc_safe;
  }

let default_ns = [ 2; 4; 8; 16; 32; 64; 128; 256 ]

(* Mostly arithmetic, but [Protocol.space] instantiates each protocol at
   each n; one task per n keeps the cells independent. *)
let rows ?pool ?budget ?(ns = default_ns) () =
  Par.map ?pool (fun n -> row ?budget n) ns

let table ?pool ?budget ?ns () =
  let t =
    Stats.Table.create
      ~header:
        [
          "n";
          "registers (rw-3n)";
          "counters (Thm 4.2)";
          "fetch&add (Thm 4.4)";
          "cas (Herlihy)";
          "historyless LB";
          "identical-proc LB";
          "mc-safe (bounded)";
        ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          string_of_int r.n;
          string_of_int r.rw_registers;
          string_of_int r.counter_objects;
          string_of_int r.fa_objects;
          string_of_int r.cas_objects;
          string_of_int r.historyless_lb;
          string_of_int r.identical_lb;
          (match r.mc_safe with Some b -> string_of_bool b | None -> "-");
        ])
    (rows ?pool ?budget ?ns ());
  t
