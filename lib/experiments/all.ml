(* The full experiment harness: every table/figure of EXPERIMENTS.md, in
   order, with a [quick] mode for CI-speed runs.

   [pool] fans an experiment's independent cells out across domains; the
   parallelized experiments (e2, e3, e4, e14 — see EXPERIMENTS.md) derive
   every cell's parameters and seeds before dispatch, so the produced
   table is bit-identical for any pool, [None] included.  The other
   experiments ignore the pool. *)

type spec = {
  id : string;
  title : string;
  run : pool:Par.Pool.t option -> quick:bool -> Stats.Table.t;
}

let specs =
  [
    {
      id = "e1";
      title = "Table 1 - Section 4 separation (primitive x power)";
      run = (fun ~pool:_ ~quick -> E1_separation.table ~reps:(if quick then 5 else 30) ());
    };
    {
      id = "e2";
      title = "Figure 2 - identical-process lower bound witnesses (Thm 3.3)";
      run = (fun ~pool ~quick -> E2_identical_lb.table ?pool ~max_r:(if quick then 3 else 4) ());
    };
    {
      id = "e3";
      title = "Figure 3 - general historyless lower bound witnesses (Lemma 3.6)";
      run = (fun ~pool ~quick -> E3_general_lb.table ?pool ~max_r:(if quick then 2 else 3) ());
    };
    {
      id = "e4";
      title = "Figure 4 - space for randomized n-consensus, upper vs lower";
      run = (fun ~pool ~quick:_ -> E4_space.table ?pool ());
    };
    {
      id = "e5";
      title = "Figure 5 - expected work to consensus under a random adversary";
      run =
        (fun ~pool:_ ~quick ->
          if quick then E5_work.table ~ns:[ 2; 4; 8 ] ~reps:5 ()
          else E5_work.table ());
    };
    {
      id = "e6";
      title = "Figure 6 - shared-coin random walk: flips and agreement";
      run =
        (fun ~pool:_ ~quick ->
          if quick then E6_coin.table ~ns:[ 2; 4 ] ~reps:10 ()
          else E6_coin.table ());
    };
    {
      id = "e7";
      title = "Table 2 - object algebra, classified exhaustively";
      run = (fun ~pool:_ ~quick:_ -> E7_classify.table ());
    };
    {
      id = "e8";
      title = "Table 3 - Theorem 2.1 transfer to Corollaries 4.1/4.3/4.5";
      run = (fun ~pool:_ ~quick:_ -> E8_transfer.table ());
    };
    {
      id = "e9";
      title = "Figure 7 - solo termination vs wait-freedom (snapshot reader)";
      run =
        (fun ~pool:_ ~quick ->
          if quick then E9_solo_vs_waitfree.table ~writers:[ 0; 2 ] ~reps:8 ()
          else E9_solo_vs_waitfree.table ());
    };
    {
      id = "e10";
      title = "Figure 8 - FLP bivalence survival: why randomization is needed";
      run =
        (fun ~pool:_ ~quick ->
          if quick then E10_bivalence.table ~probe:6 ()
          else E10_bivalence.table ());
    };
    {
      id = "e11";
      title = "Figure 9 - crash-fault tolerance of the randomized protocols";
      run =
        (fun ~pool:_ ~quick ->
          if quick then E11_crash.table ~n:4 ~fs:[ 0; 2 ] ~reps:5 ()
          else E11_crash.table ());
    };
    {
      id = "e12";
      title =
        "Table 4 - exhaustive impossibility: every bounded register protocol fails";
      run =
        (fun ~pool:_ ~quick ->
          if quick then
            E12_impossibility.table ~depths:[ 0; 1 ] ~randomized_depths:[ 1 ] ()
          else E12_impossibility.table ());
    };
    {
      id = "e13";
      title = "Table 5 - mutual exclusion: the classical foil, checked";
      run =
        (fun ~pool:_ ~quick ->
          if quick then E13_mutex.table ~reps:3 () else E13_mutex.table ());
    };
    {
      id = "e14";
      title = "Table 6 - ablation: the cursor staleness slack is load-bearing";
      run =
        (fun ~pool ~quick ->
          if quick then E14_ablation.table ?pool ~ns:[ 2; 4 ] ~reps:15 ()
          else E14_ablation.table ?pool ());
    };
  ]

let find id = List.find_opt (fun s -> s.id = id) specs

let run_all ?pool ?(quick = false) () =
  List.iter
    (fun s ->
      Printf.printf "\n=== %s: %s ===\n\n" (String.uppercase_ascii s.id) s.title;
      Stats.Table.print (s.run ~pool ~quick);
      print_newline ())
    specs
