(* E2 — "Figure 2": the identical-process lower bound (Theorem 3.3),
   witnessed.  For flawed identical-process protocols with r = 1..4
   objects, the Lemma 3.2 adversary constructs an inconsistent execution;
   we report the number of processes (the two originals plus clones) it
   used against the paper's threshold r^2 - r + 2, the length of the
   witness, and whether the witness *certifies* — replays from a fresh
   start with every clone realized as a genuine identical process
   shadowing its origin (possible exactly for read-write registers, whose
   responses leak no history). *)

open Consensus
open Lowerbound

type row = {
  r : int;
  protocol : string;
  processes_used : int;
  threshold : int;  (** r^2 - r + 2 *)
  witness_steps : int;
  broke : bool;
  certified : string;  (** "yes" / reason *)
  mc_confirms : bool option;
      (** independent exhaustive check on a 2-process instance of the same
          protocol ([Mc.Explore] with [`Symmetric] dedup — sound, the
          processes are identical): [Some true] iff the model checker also
          reaches a violation; [None] for cells too large to check, or
          whose governed check was cut short ([?budget]) before finding
          anything — an honest "unknown", never a clean bill *)
}

let targets r =
  [
    Flawed.unanimous ~style:Flawed.Rw ~r;
    Flawed.unanimous ~style:Flawed.Swapping ~r;
    Flawed.first_writer ~r;
    Flawed.coin_retry ~style:Flawed.Rw ~r;
  ]
  @ (if r >= 2 then [ Flawed.mixed ~r ] else [])

(* One cell = one (r, protocol) adversary construction + certification;
   cells are independent, so [?pool] fans them out across domains.  The
   cell list and the result order are fixed before dispatch — the table
   is bit-identical for any [?pool]. *)
let rows ?pool ?budget ?(max_r = 4) () =
  let cells =
    List.concat_map
      (fun r -> List.map (fun p -> (r, p)) (targets r))
      (List.init max_r (fun i -> i + 1))
  in
  let cell (r, (p : Protocol.t)) =
    match Attack.run p with
    | Error _ -> None
    | Ok o ->
        let certified =
          match Attack.certify p o with
          | Ok _ -> "yes"
          | Error _ -> "no (responses leak history)"
        in
        (* r=1 instances are small enough for an exhaustive 2-process
           cross-check of the adversary's verdict by an unrelated method *)
        let mc_confirms =
          if r > 1 then None
          else
            let inputs = [ 0; 1 ] in
            let config = Protocol.initial_config p ~inputs in
            let res =
              Mc.Explore.search ?budget ~dedup:`Symmetric ~max_depth:16
                ~max_states:300_000 ~inputs config
            in
            if res.Mc.Explore.violation <> None then Some true
            else
              (* a governed cut leaves the question open; only the
                 structural depth/state bounds keep their historical
                 bounded-claim reading *)
              match res.Mc.Explore.completeness with
              | `Truncated (`Nodes | `Deadline | `Cancelled) -> None
              | `Exhaustive | `Truncated (`Depth | `States | `Steps) ->
                  Some false
        in
        Some
          {
            r;
            protocol = p.Protocol.name;
            processes_used = o.Attack.processes_used;
            threshold = Bounds.identical_attack_threshold r;
            witness_steps = Sim.Trace.steps o.Attack.trace;
            broke = Attack.succeeded o;
            certified;
            mc_confirms;
          }
  in
  List.filter_map Fun.id (Par.map ?pool cell cells)

let table ?pool ?budget ?max_r () =
  let t =
    Stats.Table.create
      ~header:
        [
          "r";
          "protocol";
          "procs used";
          "r^2-r+2";
          "witness steps";
          "broken";
          "certified";
          "mc confirms";
        ]
  in
  List.iter
    (fun row ->
      Stats.Table.add_row t
        [
          string_of_int row.r;
          row.protocol;
          string_of_int row.processes_used;
          string_of_int row.threshold;
          string_of_int row.witness_steps;
          string_of_bool row.broke;
          row.certified;
          (match row.mc_confirms with
          | Some b -> string_of_bool b
          | None -> "-");
        ])
    (rows ?pool ?budget ?max_r ());
  t
