(** Exhaustive exploration of the execution tree: the adversary chooses the
    schedule {e and} the outcomes of internal coin flips, exactly the
    nondeterminism against which consistency and validity are required.

    Depth-first, depth- and node-bounded; [truncated] reports whether the
    verdict is exhaustive or merely bounded.

    [~dedup] enables the transposition table over incremental state
    fingerprints (see [Sim.Fingerprint] and DESIGN.md for the soundness
    argument): [`Exact] merges configurations whose object values and
    per-slot process fingerprints coincide; [`Symmetric] additionally
    sorts the per-process fingerprints so permutations of interchangeable
    processes collapse to one state — sound when all processes run one
    protocol term with one input (the identical-processes setting of
    Theorem 3.3), or when differing initial terms were distinguished via
    [Config.make ~fp_seeds] (as [Consensus.Protocol.initial_config] does).
    Dedup never changes the violation verdict or the reported witness; it
    changes only the node counts ([visited], [leaves]) and wall-clock. *)

open Sim

type dedup = [ `Off | `Exact | `Symmetric ]

type 'a violation = {
  kind : [ `Inconsistent | `Invalid ];
  trace : 'a Trace.t;
  config : 'a Config.t;
}

type 'a result = {
  violation : 'a violation option;
  visited : int;
  leaves : int;  (** maximal executions reached *)
  truncated : bool;
  max_depth_seen : int;
  table_hits : int;  (** subtrees skipped via the transposition table *)
}

(** All single-step successors of [pid]: one for an [Apply], [n] for a
    [Choose]. *)
val successors : 'a Config.t -> int -> ('a Config.t * 'a Event.t list) list

val search :
  ?dedup:dedup ->
  ?max_depth:int ->
  ?max_states:int ->
  inputs:'a list ->
  'a Config.t ->
  'a result

(** Partitioned frontier search: the root's successor configurations are
    explored as independent bounded DFS tasks across [?pool]'s domains
    and the per-subtree [result] records merged in the sequential
    traversal order.  The merge is deterministic — bit-identical for any
    [?pool], including [None] — and on violation-free trees whose state
    budget does not bind, every field equals the sequential [search]'s
    under [`Off].  With [~dedup] each subtree task owns a private
    transposition table (nothing is shared across domains), so the node
    counts differ from the sequential search's shared-table run —
    deterministically — while the violation verdict and witness stay
    identical.  A reported violation is always the same witness [search]
    finds; in that case [search] stops early while the partitioned
    subtrees run to completion, so the merged statistics deterministically
    cover more of the tree. *)
val search_par :
  ?pool:Par.Pool.t ->
  ?dedup:dedup ->
  ?max_depth:int ->
  ?max_states:int ->
  inputs:'a list ->
  'a Config.t ->
  'a result

(** First terminating solo decision of [pid], searching coin outcomes — a
    cheap witness of a reachable decision. *)
val solo_decision :
  ?max_steps:int -> ?max_nodes:int -> 'a Config.t -> pid:int -> 'a option

(** All values decided in some reachable execution, and whether the set may
    be an under-approximation (budget hit).  Seeded with per-process solo
    probes. *)
val decidable_values :
  ?max_depth:int -> ?max_states:int -> 'a Config.t -> 'a list * bool
