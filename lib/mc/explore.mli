(** Exhaustive exploration of the execution tree: the adversary chooses the
    schedule {e and} the outcomes of internal coin flips, exactly the
    nondeterminism against which consistency and validity are required.

    Depth-first, depth- and node-bounded; [truncated] reports whether the
    verdict is exhaustive or merely bounded. *)

open Sim

type 'a violation = {
  kind : [ `Inconsistent | `Invalid ];
  trace : 'a Trace.t;
  config : 'a Config.t;
}

type 'a result = {
  violation : 'a violation option;
  visited : int;
  leaves : int;  (** maximal executions reached *)
  truncated : bool;
  max_depth_seen : int;
}

(** All single-step successors of [pid]: one for an [Apply], [n] for a
    [Choose]. *)
val successors : 'a Config.t -> int -> ('a Config.t * 'a Event.t list) list

val search :
  ?max_depth:int ->
  ?max_states:int ->
  inputs:'a list ->
  'a Config.t ->
  'a result

(** Partitioned frontier search: the root's successor configurations are
    explored as independent bounded DFS tasks across [?pool]'s domains
    and the per-subtree [result] records merged in the sequential
    traversal order.  The merge is deterministic — bit-identical for any
    [?pool], including [None] — and on violation-free trees whose state
    budget does not bind, every field ([visited], [leaves], [truncated],
    [max_depth_seen]) equals the sequential [search]'s.  A reported
    violation is always the same witness [search] finds; in that case
    [search] stops early while the partitioned subtrees run to
    completion, so the merged statistics deterministically cover more of
    the tree. *)
val search_par :
  ?pool:Par.Pool.t ->
  ?max_depth:int ->
  ?max_states:int ->
  inputs:'a list ->
  'a Config.t ->
  'a result

(** First terminating solo decision of [pid], searching coin outcomes — a
    cheap witness of a reachable decision. *)
val solo_decision :
  ?max_steps:int -> ?max_nodes:int -> 'a Config.t -> pid:int -> 'a option

(** All values decided in some reachable execution, and whether the set may
    be an under-approximation (budget hit).  Seeded with per-process solo
    probes. *)
val decidable_values :
  ?max_depth:int -> ?max_states:int -> 'a Config.t -> 'a list * bool
