(** Exhaustive exploration of the execution tree: the adversary chooses the
    schedule {e and} the outcomes of internal coin flips, exactly the
    nondeterminism against which consistency and validity are required.

    Depth-first, depth- and node-bounded; [truncated] reports whether the
    verdict is exhaustive or merely bounded.

    [~dedup] enables the transposition table over incremental state
    fingerprints (see [Sim.Fingerprint] and DESIGN.md for the soundness
    argument): [`Exact] merges configurations whose object values and
    per-slot process fingerprints coincide; [`Symmetric] additionally
    sorts the per-process fingerprints so permutations of interchangeable
    processes collapse to one state — sound when all processes run one
    protocol term with one input (the identical-processes setting of
    Theorem 3.3), or when differing initial terms were distinguished via
    [Config.make ~fp_seeds] (as [Consensus.Protocol.initial_config] does).
    Dedup never changes the violation verdict or the reported witness; it
    changes only the node counts ([visited], [leaves]) and wall-clock. *)

open Sim

type dedup = [ `Off | `Exact | `Symmetric ]

type state = [ `Closure | `Flat ]
(** Which configuration engine drives the DFS.  [`Flat] (the default)
    interns process states and object values to dense ids ([Sim.Intern])
    and explores one int slab in place with undo cells ([Sim.Flat]) —
    same traversal order, counters, verdicts, and witnesses as
    [`Closure], typically several times faster.  [`Closure] is the
    original persistent-configuration engine; it remains the engine for
    checkpoint/resume, which the flat DFS does not support ([search]
    falls back to [`Closure] whenever [?on_checkpoint] or [?resume] is
    given). *)

type 'a violation = {
  kind : [ `Inconsistent | `Invalid ];
  trace : 'a Trace.t;
  config : 'a Config.t;
}

type 'a result = {
  violation : 'a violation option;
  visited : int;
  leaves : int;  (** maximal executions reached *)
  truncated : bool;  (** [completeness <> `Exhaustive] *)
  completeness : Robust.Budget.completeness;
      (** why (and whether) the exploration stopped short; the first
          reason hit in sequential DFS preorder.  A [`Truncated] result
          with [violation = None] is an under-approximation — "no
          violation among the visited states" — never a proof.  Mostly
          informational when a violation {e was} found: the witness is
          valid regardless. *)
  max_depth_seen : int;
  table_hits : int;  (** subtrees skipped via the transposition table *)
  table_misses : int;
      (** table lookups that found no reusable entry (always [0] under
          [`Off]); [table_hits + table_misses] is the lookup volume, so
          the hit rate of a dedup run is read straight off the result *)
}

(** All single-step successors of [pid]: one for an [Apply], [n] for a
    [Choose]. *)
val successors : 'a Config.t -> int -> ('a Config.t * 'a Event.t list) list

(** Depth-first exploration from [config].

    [?budget] meters node entries (checked {e before} a node is counted):
    node budgets are deterministic — the run visits exactly the first [k]
    preorder nodes — while deadline/cancellation trips are best-effort
    (polled, so overshoot is bounded but the frontier is not
    reproducible).  In [completeness] a budget trip dominates the
    structural [max_depth]/[max_states] reasons (which report the first
    one hit in preorder): structural cuts still answer the bounded
    question, a trip leaves it unanswered.

    Checkpoint/resume (sequential search only): [?on_checkpoint] receives
    the counters plus the root-to-cursor choice path every
    [checkpoint_every] visited nodes and once more when the budget trips;
    [?resume] restores that state and fast-forwards the DFS to the cursor
    without re-counting the prefix.  Under [~dedup:`Off] an interrupted +
    resumed run is bit-identical to an uninterrupted one (pinned by
    [test_checkpoint]); with a table, counts may differ (the table is not
    checkpointed) but the verdict stays sound.  [table_misses] restarts
    from 0 on resume — the checkpoint format does not carry it.

    [?obs]: the run is wrapped in an ["mc/search"] span and, on return,
    records ["mc/visited"], ["mc/leaves"], ["mc/table-hits"],
    ["mc/table-misses"] and ["budget/polls"] counters, the
    ["mc/max-depth"] watermark, and an ["mc/truncated/<reason>"] counter
    on truncation.  Counters equal the corresponding result fields; all
    recording happens on the calling domain after the DFS returns. *)
val search :
  ?obs:Obs.t ->
  ?budget:Robust.Budget.t ->
  ?dedup:dedup ->
  ?max_depth:int ->
  ?max_states:int ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Checkpoint.state -> unit) ->
  ?resume:Checkpoint.state ->
  ?state:state ->
  inputs:'a list ->
  'a Config.t ->
  'a result

(** Partitioned frontier search: the root's successor configurations are
    explored as independent bounded DFS tasks across [?pool]'s domains
    and the per-subtree [result] records merged in the sequential
    traversal order.  The merge is deterministic — bit-identical for any
    [?pool], including [None] — and on violation-free trees whose state
    budget does not bind, every field equals the sequential [search]'s
    under [`Off].  With [~dedup] each subtree task owns a private
    transposition table (nothing is shared across domains), so the node
    counts differ from the sequential search's shared-table run —
    deterministically — while the violation verdict and witness stay
    identical.  A reported violation is always the same witness [search]
    finds; in that case [search] stops early while the partitioned
    subtrees run to completion, so the merged statistics deterministically
    cover more of the tree.

    [?budget] node allowances remain {e bit-deterministic under any job
    count} and equal to the sequential [search ~budget] field for field:
    subtree tasks speculate with the full allowance and a sequential
    validation fold re-runs (with the exact remaining allowance) any task
    whose speculative result the sequential search could not have
    produced — see DESIGN.md §4d.  Deadline/cancellation budgets are
    best-effort: every task shares the absolute deadline, a set
    cancellation token additionally stops the pool claiming chunks, and
    skipped tasks are merged as zero-node [`Truncated `Cancelled]
    subtrees.

    [?obs]: same counters as [search], recorded from the {e merged}
    result so their values are jobs-invariant; additionally each
    speculative subtree's wall-clock is observed into the
    ["mc/subtree-seconds"] histogram, in task order, on the calling
    domain (worker domains never touch the metrics — timings travel back
    with the task results).  ["budget/polls"] is not recorded here: the
    per-task meters' poll counts depend on speculation, which is
    jobs-variant by construction. *)
val search_par :
  ?obs:Obs.t ->
  ?pool:Par.Pool.t ->
  ?budget:Robust.Budget.t ->
  ?dedup:dedup ->
  ?max_depth:int ->
  ?max_states:int ->
  ?state:state ->
  inputs:'a list ->
  'a Config.t ->
  'a result

(** Record a result's counters into [?obs] (["mc/visited"],
    ["mc/leaves"], ["mc/table-hits"], ["mc/table-misses"], the
    ["mc/max-depth"] watermark and the ["mc/truncated/<reason>"]
    counter), returning the result unchanged — the shared tail of every
    mc entry point, exported for [Shard].  Values are the result fields
    verbatim; call it once, on the calling domain. *)
val record_result : Obs.t option -> 'a result -> 'a result

(** First terminating solo decision of [pid], searching coin outcomes — a
    cheap witness of a reachable decision. *)
val solo_decision :
  ?max_steps:int -> ?max_nodes:int -> 'a Config.t -> pid:int -> 'a option

(** All values decided in some reachable execution, and whether the set may
    be an under-approximation (budget hit).  Seeded with per-process solo
    probes. *)
val decidable_values :
  ?max_depth:int -> ?max_states:int -> 'a Config.t -> 'a list * bool
