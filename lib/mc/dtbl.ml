(* Two-tier transposition table for the sharded frontier (DESIGN.md §4j):
   a bounded in-memory hot cache over an append-only on-disk log of
   canonical-key records.

   The key ([Skey]) is the engine- and intern-table-independent
   serialization of a configuration — per-process fingerprints (sorted
   under symmetric dedup) plus decoded object values — so records written
   by one domain, or one run, mean the same thing to every other.  The
   value is the same packed meta word the in-memory [Atbl] stores:
   [((remaining_depth + 1) lsl 1) lor complete].  Metas only ever grow
   under [merge_meta], and a smaller-than-known meta is merely
   conservative for the search (less pruning, never a wrong verdict), so
   losing a record can cost time but not soundness; this module
   nevertheless promises not to lose any — [find] is exactly the
   max-merge of every [set] — because the property tests pin it.

   On-disk v1 format, written with the repo's atomic tmp+rename
   discipline ([Sim.Trace_io.save_text]) at creation and compaction and
   plain appends in between:

     randsync-dtbl v1
     e <hash> <nfps> <fp> ... <nobjs> <value> ... <meta> ;

   One record per line, single-space separated, terminated by a literal
   [;] token.  The sentinel makes every strict byte prefix of a record
   unparseable, and the stored hash is recomputed from the decoded key
   and compared, so interior bitrot is also loud — the same
   "prefix parses only if it decodes to the original" rule the schedule
   and checkpoint codecs obey, swept by [test_codec_torture].

   Crash recovery: appends are sequential, so a torn write is always a
   suffix of the file.  On open, every newline-terminated line must parse
   (a complete line that does not is real corruption and raises
   [Trace_io.Parse_error]); a non-empty final fragment without its
   newline is the kill -9 signature — it is dropped, the file is
   atomically rewritten to the valid prefix, and the loss is reported on
   stderr and in [stats].

   Instances are not thread-safe: the sharded searcher guards each
   shard's table with that shard's lock. *)

open Sim

let header = "randsync-dtbl v1"

module Skey = struct
  type t = { hash : int; fps : int array; objs : Value.t array }

  (* same mixing chain as [Explore.key_of_config], so the closure and
     flat engines derive identical hashes for identical states *)
  let hash_of ~fps ~objs =
    let h = ref (Array.length fps) in
    Array.iter (fun fp -> h := Fingerprint.mix !h fp) fps;
    Array.iter (fun v -> h := Fingerprint.mix !h (Fingerprint.value_hash v)) objs;
    !h

  let make ~fps ~objs = { hash = hash_of ~fps ~objs; fps; objs }

  let equal a b =
    a.hash = b.hash
    && Array.length a.fps = Array.length b.fps
    && Array.length a.objs = Array.length b.objs
    &&
    let ok = ref true in
    Array.iteri (fun i fp -> if fp <> b.fps.(i) then ok := false) a.fps;
    Array.iteri (fun i v -> if not (Value.equal v b.objs.(i)) then ok := false) a.objs;
    !ok
end

module H = Hashtbl.Make (struct
  type t = Skey.t

  let equal = Skey.equal
  let hash (k : Skey.t) = k.Skey.hash land max_int
end)

let merge_meta a b = (max (a lsr 1) (b lsr 1) lsl 1) lor ((a lor b) land 1)

let parse_error fmt = Printf.ksprintf (fun s -> raise (Trace_io.Parse_error s)) fmt

let record_to_line (k : Skey.t) meta =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "e ";
  Buffer.add_string buf (string_of_int k.Skey.hash);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int (Array.length k.Skey.fps));
  Array.iter
    (fun fp ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int fp))
    k.Skey.fps;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int (Array.length k.Skey.objs));
  Array.iter
    (fun v ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Trace_io.encode_value v))
    k.Skey.objs;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int meta);
  Buffer.add_string buf " ;";
  Buffer.contents buf

let int_of_token tok =
  match int_of_string_opt tok with
  | Some n -> n
  | None -> parse_error "dtbl: bad integer %S" tok

let record_of_line line =
  match String.split_on_char ' ' line with
  | "e" :: hash :: nfps :: rest -> (
      let hash = int_of_token hash in
      let nfps = int_of_token nfps in
      if nfps < 0 || nfps > List.length rest then
        parse_error "dtbl: bad fingerprint count %d" nfps;
      let fps = Array.make nfps 0 in
      let rest = ref rest in
      for i = 0 to nfps - 1 do
        match !rest with
        | tok :: tl ->
            fps.(i) <- int_of_token tok;
            rest := tl
        | [] -> assert false
      done;
      match !rest with
      | nobjs :: rest -> (
          let nobjs = int_of_token nobjs in
          if nobjs < 0 || nobjs > List.length rest then
            parse_error "dtbl: bad object count %d" nobjs;
          let objs = Array.make nobjs Value.Unit in
          let rest = ref rest in
          for i = 0 to nobjs - 1 do
            match !rest with
            | tok :: tl ->
                objs.(i) <- Trace_io.decode_value tok;
                rest := tl
            | [] -> assert false
          done;
          match !rest with
          | [ meta; ";" ] ->
              let meta = int_of_token meta in
              if meta < 0 then parse_error "dtbl: negative meta %d" meta;
              let k = Skey.make ~fps ~objs in
              if k.Skey.hash <> hash then
                parse_error "dtbl: key hash mismatch (stored %d, computed %d)"
                  hash k.Skey.hash;
              (k, meta)
          | _ -> parse_error "dtbl: missing record sentinel")
      | [] -> parse_error "dtbl: truncated record")
  | _ -> parse_error "dtbl: malformed record %S" line

type stats = {
  hits : int;
  misses : int;
  spills : int;
  compactions : int;
  disk_records : int;
  mem_entries : int;
  recovered : int;
  lost_tail : bool;
}

type disk = {
  path : string;
  mutable oc : out_channel;
  mutable ic : in_channel;
  (* skey hash -> (offset, length) of every record with that hash, newest
     first; multiple live records per key are merged at lookup and folded
     into one at compaction *)
  index : (int, (int * int) list) Hashtbl.t;
  mutable tail : int;  (* byte offset of the next append *)
  mutable records : int;
  mutable compact_at : int;
}

type t = {
  mem_limit : int;
  hot : int H.t;
  disk : disk option;
  mutable hits : int;
  mutable misses : int;
  mutable spills : int;
  mutable compactions : int;
  mutable recovered : int;
  mutable lost_tail : bool;
  mutable closed : bool;
}

let compact_base mem_limit = 8 * max 256 (min mem_limit 65536)

let reopen_channels d =
  d.oc <- open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 d.path;
  d.ic <- open_in_bin d.path

(* Scan the whole file, returning the parsed records with their byte
   extents and the length of the valid newline-terminated prefix; a
   non-empty unterminated tail is the crash signature and is reported to
   the caller rather than raised. *)
let scan_log content =
  let len = String.length content in
  let records = ref [] in
  let pos = ref 0 in
  let saw_header = ref false in
  let valid = ref 0 in
  (try
     while !pos < len do
       match String.index_from_opt content !pos '\n' with
       | None -> raise Exit (* unterminated tail *)
       | Some nl ->
           let line = String.sub content !pos (nl - !pos) in
           if not !saw_header then
             if line = header then saw_header := true
             else parse_error "dtbl: bad header %S (want %S)" line header
           else begin
             let k, meta = record_of_line line in
             records := (k, meta, !pos, nl - !pos) :: !records
           end;
           pos := nl + 1;
           valid := !pos
     done
   with Exit -> ());
  (!saw_header, List.rev !records, !valid, len - !valid)

let open_disk t path =
  let content = if Sys.file_exists path then Trace_io.load_text ~path else "" in
  let fresh () = Trace_io.save_text ~path (header ^ "\n") in
  let saw_header, records, valid, torn =
    if content = "" then (false, [], 0, 0) else scan_log content
  in
  if not saw_header then begin
    (* empty, brand new, or a header torn mid-write: nothing recoverable *)
    if torn > 0 then begin
      Printf.eprintf
        "randsync: dtbl %s: torn header (%d bytes), starting empty\n%!" path
        torn;
      t.lost_tail <- true
    end;
    fresh ()
  end
  else if torn > 0 then begin
    Printf.eprintf
      "randsync: dtbl %s: dropping %d-byte torn tail, keeping %d records\n%!"
      path (String.length content - valid) (List.length records);
    t.lost_tail <- true;
    Trace_io.save_text ~path (String.sub content 0 valid)
  end;
  let index = Hashtbl.create 1024 in
  List.iter
    (fun ((k : Skey.t), _meta, off, len) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt index k.Skey.hash) in
      Hashtbl.replace index k.Skey.hash ((off, len) :: prev))
    records;
  t.recovered <- List.length records;
  let d =
    {
      path;
      oc = stdout (* replaced below *);
      ic = stdin;
      index;
      tail = (if saw_header then valid else String.length header + 1);
      records = List.length records;
      compact_at = compact_base t.mem_limit + (2 * List.length records);
    }
  in
  reopen_channels d;
  d

let create ?path ?mem_entries () =
  let mem_limit =
    match (path, mem_entries) with
    (* without a log to spill to, a cap would silently drop entries;
       unbounded is the only lossless choice *)
    | None, _ | _, None -> max_int
    | Some _, Some n -> max 1 n
  in
  let t =
    {
      mem_limit;
      hot = H.create 1024;
      disk = None;
      hits = 0;
      misses = 0;
      spills = 0;
      compactions = 0;
      recovered = 0;
      lost_tail = false;
      closed = false;
    }
  in
  match path with
  | None -> t
  | Some path ->
      (* bind before the copy: [open_disk] mutates [t.recovered] and
         [t.lost_tail], and the field reads of [{t with ...}] are not
         ordered relative to the [disk] expression *)
      let d = open_disk t path in
      { t with disk = Some d }

let read_record d ~off ~len =
  seek_in d.ic off;
  let line = really_input_string d.ic len in
  record_of_line line

let disk_find t k =
  match t.disk with
  | None -> None
  | Some d -> (
      match Hashtbl.find_opt d.index k.Skey.hash with
      | None -> None
      | Some extents ->
          List.fold_left
            (fun acc (off, len) ->
              let k', meta = read_record d ~off ~len in
              if Skey.equal k k' then
                Some (match acc with None -> meta | Some m -> merge_meta m meta)
              else acc)
            None extents)

let append_record d k meta =
  let line = record_to_line k meta in
  output_string d.oc line;
  output_char d.oc '\n';
  let off = d.tail and len = String.length line in
  d.tail <- d.tail + len + 1;
  let prev = Option.value ~default:[] (Hashtbl.find_opt d.index k.Skey.hash) in
  Hashtbl.replace d.index k.Skey.hash ((off, len) :: prev);
  d.records <- d.records + 1

let compact t =
  match t.disk with
  | None -> ()
  | Some d ->
      flush d.oc;
      let content = Trace_io.load_text ~path:d.path in
      let _, records, _, torn = scan_log content in
      if torn > 0 then
        (* appends happen through [d.oc] only, always whole records *)
        parse_error "dtbl: %s grew a torn tail while open" d.path;
      let merged = H.create (List.length records) in
      List.iter
        (fun (k, meta, _, _) ->
          let meta =
            match H.find_opt merged k with
            | None -> meta
            | Some m -> merge_meta m meta
          in
          H.replace merged k meta)
        records;
      let buf = Buffer.create (String.length content) in
      Buffer.add_string buf header;
      Buffer.add_char buf '\n';
      Hashtbl.reset d.index;
      d.records <- 0;
      H.iter
        (fun k meta ->
          let line = record_to_line k meta in
          let off = Buffer.length buf and len = String.length line in
          Buffer.add_string buf line;
          Buffer.add_char buf '\n';
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt d.index k.Skey.hash)
          in
          Hashtbl.replace d.index k.Skey.hash ((off, len) :: prev);
          d.records <- d.records + 1)
        merged;
      close_out d.oc;
      close_in d.ic;
      Trace_io.save_text ~path:d.path (Buffer.contents buf);
      d.tail <- Buffer.length buf;
      reopen_channels d;
      d.compact_at <- compact_base t.mem_limit + (2 * d.records);
      t.compactions <- t.compactions + 1

let spill t =
  match t.disk with
  | None -> ()
  | Some d ->
      H.iter (fun k meta -> append_record d k meta) t.hot;
      flush d.oc;
      H.reset t.hot;
      t.spills <- t.spills + 1;
      if d.records > d.compact_at then compact t

let put_hot t k meta =
  H.replace t.hot k meta;
  if H.length t.hot > t.mem_limit then spill t

let find t k =
  match H.find_opt t.hot k with
  | Some m ->
      t.hits <- t.hits + 1;
      Some m
  | None -> (
      match disk_find t k with
      | Some m ->
          t.hits <- t.hits + 1;
          (* promote: repeated probes of a spilled hot key must not pay
             the log walk every time *)
          put_hot t k m;
          Some m
      | None ->
          t.misses <- t.misses + 1;
          None)

let set t k meta =
  let meta =
    match H.find_opt t.hot k with
    | Some m -> merge_meta m meta
    | None -> (
        (* merge any spilled record so [find] stays the max-merge of
           every [set] even across evictions *)
        match disk_find t k with None -> meta | Some m -> merge_meta m meta)
  in
  put_hot t k meta

let flush t = match t.disk with None -> () | Some d -> flush d.oc

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.disk with
    | None -> ()
    | Some d ->
        (* persist the hot tier so a reopened table still answers
           everything this one knew *)
        H.iter (fun k meta -> append_record d k meta) t.hot;
        H.reset t.hot;
        Stdlib.flush d.oc;
        close_out d.oc;
        close_in d.ic
  end

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    spills = t.spills;
    compactions = t.compactions;
    disk_records = (match t.disk with None -> 0 | Some d -> d.records);
    mem_entries = H.length t.hot;
    recovered = t.recovered;
    lost_tail = t.lost_tail;
  }
