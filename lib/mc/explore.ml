(* Exhaustive exploration of the execution tree of a configuration: at every
   node the adversary chooses which enabled process steps, and for internal
   coin-flip steps *also* chooses the outcome (this is exactly the
   nondeterminism against which the paper's correctness conditions are
   stated: no execution may violate consistency or validity).

   Exploration is depth-bounded DFS.  Process states are closures and
   cannot be hashed directly — but they never need to be: a process is a
   deterministic step machine, so its state is fully determined by its
   initial protocol term and the sequence of responses / coin outcomes it
   consumed, and [Config.fps] maintains a 64-bit hash of exactly that
   history (see [Sim.Fingerprint]).  The optional transposition table
   ([~dedup]) keys on (object values, per-process fingerprints) and
   memoizes "subtree violation-free up to remaining depth d", collapsing
   the configurations that different interleavings reach redundantly:

   - [`Off]       — the plain DFS (the baseline; bit-identical to the
                    pre-table checker).
   - [`Exact]     — per-slot fingerprints: two configurations are merged
                    when every process consumed the same history and the
                    objects hold the same values.  Always sound.
   - [`Symmetric] — additionally sorts the per-process fingerprints, so
                    permutations of interchangeable processes collapse to
                    one state.  Sound exactly when fingerprint equality
                    implies state equality *across* process slots: either
                    all processes start from one protocol term (identical
                    processes with one input — the Theorem 3.3 setting),
                    or the initial fingerprints of differing terms were
                    distinguished via [Config.make ~fp_seeds] (what
                    [Consensus.Protocol.initial_config] does).

   Memoized skips of *complete* (exhaustively clean) subtrees never affect
   the verdict or [truncated]; skips of depth-bounded entries conservatively
   set [truncated].  The DFS inner loop allocates only the successor
   configuration and one choice-path cell per step: witness traces are
   reconstructed by replaying the recorded (pid, outcome) choice path only
   when a violation is actually found. *)

open Sim

type dedup = [ `Off | `Exact | `Symmetric ]

type 'a violation = {
  kind : [ `Inconsistent | `Invalid ];
  trace : 'a Trace.t;  (** the execution leading to the violation *)
  config : 'a Config.t;
}

type 'a result = {
  violation : 'a violation option;
  visited : int;  (** nodes expanded *)
  leaves : int;  (** maximal executions reached (all procs decided) *)
  truncated : bool;  (** [completeness <> `Exhaustive] *)
  completeness : Robust.Budget.completeness;
      (** why (and whether) the exploration stopped short; a budget trip
          dominates the structural bounds, which report the first reason
          hit in sequential DFS preorder *)
  max_depth_seen : int;
  table_hits : int;  (** subtrees skipped via the transposition table *)
  table_misses : int;
      (** lookups that found no reusable entry; 0 under [`Off], and
          restarts from 0 on resume (not part of the checkpoint format) *)
}

(** All single-step successors of [config] for process [pid]: one successor
    for an [Apply] step, [n] successors for a [Choose] step. *)
let successors config pid =
  match config.Config.procs.(pid) with
  | Proc.Decide _ -> []
  | Proc.Apply _ -> [ Run.step config ~pid ~coin:(fun _ -> 0) ]
  | Proc.Choose { n; _ } ->
      List.init n (fun outcome -> Run.step config ~pid ~coin:(fun _ -> outcome))

(* --- the transposition table ----------------------------------------- *)

module Key = struct
  type t = {
    hash : int;
    objs : Value.t array;  (** shared with the (immutable) configuration *)
    fps : int array;  (** per-slot fingerprints; sorted under [`Symmetric] *)
  }

  (* toplevel recursions — local [let rec]s here would allocate a
     closure pair on every table lookup *)
  let rec ints (x : int array) (y : int array) i =
    i < 0 || (Int.equal (Array.unsafe_get x i) (Array.unsafe_get y i) && ints x y (i - 1))

  let rec vals (x : Value.t array) (y : Value.t array) i =
    i < 0 || (Value.equal x.(i) y.(i) && vals x y (i - 1))

  let equal a b =
    Int.equal a.hash b.hash
    && Array.length a.fps = Array.length b.fps
    && Array.length a.objs = Array.length b.objs
    && ints a.fps b.fps (Array.length a.fps - 1)
    && vals a.objs b.objs (Array.length a.objs - 1)

  let hash k = k.hash
end

module Tbl = Hashtbl.Make (Key)

(* "Violation-free up to remaining depth [depth]"; [complete] once the
   subtree has been exhausted without hitting any bound (a horizon-free
   fact: revisits may skip it at any remaining depth). *)
type entry = { mutable depth : int; mutable complete : bool }

(* The DFS configurations are persistent (never mutated after [step]), so
   the key can share [objects] — and, under [`Exact], [fps] — with the
   configuration instead of copying. *)
let key_of_config ~symmetric (config : 'a Config.t) =
  let fps =
    if symmetric then begin
      let fps = Array.copy config.Config.fps in
      Array.sort (compare : int -> int -> int) fps;
      fps
    end
    else config.Config.fps
  in
  let h = ref (Array.length fps) in
  Array.iter (fun fp -> h := Fingerprint.mix !h fp) fps;
  Array.iter
    (fun v -> h := Fingerprint.mix !h (Fingerprint.value_hash v))
    config.Config.objects;
  { Key.hash = !h; objs = config.Config.objects; fps }

(* The DFS engine, parameterized by an execution prefix (the reversed
   (pid, coin-outcome) choice path [rev_choices] from [replay_root] and the
   [decisions] visible so far) so that the same code serves both the
   whole-tree search ([search], empty prefix) and the per-subtree tasks of
   the partitioned search ([search_par], prefix = the root step leading
   into the subtree).  [max_depth_seen] and depth bounds are relative to
   the given root configuration.

   Witness traces are *lazy*: the DFS records only the choice path and
   re-executes it from [replay_root] (with full event collection) when a
   violation is actually found — the violation-free tree never allocates
   events or trace segments.

   Resource governance: [~budget] meters node entries.  The meter is
   consulted *before* a node is counted, so a tripped node is exactly the
   first unvisited node of the sequential preorder — which makes the trip
   point a checkpoint cursor for free.  Structural bounds ([max_depth],
   [max_states]) record their reason in [first_reason] and keep exploring
   other branches, as before; a budget trip ([`Nodes]/[`Deadline]/
   [`Cancelled]) unwinds the whole DFS via [Budget_stop].  In the
   result's [completeness] a trip dominates the structural reasons: a
   structural cut prunes branches but still answers the bounded question,
   while a trip abandons the rest of the tree — the caller must not read
   "truncated (depth)" off a run whose budget ran out halfway.

   Checkpoint/resume: [~on_checkpoint] is called with the counters and
   the root-to-cursor choice path every [checkpoint_every] visited nodes
   and once more at a budget trip.  [~resume] restores the counters and
   fast-forwards to the cursor: nodes on the resume path are re-entered
   without being re-counted (they were counted before the interruption),
   siblings left of the path are skipped outright, and the table is not
   consulted on the path (the table is not checkpointed; under [`Off] the
   resumed run is bit-identical to an uninterrupted one, pinned by
   [test_checkpoint]). *)
let search_from ~polls ~budget ~checkpoint_every ~on_checkpoint ~resume ~dedup
    ~max_depth ~max_states ~inputs ~replay_root ~rev_choices ~decisions config
    =
  let resume = match resume with None -> Checkpoint.empty | Some s -> s in
  let visited = ref resume.Checkpoint.visited in
  let leaves = ref resume.Checkpoint.leaves in
  let table_hits = ref resume.Checkpoint.table_hits in
  (* not checkpointed: a resumed run's miss count covers the resumed
     portion only *)
  let table_misses = ref 0 in
  (* counts truncation points so subtree completeness is a before/after
     comparison, not a sticky boolean *)
  let trunc = ref resume.Checkpoint.trunc in
  let max_depth_seen = ref resume.Checkpoint.max_depth_seen in
  (* first structural (depth/states) truncation in preorder; budget trips
     are kept separate because a resumed run voids them *)
  let first_reason = ref resume.Checkpoint.reason in
  let found : 'a violation option ref = ref None in
  let exception Stop in
  let exception Budget_stop of Robust.Budget.reason * (int * int) list in
  let meter =
    match budget with
    | Some b when not (Robust.Budget.is_unlimited b) ->
        Some (Robust.Budget.Meter.create b)
    | _ -> None
  in
  let mk_state rev_choices =
    {
      Checkpoint.visited = !visited;
      leaves = !leaves;
      table_hits = !table_hits;
      max_depth_seen = !max_depth_seen;
      trunc = !trunc;
      reason = !first_reason;
      path = List.rev rev_choices;
    }
  in
  let truncate reason =
    if !first_reason = None then first_reason := Some reason;
    incr trunc
  in
  let table =
    match dedup with `Off -> None | `Exact | `Symmetric -> Some (Tbl.create 1024)
  in
  let symmetric = dedup = `Symmetric in
  let rebuild_trace rev_choices =
    let rec replay config rev_events = function
      | [] -> List.rev rev_events
      | (pid, outcome) :: rest ->
          let config', events = Run.step config ~pid ~coin:(fun _ -> outcome) in
          replay config' (List.rev_append events rev_events) rest
    in
    replay replay_root [] (List.rev rev_choices)
  in
  let stop kind config rev_choices =
    found := Some { kind; trace = rebuild_trace rev_choices; config };
    raise Stop
  in
  (* the prefix's decisions (processes may decide without taking a single
     step in this subtree) participate in the verdicts; also seeds the
     distinct-decided-values accumulator for the incremental path checks *)
  let check_prefix () =
    let values = List.sort_uniq compare decisions in
    if List.length values > 1 then stop `Inconsistent config rev_choices
    else if not (List.for_all (fun v -> List.mem v inputs) values) then
      stop `Invalid config rev_choices;
    values
  in
  let rec go config rev_choices distinct depth resuming =
    match resuming with
    | _ :: _ ->
        (* on the resume path: counted before the interruption *)
        expand config rev_choices distinct depth resuming
    | [] -> (
        (match meter with
        | None -> ()
        | Some m -> (
            match Robust.Budget.Meter.tick_node m with
            | None -> ()
            | Some r -> raise (Budget_stop (r, rev_choices))));
        (match on_checkpoint with
        | Some f when !visited > 0 && !visited mod checkpoint_every = 0 ->
            f (mk_state rev_choices)
        | _ -> ());
        incr visited;
        if depth > !max_depth_seen then max_depth_seen := depth;
        if !visited > max_states then truncate `States
        else if not (Config.exists_enabled config) then incr leaves
        else if depth >= max_depth then truncate `Depth
        else
          match table with
          | None -> expand config rev_choices distinct depth []
          | Some tbl -> (
              let rd = max_depth - depth in
              let key = key_of_config ~symmetric config in
              match Tbl.find_opt tbl key with
              | Some e when e.complete -> incr table_hits
              | Some e when e.depth >= rd ->
                  incr table_hits;
                  (* clean to a horizon at least as deep as ours, but the
                     tree extends beyond it: a re-exploration could not
                     have been exhaustive either *)
                  truncate `Depth
              | shallow ->
                  incr table_misses;
                  let trunc0 = !trunc in
                  expand config rev_choices distinct depth [];
                  (* no violation below (Stop would have escaped) *)
                  let complete = !trunc = trunc0 in
                  (match shallow with
                  | Some e ->
                      e.depth <- max e.depth rd;
                      if complete then e.complete <- true
                  | None -> Tbl.replace tbl key { depth = rd; complete })))
  and expand config rev_choices distinct depth resuming =
    match resuming with
    | [] ->
        Config.iter_enabled config (fun pid ->
            match config.Config.procs.(pid) with
            | Proc.Decide _ -> assert false (* not enabled *)
            | Proc.Apply _ -> child config rev_choices distinct depth pid 0 []
            | Proc.Choose { n; _ } ->
                for outcome = 0 to n - 1 do
                  child config rev_choices distinct depth pid outcome []
                done)
    | cursor :: rest ->
        (* fast-forward: children left of the cursor were fully explored
           before the interruption; the cursor child is re-entered with the
           rest of the path; children right of it are explored normally *)
        let matched = ref false in
        Config.iter_enabled config (fun pid ->
            let visit outcome =
              let c = compare (pid, outcome) cursor in
              if c = 0 then begin
                matched := true;
                child config rev_choices distinct depth pid outcome rest
              end
              else if c > 0 then
                child config rev_choices distinct depth pid outcome []
            in
            match config.Config.procs.(pid) with
            | Proc.Decide _ -> assert false (* not enabled *)
            | Proc.Apply _ -> visit 0
            | Proc.Choose { n; _ } ->
                for outcome = 0 to n - 1 do
                  visit outcome
                done);
        if not !matched then
          invalid_arg
            "Explore.search: resume path does not match the scenario \
             (wrong protocol, inputs or configuration?)"
  and child config rev_choices distinct depth pid outcome resuming =
    let config' = Run.step_quiet config ~pid ~coin:(fun _ -> outcome) in
    let rev_choices' = (pid, outcome) :: rev_choices in
    let distinct' =
      match Config.decision config' pid with
      | None -> distinct
      | Some v ->
          if List.mem v distinct then distinct
          else if distinct <> [] then stop `Inconsistent config' rev_choices'
          else if not (List.mem v inputs) then stop `Invalid config' rev_choices'
          else v :: distinct
    in
    go config' rev_choices' distinct' (depth + 1) resuming
  in
  let tripped = ref None in
  (try
     let distinct = check_prefix () in
     go config rev_choices distinct 0 resume.Checkpoint.path
   with
  | Stop -> ()
  | Budget_stop (r, cursor) ->
      tripped := Some r;
      (* the cursor node is uncounted, so this state resumes exactly there *)
      Option.iter (fun f -> f (mk_state cursor)) on_checkpoint);
  (match (polls, meter) with
  | Some acc, Some m -> acc := !acc + Robust.Budget.Meter.polls m
  | _ -> ());
  let completeness =
    match (!tripped, !first_reason) with
    | Some r, _ -> `Truncated r
    | None, Some r -> `Truncated r
    | None, None -> `Exhaustive
  in
  {
    violation = !found;
    visited = !visited;
    leaves = !leaves;
    truncated = completeness <> `Exhaustive;
    completeness;
    max_depth_seen = !max_depth_seen;
    table_hits = !table_hits;
    table_misses = !table_misses;
  }

(* --- the flat-slab engine -------------------------------------------- *)

type state = [ `Closure | `Flat ]

(* Arena-backed transposition table for the flat DFS: keys are slab
   slices (object value ids then state ids, the sid slice sorted under
   [`Symmetric]) stored *contiguously* in one growable int arena —
   entry layout [meta; slot_0 .. slot_{width-1}] — and addressed by an
   open-addressing index of interleaved (hash, arena offset) pairs.

   [meta] packs the closure table's entry record into one int:
   [(stored_remaining_depth + 1) lsl 1 lor complete].  A lookup costs
   two cache lines (index pair, then the entry's slots for the exact
   compare — hash equality is never trusted); an insert blits the
   scratch key into the arena tail.  Nothing in here is a GC object, so
   million-entry sweeps neither allocate per node nor grow major-heap
   mark work — the boxed [Hashtbl] + per-miss key snapshots this
   replaces dominated deep dedup'd sweeps in both engines.

   Entries are copies *by construction* (the insert blit), which is the
   flat engine's answer to the key-immutability hazard of sharing live
   arrays (see [key_of_config]'s snapshot discipline for the closure
   table). *)
module Atbl = struct
  type t = {
    width : int;  (** slots per key *)
    mutable arena : int array;  (** entries: [meta; slots^width] *)
    mutable n : int;  (** arena fill pointer *)
    mutable idx : int array;
        (** interleaved [hash; offset] pairs, offset -1 = empty *)
    mutable mask : int;  (** index capacity - 1 *)
    mutable shift : int;  (** 63 - log2 of index capacity *)
    mutable size : int;
  }

  let fib = 0x1E3779B97F4A7C15

  let create ~width =
    let bits = 10 in
    let cap = 1 lsl bits in
    {
      width;
      arena = Array.make (cap * (width + 1)) 0;
      n = 0;
      idx = Array.make (2 * cap) (-1);
      mask = cap - 1;
      shift = 63 - bits;
      size = 0;
    }

  (* toplevel recursions: local [let rec]s here would allocate closures
     on every lookup *)
  let rec eq_slots arena o (key : int array) i =
    i < 0
    || Array.unsafe_get arena (o + i) = Array.unsafe_get key i
       && eq_slots arena o key (i - 1)

  let rec probe t hash (key : int array) i =
    let o = Array.unsafe_get t.idx ((2 * i) + 1) in
    if o = -1 then -1
    else if
      Array.unsafe_get t.idx (2 * i) = hash
      && eq_slots t.arena (o + 1) key (t.width - 1)
    then o
    else probe t hash key ((i + 1) land t.mask)

  (* arena offset of the entry (its meta word), or -1 *)
  let find t ~hash key = probe t hash key ((hash * fib) lsr t.shift)

  let meta t o = Array.unsafe_get t.arena o
  let set_meta t o m = Array.unsafe_set t.arena o m

  let rec ins_slot t i =
    if Array.unsafe_get t.idx ((2 * i) + 1) = -1 then i
    else ins_slot t ((i + 1) land t.mask)

  let grow_index t =
    let old = t.idx in
    let cap = t.mask + 1 in
    t.idx <- Array.make (4 * cap) (-1);
    t.mask <- (2 * cap) - 1;
    t.shift <- t.shift - 1;
    for i = 0 to cap - 1 do
      let o = old.((2 * i) + 1) in
      if o >= 0 then begin
        let h = old.(2 * i) in
        let j = ins_slot t ((h * fib) lsr t.shift) in
        t.idx.(2 * j) <- h;
        t.idx.((2 * j) + 1) <- o
      end
    done

  (* Append a fresh entry (meta 0 = "in progress": stored depth -1,
     incomplete) and index it; returns its arena offset. *)
  let insert t ~hash key =
    if 2 * (t.size + 1) > t.mask + 1 then grow_index t;
    let w = t.width + 1 in
    if t.n + w > Array.length t.arena then begin
      let arena = Array.make (2 * Array.length t.arena) 0 in
      Array.blit t.arena 0 arena 0 t.n;
      t.arena <- arena
    end;
    let o = t.n in
    t.arena.(o) <- 0;
    Array.blit key 0 t.arena (o + 1) t.width;
    t.n <- o + w;
    let i = ins_slot t ((hash * fib) lsr t.shift) in
    t.idx.(2 * i) <- hash;
    t.idx.((2 * i) + 1) <- o;
    t.size <- t.size + 1;
    o
end

(* The flat-slab DFS: identical traversal order, counter accounting, and
   budget metering as [search_from], over a {!Sim.Flat} slab mutated in
   place.  Stepping into a child saves the overwritten slot ids in locals
   on the call stack, recurses, and writes them back — the undo-cell
   discipline; slot writes are hash-self-inverse, so the transposition
   hashes restore with them and nothing is allocated on the
   violation-free path except the (pid, outcome) choice cell.

   Table lookups go through one reused scratch key per search
   ([`Symmetric] insertion-sorts the scratch's sid slice in place); a
   miss blits the key into the {!Atbl} arena *before* expanding the
   subtree (whose own lookups clobber the scratch), marked in-progress
   (stored depth -1) — which every revisit treats exactly as the
   closure engine treats an absent entry, so counters match node for
   node, while the held arena offset lets the post-expansion update
   write the final (depth, complete) meta without re-probing.

   Witnesses stay engine-independent: on a violation the recorded choice
   path is replayed from [replay_root] with the *closure* engine, so the
   reported trace and configuration are bit-identical to [search_from]'s.

   Checkpointing is not offered here (the closure engine remains the
   checkpoint/resume path); a budget trip just reports its reason. *)
let search_from_flat ~polls ~budget ~dedup ~max_depth ~max_states ~inputs
    ~replay_root ~rev_choices ~decisions config =
  let visited = ref 0 in
  let leaves = ref 0 in
  let table_hits = ref 0 in
  let table_misses = ref 0 in
  let trunc = ref 0 in
  let max_depth_seen = ref 0 in
  let first_reason = ref None in
  let found : 'a violation option ref = ref None in
  let exception Stop in
  let exception Budget_stop of Robust.Budget.reason in
  let meter =
    match budget with
    | Some b when not (Robust.Budget.is_unlimited b) ->
        Some (Robust.Budget.Meter.create b)
    | _ -> None
  in
  let truncate reason =
    if !first_reason = None then first_reason := Some reason;
    incr trunc
  in
  let symmetric = dedup = `Symmetric in
  let flat =
    Flat.of_config ~hashed:(dedup <> `Off)
      ~roots:(if symmetric then Flat.By_fp else Flat.Per_slot)
      config
  in
  let rt = Flat.rt flat in
  let n_objs = Flat.n_objs flat and n_procs = Flat.n_procs flat in
  let width = n_objs + n_procs in
  let table =
    match dedup with
    | `Off -> None
    | `Exact | `Symmetric -> Some (Atbl.create ~width)
  in
  (* one reused scratch key per search: the slab slice, with the sid
     slice insertion-sorted in place under [`Symmetric] (n_procs is
     small; no comparator closure, no allocation) *)
  let skey = Array.make width 0 in
  let fill_skey () =
    Flat.slab_copy flat ~into:skey;
    if symmetric then
      for p = n_objs + 1 to width - 1 do
        let v = Array.unsafe_get skey p in
        let j = ref (p - 1) in
        while !j >= n_objs && Array.unsafe_get skey !j > v do
          Array.unsafe_set skey (!j + 1) (Array.unsafe_get skey !j);
          decr j
        done;
        Array.unsafe_set skey (!j + 1) v
      done
  in
  (* The root-to-cursor choice path lives in two depth-indexed int arrays
     instead of cons cells: the violation-free DFS allocates nothing per
     node.  [rev_choices] (the caller's prefix, used by [search_par]
     subtree tasks) is prepended only when a witness is materialized. *)
  let path_pid = Array.make (max max_depth 1) 0 in
  let path_out = Array.make (max max_depth 1) 0 in
  let choices_to ~depth =
    let rec collect acc d =
      if d < 0 then acc
      else collect ((path_pid.(d), path_out.(d)) :: acc) (d - 1)
    in
    List.rev_append (collect [] (depth - 1)) rev_choices
  in
  let rebuild rev_choices =
    let rec replay config rev_events = function
      | [] -> (config, List.rev rev_events)
      | (pid, outcome) :: rest ->
          let config', events = Run.step config ~pid ~coin:(fun _ -> outcome) in
          replay config' (List.rev_append events rev_events) rest
    in
    replay replay_root [] (List.rev rev_choices)
  in
  let stop kind rev_choices =
    let config, trace = rebuild rev_choices in
    found := Some { kind; trace; config };
    raise Stop
  in
  let stop_at kind ~depth = stop kind (choices_to ~depth) in
  let check_prefix () =
    let values = List.sort_uniq compare decisions in
    if List.length values > 1 then stop `Inconsistent rev_choices
    else if not (List.for_all (fun v -> List.mem v inputs) values) then
      stop `Invalid rev_choices;
    values
  in
  let rec go distinct depth =
    (match meter with
    | None -> ()
    | Some m -> (
        match Robust.Budget.Meter.tick_node m with
        | None -> ()
        | Some r -> raise (Budget_stop r)));
    incr visited;
    if depth > !max_depth_seen then max_depth_seen := depth;
    if !visited > max_states then truncate `States
    else if Flat.enabled_count flat = 0 then incr leaves
    else if depth >= max_depth then truncate `Depth
    else
      match table with
      | None -> expand distinct depth
      | Some tbl ->
          let rd = max_depth - depth in
          fill_skey ();
          let hash = if symmetric then Flat.hsym flat else Flat.hexact flat in
          let o = Atbl.find tbl ~hash skey in
          (* meta = (stored_depth + 1) lsl 1 lor complete; a fresh
             in-progress entry (meta 0, stored depth -1, incomplete)
             behaves exactly like the closure engine's absent entry *)
          let m = if o >= 0 then Atbl.meta tbl o else 0 in
          if m land 1 = 1 then incr table_hits
          else if (m lsr 1) - 1 >= rd then begin
            incr table_hits;
            truncate `Depth
          end
          else begin
            incr table_misses;
            (* insert up front (the subtree's lookups clobber [skey]);
               the held offset is updated after expansion *)
            let o = if o >= 0 then o else Atbl.insert tbl ~hash skey in
            let trunc0 = !trunc in
            expand distinct depth;
            let complete = !trunc = trunc0 in
            let depth' = max ((m lsr 1) - 1) rd in
            Atbl.set_meta tbl o
              (((depth' + 1) lsl 1) lor Bool.to_int complete)
          end
  and expand distinct depth =
    (* step in place, recurse, undo from stack locals; one packed
       [Intern.code] load answers kind, enabledness and arg at once *)
    for pid = 0 to n_procs - 1 do
      if not (Flat.is_halted flat pid) then begin
        let sid0 = Flat.sid flat pid in
        let code = Intern.code rt sid0 in
        let tag = code land 3 in
        if tag = Intern.tag_apply then begin
          let obj = code lsr 2 in
          let vid0 = Flat.obj_vid flat obj in
          let packed = Intern.apply_packed rt ~sid:sid0 ~vid:vid0 in
          let sid' = Intern.sid_of packed in
          Flat.write_obj flat obj (Intern.vid_of packed);
          Flat.write_sid flat pid sid';
          enter distinct depth pid 0 sid';
          Flat.write_sid flat pid sid0;
          Flat.write_obj flat obj vid0
        end
        else if tag = Intern.tag_choose then begin
          let n = code lsr 2 in
          for outcome = 0 to n - 1 do
            let sid' = Intern.choose rt ~sid:sid0 ~outcome in
            Flat.write_sid flat pid sid';
            enter distinct depth pid outcome sid';
            Flat.write_sid flat pid sid0
          done
        end
      end
    done
  and enter distinct depth pid outcome sid' =
    path_pid.(depth) <- pid;
    path_out.(depth) <- outcome;
    let decided = Intern.is_decided rt sid' in
    if decided then Flat.note_decided flat pid;
    let distinct' =
      if not decided then distinct
      else
        match Intern.decision rt sid' with
        | None -> assert false
        | Some v ->
            if List.mem v distinct then distinct
            else if distinct <> [] then stop_at `Inconsistent ~depth:(depth + 1)
            else if not (List.mem v inputs) then
              stop_at `Invalid ~depth:(depth + 1)
            else v :: distinct
    in
    go distinct' (depth + 1);
    if decided then Flat.note_undecided flat pid
  in
  let tripped = ref None in
  (try
     let distinct = check_prefix () in
     go distinct 0
   with
  | Stop -> ()
  | Budget_stop r -> tripped := Some r);
  (match (polls, meter) with
  | Some acc, Some m -> acc := !acc + Robust.Budget.Meter.polls m
  | _ -> ());
  let completeness =
    match (!tripped, !first_reason) with
    | Some r, _ -> `Truncated r
    | None, Some r -> `Truncated r
    | None, None -> `Exhaustive
  in
  {
    violation = !found;
    visited = !visited;
    leaves = !leaves;
    truncated = completeness <> `Exhaustive;
    completeness;
    max_depth_seen = !max_depth_seen;
    table_hits = !table_hits;
    table_misses = !table_misses;
  }

(* Counter values are the result fields, verbatim — the documented
   contract that lets a --metrics dump be cross-checked against the CLI's
   stdout summary.  Called on the caller's domain only. *)
let record_result obs (r : 'a result) =
  Obs.add obs "mc/visited" r.visited;
  Obs.add obs "mc/leaves" r.leaves;
  Obs.add obs "mc/table-hits" r.table_hits;
  Obs.add obs "mc/table-misses" r.table_misses;
  Obs.record_max obs "mc/max-depth" r.max_depth_seen;
  (match r.completeness with
  | `Exhaustive -> ()
  | `Truncated reason ->
      Obs.incr obs ("mc/truncated/" ^ Robust.Budget.reason_to_string reason));
  r

let search ?obs ?budget ?(dedup = `Off) ?(max_depth = 60)
    ?(max_states = 2_000_000) ?(checkpoint_every = 50_000) ?on_checkpoint
    ?resume ?(state = `Flat) ~inputs config =
  Obs.span obs "mc/search" @@ fun () ->
  let polls = ref 0 in
  (* checkpoint/resume stays on the closure engine: the flat DFS does not
     checkpoint (its cursor bookkeeping would buy nothing — resumed runs
     are rare and not hot) *)
  let use_flat =
    state = `Flat && Option.is_none on_checkpoint && Option.is_none resume
  in
  let r =
    if use_flat then
      search_from_flat ~polls:(Some polls) ~budget ~dedup ~max_depth
        ~max_states ~inputs ~replay_root:config ~rev_choices:[]
        ~decisions:(Config.decisions config) config
    else
      search_from ~polls:(Some polls) ~budget ~checkpoint_every ~on_checkpoint
        ~resume ~dedup ~max_depth ~max_states ~inputs ~replay_root:config
        ~rev_choices:[] ~decisions:(Config.decisions config) config
  in
  Obs.add obs "budget/polls" !polls;
  record_result obs r

(* Partitioned search: the root's successor configurations — one task per
   (enabled pid, coin outcome), in the sequential traversal order — are
   explored as independent bounded DFS runs across the pool's domains,
   and their [result] records merged in task order.

   Merge semantics, field by field (root contributes the "1 +" / "+ 1"):
   - [visited]   = 1 + sum of subtree visits;
   - [leaves]    = sum of subtree leaves (the root itself is the only
                   leaf when nothing is enabled, handled before
                   partitioning);
   - [max_depth_seen] = 1 + max over subtrees (each task measures depth
                   relative to its subtree root, which sits at depth 1);
   - [truncated] = any subtree truncated, or the merged visit count
                   exceeds [max_states];
   - [table_hits] = sum of subtree hits (with [~dedup] each task owns a
                   private transposition table — domains share nothing —
                   so the counts differ from the sequential [search]'s
                   single shared table, deterministically);
   - [violation] = the first violating subtree in task order; within a
                   subtree the DFS finds its first violation in the same
                   order as the sequential search, so the reported
                   witness is exactly [search]'s.

   The merge is a pure fold over deterministic per-task results, so the
   outcome is bit-identical for any [?pool] (including [None]).  On
   violation-free trees whose state budget is not the binding constraint,
   every field except [table_hits] equals the sequential [search]'s under
   [`Off] (pinned by the determinism test suite); when a violation exists,
   [search] stops at first blood while the partitioned runs still finish
   their subtrees, so the merged statistics deterministically cover more
   of the tree.

   Budgets: a *node* budget must stay bit-deterministic under any job
   count, which a naive per-task split cannot deliver (how many nodes the
   sequential run spends in subtree [i] depends on subtrees [0..i-1]).
   The partitioned run therefore *speculates*: every task runs with the
   full allowance in parallel, and a sequential validation fold then
   replays the accounting of the sequential search — thread the remaining
   allowance through the tasks in order; a task whose speculative result
   could not have come from the sequential prefix (it visited more than
   the allowance that remains, or it tripped) is re-run on the caller
   with exactly the remaining allowance.  DFS is deterministic, so a
   budgeted run visits precisely the first [k] preorder nodes of its
   subtree — the re-run reproduces the sequential frontier bit for bit,
   and tasks past a hard trip are discarded just as the sequential search
   never reached them.  Wasted speculative work costs wall-clock only,
   never affects the result.  Deadline/cancellation budgets make no
   determinism promise; they are simply threaded into every task (which
   shares the absolute deadline), and a set cancellation token
   additionally stops the pool from claiming further chunks. *)
let search_par ?obs ?pool ?budget ?(dedup = `Off) ?(max_depth = 60)
    ?(max_states = 2_000_000) ?(state = `Flat) ~inputs config =
  let budget_v =
    match budget with None -> Robust.Budget.unlimited | Some b -> b
  in
  match budget_v.Robust.Budget.nodes with
  | Some k when k <= 1 ->
      (* not worth partitioning: the allowance barely covers the root;
         [search] does its own span/recording *)
      search ?obs ?budget ~dedup ~max_depth ~max_states ~state ~inputs config
  | node_allowance ->
      Obs.span obs "mc/search" @@ fun () ->
      let root =
        search_from ~polls:None ~budget:None ~checkpoint_every:max_int
          ~on_checkpoint:None ~resume:None ~dedup:`Off ~max_depth:0
          ~max_states ~inputs ~replay_root:config ~rev_choices:[]
          ~decisions:(Config.decisions config) config
      in
      if root.violation <> None || not (Config.exists_enabled config)
         || max_depth = 0
      then record_result obs root
      else begin
        let tasks =
          List.concat_map
            (fun pid ->
              match config.Config.procs.(pid) with
              | Proc.Decide _ -> []
              | Proc.Apply _ -> [ (pid, 0) ]
              | Proc.Choose { n; _ } ->
                  List.init n (fun outcome -> (pid, outcome)))
            (Config.enabled_pids config)
        in
        let explore_subtree ~budget (pid, outcome) =
          (* each task flattens its own slab over a private intern table
             (domains share nothing), created inside the task thunk *)
          let config' = Run.step_quiet config ~pid ~coin:(fun _ -> outcome) in
          if state = `Flat then
            search_from_flat ~polls:None ~budget ~dedup
              ~max_depth:(max_depth - 1) ~max_states ~inputs
              ~replay_root:config
              ~rev_choices:[ (pid, outcome) ]
              ~decisions:(Config.decisions config') config'
          else
            search_from ~polls:None ~budget ~checkpoint_every:max_int
              ~on_checkpoint:None ~resume:None ~dedup
              ~max_depth:(max_depth - 1) ~max_states ~inputs
              ~replay_root:config
              ~rev_choices:[ (pid, outcome) ]
              ~decisions:(Config.decisions config') config'
        in
        let task_budget =
          if Robust.Budget.is_unlimited budget_v then None else Some budget_v
        in
        let hard_trip r =
          match r.completeness with
          | `Truncated ((`Nodes | `Deadline | `Cancelled) as reason) ->
              Some reason
          | `Truncated (`Depth | `States | `Steps) | `Exhaustive -> None
        in
        (* cancelled-before-running placeholder for skipped pool slots *)
        let skipped =
          {
            violation = None;
            visited = 0;
            leaves = 0;
            truncated = true;
            completeness = `Truncated `Cancelled;
            max_depth_seen = 0;
            table_hits = 0;
            table_misses = 0;
          }
        in
        (* Timings travel back with the task results and are observed by
           the caller after the barrier, in task order: worker domains
           never touch the (single-domain) metrics accumulator, and the
           wall-clock reads are skipped entirely when nobody is looking. *)
        let run_task t =
          match obs with
          | None -> (explore_subtree ~budget:task_budget t, 0.)
          | Some _ ->
              let t0 = Unix.gettimeofday () in
              let r = explore_subtree ~budget:task_budget t in
              (r, Unix.gettimeofday () -. t0)
        in
        let timed_speculative =
          match budget_v.Robust.Budget.cancel with
          | Some cancel ->
              List.map
                (function Some p -> p | None -> (skipped, 0.))
                (Par.map_cancellable ?pool ~cancel run_task tasks)
          | None -> Par.map ?pool run_task tasks
        in
        if obs <> None then
          List.iter
            (fun (_, dt) -> Obs.observe obs "mc/subtree-seconds" dt)
            timed_speculative;
        let speculative = List.map fst timed_speculative in
        (* Sequential validation in task order.  Unmetered ([remaining =
           None], i.e. no node allowance): keep every speculative result —
           the legacy merge, where a violation run's statistics cover more
           of the tree than the early-stopping sequential search.  Metered:
           keep exactly the prefix of results the sequential search would
           have produced, re-running on the caller any task whose
           speculative result could not be the sequential one. *)
        let rec validate acc remaining = function
          | [] -> List.rev acc
          | (task, r) :: rest -> (
              match remaining with
              | None -> validate (r :: acc) None rest
              | Some rem ->
                  let r =
                    if hard_trip r <> None || r.visited > rem then
                      explore_subtree
                        ~budget:(Some (Robust.Budget.with_nodes budget_v rem))
                        task
                    else r
                  in
                  if r.violation <> None || hard_trip r <> None then
                    List.rev (r :: acc)
                  else validate (r :: acc) (Some (rem - r.visited)) rest)
        in
        let subtrees =
          validate []
            (Option.map (fun k -> k - 1 (* the root *)) node_allowance)
            (List.combine tasks speculative)
        in
        let visited =
          List.fold_left (fun acc r -> acc + r.visited) 1 subtrees
        in
        let completeness =
          (* same precedence as the sequential search: a budget trip in
             any accepted subtree (validation keeps at most one, as its
             last element) dominates; otherwise the first structural
             reason in task order precedes the whole-run state cap *)
          match List.find_map hard_trip subtrees with
          | Some r -> `Truncated r
          | None ->
              let structural =
                List.fold_left
                  (fun acc r -> Robust.Budget.merge acc r.completeness)
                  `Exhaustive subtrees
              in
              if structural <> `Exhaustive then structural
              else if visited > max_states then `Truncated `States
              else `Exhaustive
        in
        record_result obs
          {
            violation = List.find_map (fun r -> r.violation) subtrees;
            visited;
            leaves = List.fold_left (fun acc r -> acc + r.leaves) 0 subtrees;
            truncated = completeness <> `Exhaustive;
            completeness;
            max_depth_seen =
              List.fold_left
                (fun acc r ->
                  if r.visited > 0 then max acc (1 + r.max_depth_seen) else acc)
                0 subtrees;
            table_hits =
              List.fold_left (fun acc r -> acc + r.table_hits) 0 subtrees;
            table_misses =
              List.fold_left (fun acc r -> acc + r.table_misses) 0 subtrees;
          }
      end

(* First terminating solo decision of [pid], searching coin outcomes.
   Cheap probe used to seed [decidable_values]: a solo run that decides
   witnesses a reachable decision without touching the full tree. *)
let solo_decision ?(max_steps = 300) ?(max_nodes = 5_000) config ~pid =
  let nodes = ref 0 in
  let rec go config steps =
    incr nodes;
    if !nodes > max_nodes || steps > max_steps then None
    else
      match Config.decision config pid with
      | Some v -> Some v
      | None -> (
          match config.Config.procs.(pid) with
          | Proc.Decide _ -> assert false
          | Proc.Apply _ ->
              go (Run.step_quiet config ~pid ~coin:(fun _ -> 0)) (steps + 1)
          | Proc.Choose { n; _ } ->
              let rec try_outcome o =
                if o >= n then None
                else
                  let config' = Run.step_quiet config ~pid ~coin:(fun _ -> o) in
                  match go config' (steps + 1) with
                  | Some _ as found -> found
                  | None -> try_outcome (o + 1)
              in
              try_outcome 0)
  in
  go config 0

(** All values decided in some execution reachable from [config] (within the
    exploration budget).  The second component tells whether the set is
    exhaustive ([false]) or may be an under-approximation ([true]).
    Seeded with per-process solo probes, so distinct solo decisions are
    found without exhausting the budget in one corner of the tree. *)
let decidable_values ?(max_depth = 60) ?(max_states = 2_000_000) config =
  let visited = ref 0 in
  let truncated = ref false in
  let values = ref [] in
  let add v = if not (List.mem v !values) then values := v :: !values in
  (* decisions already present count, and each enabled process's solo
     probe contributes a cheap reachable-decision witness *)
  List.iter add (Config.decisions config);
  Config.iter_enabled config (fun pid ->
      match solo_decision config ~pid with Some v -> add v | None -> ());
  let rec go config depth =
    incr visited;
    if !visited > max_states || depth >= max_depth then truncated := true
    else
      Config.iter_enabled config (fun pid ->
          match config.Config.procs.(pid) with
          | Proc.Decide _ -> assert false
          | Proc.Apply _ -> visit config depth pid 0
          | Proc.Choose { n; _ } ->
              for outcome = 0 to n - 1 do
                visit config depth pid outcome
              done)
  and visit config depth pid outcome =
    let config' = Run.step_quiet config ~pid ~coin:(fun _ -> outcome) in
    (match Config.decision config' pid with Some v -> add v | None -> ());
    go config' (depth + 1)
  in
  go config 0;
  (List.sort compare !values, !truncated)
