(* Exhaustive exploration of the execution tree of a configuration: at every
   node the adversary chooses which enabled process steps, and for internal
   coin-flip steps *also* chooses the outcome (this is exactly the
   nondeterminism against which the paper's correctness conditions are
   stated: no execution may violate consistency or validity).

   Exploration is depth-bounded DFS.  Process states are closures, so we do
   not hash states; for wait-free protocols the tree is finite and the
   search is complete, and [truncated] reports whether any path hit the
   depth bound (i.e. whether the verdict is exhaustive or bounded). *)

open Sim

type 'a violation = {
  kind : [ `Inconsistent | `Invalid ];
  trace : 'a Trace.t;  (** the execution leading to the violation *)
  config : 'a Config.t;
}

type 'a result = {
  violation : 'a violation option;
  visited : int;  (** nodes expanded *)
  leaves : int;  (** maximal executions reached (all procs decided) *)
  truncated : bool;  (** some path hit the depth or state budget *)
  max_depth_seen : int;
}

(** All single-step successors of [config] for process [pid]: one successor
    for an [Apply] step, [n] successors for a [Choose] step. *)
let successors config pid =
  match config.Config.procs.(pid) with
  | Proc.Decide _ -> []
  | Proc.Apply _ -> [ Run.step config ~pid ~coin:(fun _ -> 0) ]
  | Proc.Choose { n; _ } ->
      List.init n (fun outcome -> Run.step config ~pid ~coin:(fun _ -> outcome))

(* The DFS engine, parameterized by an execution prefix ([rev_trace] and
   the [decisions] accumulated so far) so that the same code serves both
   the whole-tree search ([search], empty prefix) and the per-subtree
   tasks of the partitioned search ([search_par], prefix = the root step
   leading into the subtree).  [max_depth_seen] and depth bounds are
   relative to the given root configuration. *)
let search_from ~max_depth ~max_states ~inputs ~rev_trace ~decisions config =
  let visited = ref 0 in
  let leaves = ref 0 in
  let truncated = ref false in
  let max_depth_seen = ref 0 in
  let found : 'a violation option ref = ref None in
  let exception Stop in
  let check_events config rev_trace decisions =
    let values = List.sort_uniq compare decisions in
    let kind =
      if List.length values > 1 then Some `Inconsistent
      else if not (List.for_all (fun v -> List.mem v inputs) values) then
        Some `Invalid
      else None
    in
    match kind with
    | None -> ()
    | Some kind ->
        found := Some { kind; trace = List.rev rev_trace; config };
        raise Stop
  in
  let rec go config rev_trace decisions depth =
    incr visited;
    if depth > !max_depth_seen then max_depth_seen := depth;
    if !visited > max_states then (
      truncated := true;
      ())
    else
      match Config.enabled_pids config with
      | [] -> incr leaves
      | pids ->
          if depth >= max_depth then truncated := true
          else
            List.iter
              (fun pid ->
                let succs = successors config pid in
                List.iter
                  (fun (config', events) ->
                    let decisions' =
                      List.fold_left
                        (fun acc ev ->
                          match ev with
                          | Event.Decided { value; _ } -> value :: acc
                          | _ -> acc)
                        decisions events
                    in
                    let rev_trace' = List.rev_append events rev_trace in
                    check_events config' rev_trace' decisions';
                    go config' rev_trace' decisions' (depth + 1))
                  succs)
              pids
  in
  (try
     check_events config rev_trace decisions;
     go config rev_trace decisions 0
   with Stop -> ());
  {
    violation = !found;
    visited = !visited;
    leaves = !leaves;
    truncated = !truncated;
    max_depth_seen = !max_depth_seen;
  }

let search ?(max_depth = 60) ?(max_states = 2_000_000) ~inputs config =
  (* decisions already present in the initial configuration (processes may
     decide without taking a single step) participate in the verdicts *)
  search_from ~max_depth ~max_states ~inputs ~rev_trace:[]
    ~decisions:(Config.decisions config) config

(* Partitioned search: the root's successor configurations — one task per
   (enabled pid, successor), in the sequential traversal order — are
   explored as independent bounded DFS runs across the pool's domains,
   and their [result] records merged in task order.

   Merge semantics, field by field (root contributes the "1 +" / "+ 1"):
   - [visited]   = 1 + sum of subtree visits;
   - [leaves]    = sum of subtree leaves (the root itself is the only
                   leaf when nothing is enabled, handled before
                   partitioning);
   - [max_depth_seen] = 1 + max over subtrees (each task measures depth
                   relative to its subtree root, which sits at depth 1);
   - [truncated] = any subtree truncated, or the merged visit count
                   exceeds [max_states];
   - [violation] = the first violating subtree in task order; within a
                   subtree the DFS finds its first violation in the same
                   order as the sequential search, so the reported
                   witness is exactly [search]'s.

   The merge is a pure fold over deterministic per-task results, so the
   outcome is bit-identical for any [?pool] (including [None]).  On
   violation-free trees whose state budget is not the binding constraint,
   every field equals the sequential [search]'s (pinned by the
   determinism test suite); when a violation exists, [search] stops at
   first blood while the partitioned runs still finish their subtrees, so
   the merged statistics deterministically cover more of the tree. *)
let search_par ?pool ?(max_depth = 60) ?(max_states = 2_000_000) ~inputs config
    =
  let initial_decisions = Config.decisions config in
  let root =
    search_from ~max_depth:0 ~max_states ~inputs ~rev_trace:[]
      ~decisions:initial_decisions config
  in
  if root.violation <> None || Config.enabled_pids config = [] || max_depth = 0
  then root
  else begin
    let tasks =
      List.concat_map
        (fun pid -> successors config pid)
        (Config.enabled_pids config)
    in
    let explore_subtree (config', events) =
      let decisions' =
        List.fold_left
          (fun acc ev ->
            match ev with
            | Event.Decided { value; _ } -> value :: acc
            | _ -> acc)
          initial_decisions events
      in
      search_from ~max_depth:(max_depth - 1) ~max_states ~inputs
        ~rev_trace:(List.rev events) ~decisions:decisions' config'
    in
    let subtrees = Par.map ?pool explore_subtree tasks in
    let visited =
      List.fold_left (fun acc r -> acc + r.visited) 1 subtrees
    in
    {
      violation = List.find_map (fun r -> r.violation) subtrees;
      visited;
      leaves = List.fold_left (fun acc r -> acc + r.leaves) 0 subtrees;
      truncated =
        List.exists (fun r -> r.truncated) subtrees || visited > max_states;
      max_depth_seen =
        1 + List.fold_left (fun acc r -> max acc r.max_depth_seen) 0 subtrees;
    }
  end

(* First terminating solo decision of [pid], searching coin outcomes.
   Cheap probe used to seed [decidable_values]: a solo run that decides
   witnesses a reachable decision without touching the full tree. *)
let solo_decision ?(max_steps = 300) ?(max_nodes = 5_000) config ~pid =
  let nodes = ref 0 in
  let rec go config steps =
    incr nodes;
    if !nodes > max_nodes || steps > max_steps then None
    else
      match Config.decision config pid with
      | Some v -> Some v
      | None -> (
          match config.Config.procs.(pid) with
          | Proc.Decide _ -> assert false
          | Proc.Apply _ ->
              let config', _ = Run.step config ~pid ~coin:(fun _ -> 0) in
              go config' (steps + 1)
          | Proc.Choose { n; _ } ->
              let rec try_outcome o =
                if o >= n then None
                else
                  let config', _ = Run.step config ~pid ~coin:(fun _ -> o) in
                  match go config' (steps + 1) with
                  | Some _ as found -> found
                  | None -> try_outcome (o + 1)
              in
              try_outcome 0)
  in
  go config 0

(** All values decided in some execution reachable from [config] (within the
    exploration budget).  The second component tells whether the set is
    exhaustive ([false]) or may be an under-approximation ([true]).
    Seeded with per-process solo probes, so distinct solo decisions are
    found without exhausting the budget in one corner of the tree. *)
let decidable_values ?(max_depth = 60) ?(max_states = 2_000_000) config =
  let visited = ref 0 in
  let truncated = ref false in
  let values = ref [] in
  let add v = if not (List.mem v !values) then values := v :: !values in
  (* decisions already present count, and each enabled process's solo
     probe contributes a cheap reachable-decision witness *)
  List.iter add (Config.decisions config);
  List.iter
    (fun pid ->
      match solo_decision config ~pid with Some v -> add v | None -> ())
    (Config.enabled_pids config);
  let rec go config depth =
    incr visited;
    if !visited > max_states || depth >= max_depth then truncated := true
    else
      match Config.enabled_pids config with
      | [] -> ()
      | pids ->
          List.iter
            (fun pid ->
              List.iter
                (fun (config', events) ->
                  List.iter
                    (function
                      | Event.Decided { value; _ } -> add value | _ -> ())
                    events;
                  go config' (depth + 1))
                (successors config pid))
            pids
  in
  go config 0;
  (List.sort compare !values, !truncated)
