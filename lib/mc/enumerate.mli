(** Exhaustive impossibility for bounded protocols: every deterministic
    decision-tree protocol of bounded depth for two identical processes
    over one read-write register, checked against the consensus
    conditions.  Bounded trees always terminate, so only safety can fail —
    and for every candidate it does: [census ~depth] reports [correct = 0]. *)

type tree =
  | Decide of int
  | Write of int * tree
  | Read of tree * tree * tree  (** branch on empty / 0 / 1 *)
  | Flip of tree * tree  (** internal fair coin: tails / heads *)

val tree_size : tree -> int

(** All trees of depth at most [depth]; [coins] decides whether the
    [Flip] constructor is offered.  {!enumerate} and
    {!enumerate_randomized} are the two instantiations. *)
val enumerate_trees : coins:bool -> int -> tree list

(** All deterministic trees of depth at most [depth] (14 at depth 1, 2774
    at depth 2). *)
val enumerate : int -> tree list

(** All trees of depth at most [depth], coin flips included. *)
val enumerate_randomized : int -> tree list

val to_proc : tree -> int Sim.Proc.t

(** Every decision reachable on a solo run (coins enumerated), duplicate
    free and sorted — census filters and the synth lemma pool compare
    these lists structurally against [[0]]/[[1]], so the dedup+sort is
    part of the contract, not an accident of the underlying search. *)
val solo_decisions : tree -> int list

(** The unique decision of a deterministic tree's solo run; raises on
    randomized trees with several reachable outcomes. *)
val solo_decision : tree -> int

(** Exhaustive consensus check of (tree-for-0, tree-for-1) on one input
    vector with an explicit completeness verdict: [`Correct] only when the
    exploration was exhaustive, [`Unknown reason] when a budget or bound
    cut it short with no violation found (an under-approximation, not a
    clean bill).  [dedup] defaults to [`Symmetric], which is sound here
    unconditionally: a process's tree is a function of its input alone and
    the fingerprints are seeded by input, so fingerprint-equal slots are
    state-equal (see [Explore]). *)
val check_inputs_verdict :
  ?budget:Robust.Budget.t ->
  ?dedup:Explore.dedup ->
  tree ->
  tree ->
  int list ->
  [ `Correct | `Violating | `Unknown of Robust.Budget.reason ]

(** [check_inputs t0 t1 inputs = (check_inputs_verdict t0 t1 inputs =
    `Correct)] — the boolean view; truncation counts as not correct. *)
val check_inputs :
  ?budget:Robust.Budget.t ->
  ?dedup:Explore.dedup ->
  tree ->
  tree ->
  int list ->
  bool

type census = {
  depth : int;
  trees : int;
  valid_solo_0 : int;
  valid_solo_1 : int;
  candidate_pairs : int;
  survive_unanimous : int;
  correct : int;
  example_correct : (tree * tree) option;
}

(** Census of an explicit tree list (as produced by {!enumerate_trees});
    the [dedup] and [budget] knobs reach every [check_inputs] call (a
    truncated check conservatively counts the pair as not correct, so a
    budgeted census under-approximates the survivor counts — it can never
    manufacture a correct protocol). *)
val census_of_trees :
  ?budget:Robust.Budget.t ->
  ?dedup:Explore.dedup ->
  depth:int ->
  tree list ->
  census

val census : depth:int -> census

(** Census over coin-flipping trees too: consensus may never err on any
    execution, so bounded randomized protocols fail exactly like
    deterministic ones. *)
val census_randomized : depth:int -> census

(** {1 Generalized trees} — multiple registers, swap objects, any [n]

    The [Consensus.Dtree] protocol space the CEGIS driver ([Synth])
    searches; the machinery above lifted from one rw register and two
    processes to [r] objects of either style and arbitrary process
    counts. *)

(** Embed a legacy single-register tree. *)
val dtree_of_tree : tree -> Consensus.Dtree.t

(** All trees of depth at most [depth] over [registers] objects: [Rw]
    style offers writes and reads, [Swapping] style swaps and reads (a
    write is a swap whose response is ignored); [coins] gates [Flip].
    At [registers = 1] under [Rw] this is exactly {!enumerate} (or
    {!enumerate_randomized}) under {!dtree_of_tree}. *)
val enumerate_dtrees :
  style:Consensus.Dtree.style ->
  registers:int ->
  coins:bool ->
  int ->
  Consensus.Dtree.t list

(** The initial configuration candidate [(t0, t1)] presents for the
    given inputs — the hook lemma replay ([Sim.Run.exec_script]) and
    full verification share, fingerprint-seeded by input so
    [`Symmetric] dedup stays sound. *)
val dtree_config :
  style:Consensus.Dtree.style ->
  registers:int ->
  Consensus.Dtree.t * Consensus.Dtree.t ->
  int list ->
  int Sim.Config.t

(** {!solo_decisions} for generalized trees: every reachable solo
    decision, duplicate-free and sorted. *)
val dtree_solo_decisions :
  style:Consensus.Dtree.style ->
  registers:int ->
  Consensus.Dtree.t ->
  int list

(** Exhaustive consensus check of candidate [(t0, t1)] on one input
    vector, with the violating trace exposed so callers can extract a
    pruning lemma ([Fuzz.Schedule.of_trace]).  [`Correct] only when the
    exploration was exhaustive. *)
val dtree_check_verdict :
  ?obs:Obs.t ->
  ?pool:Par.Pool.t ->
  ?budget:Robust.Budget.t ->
  ?dedup:Explore.dedup ->
  style:Consensus.Dtree.style ->
  registers:int ->
  Consensus.Dtree.t * Consensus.Dtree.t ->
  int list ->
  [ `Correct | `Violating of int Sim.Trace.t | `Unknown of Robust.Budget.reason ]
