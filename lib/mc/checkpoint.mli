(** Checkpoint/resume for long model-checking runs.

    A checkpoint captures the DFS cursor of a budget-interrupted
    {!Explore.search} as data: the counters accumulated so far plus the
    root-to-cursor choice path (the [(pid, coin-outcome)] pairs leading to
    the first {e unvisited} node in the sequential preorder).  Because the
    DFS child order is deterministic (ascending pid, then ascending coin
    outcome — see DESIGN.md §4d), that path pins the frontier exactly:
    resuming re-descends the path without re-counting anything, skips
    every sibling subtree to the left of it, and continues as if the run
    had never stopped.  Process state is {e not} serialized — it is
    recomputed by replaying the path, the same lazy-witness trick the DFS
    already uses, which keeps checkpoints a few hundred bytes regardless
    of state-space size.

    Resume-equals-uninterrupted holds for [~dedup:`Off] (pinned by
    [test_checkpoint]); with a transposition table the verdict is still
    sound but node counts can differ, because the table's contents are
    not checkpointed.  The scenario string exists so a resume against the
    wrong protocol/inputs/depth is refused loudly instead of exploring
    garbage.

    File format, versioned and line-oriented like {!Sim.Trace_io}:
    {v
    randsync-checkpoint v2
    scenario <verbatim scenario line>
    visited <int> ... trunc <int> counter lines
    reason <reason|->
    path <count> <pid>:<outcome> <pid>:<outcome> ...
    end
    v}
    The path element count and the [end] marker are validated on read,
    so a truncated file — cut at an element boundary or inside the
    final element — is a loud parse error instead of a silently shorter
    (and wrong) resume cursor.  v1 files, which have neither, are still
    read. *)

type state = {
  visited : int;
  leaves : int;
  table_hits : int;
  max_depth_seen : int;
  trunc : int;  (** truncation points seen so far *)
  reason : Robust.Budget.reason option;  (** first truncation reason *)
  path : (int * int) list;  (** root-to-cursor choice path *)
}

val empty : state

val version : int

(** Atomic write (via {!Sim.Trace_io.save_text}): an interrupted save
    leaves the previous checkpoint intact. *)
val save : path:string -> scenario:string -> state -> unit

(** Returns [(scenario, state)].  Raises {!Sim.Trace_io.Parse_error} on a
    malformed or wrong-version file. *)
val load : path:string -> string * state

(** The codec under {!save}/{!load}, exposed for tests. *)
val to_text : scenario:string -> state -> string

val of_text : string -> string * state
