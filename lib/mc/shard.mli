(** Fingerprint-sharded, disk-backed frontier exploration — the
    out-of-core tier of the model checker (DESIGN.md §4j).

    [search ~shards] explores the same bounded adversary tree as
    [Explore.search], but as a work-stealing drain over [shards] deques
    of root-to-node choice paths, routed by the canonical state hash
    modulo [shards]; under dedup each shard owns a two-tier [Dtbl]
    transposition table whose hot tier is bounded by
    [table_mem_budget] bytes (across all shards) and spills to
    [table_dir/shard-<k>.dtbl] append-logs.

    Contract against the sequential referee (pinned by [test_shard] and
    the bench hard-fail rows):

    - {b Violation verdict and witness: always identical.}  A violating
      drain delegates to [Explore.search] and returns its entire result,
      so violating runs are bit-identical to the sequential engine's.
      (Only when the caller's deadline stops the referee first does the
      lex-least sharded candidate serve as the witness.)
    - {b Node counts and completeness: identical under [~dedup:`Off]} on
      violation-free runs whose state cap does not bind — both engines
      then count exactly the choice-tree nodes.
    - {b Under dedup, counts are schedule-dependent} and the completeness
      claim is graph-closure semantics (skips are exact, not
      conservative), so only the violation verdict is pinned — see
      DESIGN.md §4j for why this differs from the DFS tier and why it is
      sound.

    Budgets: deadline/cancel are polled per work item; a node budget is
    enforced against a global counter.  Truncated sharded runs make no
    bit-determinism promise (that contract belongs to the in-memory
    [Explore.search_par], which is untouched).  Any trip still flushes
    and closes every shard's log, so the on-disk tables a deadline
    leaves behind reopen cleanly.

    [?jobs] (default [Par.default_jobs ()]) domains own the shards
    round-robin and steal from foreign deques when starved ([`mc/shard/
    steals`]); [?obs] additionally receives the [`mc/dtbl/*`] tier
    counters and the usual [`mc/*`] result counters. *)

open Sim

val search :
  ?obs:Obs.t ->
  ?jobs:int ->
  ?budget:Robust.Budget.t ->
  ?dedup:Explore.dedup ->
  ?max_depth:int ->
  ?max_states:int ->
  ?state:Explore.state ->
  ?table_dir:string ->
  ?table_mem_budget:int ->
  shards:int ->
  inputs:'a list ->
  'a Config.t ->
  'a Explore.result
