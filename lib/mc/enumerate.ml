(* Exhaustive impossibility for bounded protocols: enumerate EVERY
   deterministic decision-tree protocol of bounded depth for two identical
   processes over ONE read-write register, and check each against the
   consensus conditions on all input vectors.

   The paper's starting point — deterministic wait-free consensus from
   registers is impossible — is usually proved by the FLP/Herlihy
   bivalence argument (see {!Valency}); here, for protocols of bounded
   size, it is established by brute force instead: none of the finitely
   many candidates works, and the checker can say so because bounded trees
   always terminate, leaving only safety to fail.

   A protocol tree: decide, write a bit and continue, or read and branch
   on (empty | 0 | 1).  A protocol assigns one tree per input value; both
   processes run the same assignment (identical processes). *)

open Sim

type tree =
  | Decide of int
  | Write of int * tree
  | Read of tree * tree * tree  (* branch on empty / 0 / 1 *)
  | Flip of tree * tree  (* internal fair coin: tails / heads *)

let rec tree_size = function
  | Decide _ -> 1
  | Write (_, t) -> 1 + tree_size t
  | Read (a, b, c) -> 1 + tree_size a + tree_size b + tree_size c
  | Flip (a, b) -> 1 + tree_size a + tree_size b

(* One generator for both tree classes: the deterministic and randomized
   enumerations differ only in whether the [Flip] constructor is offered,
   so a single recursion parameterized on [coins] replaces the two
   previously duplicated copies. *)
let rec enumerate_trees ~coins depth =
  let decides = [ Decide 0; Decide 1 ] in
  if depth = 0 then decides
  else
    let sub = enumerate_trees ~coins (depth - 1) in
    decides
    @ List.concat_map (fun t -> [ Write (0, t); Write (1, t) ]) sub
    @ List.concat_map
        (fun a ->
          List.concat_map
            (fun b -> List.map (fun c -> Read (a, b, c)) sub)
            sub)
        sub
    @ (if coins then
         List.concat_map
           (fun a -> List.map (fun b -> Flip (a, b)) sub)
           sub
       else [])

(** All deterministic trees of depth at most [depth]. *)
let enumerate depth = enumerate_trees ~coins:false depth

(** All trees of depth at most [depth], coin flips included. *)
let enumerate_randomized depth = enumerate_trees ~coins:true depth

(** Compile a tree to a process over object 0. *)
let rec to_proc tree : int Proc.t =
  match tree with
  | Decide v -> Proc.decide v
  | Write (bit, rest) ->
      Proc.bind
        (Proc.apply 0 (Objects.Register.write_int bit))
        (fun _ -> to_proc rest)
  | Read (on_empty, on_zero, on_one) ->
      Proc.bind (Proc.apply 0 Objects.Register.read) (fun v ->
          match v with
          | Value.Int 0 -> to_proc on_zero
          | Value.Int _ -> to_proc on_one
          | _ -> to_proc on_empty)
  | Flip (tails, heads) ->
      Proc.bind Proc.flip (fun h -> to_proc (if h then heads else tails))

(* every decision reachable in a solo run from the empty register (coin
   outcomes enumerated); singleton for deterministic trees.  The
   dedup+sort is part of the contract — census filters and the synth
   lemma pool compare these lists against [[ 0 ]]/[[ 1 ]] structurally,
   so a duplicated or unsorted result would miscount validity candidates
   — and is enforced here rather than inherited from whatever
   [decidable_values] happens to return. *)
let solo_decisions tree =
  let config =
    Config.make ~optypes:[ Objects.Register.optype () ] ~procs:[ to_proc tree ]
  in
  let values, truncated = Explore.decidable_values ~max_depth:50 config in
  assert (not truncated);
  List.sort_uniq compare values

(* the unique solo decision of a deterministic tree *)
let solo_decision tree =
  match solo_decisions tree with
  | [ v ] -> v
  | vs ->
      (* randomized tree with several outcomes: no single decision *)
      invalid_arg
        (Printf.sprintf "solo_decision: %d reachable outcomes" (List.length vs))

(* Exhaustive consensus check of the two-process protocol (t0 for input 0,
   t1 for input 1) on one input vector.

   [`Symmetric] dedup is sound here unconditionally: each process's tree
   is a function of its input alone, so seeding the fingerprints by input
   makes fingerprint-equal slots state-equal across slots — same-input
   processes run the same tree and are genuinely interchangeable. *)
let check_inputs_verdict ?budget ?(dedup = `Symmetric) t0 t1 inputs =
  let tree_of input = if input = 0 then t0 else t1 in
  let config =
    Config.make_seeded ~fp_seeds:inputs
      ~optypes:[ Objects.Register.optype () ]
      ~procs:(List.map (fun i -> to_proc (tree_of i)) inputs)
  in
  let result = Explore.search ?budget ~dedup ~max_depth:30 ~inputs config in
  if result.violation <> None then `Violating
  else
    match result.completeness with
    | `Exhaustive -> `Correct
    | `Truncated reason -> `Unknown reason

let check_inputs ?budget ?dedup t0 t1 inputs =
  check_inputs_verdict ?budget ?dedup t0 t1 inputs = `Correct

type census = {
  depth : int;
  trees : int;
  valid_solo_0 : int;  (** trees deciding 0 when run alone *)
  valid_solo_1 : int;
  candidate_pairs : int;  (** pairs passing the solo-validity filter *)
  survive_unanimous : int;  (** also correct on (0,0) and (1,1) *)
  correct : int;  (** also consistent on (0,1) — expected: none *)
  example_correct : (tree * tree) option;
}

(** The full census at the given depth.  [correct = 0] is the impossibility
    statement for this bounded protocol class.

    Factorized for tractability: the unanimous-input checks (0,0) and
    (1,1) each involve only one of the two trees, so they filter the tree
    lists independently before the quadratic mixed-input sweep; with
    identical processes, inputs (0,1) and (1,0) are pid-symmetric, so one
    mixed check per pair suffices. *)
let census_of_trees ?budget ?dedup ~depth trees =
  (* validity on a solo run: EVERY reachable outcome must be the input
     (for deterministic trees this is the unique decision) *)
  let v0 = List.filter (fun t -> solo_decisions t = [ 0 ]) trees in
  let v1 = List.filter (fun t -> solo_decisions t = [ 1 ]) trees in
  let u0 = List.filter (fun t -> check_inputs ?budget ?dedup t t [ 0; 0 ]) v0 in
  let u1 = List.filter (fun t -> check_inputs ?budget ?dedup t t [ 1; 1 ]) v1 in
  let correct = ref 0 in
  let example = ref None in
  List.iter
    (fun t0 ->
      List.iter
        (fun t1 ->
          if check_inputs ?budget ?dedup t0 t1 [ 0; 1 ] then begin
            incr correct;
            if !example = None then example := Some (t0, t1)
          end)
        u1)
    u0;
  {
    depth;
    trees = List.length trees;
    valid_solo_0 = List.length v0;
    valid_solo_1 = List.length v1;
    candidate_pairs = List.length v0 * List.length v1;
    survive_unanimous = List.length u0 * List.length u1;
    correct = !correct;
    example_correct = !example;
  }

(** Census of all deterministic trees of depth <= [depth]. *)
let census ~depth = census_of_trees ~depth (enumerate depth)

(** Census including coin-flipping trees: consensus may never err on any
    execution (no Monte Carlo), so the adversary also resolves the coins —
    bounded randomized protocols fail exactly like deterministic ones,
    which is why real randomized consensus has unbounded runs. *)
let census_randomized ~depth =
  census_of_trees ~depth (enumerate_randomized depth)

(* ---- generalized trees: multiple registers, swap objects, any n ----

   The [Consensus.Dtree] protocol space the CEGIS driver searches.  The
   legacy single-register [tree] type above stays as the pinned
   impossibility artifact; [dtree_of_tree] embeds it, and the functions
   below are the same solo/verdict machinery lifted to r registers,
   either object style and arbitrary process counts. *)

module D = Consensus.Dtree

let dtree_of_tree tree =
  let rec go = function
    | Decide v -> D.Decide v
    | Write (bit, k) -> D.Write { reg = 0; bit; k = go k }
    | Read (empty, zero, one) ->
        D.Read { reg = 0; empty = go empty; zero = go zero; one = go one }
    | Flip (a, b) -> D.Flip (go a, go b)
  in
  go tree

(* One generator, parameterized on the object style: [Rw] trees write
   and read, [Swapping] trees swap and read (a write is a swap whose
   response is ignored, so offering both would only duplicate the
   space); [coins] gates [Flip] exactly as in [enumerate_trees].  At
   [registers = 1], style [Rw] enumerates the image of {!enumerate}
   under {!dtree_of_tree} — 14 trees at depth 1, 2774 at depth 2. *)
let enumerate_dtrees ~style ~registers ~coins depth =
  if registers < 1 then invalid_arg "enumerate_dtrees: registers must be >= 1";
  let decides = [ D.Decide 0; D.Decide 1 ] in
  let regs = List.init registers Fun.id in
  let rec go depth =
    if depth = 0 then decides
    else
      let sub = go (depth - 1) in
      let branches3 mk =
        List.concat_map
          (fun empty ->
            List.concat_map
              (fun zero -> List.map (fun one -> mk empty zero one) sub)
              sub)
          sub
      in
      decides
      @ List.concat_map
          (fun reg ->
            (match style with
            | D.Rw ->
                List.concat_map
                  (fun k -> [ D.Write { reg; bit = 0; k }; D.Write { reg; bit = 1; k } ])
                  sub
            | D.Swapping ->
                List.concat_map
                  (fun bit ->
                    branches3 (fun empty zero one ->
                        D.Swap { reg; bit; empty; zero; one }))
                  [ 0; 1 ])
            @ branches3 (fun empty zero one -> D.Read { reg; empty; zero; one }))
          regs
      @ (if coins then
           List.concat_map (fun a -> List.map (fun b -> D.Flip (a, b)) sub) sub
         else [])
  in
  go depth

(* The lemma replay hook: the initial configuration a (t0, t1) candidate
   presents to [Run.exec_script] for the given inputs — fingerprints
   seeded by input so [`Symmetric] dedup stays sound (same argument as
   [check_inputs_verdict]). *)
let dtree_config ~style ~registers (t0, t1) inputs =
  let tree_of input = if input = 0 then t0 else t1 in
  Config.make_seeded ~fp_seeds:inputs
    ~optypes:(D.optypes ~style ~registers)
    ~procs:(List.map (fun i -> D.to_proc (tree_of i)) inputs)

let dtree_solo_decisions ~style ~registers tree =
  let config =
    Config.make ~optypes:(D.optypes ~style ~registers)
      ~procs:[ D.to_proc tree ]
  in
  let values, truncated = Explore.decidable_values ~max_depth:50 config in
  assert (not truncated);
  List.sort_uniq compare values

(* Depth bound for a full search: every execution of a bounded-tree
   candidate takes at most (depth + 1) steps per process; 50 clears any
   tree/process-count this repo enumerates without ever truncating. *)
let dtree_max_depth = 50

let dtree_check_verdict ?obs ?pool ?budget ?(dedup = `Symmetric) ~style
    ~registers (t0, t1) inputs =
  let config = dtree_config ~style ~registers (t0, t1) inputs in
  let result =
    match pool with
    | None ->
        Explore.search ?obs ?budget ~dedup ~max_depth:dtree_max_depth ~inputs
          config
    | Some pool ->
        Explore.search_par ?obs ~pool ?budget ~dedup
          ~max_depth:dtree_max_depth ~inputs config
  in
  match result.violation with
  | Some v -> `Violating v.trace
  | None -> (
      match result.completeness with
      | `Exhaustive -> `Correct
      | `Truncated reason -> `Unknown reason)
