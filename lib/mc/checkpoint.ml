open Sim

type state = {
  visited : int;
  leaves : int;
  table_hits : int;
  max_depth_seen : int;
  trunc : int;
  reason : Robust.Budget.reason option;
  path : (int * int) list;
}

let empty =
  {
    visited = 0;
    leaves = 0;
    table_hits = 0;
    max_depth_seen = 0;
    trunc = 0;
    reason = None;
    path = [];
  }

let version = 2

let parse_error fmt =
  Printf.ksprintf (fun s -> raise (Trace_io.Parse_error s)) fmt

let to_text ~scenario state =
  (match String.index_opt scenario '\n' with
  | Some _ -> invalid_arg "Checkpoint.to_text: scenario contains a newline"
  | None -> ());
  String.concat "\n"
    [
      Printf.sprintf "randsync-checkpoint v%d" version;
      "scenario " ^ scenario;
      Printf.sprintf "visited %d" state.visited;
      Printf.sprintf "leaves %d" state.leaves;
      Printf.sprintf "table_hits %d" state.table_hits;
      Printf.sprintf "max_depth_seen %d" state.max_depth_seen;
      Printf.sprintf "trunc %d" state.trunc;
      (match state.reason with
      | None -> "reason -"
      | Some r -> "reason " ^ Robust.Budget.reason_to_string r);
      (* the element count makes a path truncated at an element boundary
         a loud error instead of a silently shorter (wrong) cursor; the
         end marker catches a cut inside the final element ("1:1" out of
         "1:12"), which keeps both count and elements plausible *)
      String.concat " "
        (Printf.sprintf "path %d" (List.length state.path)
        :: List.map (fun (pid, o) -> Printf.sprintf "%d:%d" pid o) state.path);
      "end";
      "";
    ]

let of_text text =
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  in
  let field name line =
    let prefix = name ^ " " in
    let plen = String.length prefix in
    if String.length line >= plen && String.sub line 0 plen = prefix then
      String.sub line plen (String.length line - plen)
    else if line = name then ""
    else parse_error "expected %S line, got %S" name line
  in
  let int_field name line =
    match int_of_string_opt (field name line) with
    | Some i -> i
    | None -> parse_error "bad integer in %S line %S" name line
  in
  match lines with
  | header :: rest ->
      let ver =
        match field "randsync-checkpoint" header with
        | "v2" -> `V2
        | "v1" -> `V1  (* legacy: no path element count, no end marker *)
        | v -> parse_error "unsupported checkpoint version %S" v
      in
      let scenario, visited, leaves, table_hits, max_depth_seen, trunc, reason,
          path =
        match (ver, rest) with
        | ( `V1,
            [ scenario; visited; leaves; table_hits; max_depth_seen; trunc;
              reason; path ] )
        | ( `V2,
            [ scenario; visited; leaves; table_hits; max_depth_seen; trunc;
              reason; path; "end" ] ) ->
            (scenario, visited, leaves, table_hits, max_depth_seen, trunc,
             reason, path)
        | `V2, [ _; _; _; _; _; _; _; _; e ] ->
            parse_error "bad checkpoint end marker %S (truncated file?)" e
        | _ ->
            parse_error "checkpoint file has %d lines" (List.length lines)
      in
      let reason =
        match field "reason" reason with
        | "-" -> None
        | s -> (
            match Robust.Budget.reason_of_string s with
            | Some r -> Some r
            | None -> parse_error "unknown truncation reason %S" s)
      in
      let path =
        let toks =
          field "path" path |> String.split_on_char ' '
          |> List.filter (fun s -> s <> "")
        in
        let elems toks =
          List.map
            (fun s ->
              match String.split_on_char ':' s with
              | [ pid; o ] -> (
                  match (int_of_string_opt pid, int_of_string_opt o) with
                  | Some pid, Some o -> (pid, o)
                  | _ -> parse_error "bad path element %S" s)
              | _ -> parse_error "bad path element %S" s)
            toks
        in
        match ver with
        | `V1 -> elems toks
        | `V2 -> (
            match toks with
            | [] -> parse_error "path line missing its element count"
            | count :: rest ->
                let declared =
                  match int_of_string_opt count with
                  | Some n -> n
                  | None -> parse_error "bad path element count %S" count
                in
                let rest = elems rest in
                let got = List.length rest in
                if got <> declared then
                  parse_error
                    "path declares %d elements but carries %d (truncated \
                     file?)"
                    declared got
                else rest)
      in
      ( field "scenario" scenario,
        {
          visited = int_field "visited" visited;
          leaves = int_field "leaves" leaves;
          table_hits = int_field "table_hits" table_hits;
          max_depth_seen = int_field "max_depth_seen" max_depth_seen;
          trunc = int_field "trunc" trunc;
          reason;
          path;
        } )
  | [] -> parse_error "empty checkpoint file"

let save ~path ~scenario state =
  Trace_io.save_text ~path (to_text ~scenario state)

let load ~path = of_text (Trace_io.load_text ~path)
