(* Fingerprint-sharded, disk-backed frontier exploration (DESIGN.md §4j).

   [Explore.search_par] partitions only at the root: each subtree task is
   a private sequential DFS, which preserves bit-determinism but cannot
   share dedup work across domains and keeps every transposition table in
   RAM.  This engine trades the determinism of that tier for scale:

   - the frontier is a set of work items (root-to-node choice paths, the
     same currency as the checkpoint codec), routed to [shards] deques by
     the canonical state hash modulo [shards];
   - [jobs] domains own the shards round-robin and steal from foreign
     deques when their own run dry, so one hot shard cannot idle the
     fleet;
   - under [`Exact]/[`Symmetric] dedup each shard owns a two-tier
     transposition table ([Dtbl]): a bounded in-memory hot cache spilling
     to an append-log on disk, sized by [table_mem_budget] bytes over all
     shards, so the table can exceed RAM.

   Routing and dedup use the canonical key ([Dtbl.Skey]: per-process
   fingerprints + object values), NOT the engines' slab hashes —
   [Flat.hexact]/[hsym] number states relative to a per-domain intern
   table, so only the fingerprint form means the same thing on every
   domain (and on disk).  Fingerprint collisions are accepted at the same
   trust level as the in-memory [`Exact] dedup.

   Soundness contract (why verdict-equality, not trace-equality): a
   dequeued state is skipped when its shard's table holds an entry at
   least as deep as the state's remaining depth.  Any execution the
   skipped occurrence could reach within its horizon is reachable from
   the recorded (shallower-or-equal) occurrence within its larger
   horizon, and the violations checked here are state properties
   (decided values are part of the state and never retract), so a skip
   never hides a violation.  What skips do change is everything
   schedule-shaped: visit order, node counts under dedup, and the
   completeness claim — a breadth-style drain that closes the reachable
   graph without ever hitting a bound has genuinely proved exhaustiveness
   even where the sequential DFS, which re-dives through cycles until the
   depth horizon, reports a truncation.  The pinned contract against the
   sequential referee is therefore: identical violation verdict and
   witness always; identical node counts and completeness under
   [~dedup:`Off] on violation-free runs with non-binding state caps
   (where both engines count exactly the choice-tree nodes).

   Violations: any worker that steps into a violating child records the
   candidate path and stops the drain.  The canonical witness is then
   delegated to the sequential [Explore.search] referee — its first
   violation in DFS preorder is the lex-least choice path, a
   schedule-independent canonical form — and its entire result is
   returned, making violating runs bit-identical to the sequential
   engine's by construction.  Only when the referee cannot re-find a
   violation inside the caller's budget does the lex-least sharded
   candidate serve as the witness (strictly more information than the
   referee's truncated "none seen").

   Budgets: deadlines/cancellation are polled per item on per-worker
   meters; a node budget is enforced against one global counter.  Both
   stop the drain at a schedule-dependent frontier — the sharded tier
   makes no bit-determinism promise for truncated runs (that is
   [Explore.search_par]'s contract, which stays intact).  A trip mid-run
   flushes and closes every shard's disk table ([Dtbl] appends whole
   records and syncs on spill), so the logs a deadline leaves behind
   reopen cleanly. *)

open Sim

type 'a item = {
  path : (int * int) array;  (* root-to-node (pid, outcome) choices *)
  hash : int;  (* canonical key hash; routing = [hash mod shards] *)
  distinct : 'a list;  (* decided values seen along [path] *)
}

type 'a shard_q = {
  q : 'a item Par.Wsq.t;
  tbl_lock : Mutex.t;
  tbl : Dtbl.t option;
}

(* Per-worker tallies, merged on the caller after the join. *)
type wstats = {
  mutable visited : int;
  mutable leaves : int;
  mutable table_hits : int;
  mutable table_misses : int;
  mutable max_depth_seen : int;
  mutable trunc_reason : Robust.Budget.reason option;
  mutable steals : int;
}

(* One engine-specific view of "the state a work item denotes": load it
   into scratch, then inspect/expand.  [iter_succ] enumerates successors
   in the sequential order (pid ascending, outcome ascending), handing
   each child's just-decided value and canonical hash to the callback;
   the scratch state is restored between children. *)
type 'a eng = {
  load : (int * int) array -> unit;
  enabled : unit -> int;
  skey : unit -> Dtbl.Skey.t;
  iter_succ : (pid:int -> outcome:int -> decided:'a option -> hash:int -> unit) -> unit;
}

let key_of ~symmetric ~fps ~objs =
  let fps =
    if symmetric then begin
      let a = Array.copy fps in
      Array.sort compare a;
      a
    end
    else fps
  in
  Dtbl.Skey.make ~fps ~objs

let flat_eng ~symmetric config =
  let root =
    Flat.of_config ~hashed:false
      ~roots:(if symmetric then Flat.By_fp else Flat.Per_slot)
      config
  in
  let work = Flat.clone root in
  let rt = Flat.rt work in
  let n_procs = Flat.n_procs work in
  let step pid outcome =
    let sid0 = Flat.sid work pid in
    let code = Intern.code rt sid0 in
    let tag = code land 3 in
    let sid' =
      if tag = Intern.tag_apply then begin
        let obj = code lsr 2 in
        let packed = Intern.apply_packed rt ~sid:sid0 ~vid:(Flat.obj_vid work obj) in
        Flat.write_obj work obj (Intern.vid_of packed);
        Intern.sid_of packed
      end
      else if tag = Intern.tag_choose then Intern.choose rt ~sid:sid0 ~outcome
      else assert false (* paths never step decided states *)
    in
    Flat.write_sid work pid sid';
    if Intern.is_decided rt sid' then Flat.note_decided work pid;
    sid'
  in
  let skey () =
    let fps = Flat.fingerprints work in
    if symmetric then Array.sort compare fps;
    Dtbl.Skey.make ~fps ~objs:(Flat.objects work)
  in
  {
    load =
      (fun path ->
        Flat.blit ~src:root ~dst:work;
        Array.iter (fun (pid, outcome) -> ignore (step pid outcome)) path);
    enabled = (fun () -> Flat.enabled_count work);
    skey;
    iter_succ =
      (fun f ->
        for pid = 0 to n_procs - 1 do
          if not (Flat.is_halted work pid) then begin
            let sid0 = Flat.sid work pid in
            let code = Intern.code rt sid0 in
            let tag = code land 3 in
            let visit outcome =
              (* step in place, report, undo — same discipline as the
                 flat DFS, minus the recursion *)
              let obj_saved =
                if tag = Intern.tag_apply then
                  Some (code lsr 2, Flat.obj_vid work (code lsr 2))
                else None
              in
              let sid' = step pid outcome in
              let decided =
                if Intern.is_decided rt sid' then Intern.decision rt sid'
                else None
              in
              let hash = (skey ()).Dtbl.Skey.hash in
              let undo () =
                if Intern.is_decided rt sid' then Flat.note_undecided work pid;
                Flat.write_sid work pid sid0;
                match obj_saved with
                | Some (obj, vid0) -> Flat.write_obj work obj vid0
                | None -> ()
              in
              Fun.protect ~finally:undo (fun () ->
                  f ~pid ~outcome ~decided ~hash)
            in
            if tag = Intern.tag_apply then visit 0
            else if tag = Intern.tag_choose then
              for outcome = 0 to (code lsr 2) - 1 do
                visit outcome
              done
          end
        done);
  }

let closure_eng ~symmetric config =
  let cur = ref config in
  let skey_of (c : 'a Config.t) =
    key_of ~symmetric ~fps:c.Config.fps ~objs:c.Config.objects
  in
  {
    load =
      (fun path ->
        cur :=
          Array.fold_left
            (fun c (pid, outcome) ->
              Run.step_quiet c ~pid ~coin:(fun _ -> outcome))
            config path);
    enabled =
      (fun () ->
        let n = ref 0 in
        Config.iter_enabled !cur (fun _ -> incr n);
        !n);
    skey = (fun () -> skey_of !cur);
    iter_succ =
      (fun f ->
        let c = !cur in
        Config.iter_enabled c (fun pid ->
            let visit outcome =
              let c' = Run.step_quiet c ~pid ~coin:(fun _ -> outcome) in
              let decided =
                if Config.is_decided c' pid then Config.decision c' pid
                else None
              in
              f ~pid ~outcome ~decided ~hash:(skey_of c').Dtbl.Skey.hash
            in
            match c.Config.procs.(pid) with
            | Proc.Decide _ -> assert false (* not enabled *)
            | Proc.Apply _ -> visit 0
            | Proc.Choose { n; _ } ->
                for outcome = 0 to n - 1 do
                  visit outcome
                done));
  }

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Bytes-per-entry estimate for translating [table_mem_budget] into a
   per-shard hot-cache entry count: key record + fingerprint array +
   object pointers + hashtbl bucket, in 8-byte words.  An estimate is all
   the budget needs to be — the contract is "spills happen near the
   budget", not an allocator-exact accounting. *)
let entry_bytes ~width = 128 + (16 * width)

let rebuild_violation root kind path =
  let rec replay config rev_events = function
    | [] -> (config, List.rev rev_events)
    | (pid, outcome) :: rest ->
        let config', events = Run.step config ~pid ~coin:(fun _ -> outcome) in
        replay config' (List.rev_append events rev_events) rest
  in
  let config, trace = replay root [] (Array.to_list path) in
  { Explore.kind; trace; config }

let lex_min_path a b =
  let la = Array.length a and lb = Array.length b in
  let rec cmp i =
    if i >= la || i >= lb then compare la lb
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else cmp (i + 1)
  in
  if cmp 0 <= 0 then a else b

let search ?obs ?jobs ?budget ?(dedup = `Off) ?(max_depth = 60)
    ?(max_states = 2_000_000) ?(state = `Flat) ?table_dir ?table_mem_budget
    ~shards ~inputs config =
  if shards < 1 then invalid_arg "Shard.search: shards must be >= 1";
  Obs.span obs "mc/search" @@ fun () ->
  let jobs = max 1 (match jobs with Some j -> j | None -> Par.default_jobs ()) in
  let symmetric = dedup = `Symmetric in
  let referee_budget =
    (* the referee re-finds the witness under the caller's wall-clock
       governance but not its node allowance: the sharded drain already
       spent that, and the referee's job is canonicalization *)
    Option.map
      (fun b -> { b with Robust.Budget.nodes = None; steps = None })
      budget
  in
  let referee () =
    Explore.search ?budget:referee_budget ~dedup ~max_depth ~max_states ~state
      ~inputs config
  in
  (* Root decision prefix: processes may be decided before any step.  A
     violating prefix short-circuits to the referee, which reports it
     with the canonical empty-trace witness. *)
  let root_values = List.sort_uniq compare (Config.decisions config) in
  let root_violates =
    List.length root_values > 1
    || not (List.for_all (fun v -> List.mem v inputs) root_values)
  in
  if root_violates then Explore.record_result obs (referee ())
  else begin
    (match table_dir with Some d -> mkdir_p d | None -> ());
    let width = Config.n_objects config + Config.n_procs config in
    let mem_entries =
      match table_mem_budget with
      | None -> None
      | Some bytes -> Some (max 16 (bytes / shards / entry_bytes ~width))
    in
    let mk_tbl k =
      match dedup with
      | `Off -> None (* nothing to deduplicate; table flags are inert *)
      | `Exact | `Symmetric ->
          let path =
            Option.map
              (fun d -> Filename.concat d (Printf.sprintf "shard-%d.dtbl" k))
              table_dir
          in
          Some (Dtbl.create ?path ?mem_entries ())
    in
    let queues =
      Array.init shards (fun k ->
          { q = Par.Wsq.create (); tbl_lock = Mutex.create (); tbl = mk_tbl k })
    in
    let pending = Atomic.make 0 in
    let position = Atomic.make 0 in
    let trip : Robust.Budget.reason option Atomic.t = Atomic.make None in
    let violated = Atomic.make false in
    let werror : exn option Atomic.t = Atomic.make None in
    let candidates_lock = Mutex.create () in
    let candidates : ([ `Inconsistent | `Invalid ] * (int * int) array) list ref
        =
      ref []
    in
    let set_trip r = ignore (Atomic.compare_and_set trip None (Some r)) in
    let record_candidate kind path =
      Mutex.lock candidates_lock;
      candidates := (kind, path) :: !candidates;
      Mutex.unlock candidates_lock;
      Atomic.set violated true
    in
    let should_stop () =
      Atomic.get trip <> None
      || Atomic.get violated
      || Atomic.get werror <> None
    in
    let enqueue it =
      Atomic.incr pending;
      Par.Wsq.push queues.((it.hash land max_int) mod shards).q it
    in
    let worker_budget =
      match budget with
      | None -> None
      | Some b ->
          if b.Robust.Budget.deadline = None && b.Robust.Budget.cancel = None
             && b.Robust.Budget.on_poll = None
          then None
          else Some { b with Robust.Budget.nodes = None; steps = None }
    in
    let node_allowance =
      match budget with Some { Robust.Budget.nodes; _ } -> nodes | None -> None
    in
    let worker w =
      let st =
        {
          visited = 0;
          leaves = 0;
          table_hits = 0;
          table_misses = 0;
          max_depth_seen = 0;
          trunc_reason = None;
          steals = 0;
        }
      in
      let meter = Option.map Robust.Budget.Meter.create worker_budget in
      let eng =
        match state with
        | `Flat -> flat_eng ~symmetric config
        | `Closure -> closure_eng ~symmetric config
      in
      let truncate r = if st.trunc_reason = None then st.trunc_reason <- Some r in
      let exception Stop_expand in
      let process it =
        (match meter with
        | None -> ()
        | Some m -> (
            match Robust.Budget.Meter.tick_node m with
            | None -> ()
            | Some r -> set_trip r));
        if not (should_stop ()) then begin
          let pos = 1 + Atomic.fetch_and_add position 1 in
          match node_allowance with
          | Some k when pos > k -> set_trip `Nodes
          | _ ->
              eng.load it.path;
              let depth = Array.length it.path in
              st.visited <- st.visited + 1;
              if depth > st.max_depth_seen then st.max_depth_seen <- depth;
              if pos > max_states then truncate `States
              else if eng.enabled () = 0 then st.leaves <- st.leaves + 1
              else if depth >= max_depth then truncate `Depth
              else begin
                let expand_from =
                  match queues.(0).tbl with
                  | None -> Some it.distinct
                  | Some _ ->
                      let key = eng.skey () in
                      let rd = max_depth - depth in
                      let home =
                        queues.((key.Dtbl.Skey.hash land max_int) mod shards)
                      in
                      let tbl = Option.get home.tbl in
                      Mutex.lock home.tbl_lock;
                      let decision =
                        match Dtbl.find tbl key with
                        | Some m when (m lsr 1) - 1 >= rd ->
                            (* covered: the recorded occurrence explores
                               at least this far (see the module
                               comment's skip-soundness argument) *)
                            st.table_hits <- st.table_hits + 1;
                            None
                        | prior ->
                            st.table_misses <- st.table_misses + 1;
                            let meta = (rd + 1) lsl 1 in
                            let meta =
                              match prior with
                              | Some m -> Dtbl.merge_meta m meta
                              | None -> meta
                            in
                            Dtbl.set tbl key meta;
                            Some it.distinct
                      in
                      Mutex.unlock home.tbl_lock;
                      decision
                in
                match expand_from with
                | None -> ()
                | Some distinct -> (
                    try
                      eng.iter_succ (fun ~pid ~outcome ~decided ~hash ->
                          let child_path () =
                            let p = Array.make (depth + 1) (0, 0) in
                            Array.blit it.path 0 p 0 depth;
                            p.(depth) <- (pid, outcome);
                            p
                          in
                          let distinct' =
                            match decided with
                            | None -> distinct
                            | Some v ->
                                if List.mem v distinct then distinct
                                else if distinct <> [] then begin
                                  record_candidate `Inconsistent (child_path ());
                                  raise Stop_expand
                                end
                                else if not (List.mem v inputs) then begin
                                  record_candidate `Invalid (child_path ());
                                  raise Stop_expand
                                end
                                else v :: distinct
                          in
                          enqueue
                            { path = child_path (); hash; distinct = distinct' })
                    with Stop_expand -> ())
              end
        end
      in
      let take_own () =
        let rec go k =
          if k >= shards then None
          else if k mod jobs = w then
            match Par.Wsq.pop queues.(k).q with
            | Some it -> Some it
            | None -> go (k + 1)
          else go (k + 1)
        in
        go w
      in
      let steal () =
        let rec go k =
          if k >= shards then None
          else if k mod jobs <> w then
            match Par.Wsq.steal queues.(k).q with
            | Some it -> Some it
            | None -> go (k + 1)
          else go (k + 1)
        in
        match go 0 with
        | Some it ->
            st.steals <- st.steals + 1;
            Some it
        | None -> None
      in
      let run_item it =
        Fun.protect ~finally:(fun () -> Atomic.decr pending) (fun () ->
            try process it
            with e -> ignore (Atomic.compare_and_set werror None (Some e)))
      in
      let rec loop () =
        if not (should_stop ()) then
          match take_own () with
          | Some it ->
              run_item it;
              loop ()
          | None -> (
              match steal () with
              | Some it ->
                  run_item it;
                  loop ()
              | None ->
                  if Atomic.get pending > 0 then begin
                    Domain.cpu_relax ();
                    loop ()
                  end)
      in
      loop ();
      st
    in
    let root_key =
      key_of ~symmetric ~fps:config.Config.fps ~objs:config.Config.objects
    in
    enqueue { path = [||]; hash = root_key.Dtbl.Skey.hash; distinct = root_values };
    let others =
      Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    let st0 = worker 0 in
    let stats = Array.append [| st0 |] (Array.map Domain.join others) in
    (* the drain is over (or abandoned): flush and close every disk tier
       so even a deadline trip leaves recoverable logs behind *)
    Array.iter
      (fun s ->
        match s.tbl with
        | None -> ()
        | Some t ->
            Mutex.lock s.tbl_lock;
            Dtbl.close t;
            Mutex.unlock s.tbl_lock)
      queues;
    (match Atomic.get werror with Some e -> raise e | None -> ());
    let dstats =
      Array.to_list queues
      |> List.filter_map (fun s -> Option.map Dtbl.stats s.tbl)
    in
    let sum f = List.fold_left (fun acc d -> acc + f d) 0 dstats in
    Obs.add obs "mc/shard/steals"
      (Array.fold_left (fun acc s -> acc + s.steals) 0 stats);
    if dstats <> [] then begin
      Obs.add obs "mc/dtbl/hits" (sum (fun d -> d.Dtbl.hits));
      Obs.add obs "mc/dtbl/misses" (sum (fun d -> d.Dtbl.misses));
      Obs.add obs "mc/dtbl/spills" (sum (fun d -> d.Dtbl.spills));
      Obs.add obs "mc/dtbl/compactions" (sum (fun d -> d.Dtbl.compactions));
      Obs.add obs "mc/dtbl/disk-records" (sum (fun d -> d.Dtbl.disk_records))
    end;
    let merged_completeness =
      match Atomic.get trip with
      | Some r -> `Truncated r
      | None ->
          Array.fold_left
            (fun acc s ->
              Robust.Budget.merge acc
                (match s.trunc_reason with
                | Some r -> `Truncated r
                | None -> `Exhaustive))
            `Exhaustive stats
    in
    let merged =
      {
        Explore.violation = None;
        visited = Array.fold_left (fun a s -> a + s.visited) 0 stats;
        leaves = Array.fold_left (fun a s -> a + s.leaves) 0 stats;
        truncated = merged_completeness <> `Exhaustive;
        completeness = merged_completeness;
        max_depth_seen =
          Array.fold_left (fun a s -> max a s.max_depth_seen) 0 stats;
        table_hits = Array.fold_left (fun a s -> a + s.table_hits) 0 stats;
        table_misses = Array.fold_left (fun a s -> a + s.table_misses) 0 stats;
      }
    in
    let result =
      if not (Atomic.get violated) then merged
      else
        let r = referee () in
        match r.Explore.violation with
        | Some _ -> r
        | None ->
            (* the referee's (deadline-bounded) sweep missed it; fall
               back to the lex-least sharded candidate — a genuine
               violating execution beats a truncated "none seen" *)
            let kind, path =
              match !candidates with
              | [] -> assert false
              | (k0, p0) :: rest ->
                  List.fold_left
                    (fun (k, p) (k', p') ->
                      let m = lex_min_path p p' in
                      if m == p then (k, p) else (k', p'))
                    (k0, p0) rest
            in
            {
              merged with
              Explore.violation = Some (rebuild_violation config kind path);
            }
    in
    Explore.record_result obs result
  end
