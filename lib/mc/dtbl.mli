(** Two-tier (memory + append-log) transposition table for the sharded
    frontier engine ([Shard]): a bounded in-memory hot cache over a
    versioned on-disk record log, so dedup state can exceed RAM.

    Semantics: the table maps canonical state keys ({!Skey}) to packed
    meta words (same packing as the in-memory arena table —
    [((remaining_depth + 1) lsl 1) lor complete]), and {!find} is exactly
    the {!merge_meta}-fold of every {!set} for that key, across spills,
    eviction, compaction, close and reopen.  Losing depth would only be
    conservative for the search (less pruning, same verdict), but the
    no-loss form is what the property suite pins.

    Durability: the v1 format is line-oriented ([randsync-dtbl v1] header,
    one sentinel-terminated record per line, hash-checked on decode) and
    is rewritten atomically (tmp+rename) at creation and compaction;
    appends between are sequential, so a crash tears at most a suffix.
    Reopening recovers the valid prefix, loudly dropping a torn tail
    (reported on stderr and in {!stats}); a damaged interior line raises
    [Sim.Trace_io.Parse_error] instead — that is corruption, not a crash.

    Instances are single-threaded; [Shard] serializes access per shard. *)

(** Canonical, engine-independent state key: per-process consumed-history
    fingerprints (caller-sorted under symmetric dedup) plus decoded
    object values.  Unlike [Flat.hexact]/[hsym] this does not depend on
    any intern table's numbering, so keys written by one domain or one
    run mean the same thing to every other — see DESIGN.md §4j. *)
module Skey : sig
  type t = private {
    hash : int;  (** mixed exactly as [Explore]'s closure-engine key *)
    fps : int array;
    objs : Sim.Value.t array;
  }

  val make : fps:int array -> objs:Sim.Value.t array -> t
  val equal : t -> t -> bool
end

type t

type stats = {
  hits : int;  (** {!find} calls answered (either tier) *)
  misses : int;  (** {!find} calls answered [None] *)
  spills : int;  (** hot-tier flushes to the log *)
  compactions : int;
  disk_records : int;  (** records currently in the log (pre-merge) *)
  mem_entries : int;
  recovered : int;  (** records recovered from an existing log at open *)
  lost_tail : bool;  (** open dropped a torn tail (crash recovery) *)
}

(** [create ?path ?mem_entries ()]: without [path] the table is purely
    in-memory and unbounded ([mem_entries] is ignored — a cap with no
    spill target could only drop entries).  With [path], the hot tier
    holds at most [mem_entries] keys (default unbounded) and spills
    wholesale to the log when it overflows; an existing log at [path] is
    recovered (see the module comment). *)
val create : ?path:string -> ?mem_entries:int -> unit -> t

val find : t -> Skey.t -> int option
val set : t -> Skey.t -> int -> unit

(** Max of the depth halves, or of the complete bits. *)
val merge_meta : int -> int -> int

(** Merge duplicate log records and atomically rewrite the log; also
    triggered automatically when the log outgrows the live key estimate. *)
val compact : t -> unit

val flush : t -> unit

(** Spill the hot tier and close the log (idempotent).  A reopened table
    at the same path answers everything this one knew. *)
val close : t -> unit

val stats : t -> stats

(** {1 v1 record codec} — exposed for the torture suite. *)

val header : string
val record_to_line : Skey.t -> int -> string

(** Raises [Sim.Trace_io.Parse_error] unless the line is a byte-exact v1
    record (sentinel present, hash check passes). *)
val record_of_line : string -> Skey.t * int
