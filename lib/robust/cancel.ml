(* A cancellation token is just an atomic bool; the type is abstract so a
   token cannot be un-cancelled (cancellation is a one-way latch — a
   worker that observed [is_set] may already be unwinding, and a reset
   would leave the batch half-skipped for no recorded reason). *)

type t = bool Atomic.t

let create () = Atomic.make false
let set t = Atomic.set t true
let is_set t = Atomic.get t
