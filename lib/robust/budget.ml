type reason = [ `Depth | `States | `Nodes | `Steps | `Deadline | `Cancelled ]
type completeness = [ `Exhaustive | `Truncated of reason ]

let reason_to_string = function
  | `Depth -> "depth"
  | `States -> "states"
  | `Nodes -> "nodes"
  | `Steps -> "steps"
  | `Deadline -> "deadline"
  | `Cancelled -> "cancelled"

let reason_of_string = function
  | "depth" -> Some `Depth
  | "states" -> Some `States
  | "nodes" -> Some `Nodes
  | "steps" -> Some `Steps
  | "deadline" -> Some `Deadline
  | "cancelled" -> Some `Cancelled
  | _ -> None

let completeness_to_string = function
  | `Exhaustive -> "exhaustive"
  | `Truncated r -> Printf.sprintf "truncated (%s)" (reason_to_string r)

let is_exhaustive = function `Exhaustive -> true | `Truncated _ -> false
let merge a b = match a with `Exhaustive -> b | `Truncated _ -> a

type t = {
  nodes : int option;
  steps : int option;
  deadline : float option;
  cancel : Cancel.t option;
  on_poll : (nodes:int -> steps:int -> unit) option;
}

let unlimited =
  { nodes = None; steps = None; deadline = None; cancel = None; on_poll = None }

let make ?nodes ?steps ?deadline ?cancel ?on_poll () =
  let deadline =
    Option.map (fun d -> Unix.gettimeofday () +. Float.max d 0.) deadline
  in
  { nodes; steps; deadline; cancel; on_poll }

let with_nodes t nodes = { t with nodes = Some nodes }

(* [on_poll] participates: an observer-only budget must still get a meter
   (or its hook would never fire).  Matched structurally — polymorphic
   [=] on a closure-carrying option would be a trap for later editors. *)
let is_unlimited t =
  t.nodes = None && t.steps = None && t.deadline = None && t.cancel = None
  && match t.on_poll with None -> true | Some _ -> false

exception Exhausted of reason

module Meter = struct
  type budget = t

  type nonrec t = {
    budget : budget;
    poll_mask : int;
    mutable nodes : int;
    mutable steps : int;
    mutable polls : int;
    mutable tripped : reason option;
  }

  let create ?(poll_every = 512) budget =
    let poll_every = max 1 poll_every in
    (* Round up to a power of two so polling is a single [land]. *)
    let rec pow2 k = if k >= poll_every then k else pow2 (k * 2) in
    {
      budget;
      poll_mask = pow2 1 - 1;
      nodes = 0;
      steps = 0;
      polls = 0;
      tripped = None;
    }

  let nodes t = t.nodes
  let steps t = t.steps
  let polls t = t.polls
  let tripped t = t.tripped

  let trip t r =
    t.tripped <- Some r;
    Some r

  (* Best-effort limits, consulted only on poll boundaries.  A deadline
     trip propagates to the cancel token so that pool siblings that share
     the budget stop claiming chunks instead of each burning until their
     own next poll. *)
  let poll t =
    t.polls <- t.polls + 1;
    (match t.budget.on_poll with
    | Some f -> f ~nodes:t.nodes ~steps:t.steps
    | None -> ());
    match t.budget.cancel with
    | Some c when Cancel.is_set c -> trip t `Cancelled
    | _ -> (
        match t.budget.deadline with
        (* >= not >: a zero (or elapsed) relative deadline must trip on
           the very first poll even when the clock has not advanced past
           the instant [make] stamped — gettimeofday ticks coarsely
           enough for the two reads to coincide. *)
        | Some d when Unix.gettimeofday () >= d ->
            Option.iter Cancel.set t.budget.cancel;
            trip t `Deadline
        | _ -> None)

  let tick_node t =
    match t.tripped with
    | Some r -> Some r
    | None -> (
        match t.budget.nodes with
        | Some limit when t.nodes >= limit -> trip t `Nodes
        | _ -> (
            if t.nodes land t.poll_mask <> 0 then (
              t.nodes <- t.nodes + 1;
              None)
            else
              match poll t with
              | Some r -> Some r
              | None ->
                  t.nodes <- t.nodes + 1;
                  None))

  let tick_step t =
    match t.tripped with
    | Some r -> Some r
    | None -> (
        match t.budget.steps with
        | Some limit when t.steps >= limit -> trip t `Steps
        | _ -> (
            if t.steps land t.poll_mask <> 0 then (
              t.steps <- t.steps + 1;
              None)
            else
              match poll t with
              | Some r -> Some r
              | None ->
                  t.steps <- t.steps + 1;
                  None))

  (* Batch admission: account up to [k] nodes, stopping at the first
     trip.  Campaign-shaped workloads (the fuzzer) admit a whole batch of
     independent tasks with one call, dispatch exactly the admitted
     prefix, and keep the truncation point as deterministic as the
     underlying per-tick checks. *)
  let take_nodes t k =
    let rec go i =
      if i >= k then k
      else match tick_node t with None -> go (i + 1) | Some _ -> i
    in
    go 0

  let guard_node t =
    match tick_node t with None -> () | Some r -> raise (Exhausted r)

  let guard_step t =
    match tick_step t with None -> () | Some r -> raise (Exhausted r)
end
