(** Unified resource governance for search entry points.

    A {!t} bundles the four ways a long-running exploration can be told to
    stop: a node budget (search-tree configurations), a step budget
    (scheduler steps inside constructions), a wall-clock deadline, and a
    {!Cancel.t} token.  The four are not equally well-behaved and callers
    must not pretend otherwise:

    - {b Node and step budgets are deterministic.}  A search governed by
      [nodes = Some k] visits exactly the first [k] nodes of the
      sequential DFS preorder — bit-for-bit the same set of nodes, counters
      and verdict on every run and under any [RANDSYNC_JOBS] setting (the
      parallel engine validates speculative subtree results against the
      sequential prefix; see DESIGN.md §4d).
    - {b Deadlines and cancellation are best-effort.}  They are polled
      every [poll_every] ticks, so overshoot is bounded by the cost of
      that many nodes plus the current chunk in the [Par] pool, and two
      runs with the same deadline may truncate at different frontiers.

    A truncated safe verdict is an under-approximation: it means "no
    violation among the states we visited", never a proof of correctness.
    Every governed entry point therefore reports a {!completeness} verdict
    alongside its result instead of raising or silently clamping. *)

(** Why an exploration stopped short of exhaustiveness.  [`Depth] and
    [`States] are the legacy structural bounds ([max_depth]/[max_states]);
    the other four originate from a {!t}. *)
type reason = [ `Depth | `States | `Nodes | `Steps | `Deadline | `Cancelled ]

type completeness = [ `Exhaustive | `Truncated of reason ]

val reason_to_string : reason -> string

(** Inverse of {!reason_to_string}; [None] on unknown input.  Used by the
    checkpoint file format. *)
val reason_of_string : string -> reason option

val completeness_to_string : completeness -> string

val is_exhaustive : completeness -> bool

(** [merge a b] keeps the earliest truncation: [a] unless [a] is
    [`Exhaustive].  Folding it over per-subtree verdicts in task order
    yields the sequential first-reason semantics. *)
val merge : completeness -> completeness -> completeness

type t = {
  nodes : int option;  (** max search-tree nodes (deterministic) *)
  steps : int option;  (** max scheduler/solo steps (deterministic) *)
  deadline : float option;
      (** absolute [Unix.gettimeofday] instant (best-effort) *)
  cancel : Cancel.t option;  (** cooperative cancellation (best-effort) *)
  on_poll : (nodes:int -> steps:int -> unit) option;
      (** observer hook invoked on every poll boundary with the meter's
          consumed counts — the vehicle for [--progress] heartbeats (see
          [Obs.Progress]).  Purely informational: it cannot trip the
          budget, and in parallel searches it fires on whichever domain's
          meter crossed the boundary, so it must be multi-domain safe. *)
}

(** No limits at all.  Meters are not even created for it, so the default
    path pays nothing. *)
val unlimited : t

(** [make ?nodes ?steps ?deadline ?cancel ?on_poll ()] — [deadline] is
    given in seconds {e relative to now} and stored as an absolute
    instant, so a budget threaded through nested calls keeps one fixed
    horizon.  A budget carrying only [on_poll] is {e not} unlimited:
    entry points create a meter for it so the hook gets its cadence. *)
val make :
  ?nodes:int ->
  ?steps:int ->
  ?deadline:float ->
  ?cancel:Cancel.t ->
  ?on_poll:(nodes:int -> steps:int -> unit) ->
  unit ->
  t

(** Replace the node allowance, keeping deadline/cancel intact.  Used by
    the parallel validator to re-run a subtree under the exact remaining
    sequential allowance. *)
val with_nodes : t -> int -> t

val is_unlimited : t -> bool

(** Raised by {!Meter.guard_step} (and available to any governed loop that
    prefers unwinding to threading verdicts).  Entry points catch it at
    their boundary and turn it into [`Truncated reason]; it must not
    escape a public API. *)
exception Exhausted of reason

(** Mutable consumption state for one governed run.  Deterministic checks
    (nodes, steps) are exact on every tick; deadline and cancellation are
    polled only when the tick count crosses a [poll_every] boundary.  A
    meter latches: once tripped it reports the same reason forever.  Not
    thread-safe — create one meter per domain. *)
module Meter : sig
  type budget := t

  type t

  (** [poll_every] is rounded up to a power of two; default 512. *)
  val create : ?poll_every:int -> budget -> t

  (** Nodes / steps consumed so far (ticks that returned [None]). *)
  val nodes : t -> int

  val steps : t -> int

  (** Poll-boundary checks performed so far (deadline/cancel inspections
      plus [on_poll] firings) — the denominator of the metering-overhead
      story, surfaced as the ["budget/polls"] counter by instrumented
      entry points. *)
  val polls : t -> int

  val tripped : t -> reason option

  (** Account one node about to be processed.  [None] means proceed (and
      the node is now counted); [Some r] means the node must {e not} be
      processed — it is not counted, making the trip point an exact
      resume cursor.  A deadline trip also sets the budget's cancel token
      (if any) so sibling pool tasks stop claiming work. *)
  val tick_node : t -> reason option

  (** Same contract for scheduler/solo steps. *)
  val tick_step : t -> reason option

  (** [take_nodes m k] accounts up to [k] nodes and returns how many were
      admitted before the budget tripped (so [< k] means the meter is now
      tripped).  Batch admission for campaign-shaped workloads: admit a
      batch, dispatch exactly the admitted prefix. *)
  val take_nodes : t -> int -> int

  (** [tick_node]/[tick_step] variants that raise {!Exhausted}. *)
  val guard_node : t -> unit

  val guard_step : t -> unit
end
