(** Cooperative cancellation: one atomic flag shared between a requester
    and any number of polling workers.  Setting it is idempotent, never
    blocks, and carries no payload — observers poll {!is_set} at their own
    cadence (the [Par] pool between chunks, a [Budget.Meter] every few
    hundred ticks) and wind down at the next convenient point.  Nothing is
    ever interrupted preemptively: a token can only stop work that looks
    at it. *)

type t

(** A fresh, unset token. *)
val create : unit -> t

(** Request cancellation.  Idempotent. *)
val set : t -> unit

val is_set : t -> bool
