type t = { dir : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  mkdir_p dir;
  { dir }

let dir t = t.dir

(* Same discipline as Obs.Sink: write a sibling temp file, rename over
   the target.  rename(2) is atomic, so readers (and a post-crash
   recover) see the old bytes or the new bytes, never a prefix. *)
let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let job_path t id = Filename.concat t.dir (Printf.sprintf "job-%d.json" id)

let verdict_path t id =
  Filename.concat t.dir (Printf.sprintf "job-%d.verdict" id)

let cancelled_path t id =
  Filename.concat t.dir (Printf.sprintf "job-%d.cancelled" id)

let checkpoint_path t ~id =
  Filename.concat t.dir (Printf.sprintf "job-%d.ckpt" id)

let add t ~id job =
  write_atomic (job_path t id) (Json.to_string (Job.to_json job) ^ "\n")

let record_verdict t ~id outcome =
  write_atomic (verdict_path t id)
    (Json.to_string (Job.outcome_to_json ~id outcome) ^ "\n")

let mark_cancelled t ~id = write_atomic (cancelled_path t id) "cancelled\n"

type entry = {
  id : int;
  job : Job.t;
  fate : [ `Pending | `Finished of Job.outcome | `Cancelled ];
}

type recovered = { entries : entry list; next_id : int }

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let skip id path msg =
  Printf.eprintf "spool: skipping job %d (%s): %s\n%!" id path msg

let load_json path decode =
  match Json.parse (String.trim (read_file path)) with
  | Ok j -> decode j
  | Error e -> Error e
  | exception Sys_error e -> Error e

let recover t =
  let ids = ref [] in
  Array.iter
    (fun name ->
      match Scanf.sscanf_opt name "job-%d.json%!" (fun id -> id) with
      | Some id -> ids := id :: !ids
      | None -> ())
    (Sys.readdir t.dir);
  let ids = List.sort compare !ids in
  let entries = ref [] in
  let next_id = ref 1 in
  List.iter
    (fun id ->
      if id >= !next_id then next_id := id + 1;
      match load_json (job_path t id) Job.of_json with
      | Error e -> skip id (job_path t id) e
      | Ok job ->
          if Sys.file_exists (cancelled_path t id) then
            entries := { id; job; fate = `Cancelled } :: !entries
          else if Sys.file_exists (verdict_path t id) then begin
            match
              load_json (verdict_path t id) (fun j ->
                  Result.map snd (Job.outcome_of_json j))
            with
            | Ok outcome ->
                entries := { id; job; fate = `Finished outcome } :: !entries
            | Error e ->
                (* a torn verdict cannot happen (atomic rename), but a
                   corrupt one degrades to re-running the job *)
                skip id (verdict_path t id) e;
                entries := { id; job; fate = `Pending } :: !entries
          end
          else entries := { id; job; fate = `Pending } :: !entries)
    ids;
  { entries = List.rev !entries; next_id = !next_id }
