(** Verification jobs: the unit of work the server admits, persists,
    executes and replies to.

    A job is a declarative request for one of the three workload families
    (model-check, fuzz campaign, lower-bound attack) plus an optional
    per-job wall-clock deadline.  Specs are plain data with a versioned
    JSON codec, so the same bytes travel the wire ([Wire.Submit]) and the
    spool (crash-safe restart re-reads them verbatim).

    {b Verdict identity.}  [execute] renders its result with the same
    report functions the CLI's [mc]/[fuzz] subcommands print through
    ({!mc_report}, {!fuzz_report}), so a job's verdict lines are
    byte-identical to a direct [randsync mc]/[randsync fuzz] run of the
    same parameters — the chaos suite pins this.  Jobs run sequentially
    (or on a caller-supplied pool); every engine/pool choice in the repo
    is verdict-identical by the determinism contracts, so the identity
    holds at any [--jobs].

    {b Statuses.}  [outcome.status] reuses the CLI exit-code contract
    verbatim (0 clean / 1 bad input / 2 violation / 3 truncated / 4
    attack failed / 5 progress violation) — the wire status of a verdict
    is the exit code the same job would have produced locally. *)

type mc = {
  mc_protocol : string;
  mc_inputs : int list;
  mc_depth : int;
  mc_max_states : int;
  mc_dedup : [ `Off | `Exact | `Symmetric ];
  mc_max_nodes : int option;
}

type fuzz = {
  fz_scenario : string;
  fz_inputs : int list option;
  fz_engine : [ `Flat | `Closure ];
  fz_runs : int;
  fz_seed : int;
  fz_shrink : bool;
  fz_max_candidates : int;
  fz_max_runs : int option;
}

type attack = { at_protocol : string; at_general : bool; at_seeds : int }

type spec = Mc of mc | Fuzz of fuzz | Attack of attack

type t = {
  spec : spec;
  deadline : float option;
      (** per-job wall-clock budget in seconds, enforced server-side via
          the job's budget/cancel token.  Deadline-truncated frontiers
          are best-effort, so a deadline job forfeits the byte-identity
          guarantee (the verdict stays sound). *)
}

val mc_defaults : protocol:string -> mc
val fuzz_defaults : scenario:string -> fuzz

(** A short human label: ["mc counter-3"], ["fuzz flawed"], ... *)
val label : t -> string

(** The checkpoint scenario stamp for an mc job — character-identical to
    the one [randsync mc --checkpoint] writes, so server checkpoints and
    CLI checkpoints are mutually resumable. *)
val mc_stamp : mc -> string

(** {1 JSON codec} (one object, ["kind"] discriminated).  Decoding
    validates kinds, field types and enum values; unknown kinds and
    malformed fields are loud [Error]s. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

(** {1 Execution} *)

type outcome = { status : int; lines : string list }

val outcome_to_json : id:int -> outcome -> Json.t
val outcome_of_json : Json.t -> (int * outcome, string) result

(** [execute ?pool ?cancel ?on_poll ?checkpoint job] runs the job to an
    outcome.  [cancel] is the server's per-job kill switch (client
    cancel, client disconnect, drain); [on_poll] rides the budget's poll
    cadence (progress streaming).  [checkpoint] (mc jobs only) names a
    file: the search then runs on the sequential closure engine, writes
    its cursor there periodically and at any budget trip, and — when the
    file already holds a matching-stamp checkpoint and the job's dedup
    is [`Off] — resumes from it, shrinking any node allowance by the
    nodes already visited so the resumed run reproduces the
    uninterrupted one's frontier exactly.  Never raises: unknown
    protocols/scenarios return [status = 1] outcomes, unexpected
    exceptions are caught and reported as [status = 1] with the
    exception text as the only line. *)
val execute :
  ?pool:Par.Pool.t ->
  ?cancel:Robust.Cancel.t ->
  ?on_poll:(nodes:int -> steps:int -> unit) ->
  ?checkpoint:string ->
  t ->
  outcome

(** {1 Shared report renderers} — the CLI prints these lines verbatim;
    [execute] embeds them in verdict frames.  Divergence between server
    and CLI output is therefore impossible by construction. *)

val mc_report : int Mc.Explore.result -> outcome

val fuzz_report : describe:string -> seed:int -> Fuzz.Campaign.result -> outcome
