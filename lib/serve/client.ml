type addr = [ `Unix of string | `Tcp of string * int ]

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect addr =
  let sockaddr =
    match addr with
    | `Unix path -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | `Tcp (host, port) -> (
        match
          try Some (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> None
        with
        | Some ip -> Ok (Unix.PF_INET, Unix.ADDR_INET (ip, port))
        | None -> Error (Printf.sprintf "unknown host %S" host))
  in
  match sockaddr with
  | Error e -> Error e
  | Ok (domain, sockaddr) -> (
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      match Unix.connect fd sockaddr with
      | () ->
          Ok
            {
              fd;
              ic = Unix.in_channel_of_descr fd;
              oc = Unix.out_channel_of_descr fd;
            }
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Unix.error_message err))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req =
  output_string t.oc (Wire.encode_request req);
  output_char t.oc '\n';
  flush t.oc

let recv t =
  match input_line t.ic with
  | line -> Wire.decode_reply line
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error e -> Error e

(* full jitter, clipped to [0.5, 1.0] of the doubled base, capped *)
let backoff_delay ~base ~cap ~rng k =
  let nominal = base *. (2. ** float_of_int k) in
  let jitter = 0.5 +. (Sim.Rng.float rng /. 2.) in
  Float.min cap (nominal *. jitter)

let with_retry ?(attempts = 5) ?(base = 0.05) ?(cap = 1.0) ?(seed = 1)
    ?(sleep = Unix.sleepf) f =
  let rng = Sim.Rng.create seed in
  let rec go k =
    match f k with
    | Ok v -> Ok v
    | Error (`Fail msg) -> Error msg
    | Error (`Retry msg) ->
        if k + 1 >= attempts then
          Error (Printf.sprintf "%s (gave up after %d attempts)" msg attempts)
        else begin
          sleep (backoff_delay ~base ~cap ~rng k);
          go (k + 1)
        end
  in
  go 0

let submit_and_wait ?attempts ?base ?cap ?seed ?(detach = false) ?on_progress
    addr job =
  with_retry ?attempts ?base ?cap ?seed @@ fun _attempt ->
  match connect addr with
  | Error e -> Error (`Retry ("connect: " ^ e))
  | Ok conn -> (
      let finally () = close conn in
      match
        send conn (Wire.Submit { job; detach });
        recv conn
      with
      | exception Sys_error e ->
          finally ();
          Error (`Retry e)
      | Error e ->
          finally ();
          Error (`Fail ("bad reply: " ^ e))
      | Ok (Wire.Overloaded { queued; limit }) ->
          finally ();
          Error
            (`Retry (Printf.sprintf "overloaded (queue %d/%d)" queued limit))
      | Ok Wire.Draining ->
          finally ();
          Error (`Fail "server is draining")
      | Ok (Wire.Error { message }) ->
          finally ();
          Error (`Fail message)
      | Ok (Wire.Accepted { id }) ->
          if detach then begin
            finally ();
            Ok (0, [ Printf.sprintf "id=%d" id ])
          end
          else begin
            (* stream until the job's terminal frame *)
            let rec wait () =
              match recv conn with
              | Ok (Wire.Progress { id = pid; nodes; steps }) ->
                  Option.iter
                    (fun f -> f ~id:pid ~nodes ~steps)
                    on_progress;
                  wait ()
              | Ok (Wire.Verdict { id = _; status; lines }) ->
                  Ok (status, lines)
              | Ok (Wire.Cancelled _) -> Error (`Fail "job cancelled")
              | Ok Wire.Draining ->
                  (* drained mid-run: the job is interrupted server-side
                     and will be resumed by the next server *)
                  Error (`Fail "server drained mid-job")
              | Ok (Wire.Error { message }) -> Error (`Fail message)
              | Ok _ -> Error (`Fail "unexpected reply while waiting")
              | Error e -> Error (`Fail ("while waiting for verdict: " ^ e))
            in
            let r = wait () in
            finally ();
            r
          end
      | Ok _ ->
          finally ();
          Error (`Fail "unexpected reply to submit"))

let wait_result ?attempts ?base ?cap ?seed ?(poll = 0.2) addr ~id =
  (* the outer loop survives server restarts: one with_retry per contact
     attempt, so the attempt budget resets every time we get through *)
  let rec go () =
    let probe =
      with_retry ?attempts ?base ?cap ?seed @@ fun _ ->
      match connect addr with
      | Error e -> Error (`Retry ("connect: " ^ e))
      | Ok conn -> (
          let r =
            match
              send conn (Wire.Result { id });
              recv conn
            with
            | exception Sys_error e -> Error (`Retry e)
            | Error e -> Error (`Fail ("bad reply: " ^ e))
            | Ok (Wire.Verdict { status; lines; _ }) -> Ok (`Done (status, lines))
            | Ok (Wire.Cancelled _) -> Error (`Fail "job cancelled")
            | Ok (Wire.Error { message }) ->
                if message = Printf.sprintf "job %d is not finished" id then
                  Ok `Pending
                else Error (`Fail message)
            | Ok _ -> Error (`Fail "unexpected reply to result")
          in
          close conn;
          r)
    in
    match probe with
    | Ok (`Done v) -> Ok v
    | Ok `Pending ->
        Unix.sleepf poll;
        go ()
    | Error e -> Error e
  in
  go ()
