(** The serve client: one connection, blocking line-framed {!Wire}
    exchange, and a retry loop with capped exponential backoff + jitter
    for the transient failures a robust submitter must absorb (server
    not up yet, connection refused mid-restart, [Overloaded] shedding).

    Backoff is deterministic per [seed]: delay k is
    [base * 2^k * (0.5 + u)] with [u] drawn from a seeded
    {!Sim.Rng.t} stream in [0, 0.5], capped at [cap] — the full-jitter
    scheme clipped to stay within 2x of the nominal curve, so tests can
    bound total retry time exactly. *)

type addr = [ `Unix of string | `Tcp of string * int ]

type t

(** [connect addr] makes one connection attempt.  No retries. *)
val connect : addr -> (t, string) result

val close : t -> unit

val send : t -> Wire.request -> unit

(** One reply frame (blocking).  [Error] on EOF, an unparsable frame, or
    a protocol-version mismatch. *)
val recv : t -> (Wire.reply, string) result

(** [with_retry ?attempts ?base ?cap ?seed ~sleep f] runs [f attempt]
    until it returns [Ok] or a non-retryable [Error], sleeping the
    backoff schedule between retryable failures ([f] signals one by
    [Error (`Retry reason)]).  [attempts] total tries (default 5),
    [base] first delay (default 0.05s), [cap] max delay (default 1s).
    [sleep] is injectable for tests. *)
val with_retry :
  ?attempts:int ->
  ?base:float ->
  ?cap:float ->
  ?seed:int ->
  ?sleep:(float -> unit) ->
  (int -> ('a, [ `Retry of string | `Fail of string ]) result) ->
  ('a, string) result

(** The backoff delay before retry [k] (0-based), exposed for tests. *)
val backoff_delay : base:float -> cap:float -> rng:Sim.Rng.t -> int -> float

(** [submit_and_wait ?attempts ?base ?cap ?seed ?detach ?on_progress addr job]
    connects (with retries), submits, and — unless [detach] — streams
    replies until the job's terminal frame, returning the verdict's
    [(status, lines)].  [Overloaded] and connect failures are retried
    with backoff; [Draining] is terminal ([Error]).  With [detach] it
    returns [(0, ["id=<n>"])] as soon as the job is accepted. *)
val submit_and_wait :
  ?attempts:int ->
  ?base:float ->
  ?cap:float ->
  ?seed:int ->
  ?detach:bool ->
  ?on_progress:(id:int -> nodes:int -> steps:int -> unit) ->
  addr ->
  Job.t ->
  (int * string list, string) result

(** [wait_result addr ~id] polls [Result id] every [poll] seconds
    (default 0.2) until the job is terminal, reconnecting with the
    backoff schedule whenever the server is unreachable (each successful
    contact resets the attempt counter, so a job may be awaited across a
    server restart).  Returns the verdict's [(status, lines)]; a
    cancelled job is an [Error]. *)
val wait_result :
  ?attempts:int ->
  ?base:float ->
  ?cap:float ->
  ?seed:int ->
  ?poll:float ->
  addr ->
  id:int ->
  (int * string list, string) result
