(** Crash-safe job persistence.

    One directory, a few small files per job, every write atomic
    (temp-file-then-rename, the {!Obs.Sink} discipline), so the spool is
    consistent at every instant — a kill -9 between any two syscalls
    leaves either the old state or the new one, never a torn file:

    - [job-<id>.json] — the spec, written {e before} the [accepted]
      reply goes out (an accepted job is on disk by definition);
    - [job-<id>.verdict] — the outcome, written when the job finishes;
    - [job-<id>.cancelled] — a marker for client/operator cancellation;
    - [job-<id>.ckpt] — the mc search checkpoint ({!Mc.Checkpoint}
      format), written by the running search itself.

    [recover] classifies what a restarted server owes its past self: a
    job with a verdict or a cancel marker is terminal; anything else —
    queued or in flight at the crash — is pending and gets re-enqueued.
    Re-running pending work is safe because every workload is
    deterministic: the replay reaches the verdict the interrupted run
    would have, with an mc checkpoint merely skipping the prefix. *)

type t

(** Creates [dir] (and parents) if needed. *)
val create : dir:string -> t

val dir : t -> string

val add : t -> id:int -> Job.t -> unit
val record_verdict : t -> id:int -> Job.outcome -> unit
val mark_cancelled : t -> id:int -> unit

(** Where job [id]'s mc search checkpoints; the file need not exist. *)
val checkpoint_path : t -> id:int -> string

type entry = {
  id : int;
  job : Job.t;
  fate : [ `Pending | `Finished of Job.outcome | `Cancelled ];
}

type recovered = {
  entries : entry list;  (** id order *)
  next_id : int;  (** strictly above every id ever spooled *)
}

(** Unreadable or unparsable entries are skipped with a note on stderr —
    a corrupt spool degrades to losing that job, never to a crash or a
    silently wrong replay. *)
val recover : t -> recovered
