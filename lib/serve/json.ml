(* Strict single-value JSON parsing and canonical printing.  See the mli
   for the robustness contract; the parser is a plain recursive descent
   over a cursor, with a depth cap so pathological nesting fails cleanly
   instead of blowing the stack. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let max_depth = 64

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected '%c' at offset %d, got '%c'" ch c.pos x
  | None -> fail "expected '%c' at offset %d, got end of input" ch c.pos

(* Strings: the usual escapes; \uXXXX is decoded to UTF-8 bytes so a
   round-trip through a conforming peer cannot smuggle bytes past the
   parser.  Control characters must be escaped. *)
let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string at offset %d" c.pos
    | Some '"' ->
        advance c;
        Buffer.contents b
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail "dangling escape at offset %d" c.pos
        | Some ch ->
            advance c;
            (match ch with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                let hex () =
                  match peek c with
                  | Some ch -> (
                      advance c;
                      match ch with
                      | '0' .. '9' -> Char.code ch - Char.code '0'
                      | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
                      | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
                      | _ -> fail "bad \\u escape at offset %d" c.pos)
                  | None -> fail "truncated \\u escape at offset %d" c.pos
                in
                let unit16 () =
                  let a = hex () in
                  let b' = hex () in
                  let c' = hex () in
                  let d = hex () in
                  (a lsl 12) lor (b' lsl 8) lor (c' lsl 4) lor d
                in
                let u = unit16 () in
                (* Surrogate pairs: a high surrogate must be immediately
                   followed by an escaped low surrogate, and the pair
                   decodes to one astral code point; anything else with a
                   surrogate unit in it is malformed (RFC 8259 §8.2) —
                   decoding it "as-is" would smuggle UTF-8-invalid bytes
                   (CESU-8) past a parser that promises clean UTF-8. *)
                let cp =
                  if u >= 0xD800 && u <= 0xDBFF then begin
                    if
                      not
                        (c.pos + 1 < String.length c.s
                        && c.s.[c.pos] = '\\'
                        && c.s.[c.pos + 1] = 'u')
                    then
                      fail "lone high surrogate \\u%04x at offset %d" u c.pos;
                    advance c;
                    advance c;
                    let lo = unit16 () in
                    if not (lo >= 0xDC00 && lo <= 0xDFFF) then
                      fail
                        "high surrogate \\u%04x not followed by a low \
                         surrogate at offset %d"
                        u c.pos;
                    0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
                  end
                  else if u >= 0xDC00 && u <= 0xDFFF then
                    fail "lone low surrogate \\u%04x at offset %d" u c.pos
                  else u
                in
                (* UTF-8 encode the code point (1–4 bytes) *)
                if cp < 0x80 then Buffer.add_char b (Char.chr cp)
                else if cp < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                end
                else if cp < 0x10000 then begin
                  Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
                  Buffer.add_char b
                    (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
                  Buffer.add_char b
                    (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
                  Buffer.add_char b
                    (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                end
            | _ -> fail "unknown escape '\\%c' at offset %d" ch c.pos);
            go ())
    | Some ch when Char.code ch < 0x20 ->
        fail "unescaped control character at offset %d" c.pos
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ()

let is_num_char = function
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

let parse_number c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let tok = String.sub c.s start (c.pos - start) in
  match int_of_string_opt tok with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number %S at offset %d" tok start)

let parse_literal c lit v =
  let n = String.length lit in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = lit then begin
    c.pos <- c.pos + n;
    v
  end
  else fail "bad literal at offset %d" c.pos

let rec parse_value c depth =
  if depth > max_depth then fail "nesting deeper than %d" max_depth;
  skip_ws c;
  match peek c with
  | None -> fail "empty input"
  | Some '"' -> String (parse_string c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c (depth + 1) in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}' at offset %d" c.pos
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c (depth + 1) in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at offset %d" c.pos
        in
        List (items [])
      end
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail "unexpected character '%c' at offset %d" ch c.pos

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c 0 with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
      else Ok v
  | exception Bad msg -> Error msg

(* ---- printing ---- *)

(* The printer emits exactly what the parser accepts: ASCII printables
   raw, everything escapable escaped, and valid UTF-8 sequences as
   [\uXXXX] units — one per BMP code point, a surrogate {e pair} per
   astral code point (the inverse of the pair decoding in
   [parse_string], so escape/parse round-trips byte-for-byte).  Bytes
   that are not part of a valid UTF-8 sequence pass through raw: the
   parser tolerates them, and inventing lone-surrogate escapes for them
   would produce output the parser itself rejects. *)
let escape s =
  let n = String.length s in
  let b = Buffer.create (n + 2) in
  let add_unit u = Buffer.add_string b (Printf.sprintf "\\u%04x" u) in
  (* decode one UTF-8 sequence at [i]: [Some (cp, width)] only for a
     well-formed, shortest-form, non-surrogate scalar value *)
  let utf8_at i =
    let cont j = j < n && Char.code s.[j] land 0xC0 = 0x80 in
    let byte j = Char.code s.[j] in
    let c0 = byte i in
    if c0 < 0xC2 then None (* 0x80..0xBF stray continuation, 0xC0/0xC1 overlong *)
    else if c0 < 0xE0 then
      if cont (i + 1) then
        Some (((c0 land 0x1F) lsl 6) lor (byte (i + 1) land 0x3F), 2)
      else None
    else if c0 < 0xF0 then
      if cont (i + 1) && cont (i + 2) then
        let cp =
          ((c0 land 0x0F) lsl 12)
          lor ((byte (i + 1) land 0x3F) lsl 6)
          lor (byte (i + 2) land 0x3F)
        in
        if cp < 0x800 || (cp >= 0xD800 && cp <= 0xDFFF) then None
        else Some (cp, 3)
      else None
    else if c0 < 0xF5 then
      if cont (i + 1) && cont (i + 2) && cont (i + 3) then
        let cp =
          ((c0 land 0x07) lsl 18)
          lor ((byte (i + 1) land 0x3F) lsl 12)
          lor ((byte (i + 2) land 0x3F) lsl 6)
          lor (byte (i + 3) land 0x3F)
        in
        if cp < 0x10000 || cp > 0x10FFFF then None else Some (cp, 4)
      else None
    else None
  in
  let i = ref 0 in
  while !i < n do
    let ch = s.[!i] in
    (match ch with
    | '"' ->
        Buffer.add_string b "\\\"";
        incr i
    | '\\' ->
        Buffer.add_string b "\\\\";
        incr i
    | '\n' ->
        Buffer.add_string b "\\n";
        incr i
    | '\r' ->
        Buffer.add_string b "\\r";
        incr i
    | '\t' ->
        Buffer.add_string b "\\t";
        incr i
    | ch when Char.code ch < 0x20 ->
        add_unit (Char.code ch);
        incr i
    | ch when Char.code ch < 0x80 ->
        Buffer.add_char b ch;
        incr i
    | _ -> (
        match utf8_at !i with
        | Some (cp, width) ->
            if cp < 0x10000 then add_unit cp
            else begin
              let v = cp - 0x10000 in
              add_unit (0xD800 lor (v lsr 10));
              add_unit (0xDC00 lor (v land 0x3FF))
            end;
            i := !i + width
        | None ->
            Buffer.add_char b ch;
            incr i));
  done;
  Buffer.contents b

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f ->
      (* %.17g is lossless for doubles; trim to %g when exact *)
      let s = Printf.sprintf "%.17g" f in
      let short = Printf.sprintf "%g" f in
      if float_of_string short = f then short else s
  | String s -> "\"" ^ escape s ^ "\""
  | List items -> "[" ^ String.concat "," (List.map to_string items) ^ "]"
  | Obj fields ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) fields)
      ^ "}"

(* ---- accessors ---- *)

let mem name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let missing name = Error (Printf.sprintf "missing field %S" name)

let wrong name want =
  Error (Printf.sprintf "field %S is not a %s" name want)

let str name v =
  match mem name v with
  | Some (String s) -> Ok s
  | Some _ -> wrong name "string"
  | None -> missing name

let int name v =
  match mem name v with
  | Some (Int i) -> Ok i
  | Some _ -> wrong name "int"
  | None -> missing name

let bool name v =
  match mem name v with
  | Some (Bool b) -> Ok b
  | Some _ -> wrong name "bool"
  | None -> missing name

let num name v =
  match mem name v with
  | Some (Int i) -> Ok (float_of_int i)
  | Some (Float f) -> Ok f
  | Some _ -> wrong name "number"
  | None -> missing name

let int_list name v =
  match mem name v with
  | Some (List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Int i :: rest -> go (i :: acc) rest
        | _ -> wrong name "list of ints"
      in
      go [] items
  | Some _ -> wrong name "list of ints"
  | None -> missing name

let str_list name v =
  match mem name v with
  | Some (List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | String s :: rest -> go (s :: acc) rest
        | _ -> wrong name "list of strings"
      in
      go [] items
  | Some _ -> wrong name "list of strings"
  | None -> missing name

let opt_of f name v =
  match mem name v with
  | None | Some Null -> Ok None
  | Some _ -> ( match f name v with Ok x -> Ok (Some x) | Error e -> Error e)

let str_opt name v = opt_of str name v
let int_opt name v = opt_of int name v
let num_opt name v = opt_of num name v
let bool_opt name v = opt_of bool name v
let int_list_opt name v = opt_of int_list name v
