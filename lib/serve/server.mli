(** The daemon behind [randsync serve]: a threaded socket server that
    multiplexes verification jobs over the {!Wire} protocol.

    {b Admission.}  The queue is bounded ([queue_limit]); a submit that
    finds it full is shed with an explicit [Overloaded] reply — the
    server never buffers without bound, and shedding is observable
    (["serve/shed"] counter).  While draining, submits get [Draining].

    {b Isolation.}  Each connection is handled by its own reader thread.
    A malformed frame is answered with [Error] and costs that client its
    connection; a disconnect (clean or half-closed) cancels only that
    client's attached jobs.  Detached jobs ([Submit {detach = true}])
    belong to no connection and are never cancelled by churn.

    {b Drain.}  SIGTERM (or a [Drain] request) stops admission, lets
    idle workers exit, and cancels running jobs via their {!Robust.Cancel}
    tokens; an mc job checkpoints its cursor on the way out.  Jobs cut
    by the drain are left {e pending} in the spool (state
    [Interrupted]); jobs that complete despite it are recorded normally.
    After the workers join, metrics are dumped ({!Obs.dump}) and [run]
    returns — the CLI then exits 0.

    {b Resume.}  With a spool, accepted jobs are on disk before the
    [Accepted] reply.  A restarted server re-enqueues every job with no
    verdict and no cancel marker; determinism of the workloads makes the
    replay reach the verdict the interrupted run would have (mc resumes
    from its checkpoint instead of recomputing the prefix).  Pinned by
    the kill-9 test in [test_serve]. *)

type address = [ `Unix of string | `Tcp of string * int ]

type config = {
  address : address;
  queue_limit : int;
  workers : int;
  spool_dir : string option;  (** [None]: no persistence, no resume *)
  obs : Obs.t option;
  progress_interval : float;
      (** min seconds between streamed [Progress] frames per job *)
}

val default_queue_limit : int
val default_workers : int

(** [run ?on_ready config] listens, serves until drained, and returns.
    [on_ready] fires once the socket is bound and recovery is done, with
    the concrete address (the actual port when [`Tcp (_, 0)] was asked).
    Installs SIGTERM/SIGINT handlers that trigger the drain and ignores
    SIGPIPE.  Raises [Unix.Unix_error] if the address cannot be bound. *)
val run : ?on_ready:(address -> unit) -> config -> unit
