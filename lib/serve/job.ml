(* Job specs, their JSON codec, and the executor.  See job.mli: the
   point of this module is that the server and the CLI render results
   through the same functions, so a served verdict is byte-identical to
   the direct run's stdout. *)

type mc = {
  mc_protocol : string;
  mc_inputs : int list;
  mc_depth : int;
  mc_max_states : int;
  mc_dedup : [ `Off | `Exact | `Symmetric ];
  mc_max_nodes : int option;
}

type fuzz = {
  fz_scenario : string;
  fz_inputs : int list option;
  fz_engine : [ `Flat | `Closure ];
  fz_runs : int;
  fz_seed : int;
  fz_shrink : bool;
  fz_max_candidates : int;
  fz_max_runs : int option;
}

type attack = { at_protocol : string; at_general : bool; at_seeds : int }

type spec = Mc of mc | Fuzz of fuzz | Attack of attack

type t = { spec : spec; deadline : float option }

let mc_defaults ~protocol =
  {
    mc_protocol = protocol;
    mc_inputs = [ 0; 1 ];
    mc_depth = 40;
    mc_max_states = 2_000_000;
    mc_dedup = `Off;
    mc_max_nodes = None;
  }

let fuzz_defaults ~scenario =
  {
    fz_scenario = scenario;
    fz_inputs = None;
    fz_engine = `Flat;
    fz_runs = 200;
    fz_seed = 1;
    fz_shrink = false;
    fz_max_candidates = 4000;
    fz_max_runs = None;
  }

let label t =
  match t.spec with
  | Mc m -> "mc " ^ m.mc_protocol
  | Fuzz f -> "fuzz " ^ f.fz_scenario
  | Attack a -> "attack " ^ a.at_protocol

let dedup_name = function
  | `Off -> "off"
  | `Exact -> "exact"
  | `Symmetric -> "symmetric"

let dedup_of_name = function
  | "off" -> Ok `Off
  | "exact" -> Ok `Exact
  | "symmetric" -> Ok `Symmetric
  | s -> Error (Printf.sprintf "unknown dedup %S" s)

let engine_name = function `Flat -> "flat" | `Closure -> "closure"

let engine_of_name = function
  | "flat" -> Ok `Flat
  | "closure" -> Ok `Closure
  | s -> Error (Printf.sprintf "unknown engine %S" s)

let inputs_csv inputs = String.concat "," (List.map string_of_int inputs)

(* Character-identical to the stamp randsync mc builds, so CLI and server
   checkpoints interoperate. *)
let mc_stamp m =
  Printf.sprintf "mc protocol=%s inputs=%s depth=%d max-states=%d dedup=%s"
    m.mc_protocol (inputs_csv m.mc_inputs) m.mc_depth m.mc_max_states
    (dedup_name m.mc_dedup)

(* ---- JSON codec ---- *)

let ( let* ) = Result.bind

let to_json t =
  let deadline =
    match t.deadline with None -> [] | Some d -> [ ("deadline", Json.Float d) ]
  in
  let ints is = Json.List (List.map (fun i -> Json.Int i) is) in
  match t.spec with
  | Mc m ->
      Json.Obj
        ([
           ("kind", Json.String "mc");
           ("protocol", Json.String m.mc_protocol);
           ("inputs", ints m.mc_inputs);
           ("depth", Json.Int m.mc_depth);
           ("max_states", Json.Int m.mc_max_states);
           ("dedup", Json.String (dedup_name m.mc_dedup));
         ]
        @ (match m.mc_max_nodes with
          | None -> []
          | Some k -> [ ("max_nodes", Json.Int k) ])
        @ deadline)
  | Fuzz f ->
      Json.Obj
        ([
           ("kind", Json.String "fuzz");
           ("scenario", Json.String f.fz_scenario);
         ]
        @ (match f.fz_inputs with
          | None -> []
          | Some is -> [ ("inputs", ints is) ])
        @ [
            ("engine", Json.String (engine_name f.fz_engine));
            ("runs", Json.Int f.fz_runs);
            ("seed", Json.Int f.fz_seed);
            ("shrink", Json.Bool f.fz_shrink);
            ("max_candidates", Json.Int f.fz_max_candidates);
          ]
        @ (match f.fz_max_runs with
          | None -> []
          | Some k -> [ ("max_runs", Json.Int k) ])
        @ deadline)
  | Attack a ->
      Json.Obj
        ([
           ("kind", Json.String "attack");
           ("protocol", Json.String a.at_protocol);
           ("general", Json.Bool a.at_general);
           ("seeds", Json.Int a.at_seeds);
         ]
        @ deadline)

let of_json j =
  let* kind = Json.str "kind" j in
  let* deadline = Json.num_opt "deadline" j in
  let opt_int name ~default =
    let* v = Json.int_opt name j in
    Ok (Option.value v ~default)
  in
  let opt_bool name ~default =
    let* v = Json.bool_opt name j in
    Ok (Option.value v ~default)
  in
  let* spec =
    match kind with
    | "mc" ->
        let* mc_protocol = Json.str "protocol" j in
        let* inputs = Json.int_list_opt "inputs" j in
        let mc_inputs = Option.value inputs ~default:[ 0; 1 ] in
        let* mc_depth = opt_int "depth" ~default:40 in
        let* mc_max_states = opt_int "max_states" ~default:2_000_000 in
        let* dedup = Json.str_opt "dedup" j in
        let* mc_dedup =
          match dedup with None -> Ok `Off | Some s -> dedup_of_name s
        in
        let* mc_max_nodes = Json.int_opt "max_nodes" j in
        Ok
          (Mc
             {
               mc_protocol;
               mc_inputs;
               mc_depth;
               mc_max_states;
               mc_dedup;
               mc_max_nodes;
             })
    | "fuzz" ->
        let* fz_scenario = Json.str "scenario" j in
        let* fz_inputs = Json.int_list_opt "inputs" j in
        let* engine = Json.str_opt "engine" j in
        let* fz_engine =
          match engine with None -> Ok `Flat | Some s -> engine_of_name s
        in
        let* fz_runs = opt_int "runs" ~default:200 in
        let* fz_seed = opt_int "seed" ~default:1 in
        let* fz_shrink = opt_bool "shrink" ~default:false in
        let* fz_max_candidates = opt_int "max_candidates" ~default:4000 in
        let* fz_max_runs = Json.int_opt "max_runs" j in
        Ok
          (Fuzz
             {
               fz_scenario;
               fz_inputs;
               fz_engine;
               fz_runs;
               fz_seed;
               fz_shrink;
               fz_max_candidates;
               fz_max_runs;
             })
    | "attack" ->
        let* at_protocol = Json.str "protocol" j in
        let* at_general = opt_bool "general" ~default:false in
        let* at_seeds = opt_int "seeds" ~default:0 in
        Ok (Attack { at_protocol; at_general; at_seeds })
    | k -> Error (Printf.sprintf "unknown job kind %S" k)
  in
  Ok { spec; deadline }

(* ---- outcomes ---- *)

type outcome = { status : int; lines : string list }

let outcome_to_json ~id o =
  Json.Obj
    [
      ("v", Json.Int 1);
      ("id", Json.Int id);
      ("status", Json.Int o.status);
      ("lines", Json.List (List.map (fun l -> Json.String l) o.lines));
    ]

let outcome_of_json j =
  let* v = Json.int "v" j in
  if v <> 1 then Error (Printf.sprintf "unsupported outcome version %d" v)
  else
    let* id = Json.int "id" j in
    let* status = Json.int "status" j in
    let* lines = Json.str_list "lines" j in
    Ok (id, { status; lines })

(* ---- report renderers (shared with bin/randsync_cli) ---- *)

(* Exit-code contract, restated as wire statuses. *)
let status_bad_args = 1

let status_violation = 2
let status_truncated = 3
let status_attack_failed = 4
let status_progress = 5

let mc_report (r : int Mc.Explore.result) =
  let head =
    [
      Printf.sprintf "visited=%d leaves=%d table-hits=%d truncated=%b \
                      max-depth=%d"
        r.Mc.Explore.visited r.Mc.Explore.leaves r.Mc.Explore.table_hits
        r.Mc.Explore.truncated r.Mc.Explore.max_depth_seen;
      "verdict: "
      ^ Robust.Budget.completeness_to_string r.Mc.Explore.completeness;
    ]
  in
  match r.Mc.Explore.violation with
  | Some v ->
      {
        status = status_violation;
        lines =
          head
          @ [
              Printf.sprintf "VIOLATION (%s):"
                (match v.Mc.Explore.kind with
                | `Inconsistent -> "inconsistent"
                | `Invalid -> "invalid");
              Sim.Trace.to_string string_of_int v.Mc.Explore.trace;
            ];
      }
  | None ->
      let status =
        (* only a governed cut demotes the status: the structural depth
           bound is part of the question being asked *)
        match r.Mc.Explore.completeness with
        | `Truncated (`Nodes | `Steps | `Deadline | `Cancelled) ->
            status_truncated
        | `Exhaustive | `Truncated (`Depth | `States) -> 0
      in
      { status; lines = head @ [ "no violation found" ] }

let fuzz_report ~describe ~seed (result : Fuzz.Campaign.result) =
  let head =
    [
      Printf.sprintf "scenario=%s (%s) seed=%d" result.Fuzz.Campaign.scenario
        describe seed;
      Printf.sprintf "runs=%d done=%d violations=%d steps=%d kinds=%s"
        result.Fuzz.Campaign.runs_requested result.Fuzz.Campaign.runs_done
        result.Fuzz.Campaign.violations result.Fuzz.Campaign.total_steps
        (String.concat ","
           (List.map
              (fun (k, c) ->
                Printf.sprintf "%s:%d" (Fuzz.Scenario.kind_name k) c)
              result.Fuzz.Campaign.kind_counts));
      "verdict: "
      ^ Robust.Budget.completeness_to_string
          result.Fuzz.Campaign.completeness;
    ]
  in
  match result.Fuzz.Campaign.first_violation with
  | None ->
      let status =
        match result.Fuzz.Campaign.completeness with
        | `Truncated _ -> status_truncated
        | `Exhaustive -> 0
      in
      { status; lines = head @ [ "no violation found" ] }
  | Some cex ->
      let status =
        match cex.Fuzz.Campaign.violation with
        | Fuzz.Scenario.Stuck -> status_progress
        | _ -> status_violation
      in
      {
        status;
        lines =
          head
          @ [
              Printf.sprintf
                "VIOLATION (%s): run=%d kind=%s original-steps=%d \
                 shrunk-steps=%d candidates=%d"
                (Fuzz.Scenario.violation_to_string cex.Fuzz.Campaign.violation)
                cex.Fuzz.Campaign.run_index
                (Fuzz.Scenario.kind_name cex.Fuzz.Campaign.sched_kind)
                (Fuzz.Schedule.steps cex.Fuzz.Campaign.original)
                (Fuzz.Schedule.steps cex.Fuzz.Campaign.shrunk)
                (match cex.Fuzz.Campaign.shrink_stats with
                | Some s -> s.Fuzz.Shrink.candidates
                | None -> 0);
              Format.asprintf "schedule: %a" Fuzz.Schedule.pp
                cex.Fuzz.Campaign.shrunk;
            ];
      }

(* ---- execution ---- *)

let make_budget ?nodes ?deadline ?cancel ?on_poll () =
  match (nodes, deadline, cancel, on_poll) with
  | None, None, None, None -> None
  | _ -> Some (Robust.Budget.make ?nodes ?deadline ?cancel ?on_poll ())

let run_mc ?pool ?cancel ?on_poll ?checkpoint ~deadline (m : mc) =
  match Consensus.Registry.find m.mc_protocol with
  | None ->
      {
        status = status_bad_args;
        lines =
          [
            Printf.sprintf "unknown protocol %S; try `randsync list`"
              m.mc_protocol;
          ];
      }
  | Some p ->
      let stamp = mc_stamp m in
      (* A matching checkpoint resumes the interrupted search; anything
         else (missing file, foreign stamp, parse error, dedup on — whose
         table contents are not checkpointed) falls back to a fresh run,
         which yields the identical verdict at the cost of redone work. *)
      let resume =
        match checkpoint with
        | Some path when m.mc_dedup = `Off && Sys.file_exists path -> (
            match Mc.Checkpoint.load ~path with
            | saved_stamp, state when saved_stamp = stamp -> Some state
            | _ -> None
            | exception (Sys_error _ | Sim.Trace_io.Parse_error _) -> None)
        | _ -> None
      in
      let nodes =
        match (m.mc_max_nodes, resume) with
        | Some k, Some state ->
            (* the allowance is per-search: shrink it by the prefix the
               checkpoint already accounts for, so resumed-and-direct
               runs trip at the same frontier *)
            Some (max 0 (k - state.Mc.Checkpoint.visited))
        | k, _ -> k
      in
      let budget = make_budget ?nodes ?deadline ?cancel ?on_poll () in
      let on_checkpoint =
        Option.map
          (fun path state -> Mc.Checkpoint.save ~path ~scenario:stamp state)
          checkpoint
      in
      let config = Consensus.Protocol.initial_config p ~inputs:m.mc_inputs in
      let result =
        match (pool, checkpoint) with
        | Some pool, None ->
            Mc.Explore.search_par ~pool ?budget ~dedup:m.mc_dedup
              ~max_depth:m.mc_depth ~max_states:m.mc_max_states ~state:`Flat
              ~inputs:m.mc_inputs config
        | _ ->
            (* checkpointing runs on the sequential closure engine (the
               flat DFS does not checkpoint); verdicts and counters are
               engine-identical *)
            Mc.Explore.search ?budget ~dedup:m.mc_dedup ~max_depth:m.mc_depth
              ~max_states:m.mc_max_states ?on_checkpoint ?resume
              ~state:(if checkpoint = None then `Flat else `Closure)
              ~inputs:m.mc_inputs config
      in
      mc_report result

let run_fuzz ?pool ?cancel ?on_poll ~deadline (f : fuzz) =
  match
    Fuzz.Scenario.find ?inputs:f.fz_inputs ~engine:f.fz_engine f.fz_scenario
  with
  | Error e -> { status = status_bad_args; lines = [ e ] }
  | Ok sc ->
      let budget =
        make_budget ?nodes:f.fz_max_runs ?deadline ?cancel ?on_poll ()
      in
      let result =
        Fuzz.Campaign.run ?pool ?budget ~shrink:f.fz_shrink
          ~max_candidates:f.fz_max_candidates ~runs:f.fz_runs ~seed:f.fz_seed
          sc
      in
      fuzz_report ~describe:sc.Fuzz.Scenario.describe ~seed:f.fz_seed result

let checker_verdict v = Format.asprintf "%a" Sim.Checker.pp v

let run_attack ?pool ?cancel ?on_poll ~deadline (a : attack) =
  match Consensus.Registry.find a.at_protocol with
  | None ->
      {
        status = status_bad_args;
        lines =
          [
            Printf.sprintf "unknown protocol %S; try `randsync list`"
              a.at_protocol;
          ];
      }
  | Some p ->
      if a.at_general then begin
        let budget = make_budget ?deadline ?cancel ?on_poll () in
        match Lowerbound.General_attack.run ?budget p with
        | Error (Lowerbound.General_attack.Budget_exhausted reason) ->
            {
              status = status_truncated;
              lines =
                [
                  Printf.sprintf "verdict: truncated (%s)"
                    (Robust.Budget.reason_to_string reason);
                ];
            }
        | Error e ->
            {
              status = status_attack_failed;
              lines = [ Lowerbound.General_attack.error_to_string e ];
            }
        | Ok o ->
            let head =
              [
                Printf.sprintf
                  "general attack on %s: processes=%d objects=%d pieces=%d/%d"
                  a.at_protocol o.Lowerbound.General_attack.processes_used
                  o.Lowerbound.General_attack.registers
                  o.Lowerbound.General_attack.pieces_alpha
                  o.Lowerbound.General_attack.pieces_beta;
                "verdict: "
                ^ checker_verdict o.Lowerbound.General_attack.verdict;
              ]
            in
            if Lowerbound.General_attack.succeeded o then
              {
                status = status_violation;
                lines = head @ [ "INCONSISTENT EXECUTION CONSTRUCTED" ];
              }
            else { status = 0; lines = head }
      end
      else begin
        let sweep_line = ref [] in
        let outcome =
          if a.at_seeds <= 0 then Lowerbound.Attack.run p
          else begin
            let sweep =
              Lowerbound.Attack.seed_sweep ?pool
                ~seeds:(List.init a.at_seeds (fun i -> i + 1))
                p
            in
            match Lowerbound.Attack.best_witness sweep with
            | Some (seed, o) ->
                sweep_line :=
                  [
                    Printf.sprintf
                      "seed sweep 1..%d: best witness from seed %d (%d steps)"
                      a.at_seeds seed
                      (Sim.Trace.steps o.Lowerbound.Attack.trace);
                  ];
                Ok o
            | None -> (
                match List.assoc_opt 1 sweep with
                | Some r -> r
                | None -> Lowerbound.Attack.run p)
          end
        in
        match outcome with
        | Error e ->
            {
              status = status_attack_failed;
              lines = [ Lowerbound.Attack.error_to_string e ];
            }
        | Ok o ->
            let head =
              !sweep_line
              @ [
                  Printf.sprintf "attack on %s: processes=%d registers=%d"
                    a.at_protocol o.Lowerbound.Attack.processes_used
                    o.Lowerbound.Attack.registers;
                  "verdict: " ^ checker_verdict o.Lowerbound.Attack.verdict;
                ]
            in
            if Lowerbound.Attack.succeeded o then
              {
                status = status_violation;
                lines = head @ [ "INCONSISTENT EXECUTION CONSTRUCTED" ];
              }
            else { status = 0; lines = head }
      end

let execute ?pool ?cancel ?on_poll ?checkpoint t =
  (* the spec carries a relative budget; Budget deadlines are absolute
     gettimeofday instants *)
  let deadline = Option.map (fun d -> Unix.gettimeofday () +. d) t.deadline in
  try
    match t.spec with
    | Mc m -> run_mc ?pool ?cancel ?on_poll ?checkpoint ~deadline m
    | Fuzz f -> run_fuzz ?pool ?cancel ?on_poll ~deadline f
    | Attack a -> run_attack ?pool ?cancel ?on_poll ~deadline a
  with exn ->
    (* a job must never take a worker down with it *)
    {
      status = status_bad_args;
      lines = [ "job failed: " ^ Printexc.to_string exn ];
    }
