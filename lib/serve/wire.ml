(* Frame codec for the serve protocol.  Encoding is canonical (field
   order fixed); decoding is strict — version, type tag and every field
   are validated, and any failure is an [Error] the server can answer
   and then hang up on. *)

let version = 1

type request =
  | Ping
  | Submit of { job : Job.t; detach : bool }
  | Status of { id : int option }
  | Result of { id : int }
  | Cancel of { id : int }
  | Drain

type job_state = Queued | Running | Done of int | Cancelled | Interrupted

type job_line = { id : int; label : string; state : job_state }

type reply =
  | Pong
  | Accepted of { id : int }
  | Overloaded of { queued : int; limit : int }
  | Draining
  | Progress of { id : int; nodes : int; steps : int }
  | Verdict of { id : int; status : int; lines : string list }
  | Jobs of { draining : bool; jobs : job_line list }
  | Cancelled of { id : int }
  | Error of { message : string }

let ( let* ) = Result.bind

let frame ty fields =
  Json.to_string
    (Json.Obj ([ ("v", Json.Int version); ("type", Json.String ty) ] @ fields))

(* Every decode funnels through here so version skew fails identically
   everywhere: parse, check "v", dispatch on "type". *)
let decode_frame line k =
  let* j = Json.parse line in
  let* v = Json.int "v" j in
  if v <> version then
    Error (Printf.sprintf "unsupported protocol version %d (want %d)" v version)
  else
    let* ty = Json.str "type" j in
    k ty j

(* ---- requests ---- *)

let encode_request = function
  | Ping -> frame "ping" []
  | Submit { job; detach } ->
      frame "submit"
        ([ ("job", Job.to_json job) ]
        @ if detach then [ ("detach", Json.Bool true) ] else [])
  | Status { id } ->
      frame "status" (match id with None -> [] | Some i -> [ ("id", Json.Int i) ])
  | Result { id } -> frame "result" [ ("id", Json.Int id) ]
  | Cancel { id } -> frame "cancel" [ ("id", Json.Int id) ]
  | Drain -> frame "drain" []

let decode_request line =
  decode_frame line @@ fun ty j ->
  match ty with
  | "ping" -> Ok Ping
  | "submit" ->
      let* spec =
        match Json.mem "job" j with
        | Some spec -> Ok spec
        | None -> Error "missing field \"job\""
      in
      let* job = Job.of_json spec in
      let* detach = Json.bool_opt "detach" j in
      Ok (Submit { job; detach = Option.value detach ~default:false })
  | "status" ->
      let* id = Json.int_opt "id" j in
      Ok (Status { id })
  | "result" ->
      let* id = Json.int "id" j in
      Ok (Result { id })
  | "cancel" ->
      let* id = Json.int "id" j in
      Ok (Cancel { id })
  | "drain" -> Ok Drain
  | ty -> Error (Printf.sprintf "unknown request type %S" ty)

(* ---- replies ---- *)

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"
  | Cancelled -> "cancelled"
  | Interrupted -> "interrupted"

let encode_reply = function
  | Pong -> frame "pong" []
  | Accepted { id } -> frame "accepted" [ ("id", Json.Int id) ]
  | Overloaded { queued; limit } ->
      frame "overloaded"
        [ ("queued", Json.Int queued); ("limit", Json.Int limit) ]
  | Draining -> frame "draining" []
  | Progress { id; nodes; steps } ->
      frame "progress"
        [
          ("id", Json.Int id);
          ("nodes", Json.Int nodes);
          ("steps", Json.Int steps);
        ]
  | Verdict { id; status; lines } ->
      frame "verdict"
        [
          ("id", Json.Int id);
          ("status", Json.Int status);
          ("lines", Json.List (List.map (fun l -> Json.String l) lines));
        ]
  | Jobs { draining; jobs } ->
      frame "jobs"
        [
          ("draining", Json.Bool draining);
          ( "jobs",
            Json.List
              (List.map
                 (fun jl ->
                   Json.Obj
                     ([
                        ("id", Json.Int jl.id);
                        ("label", Json.String jl.label);
                        ("state", Json.String (state_name jl.state));
                      ]
                     @
                     match jl.state with
                     | Done status -> [ ("status", Json.Int status) ]
                     | _ -> []))
                 jobs) );
        ]
  | Cancelled { id } -> frame "cancelled" [ ("id", Json.Int id) ]
  | Error { message } -> frame "error" [ ("message", Json.String message) ]

let decode_job_line j =
  let* id = Json.int "id" j in
  let* label = Json.str "label" j in
  let* state = Json.str "state" j in
  let* state =
    match state with
    | "queued" -> Ok Queued
    | "running" -> Ok Running
    | "cancelled" -> Ok Cancelled
    | "interrupted" -> Ok Interrupted
    | "done" ->
        let* status = Json.int "status" j in
        Ok (Done status)
    | s -> Error (Printf.sprintf "unknown job state %S" s)
  in
  Ok { id; label; state }

let decode_reply line =
  decode_frame line @@ fun ty j ->
  match ty with
  | "pong" -> Ok Pong
  | "accepted" ->
      let* id = Json.int "id" j in
      Ok (Accepted { id })
  | "overloaded" ->
      let* queued = Json.int "queued" j in
      let* limit = Json.int "limit" j in
      Ok (Overloaded { queued; limit })
  | "draining" -> Ok Draining
  | "progress" ->
      let* id = Json.int "id" j in
      let* nodes = Json.int "nodes" j in
      let* steps = Json.int "steps" j in
      Ok (Progress { id; nodes; steps })
  | "verdict" ->
      let* id = Json.int "id" j in
      let* status = Json.int "status" j in
      let* lines = Json.str_list "lines" j in
      Ok (Verdict { id; status; lines })
  | "jobs" ->
      let* draining = Json.bool "draining" j in
      let* jobs =
        match Json.mem "jobs" j with
        | Some (Json.List items) ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | item :: rest ->
                  let* jl = decode_job_line item in
                  go (jl :: acc) rest
            in
            go [] items
        | Some _ -> Error "field \"jobs\" is not a list"
        | None -> Error "missing field \"jobs\""
      in
      Ok (Jobs { draining; jobs })
  | "cancelled" ->
      let* id = Json.int "id" j in
      Ok (Cancelled { id })
  | "error" ->
      let* message = Json.str "message" j in
      Ok (Error { message })
  | ty -> Error (Printf.sprintf "unknown reply type %S" ty)
