(** The serve wire protocol: version-1 line-JSON frames.

    One frame per line, one JSON object per frame, every frame carrying
    [{"v":1}].  Requests flow client-to-server; replies flow back, and a
    single request may produce a stream of replies ([Progress]* then
    [Verdict] for an attached submit).  Decoding is strict end to end:
    the line must be exactly one JSON object (trailing garbage is a
    parse error — see {!Json.parse}), the version must be [1], the type
    tag must be known, and every field must type-check.  A frame that
    fails any of these decodes to [Error], which the server answers with
    an [Error] reply before dropping the connection — malformed input
    can only ever cost its sender.

    Statuses inside [Verdict] frames reuse the CLI exit-code contract
    (see {!Job}); the protocol adds no status space of its own. *)

val version : int

type request =
  | Ping
  | Submit of { job : Job.t; detach : bool }
      (** [detach]: don't stream progress/verdict to this connection and
          don't tie the job's life to it — the submitter (or anyone) can
          poll [Status] later.  Detached jobs survive client disconnect;
          attached jobs are cancelled when their client goes away. *)
  | Status of { id : int option }  (** [None]: all jobs. *)
  | Result of { id : int }
      (** fetch a terminal job's verdict frame (works across restarts:
          verdicts are spooled).  [Error] reply while the job is still
          queued or running. *)
  | Cancel of { id : int }
  | Drain  (** operator request: same semantics as SIGTERM *)

type job_state =
  | Queued
  | Running
  | Done of int  (** terminal wire status, i.e. the CLI exit code *)
  | Cancelled
  | Interrupted
      (** drain/crash cut the run; the job is still pending in the spool
          and a restarted server will re-run (mc: resume) it *)

type job_line = { id : int; label : string; state : job_state }

type reply =
  | Pong
  | Accepted of { id : int }
  | Overloaded of { queued : int; limit : int }
      (** load-shed: the bounded admission queue is full.  The job was
          {e not} enqueued; clients retry with backoff. *)
  | Draining  (** not admitting: drain in progress *)
  | Progress of { id : int; nodes : int; steps : int }
  | Verdict of { id : int; status : int; lines : string list }
  | Jobs of { draining : bool; jobs : job_line list }
  | Cancelled of { id : int }
  | Error of { message : string }

val encode_request : request -> string
(** One line, no trailing newline. *)

val decode_request : string -> (request, string) result
val encode_reply : reply -> string
val decode_reply : string -> (reply, string) result
