(** A minimal, strict JSON codec for the wire protocol and the job spool.

    The repo deliberately has no third-party JSON dependency; everything
    emitted so far ([Obs.dump], bench rows) is printf-built line-JSON.
    The server must also {e parse} untrusted client frames, so this
    module provides the other half: a recursive-descent parser that is
    strict where robustness demands it —

    - the whole input must be one JSON value: trailing garbage after the
      closing brace is a parse error, never silently ignored (a
      truncated or interleaved frame therefore cannot masquerade as a
      shorter valid one);
    - nesting depth is capped (an adversarial ["[[[[..."] line fails
      with an error instead of exhausting the stack);
    - every failure is a [(value, string) result], never an exception:
      a malformed frame can only ever cost its sender the connection;
    - [\uXXXX] escapes decode to UTF-8: a high surrogate must be
      immediately followed by an escaped low surrogate and the pair
      decodes to one astral code point (["😀"] is the four
      UTF-8 bytes of U+1F600), while a lone or misordered surrogate is a
      parse error (RFC 8259 §8.2) — never smuggled through as
      UTF-8-invalid CESU-8 bytes.

    Numbers are kept as [Int] when they lex as an OCaml int (ids, exit
    statuses) and [Float] otherwise (deadlines). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [parse s] parses exactly one JSON value spanning all of [s]
    (surrounding whitespace allowed).  [Error msg] on anything else. *)
val parse : string -> (t, string) result

(** Canonical single-line rendering (no spaces, object fields in the
    order given).  String contents that form valid UTF-8 are emitted as
    [\uXXXX] escapes — one unit per BMP code point, a surrogate pair per
    astral code point, the exact inverse of what {!parse} accepts — so
    [parse (to_string v)] round-trips for every [v] whose strings are
    valid UTF-8 (and the emitted frame is pure ASCII).  Bytes outside
    any valid UTF-8 sequence pass through raw. *)
val to_string : t -> string

(** {1 Accessors} — each returns [Error] with the offending [name] on a
    missing field or a type mismatch, so frame decoding reads linearly. *)

val mem : string -> t -> t option

val str : string -> t -> (string, string) result
val int : string -> t -> (int, string) result
val bool : string -> t -> (bool, string) result
val num : string -> t -> (float, string) result

(** [int_list name obj] decodes a field holding a list of ints. *)
val int_list : string -> t -> (int list, string) result

val str_list : string -> t -> (string list, string) result

(** Optional variants: [Ok None] when the field is absent or [Null]. *)

val str_opt : string -> t -> (string option, string) result
val int_opt : string -> t -> (int option, string) result
val num_opt : string -> t -> (float option, string) result
val bool_opt : string -> t -> (bool option, string) result
val int_list_opt : string -> t -> (int list option, string) result
