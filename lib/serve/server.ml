(* The serve daemon.  Threading model: one accept loop (the calling
   thread), one reader thread per connection, [workers] worker threads
   draining the admission queue.  All shared state lives in [t] behind
   one mutex; replies go out under a per-connection write lock so a slow
   client can only ever block its own frames.  The Obs handle is
   single-domain by contract, and here additionally single-threaded by
   the state mutex. *)

(* the repo's [mutex] library (mutual-exclusion protocols, pulled in via
   fuzz) shadows the stdlib Mutex unit in this scope; re-alias the real
   one through the Stdlib namespace *)
module Mutex = Stdlib.Mutex

type address = [ `Unix of string | `Tcp of string * int ]

type config = {
  address : address;
  queue_limit : int;
  workers : int;
  spool_dir : string option;
  obs : Obs.t option;
  progress_interval : float;
}

let default_queue_limit = 64

let default_workers = 2

type conn = {
  fd : Unix.file_descr;
  oc : out_channel;
  olock : Mutex.t;
  mutable alive : bool;
  mutable attached : int list;  (* job ids whose fate is tied to us *)
}

type jstate =
  | Queued
  | Running
  | Done of Job.outcome
  | Cancelled_j
  | Interrupted

type jrec = {
  id : int;
  job : Job.t;
  cancel : Robust.Cancel.t;
  mutable state : jstate;
  mutable origin : [ `None | `Client | `Drain ];  (* who set [cancel] *)
  mutable watchers : conn list;
  mutable last_progress : float;
  detached : bool;
}

type t = {
  cfg : config;
  m : Mutex.t;
  work : Condition.t;  (* signalled on enqueue and on drain *)
  queue : int Queue.t;
  jobs : (int, jrec) Hashtbl.t;
  mutable next_id : int;
  mutable draining : bool;
  mutable in_flight : int;
  spool : Spool.t option;
  drain_flag : bool Atomic.t;  (* set from the signal handler *)
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* obs is only ever touched under t.m *)
let obs_incr t name = Obs.incr t.cfg.obs name

let obs_gauges t =
  Obs.record_max t.cfg.obs "serve/queue-depth" (Queue.length t.queue);
  Obs.record_max t.cfg.obs "serve/in-flight" t.in_flight

(* ---- replies ---- *)

let send conn reply =
  Mutex.lock conn.olock;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.olock) @@ fun () ->
  if conn.alive then
    try
      output_string conn.oc (Wire.encode_reply reply);
      output_char conn.oc '\n';
      flush conn.oc
    with Sys_error _ | Unix.Unix_error _ -> conn.alive <- false

let notify jr reply = List.iter (fun c -> send c reply) jr.watchers

(* ---- cancellation paths ---- *)

(* under t.m *)
let cancel_job t jr ~origin =
  match jr.state with
  | Queued ->
      (* surgically drop it from the admission queue *)
      let keep = Queue.create () in
      Queue.iter (fun i -> if i <> jr.id then Queue.add i keep) t.queue;
      Queue.clear t.queue;
      Queue.transfer keep t.queue;
      jr.state <- Cancelled_j;
      jr.origin <- origin;
      Option.iter (fun s -> Spool.mark_cancelled s ~id:jr.id) t.spool;
      obs_incr t "serve/cancelled";
      notify jr (Wire.Cancelled { id = jr.id })
  | Running ->
      (* the worker owns the epilogue; we just flip the token *)
      if jr.origin = `None then jr.origin <- origin;
      Robust.Cancel.set jr.cancel
  | Done _ | Cancelled_j | Interrupted -> ()

(* A connection died (EOF, malformed frame, write error): its attached
   jobs go with it — and nothing else does. *)
let cleanup_conn t conn =
  locked t @@ fun () ->
  if conn.alive then conn.alive <- false;
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.jobs id with
      | None -> ()
      | Some jr ->
          jr.watchers <- List.filter (fun c -> c != conn) jr.watchers;
          if jr.watchers = [] && not jr.detached then
            cancel_job t jr ~origin:`Client)
    conn.attached;
  conn.attached <- [];
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())

(* ---- the worker epilogue: classify how a job ended ---- *)

let interrupted_line = "verdict: truncated (cancelled)"

let finish_job t jr (outcome : Job.outcome) =
  locked t @@ fun () ->
  t.in_flight <- t.in_flight - 1;
  let cut_by_cancel = List.mem interrupted_line outcome.Job.lines in
  (match (jr.origin, cut_by_cancel) with
  | `Drain, true ->
      (* drained mid-run: the checkpoint (if mc) holds the cursor and the
         spool still holds the spec — a restart finishes the job *)
      jr.state <- Interrupted;
      obs_incr t "serve/interrupted"
  | `Client, true ->
      jr.state <- Cancelled_j;
      Option.iter (fun s -> Spool.mark_cancelled s ~id:jr.id) t.spool;
      obs_incr t "serve/cancelled";
      notify jr (Wire.Cancelled { id = jr.id })
  | _ ->
      (* completed on merit (possibly outrunning a late cancel) *)
      jr.state <- Done outcome;
      Option.iter (fun s -> Spool.record_verdict s ~id:jr.id outcome) t.spool;
      obs_incr t "serve/done";
      notify jr
        (Wire.Verdict
           { id = jr.id; status = outcome.Job.status; lines = outcome.Job.lines }));
  obs_gauges t

let worker_loop t =
  let rec next () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.draining do
      Condition.wait t.work t.m
    done;
    if t.draining then begin
      (* draining: anything still queued stays pending in the spool for
         the next server; only running jobs are finished or cut *)
      Mutex.unlock t.m;
      ()
    end
    else begin
      let id = Queue.pop t.queue in
      match Hashtbl.find_opt t.jobs id with
      | None ->
          Mutex.unlock t.m;
          next ()
      | Some jr ->
          jr.state <- Running;
          t.in_flight <- t.in_flight + 1;
          obs_gauges t;
          Mutex.unlock t.m;
          let on_poll ~nodes ~steps =
            let now = Unix.gettimeofday () in
            let due =
              locked t @@ fun () ->
              if now -. jr.last_progress >= t.cfg.progress_interval then begin
                jr.last_progress <- now;
                true
              end
              else false
            in
            if due then
              notify jr (Wire.Progress { id = jr.id; nodes; steps })
          in
          let checkpoint =
            match (t.spool, jr.job.Job.spec) with
            | Some s, Job.Mc _ -> Some (Spool.checkpoint_path s ~id:jr.id)
            | _ -> None
          in
          let t0 = Unix.gettimeofday () in
          let outcome =
            Job.execute ~cancel:jr.cancel ~on_poll ?checkpoint jr.job
          in
          let dt = Unix.gettimeofday () -. t0 in
          locked t (fun () ->
              Obs.observe t.cfg.obs "serve/job-seconds" dt);
          finish_job t jr outcome;
          next ()
    end
  in
  next ()

(* ---- request handling (reader threads) ---- *)

let handle_request t conn = function
  | Wire.Ping -> send conn Wire.Pong
  | Wire.Drain ->
      Atomic.set t.drain_flag true;
      send conn Wire.Draining
  | Wire.Status { id } ->
      let reply =
        locked t @@ fun () ->
        let line jr =
          {
            Wire.id = jr.id;
            label = Job.label jr.job;
            state =
              (match jr.state with
              | Queued -> Wire.Queued
              | Running -> Wire.Running
              | Done o -> Wire.Done o.Job.status
              | Cancelled_j -> Wire.Cancelled
              | Interrupted -> Wire.Interrupted);
          }
        in
        let jobs =
          match id with
          | Some id -> (
              match Hashtbl.find_opt t.jobs id with
              | Some jr -> [ line jr ]
              | None -> [])
          | None ->
              Hashtbl.fold (fun _ jr acc -> line jr :: acc) t.jobs []
              |> List.sort (fun a b -> compare a.Wire.id b.Wire.id)
        in
        Wire.Jobs { draining = t.draining; jobs }
      in
      send conn reply
  | Wire.Result { id } ->
      let reply =
        locked t @@ fun () ->
        match Hashtbl.find_opt t.jobs id with
        | None -> Wire.Error { message = Printf.sprintf "no such job %d" id }
        | Some jr -> (
            match jr.state with
            | Done o ->
                Wire.Verdict { id; status = o.Job.status; lines = o.Job.lines }
            | Cancelled_j -> Wire.Cancelled { id }
            | Queued | Running | Interrupted ->
                Wire.Error
                  { message = Printf.sprintf "job %d is not finished" id })
      in
      send conn reply
  | Wire.Cancel { id } ->
      let found =
        locked t @@ fun () ->
        match Hashtbl.find_opt t.jobs id with
        | None -> false
        | Some jr ->
            cancel_job t jr ~origin:`Client;
            true
      in
      if not found then
        send conn (Wire.Error { message = Printf.sprintf "no such job %d" id })
      else send conn (Wire.Cancelled { id })
  | Wire.Submit { job; detach } -> (
      let decision =
        locked t @@ fun () ->
        if t.draining || Atomic.get t.drain_flag then `Draining
        else if Queue.length t.queue >= t.cfg.queue_limit then begin
          obs_incr t "serve/shed";
          `Shed (Queue.length t.queue)
        end
        else begin
          let id = t.next_id in
          t.next_id <- id + 1;
          `Admit id
        end
      in
      match decision with
      | `Draining -> send conn Wire.Draining
      | `Shed queued ->
          send conn (Wire.Overloaded { queued; limit = t.cfg.queue_limit })
      | `Admit id ->
          (* on disk before the accepted reply: a crash after this point
             cannot lose an admitted job *)
          Option.iter (fun s -> Spool.add s ~id job) t.spool;
          let jr =
            {
              id;
              job;
              cancel = Robust.Cancel.create ();
              state = Queued;
              origin = `None;
              watchers = (if detach then [] else [ conn ]);
              last_progress = 0.;
              detached = detach;
            }
          in
          send conn (Wire.Accepted { id });
          locked t (fun () ->
              Hashtbl.replace t.jobs id jr;
              if not detach then conn.attached <- id :: conn.attached;
              Queue.add id t.queue;
              obs_incr t "serve/submitted";
              obs_gauges t;
              Condition.signal t.work))

let reader_loop t conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  let rec go () =
    match input_line ic with
    | line -> (
        match Wire.decode_request line with
        | Ok req ->
            handle_request t conn req;
            if conn.alive then go ()
        | Error msg ->
            (* malformed frame: tell them why, then hang up on them —
               their jobs die with the connection, nobody else's do *)
            locked t (fun () -> obs_incr t "serve/malformed");
            send conn (Wire.Error { message = "bad frame: " ^ msg }))
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
  in
  go ();
  cleanup_conn t conn

(* ---- lifecycle ---- *)

let bind_listen address =
  match address with
  | `Unix path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, address)
  | `Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      let actual =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> `Tcp (host, p)
        | _ -> address
      in
      (fd, actual)

let run ?on_ready cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let drain_flag = Atomic.make false in
  let on_term = Sys.Signal_handle (fun _ -> Atomic.set drain_flag true) in
  Sys.set_signal Sys.sigterm on_term;
  Sys.set_signal Sys.sigint on_term;
  let spool = Option.map (fun dir -> Spool.create ~dir) cfg.spool_dir in
  let t =
    {
      cfg;
      m = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      jobs = Hashtbl.create 64;
      next_id = 1;
      draining = false;
      in_flight = 0;
      spool;
      drain_flag;
    }
  in
  (* recovery: terminal jobs come back queryable, everything else is
     owed a (re-)run *)
  Option.iter
    (fun s ->
      let r = Spool.recover s in
      t.next_id <- r.Spool.next_id;
      List.iter
        (fun (e : Spool.entry) ->
          let state, requeue =
            match e.Spool.fate with
            | `Finished outcome -> (Done outcome, false)
            | `Cancelled -> (Cancelled_j, false)
            | `Pending -> (Queued, true)
          in
          let jr =
            {
              id = e.Spool.id;
              job = e.Spool.job;
              cancel = Robust.Cancel.create ();
              state;
              origin = `None;
              watchers = [];
              last_progress = 0.;
              detached = true;  (* no live client owns a recovered job *)
            }
          in
          Hashtbl.replace t.jobs jr.id jr;
          if requeue then begin
            Queue.add jr.id t.queue;
            Obs.incr cfg.obs "serve/recovered"
          end)
        r.Spool.entries)
    spool;
  let listen_fd, actual = bind_listen cfg.address in
  let workers = List.init cfg.workers (fun _ -> Thread.create worker_loop t) in
  Option.iter (fun f -> f actual) on_ready;
  (* accept loop: select with a timeout so the drain flag set by the
     signal handler is noticed promptly even with no traffic *)
  let rec accept_loop () =
    if Atomic.get drain_flag then ()
    else begin
      match Unix.select [ listen_fd ] [] [] 0.2 with
      | [], _, _ -> accept_loop ()
      | _ :: _, _, _ -> (
          match Unix.accept listen_fd with
          | fd, _ ->
              (* a reply to a non-reading client must not wedge a worker:
                 writes time out and the connection is declared dead *)
              (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
               with Unix.Unix_error _ -> ());
              let conn =
                {
                  fd;
                  oc = Unix.out_channel_of_descr fd;
                  olock = Mutex.create ();
                  alive = true;
                  attached = [];
                }
              in
              ignore (Thread.create (fun () -> reader_loop t conn) ());
              accept_loop ()
          | exception Unix.Unix_error _ -> accept_loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    end
  in
  accept_loop ();
  (* ---- drain ---- *)
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match cfg.address with
  | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | `Tcp _ -> ());
  locked t (fun () ->
      t.draining <- true;
      Hashtbl.iter
        (fun _ jr ->
          if jr.state = Running then begin
            if jr.origin = `None then jr.origin <- `Drain;
            Robust.Cancel.set jr.cancel
          end)
        t.jobs;
      Condition.broadcast t.work);
  List.iter Thread.join workers;
  (* the metrics file is written on the drain path, atomically, before
     the process exits — a SIGTERM never truncates it mid-line *)
  Option.iter
    (fun obs ->
      Obs.dump obs ~extra:[ ("cmd", "serve"); ("drained", "true") ])
    cfg.obs
