(** Executions under construction: the adversary grows an execution step
    by step while keeping the bookkeeping the proofs need — the full
    trace, the inputs of every process (clones included), and per object
    a snapshot of the last nontrivial writer's state taken just before its
    operation (the "clone left behind" device of Section 3.1). *)

open Sim

type t

type lineage = { clone : int; origin : int; cutoff : int }
(** [clone] behaves like [origin] after [cutoff] of the origin's steps —
    the data {!Attack.certify} needs to realize clones as genuine
    identical processes shadowing their origins lock-step. *)

val create : config:int Config.t -> inputs:int list -> t
val config : t -> int Config.t
val trace : t -> int Trace.t
val inputs : t -> int list
val n_procs : t -> int

(** Clone genealogy, in creation order. *)
val genealogy : t -> lineage list

(** Steps completed by a process so far. *)
val steps_of : t -> int -> int

(** Input of a process; raises [Invalid_argument] for unknown pids. *)
val input_of : t -> int -> int

(** {1 Snapshots} *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

(** {1 Stepping} *)

(** One step of [pid]; [coin] supplies the outcome when the step is an
    internal flip (raises otherwise). *)
val step : t -> pid:int -> ?coin:int -> unit -> unit

(** Add a clone with the given state, input and lineage; returns its
    pid.  [fp] must be the origin's fingerprint at the snapshot moment
    (see [Sim.Fingerprint]) so clone and origin stay fingerprint-equal
    exactly when they are state-equal. *)
val add_clone :
  t ->
  state:int Proc.t ->
  fp:Fingerprint.t ->
  input:int ->
  origin:int ->
  cutoff:int ->
  int

(** A clone poised to re-perform the last nontrivial operation on the
    object; raises if none was recorded. *)
val clone_last_writer : t -> obj:int -> int

(** Clone a live process in its current state. *)
val clone_of : t -> pid:int -> int

(** A block write (Section 3): one nontrivial operation on each listed
    object by its poised writer, in order; raises if a writer is not
    poised as claimed. *)
val block_write : t -> (int * int) list -> unit

(** Run [pid] with the given coin outcomes until it decides, exhausts the
    coins at a flip, or [stop] holds (checked before each step); returns
    unused coins. *)
val run_coins :
  t ->
  pid:int ->
  coins:int list ->
  ?stop:(int Config.t -> int -> bool) ->
  unit ->
  int list

(** {1 Trace segments} *)

type mark

val mark : t -> mark

(** Events appended since the mark, in order. *)
val events_since : t -> mark -> int Event.t list

(** {1 Verdicts} *)

val decisions : t -> int list
val verdict : t -> Checker.verdict
