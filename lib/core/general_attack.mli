(** Lemma 3.6 / Theorem 3.7, as a program: the adversary for arbitrary
    (not necessarily identical) processes over historyless objects.  No
    cloning: interruptible executions and excess capacity throughout. *)

open Sim

type outcome = {
  trace : int Trace.t;
  config : int Config.t;
  verdict : Checker.verdict;
  inputs : int list;
  processes_used : int;
  registers : int;
  pieces_alpha : int;
  pieces_beta : int;
}

type error =
  | Side_decides_wrong of { side : int; got : int }
  | Construction_failed of string
  | Budget_exhausted of Robust.Budget.reason
      (** the governed construction was cut short: no witness {e and} no
          evidence of robustness — an explicitly unknown outcome *)

val error_to_string : error -> string

(** The paper's 3r^2 + r plus the slack the executable construction needs
    at its final level (see DESIGN.md). *)
val default_processes : int -> int

(** [?budget] governs the construction's internal solo searches (via
    {!Combine.with_budget_meter}); a trip surfaces as
    [Error (Budget_exhausted reason)] instead of an exception. *)
val run :
  ?budget:Robust.Budget.t ->
  ?processes:int ->
  Consensus.Protocol.t ->
  (outcome, error) result

val succeeded : outcome -> bool

(** Smallest (even) process count at which the attack lands, searched
    upward.  With [?pool], candidate counts are evaluated in parallel
    batches; the result is identical to the sequential scan.  With
    [?budget], a candidate that trips the budget before any smaller
    candidate succeeded yields [`Truncated] — the minimum is unknowable
    this run, and reporting a later success would overstate the bound. *)
val minimum_processes_gov :
  ?pool:Par.Pool.t ->
  ?budget:Robust.Budget.t ->
  ?start:int ->
  ?limit:int ->
  Consensus.Protocol.t ->
  [ `Found of int | `Not_found | `Truncated of Robust.Budget.reason ]

(** [minimum_processes_gov] without a budget, as an option. *)
val minimum_processes :
  ?pool:Par.Pool.t ->
  ?start:int ->
  ?limit:int ->
  Consensus.Protocol.t ->
  int option

(** Run the attack against a batch of protocols in parallel; results in
    input order. *)
val sweep :
  ?pool:Par.Pool.t ->
  ?budget:Robust.Budget.t ->
  ?processes:int ->
  Consensus.Protocol.t list ->
  (string * (outcome, error) result) list

(** Independent cross-check by exhaustive model checking: search the
    protocol's execution tree on a small mixed-input instance
    ([?processes], default 2, split half-and-half) and report the
    [Mc.Explore] result — a violation in it confirms, by an unrelated
    method, that the protocol is genuinely attackable.  [?dedup] defaults
    to [`Symmetric], sound for any packaged protocol. *)
val confirm :
  ?budget:Robust.Budget.t ->
  ?dedup:Mc.Explore.dedup ->
  ?processes:int ->
  ?max_depth:int ->
  ?max_states:int ->
  Consensus.Protocol.t ->
  int Mc.Explore.result
