(** Lemma 3.6 / Theorem 3.7, as a program: the adversary for arbitrary
    (not necessarily identical) processes over historyless objects.  No
    cloning: interruptible executions and excess capacity throughout. *)

open Sim

type outcome = {
  trace : int Trace.t;
  config : int Config.t;
  verdict : Checker.verdict;
  inputs : int list;
  processes_used : int;
  registers : int;
  pieces_alpha : int;
  pieces_beta : int;
}

type error =
  | Side_decides_wrong of { side : int; got : int }
  | Construction_failed of string

val error_to_string : error -> string

(** The paper's 3r^2 + r plus the slack the executable construction needs
    at its final level (see DESIGN.md). *)
val default_processes : int -> int

val run : ?processes:int -> Consensus.Protocol.t -> (outcome, error) result
val succeeded : outcome -> bool

(** Smallest (even) process count at which the attack lands, searched
    upward.  With [?pool], candidate counts are evaluated in parallel
    batches; the result is identical to the sequential scan. *)
val minimum_processes :
  ?pool:Par.Pool.t ->
  ?start:int ->
  ?limit:int ->
  Consensus.Protocol.t ->
  int option

(** Run the attack against a batch of protocols in parallel; results in
    input order. *)
val sweep :
  ?pool:Par.Pool.t ->
  ?processes:int ->
  Consensus.Protocol.t list ->
  (string * (outcome, error) result) list

(** Independent cross-check by exhaustive model checking: search the
    protocol's execution tree on a small mixed-input instance
    ([?processes], default 2, split half-and-half) and report the
    [Mc.Explore] result — a violation in it confirms, by an unrelated
    method, that the protocol is genuinely attackable.  [?dedup] defaults
    to [`Symmetric], sound for any packaged protocol. *)
val confirm :
  ?dedup:Mc.Explore.dedup ->
  ?processes:int ->
  ?max_depth:int ->
  ?max_states:int ->
  Consensus.Protocol.t ->
  int Mc.Explore.result
