(* Nondeterministic solo termination, made effective.

   The property (Section 2): from every configuration, every process has
   *some* finite solo execution that completes its operation.  The proofs
   use it purely existentially; the executable adversary needs witnesses,
   so we search: depth-first over the process's internal coin outcomes
   (solo applies are deterministic), bounded by path length and total
   nodes.  A protocol for which the search fails within the budget is
   reported as such, never silently treated as terminating.

   [stop] generalizes the goal, e.g. Lemma 3.4 runs a process "until it has
   decided or is poised at an object in V-bar": pass a predicate that holds
   when the process's pending nontrivial operation lies outside V. *)

open Sim

type 'a found = {
  coins : int list;  (** coin outcomes along the found path, in order *)
  decision : 'a option;  (** [Some v] if the goal state has pid decided *)
  steps : int;  (** solo steps on the found path *)
}

let search ?(max_steps = 2_000) ?(max_nodes = 200_000) ?meter
    ?(stop = fun _config _pid -> false) ?rng (config : 'a Config.t) ~pid =
  let nodes = ref 0 in
  (* [meter] is the caller's budget (deadline/cancellation/global step
     cap) layered over the local [max_steps]/[max_nodes] bounds: local
     exhaustion means "no witness found" and the search backtracks, while
     a metered trip means "stop everything" and unwinds the whole
     construction via [Robust.Budget.Exhausted]. *)
  let guard () =
    match meter with
    | None -> ()
    | Some m -> Robust.Budget.Meter.guard_step m
  in
  (* With [rng], coin outcomes at each Choose node are tried in a
     shuffled order instead of 0..n-1: a randomized restart of the same
     complete search.  Different seeds reach different witnesses (and can
     escape pathological corners of the tree); a fixed seed is fully
     deterministic, which is what the parallel seed sweeps rely on. *)
  let outcome_order n =
    match rng with
    | None -> Array.init n Fun.id
    | Some rng ->
        let order = Array.init n Fun.id in
        Rng.shuffle rng order;
        order
  in
  (* rev_coins accumulates outcomes; returns the goal description *)
  let rec go config rev_coins steps =
    guard ();
    incr nodes;
    if !nodes > max_nodes || steps > max_steps then None
    else if Config.is_decided config pid then
      Some
        {
          coins = List.rev rev_coins;
          decision = Config.decision config pid;
          steps;
        }
    else if stop config pid then
      Some { coins = List.rev rev_coins; decision = None; steps }
    else
      match config.Config.procs.(pid) with
      | Proc.Decide _ -> assert false
      | Proc.Apply _ ->
          let config', _ = Run.step config ~pid ~coin:(fun _ -> 0) in
          go config' rev_coins (steps + 1)
      | Proc.Choose { n; _ } ->
          let order = outcome_order n in
          let rec try_outcome idx =
            if idx >= n then None
            else
              let o = order.(idx) in
              let config', _ = Run.step config ~pid ~coin:(fun _ -> o) in
              match go config' (o :: rev_coins) (steps + 1) with
              | Some _ as found -> found
              | None -> try_outcome (idx + 1)
          in
          try_outcome 0
  in
  go config [] 0

(** A terminating solo execution (decision goal only). *)
let terminating ?max_steps ?max_nodes ?meter ?rng config ~pid =
  search ?max_steps ?max_nodes ?meter ?rng config ~pid

(** Goal predicate: pid is poised at a nontrivial operation on an object
    outside [inside].  Combine with the implicit decided-goal to get
    Lemma 3.4's "until decided or poised at an object in V-bar". *)
let poised_outside inside config pid =
  match Triviality.poised_write config pid with
  | Some (obj, _) -> not (List.mem obj inside)
  | None -> false

(** Goal predicate: pid is poised at any nontrivial operation at all.
    Used to cut a solo execution at its first write (Lemma 3.2). *)
let poised_anywhere config pid = Triviality.poised_write config pid <> None
