(* An execution under construction.

   The adversary constructions of Section 3 grow an execution step by step
   while keeping bookkeeping the proofs need:

   - the full trace (so the final inconsistent execution is a replayable
     artifact, not just a claim);
   - the inputs of every process, including clones added along the way (so
     the final configuration can be checked for consistency *and*
     validity);
   - for every object, the state of the last process to apply a nontrivial
     operation to it, snapshotted *just before* that operation — this is
     the "clone left behind, poised to re-perform the last write" device of
     Section 3.1.  Process states are immutable values, so the snapshot is
     free and a clone is [Config.add_proc] of that value;
   - the *genealogy* of every clone — which process it snapshots and after
     how many of that process's steps — so the identical-process attack
     can later be certified: re-run from a fresh start with all clones
     present, each shadowing its origin lock-step ({!Attack.certify}). *)

open Sim

type writer_snapshot = {
  w_state : int Proc.t;  (** pre-step state of the last nontrivial writer *)
  w_fp : Fingerprint.t;  (** the writer's fingerprint at that same moment *)
  w_input : int;
  w_pid : int;
  w_steps : int;  (** steps the writer had completed before that op *)
}

type lineage = { clone : int; origin : int; cutoff : int }
(** [clone] behaves like [origin] after [cutoff] of the origin's steps. *)

type t = {
  mutable config : int Config.t;
  mutable rev_trace : int Event.t list;
  mutable inputs : (int * int) list;  (** (pid, input), newest first *)
  mutable genealogy : lineage list;
  steps_done : (int, int) Hashtbl.t;  (** pid -> steps completed *)
  last_writer : (int, writer_snapshot) Hashtbl.t;  (** per object *)
}

let create ~config ~inputs =
  {
    config;
    rev_trace = [];
    inputs = List.rev (List.mapi (fun pid input -> (pid, input)) inputs);
    genealogy = [];
    steps_done = Hashtbl.create 16;
    last_writer = Hashtbl.create 16;
  }

let config t = t.config
let trace t = List.rev t.rev_trace
let inputs t = List.rev_map snd t.inputs
let n_procs t = Config.n_procs t.config
let genealogy t = List.rev t.genealogy

let input_of t pid =
  match List.assoc_opt pid t.inputs with
  | Some i -> i
  | None -> invalid_arg "Builder.input_of: unknown pid"

let steps_of t pid =
  match Hashtbl.find_opt t.steps_done pid with Some k -> k | None -> 0

(** Snapshot for later rollback: configurations are persistent and traces
    are immutable lists, so a snapshot is O(1) plus copies of the small
    tables. *)
type snapshot = {
  s_config : int Config.t;
  s_rev_trace : int Event.t list;
  s_inputs : (int * int) list;
  s_genealogy : lineage list;
  s_steps_done : (int * int) list;
  s_last_writer : (int * writer_snapshot) list;
}

let snapshot t =
  {
    s_config = t.config;
    s_rev_trace = t.rev_trace;
    s_inputs = t.inputs;
    s_genealogy = t.genealogy;
    s_steps_done = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.steps_done [];
    s_last_writer =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.last_writer [];
  }

let restore t s =
  t.config <- s.s_config;
  t.rev_trace <- s.s_rev_trace;
  t.inputs <- s.s_inputs;
  t.genealogy <- s.s_genealogy;
  Hashtbl.reset t.steps_done;
  List.iter (fun (k, v) -> Hashtbl.replace t.steps_done k v) s.s_steps_done;
  Hashtbl.reset t.last_writer;
  List.iter (fun (k, v) -> Hashtbl.replace t.last_writer k v) s.s_last_writer

(** Perform one step of [pid].  [coin] supplies the outcome if the step is
    an internal coin flip (raises if a coin is needed but none given). *)
let step t ~pid ?coin () =
  (match Triviality.poised_write t.config pid with
  | Some (obj, _) ->
      Hashtbl.replace t.last_writer obj
        {
          w_state = t.config.Config.procs.(pid);
          w_fp = Config.fingerprint t.config pid;
          w_input = input_of t pid;
          w_pid = pid;
          w_steps = steps_of t pid;
        }
  | None -> ());
  let coin_fn _n =
    match coin with
    | Some c -> c
    | None -> invalid_arg "Builder.step: coin flip without an outcome"
  in
  let config', events = Run.step t.config ~pid ~coin:coin_fn in
  t.config <- config';
  t.rev_trace <- List.rev_append events t.rev_trace;
  Hashtbl.replace t.steps_done pid (steps_of t pid + 1)

(** Add a clone: a fresh process whose state is [state] (a snapshot of
    process [origin] after [cutoff] of its steps) and whose input is the
    origin's input.  Returns the clone's pid.  [fp] is the origin's
    fingerprint at the snapshot moment, so clone and origin stay
    fingerprint-equal exactly when they are state-equal. *)
let add_clone t ~state ~fp ~input ~origin ~cutoff =
  let config', pid = Config.add_proc ~fp t.config state in
  t.config <- config';
  t.inputs <- (pid, input) :: t.inputs;
  t.genealogy <- { clone = pid; origin; cutoff } :: t.genealogy;
  pid

(** A clone poised to re-perform the last nontrivial operation applied to
    [obj] (Section 3.1's "clone left behind").  Requires that some
    nontrivial operation on [obj] has been recorded. *)
let clone_last_writer t ~obj =
  match Hashtbl.find_opt t.last_writer obj with
  | Some { w_state; w_fp; w_input; w_pid; w_steps } ->
      add_clone t ~state:w_state ~fp:w_fp ~input:w_input ~origin:w_pid
        ~cutoff:w_steps
  | None ->
      invalid_arg
        (Printf.sprintf "Builder.clone_last_writer: no write recorded on obj %d" obj)

(** Clone an existing (live) process in its current state. *)
let clone_of t ~pid =
  add_clone t
    ~state:t.config.Config.procs.(pid)
    ~fp:(Config.fingerprint t.config pid)
    ~input:(input_of t pid) ~origin:pid ~cutoff:(steps_of t pid)

(** A block write (Section 3): one nontrivial operation on each object in
    the set, by the given poised writers, in object order.  Asserts every
    writer really is poised at its object. *)
let block_write t writers =
  List.iter
    (fun (obj, pid) ->
      (match Triviality.poised_write t.config pid with
      | Some (o, _) when o = obj -> ()
      | _ ->
          invalid_arg
            (Printf.sprintf
               "Builder.block_write: P%d is not poised at obj %d" pid obj));
      step t ~pid ())
    writers

(** Run [pid] with the given coin outcomes until it decides, runs out of
    coins at a flip, or [stop] holds (checked before each step).  Returns
    the unused coins. *)
let run_coins t ~pid ~coins ?(stop = fun _ _ -> false) () =
  let rec go coins =
    if Config.is_decided t.config pid then coins
    else if stop t.config pid then coins
    else
      match (t.config.Config.procs.(pid), coins) with
      | Proc.Choose _, [] -> coins
      | Proc.Choose _, c :: rest ->
          step t ~pid ~coin:c ();
          go rest
      | (Proc.Apply _ | Proc.Decide _), _ ->
          step t ~pid ();
          go coins
  in
  go coins

(** Position marker into the trace; use with [events_since] to extract the
    events of a segment just executed. *)
type mark = int Event.t list

let mark t : mark = t.rev_trace

let events_since t (m : mark) =
  let rec take acc rev =
    if rev == m then acc
    else
      match rev with
      | [] -> acc
      | ev :: rest -> take (ev :: acc) rest
  in
  take [] t.rev_trace

let decisions t = Config.decisions t.config

let verdict t = Checker.check ~inputs:(inputs t) ~decisions:(decisions t)
