(** Lemma 3.1, as a program: from a configuration and two sides (poised
    writer sets with solo-continuation witnesses deciding different
    values), grow an execution in the builder that decides both.  See the
    implementation header for the case analysis. *)

(** Raised when a construction step cannot proceed (budget exhausted,
    replay divergence, malformed sides); the attack drivers surface it as
    an error result. *)
exception Attack_failed of string

val fail : ('a, unit, string, 'b) format4 -> 'a

(** Budget for internal solo searches: (max_steps, max_nodes).  Stored
    domain-locally so parallel attack sweeps don't race on it; set it on
    the domain that runs the construction (the attack drivers do). *)
val set_search_budget : int * int -> unit

val get_search_budget : unit -> int * int

(** [with_budget_meter budget f] runs [f] with a fresh domain-local
    {!Robust.Budget.Meter} (created from [budget] unless it is [None] or
    unlimited) that every internal solo search ticks; a trip raises
    {!Robust.Budget.Exhausted} out of [f].  The previous meter is
    restored on exit, so governed constructions nest. *)
val with_budget_meter : Robust.Budget.t option -> (unit -> 'a) -> 'a

val combine : Builder.t -> Side.t -> Side.t -> unit
