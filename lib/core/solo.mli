(** Nondeterministic solo termination (Section 2), made effective: search
    the tree of a process's internal coin outcomes for a finite solo
    execution reaching a goal.  Protocols for which the search fails
    within its budget are reported as such, never silently assumed
    terminating. *)

open Sim

type 'a found = {
  coins : int list;  (** coin outcomes along the found path, in order *)
  decision : 'a option;  (** [Some v] iff the goal state has pid decided *)
  steps : int;
}

(** Goal: pid decided, or [stop config pid] holds (checked before each
    step).  With [rng], coin outcomes at each node are tried in a
    shuffled order — a randomized restart of the same complete search,
    deterministic for a fixed generator state (used by the parallel seed
    sweeps in {!Attack}).

    [?meter] layers a caller-wide budget (deadline, cancellation, global
    step cap) over the local bounds: exhausting [max_steps]/[max_nodes]
    means "no witness" and returns [None], while a metered trip raises
    {!Robust.Budget.Exhausted} to unwind the whole construction — the
    caller's entry point (e.g. [General_attack.run]) turns it into an
    explicit [`Truncated]-style verdict. *)
val search :
  ?max_steps:int ->
  ?max_nodes:int ->
  ?meter:Robust.Budget.Meter.t ->
  ?stop:('a Config.t -> int -> bool) ->
  ?rng:Rng.t ->
  'a Config.t ->
  pid:int ->
  'a found option

(** Decision goal only. *)
val terminating :
  ?max_steps:int ->
  ?max_nodes:int ->
  ?meter:Robust.Budget.Meter.t ->
  ?rng:Rng.t ->
  'a Config.t ->
  pid:int ->
  'a found option

(** Goal predicate: poised at a nontrivial operation on an object outside
    [inside] — Lemma 3.4's "until decided or poised at an object in
    V-bar". *)
val poised_outside : int list -> 'a Config.t -> int -> bool

(** Goal predicate: poised at any nontrivial operation — cuts a solo
    execution at its first write (Lemma 3.2). *)
val poised_anywhere : 'a Config.t -> int -> bool
