(* Lemma 3.6 / Theorem 3.7, as a program: the adversary for *arbitrary*
   (not necessarily identical) processes over historyless objects.

   Given a protocol using r historyless objects and enough processes
   (3r^2 + r in the paper; the constructions here are given a little slack
   on top — see EXPERIMENTS.md E3 for the measured minima):

   1. Split the processes into P (inputs 0) and Q (inputs 1).
   2. Build, from the initial configuration, an interruptible execution
      alpha over P with initial object set {} and excess capacity r for
      all objects (Lemma 3.4); it involves only processes with input 0, so
      it must decide 0 — anything else is itself a validity anomaly, which
      we report.  Symmetrically beta over Q decides 1.
   3. Splice alpha and beta (Lemma 3.5) into one execution deciding both.

   No cloning is involved anywhere: this is the paper's general
   construction, where excess capacity plays the role clones play in the
   identical-process case. *)

open Sim

type outcome = {
  trace : int Trace.t;
  config : int Config.t;
  verdict : Checker.verdict;
  inputs : int list;
  processes_used : int;
  registers : int;
  pieces_alpha : int;
  pieces_beta : int;
}

type error =
  | Side_decides_wrong of { side : int; got : int }
  | Construction_failed of string
  | Budget_exhausted of Robust.Budget.reason

let error_to_string = function
  | Side_decides_wrong { side; got } ->
      Printf.sprintf
        "interruptible execution over input-%d processes decided %d" side got
  | Construction_failed msg -> "construction failed: " ^ msg
  | Budget_exhausted reason ->
      Printf.sprintf "budget exhausted (%s) before the construction finished"
        (Robust.Budget.reason_to_string reason)

(** Paper bound plus the slack our executable construction needs at the
    final level (the paper's count is exactly tight and leaves the last
    piece without a process to run to a decision; see DESIGN.md). *)
let default_processes r = (3 * r * r) + r + (2 * ((2 * r) + 1))

let run ?budget ?processes (p : Consensus.Protocol.t) =
  let probe_n = 2 in
  let r = List.length (p.Consensus.Protocol.optypes ~n:probe_n) in
  let m =
    match processes with Some m -> m | None -> default_processes r
  in
  let half = m / 2 in
  let m = 2 * half in
  let inputs = List.init m (fun pid -> if pid < half then 0 else 1) in
  let pset = List.init half Fun.id in
  let qset = List.init half (fun i -> half + i) in
  let config = Consensus.Protocol.initial_config p ~inputs in
  let objs = List.init (Config.n_objects config) Fun.id in
  let build side_pids =
    let scratch = Builder.create ~config ~inputs in
    Build_interruptible.construct scratch ~all_objects:objs ~vset:[]
      ~pset:side_pids ~uset:objs ~e:r
  in
  try
    Combine.with_budget_meter budget @@ fun () ->
    let a = build pset and b_ = build qset in
    if a.Build_interruptible.witness.Interruptible.decides <> 0 then
      Error
        (Side_decides_wrong
           { side = 0; got = a.Build_interruptible.witness.Interruptible.decides })
    else if b_.Build_interruptible.witness.Interruptible.decides <> 1 then
      Error
        (Side_decides_wrong
           { side = 1; got = b_.Build_interruptible.witness.Interruptible.decides })
    else begin
      let aside =
        {
          Splice.witness = a.Build_interruptible.witness;
          pset;
          excess = a.Build_interruptible.released;
          decides = 0;
        }
      in
      let bside =
        {
          Splice.witness = b_.Build_interruptible.witness;
          pset = qset;
          excess = b_.Build_interruptible.released;
          decides = 1;
        }
      in
      let b = Builder.create ~config ~inputs in
      Splice.combine b aside bside;
      Ok
        {
          trace = Builder.trace b;
          config = Builder.config b;
          verdict = Builder.verdict b;
          inputs;
          processes_used = m;
          registers = r;
          pieces_alpha =
            List.length a.Build_interruptible.witness.Interruptible.pieces;
          pieces_beta =
            List.length b_.Build_interruptible.witness.Interruptible.pieces;
        }
    end
  with
  | Combine.Attack_failed msg -> Error (Construction_failed msg)
  | Robust.Budget.Exhausted reason -> Error (Budget_exhausted reason)

let succeeded outcome = not outcome.verdict.Checker.consistent

(** Smallest process count (searched upward from [start] in steps of 2) at
    which the attack succeeds; measured against the paper's 3r^2 + r.

    With [?pool] the upward search evaluates a batch of candidate counts
    per round across the pool's domains and takes the smallest success in
    the batch — the same answer the sequential scan returns, found in
    roughly [1/jobs] of the wall-clock time when successes are rare.

    With [?budget], a candidate whose construction trips the budget
    *before* any smaller candidate succeeded makes the minimum unknowable
    this run, so the scan stops and reports [`Truncated]: reporting a
    larger success as "the minimum" would silently overstate the bound. *)
let minimum_processes_gov ?pool ?budget ?(start = 4) ?(limit = 400) p =
  let batch =
    match pool with None -> 1 | Some pool -> max 1 (2 * Par.Pool.jobs pool)
  in
  let lands m = (m, run ?budget ~processes:m p) in
  let rec verdict_of = function
    | [] -> None
    | (_, Error (Budget_exhausted reason)) :: _ -> Some (`Truncated reason)
    | (c, Ok outcome) :: rest ->
        if succeeded outcome then Some (`Found c) else verdict_of rest
    | (_, (Error (Side_decides_wrong _ | Construction_failed _))) :: rest ->
        verdict_of rest
  in
  let rec go m =
    if m > limit then `Not_found
    else begin
      let candidates =
        List.init batch (fun i -> m + (2 * i))
        |> List.filter (fun c -> c <= limit)
      in
      let landed = Par.map ?pool lands candidates in
      match verdict_of landed with
      | Some v -> v
      | None -> go (m + (2 * batch))
    end
  in
  go start

let minimum_processes ?pool ?start ?limit p =
  match minimum_processes_gov ?pool ?start ?limit p with
  | `Found c -> Some c
  | `Not_found -> None
  | `Truncated _ -> None (* unreachable without a budget *)

(** Run the general attack against a batch of protocols in parallel;
    results in input order, bit-identical for any [?pool] (budget trips
    excepted: deadline/cancellation budgets are best-effort, so which
    protocols report [Budget_exhausted] may vary run to run). *)
let sweep ?pool ?budget ?processes ps =
  Par.map ?pool
    (fun p -> (p.Consensus.Protocol.name, run ?budget ?processes p))
    ps

(** Independent cross-check by exhaustive model checking: search the
    protocol's full execution tree on a small mixed-input instance
    ([processes], split half 0s / half 1s) and report whether a
    consistency or validity violation is reachable within the bounds.
    The spliced adversarial witness above lives at ~3r^2 processes where
    exhaustive search is hopeless; this confirms by an unrelated method
    that the protocol is genuinely attackable at all.  [`Symmetric] dedup
    is sound for any packaged protocol because
    [Consensus.Protocol.initial_config] seeds fingerprints accordingly. *)
let confirm ?budget ?(dedup = `Symmetric) ?(processes = 2) ?(max_depth = 16)
    ?(max_states = 300_000) (p : Consensus.Protocol.t) =
  let half = max 1 (processes / 2) in
  let m = 2 * half in
  let inputs = List.init m (fun pid -> if pid < half then 0 else 1) in
  let config = Consensus.Protocol.initial_config p ~inputs in
  Mc.Explore.search ?budget ~dedup ~max_depth ~max_states ~inputs config
