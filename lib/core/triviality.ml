(* Operation triviality, as the lower-bound machinery needs it.

   The paper's notion: an operation is trivial if it never changes the
   object's value.  [Objclass.Classify] decides this exhaustively for
   finite specs; the attack targets, however, use unbounded objects.  Every
   object type in this repository names its unique trivial operation
   "read" (and READ is trivial on all of them, as the classification tests
   verify), so on protocol objects we decide triviality by name.

   "Poised at R" in Section 3 means: the process's next step applies a
   *nontrivial* operation to R; processes poised at reads are invisible to
   the block-write machinery. *)

open Sim

let is_trivial (op : Op.t) = op.name = "read" || (op.name = "fetch&add" && op.arg = Value.Int 0)

let is_nontrivial op = not (is_trivial op)

(** The pending nontrivial operation of [pid], if any: [Some (obj, op)]
    when the process is poised (in the paper's sense) at [obj]. *)
let poised_write config pid =
  match Config.pending config pid with
  | Some (obj, op) when is_nontrivial op -> Some (obj, op)
  | Some _ | None -> None

(** All enabled processes poised (nontrivially) at object [obj].
    Built in one descending pass — no intermediate [enabled_pids]
    list; this sits inside the block-write adversary's innermost
    scan. *)
let poised_at config obj =
  let acc = ref [] in
  for pid = Config.n_procs config - 1 downto 0 do
    if
      Config.is_enabled config pid
      &&
      match poised_write config pid with
      | Some (o, _) -> Int.equal o obj
      | None -> false
    then acc := pid :: !acc
  done;
  !acc
