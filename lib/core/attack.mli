(** Lemma 3.2 / Theorem 3.3, as a program: the adversary for
    identical-process consensus protocols over read-write registers.
    Given such a protocol (with nondeterministic solo termination), build
    a replayable execution deciding both 0 and 1. *)

open Sim

type outcome = {
  trace : int Trace.t;
  config : int Config.t;
  verdict : Checker.verdict;
  inputs : int list;  (** inputs of all processes, clones included *)
  processes_used : int;
  registers : int;
  genealogy : Builder.lineage list;  (** how each clone came to be *)
  nominal_n : int;
}

type error =
  | Not_identical
  | No_solo_termination of int
  | Solo_decides_wrong of { pid : int; expected : int; got : int }
  | Construction_failed of string

val error_to_string : error -> string

(** With [rng], the solo witness searches try coin outcomes in shuffled
    order (randomized restarts); a fixed generator is deterministic. *)
val run :
  ?nominal_n:int ->
  ?max_solo_steps:int ->
  ?max_solo_nodes:int ->
  ?rng:Rng.t ->
  Consensus.Protocol.t ->
  (outcome, error) result

(** True iff the outcome's execution is genuinely inconsistent. *)
val succeeded : outcome -> bool

(** [seed_sweep ?pool ~seeds p] runs the attack once per seed — each seed
    randomizes the solo witness search — across the pool's domains.
    Results are in [seeds] order and bit-identical for any [?pool]. *)
val seed_sweep :
  ?pool:Par.Pool.t ->
  ?nominal_n:int ->
  ?max_solo_steps:int ->
  ?max_solo_nodes:int ->
  seeds:int list ->
  Consensus.Protocol.t ->
  (int * (outcome, error) result) list

(** Shortest successful witness of a sweep (ties: earliest seed in sweep
    order). *)
val best_witness :
  (int * (outcome, error) result) list -> (int * outcome) option

(** Run the attack against a batch of protocols in parallel; results in
    input order. *)
val sweep :
  ?pool:Par.Pool.t ->
  Consensus.Protocol.t list ->
  (string * (outcome, error) result) list

(** Realize the attack's execution from a fresh start: all processes
    (clones included) present from the initial configuration, each clone
    shadowing its origin lock-step up to its snapshot point, then the
    attack's schedule verbatim.  Returns the full certified trace and its
    verdict, or an explanation — notably when a shadow's response diverges
    from its origin's, which happens exactly when the object type leaks
    history through responses (why Section 3.1 is stated for read-write
    registers). *)
val certify :
  Consensus.Protocol.t ->
  outcome ->
  (int Trace.t * Checker.verdict, string) result
