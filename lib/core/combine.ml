(* Lemma 3.1, as a program.

   Given a configuration (held in a {!Builder}) and two {!Side}s — poised
   writer sets for register sets V and W with solo-continuation witnesses
   deciding different values — produce an execution from the current
   configuration in which both values are decided.

   The recursion follows the proof by induction on |V-bar| + |W-bar|:

   - V subset-of W, and the 0-side's solo run writes only inside W:
     execute [block write V; alpha; block write W; beta].  The block write
     to W obliterates every trace of alpha, so beta replays verbatim.
   - V subset-of W, and alpha first writes a register R outside W: execute
     the block write and alpha's prefix, leave a clone poised to
     re-perform the last write on each register of V, and recurse with
     V' = V + {R} (the runner itself is the poised writer for R).
   - Neither a subset: extend the smaller picture to U = V + W using
     clones of the other side's poised writers, *search* a fresh solo
     continuation gamma after a block write to U (its existence is exactly
     nondeterministic solo termination), and recurse on whichever side
     gamma's decision extends.  Clones are state snapshots, so gamma
     replays identically no matter which side's originals perform the
     block write — that is why one search settles both symmetric cases.

   Everything the proof asserts is re-checked at execution time: block
   writes verify poisedness, witness replays assert the expected decision,
   and {!Attack} checks the final trace with {!Sim.Checker}. *)

open Sim

exception Attack_failed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Attack_failed s)) fmt

(* Run the side's witness: the runner's solo continuation after the block
   write, stopping early if it becomes poised at a nontrivial op outside
   [within] (pass all objects to run to completion). *)
let run_witness b (side : Side.t) ~within =
  let stop config pid = Solo.poised_outside within config pid in
  Builder.run_coins b ~pid:side.Side.runner ~coins:side.Side.coins ~stop ()

(* Domain-local, not a plain ref: [Par] runs attack constructions on
   several domains at once, each entitled to its own budget. *)
let search_budget = Domain.DLS.new_key (fun () -> (5_000, 500_000))
let set_search_budget b = Domain.DLS.set search_budget b
let get_search_budget () = Domain.DLS.get search_budget

(* Caller-wide governance (deadline / cancellation / global step cap),
   also domain-local: the construction recursion is deep and threading a
   meter through every [combine] call would smear governance plumbing
   over proof-shaped code.  The meter reaches the solo searches — where
   virtually all construction time goes — and trips by raising
   [Robust.Budget.Exhausted], which [General_attack.run] catches at its
   boundary. *)
let budget_meter : Robust.Budget.Meter.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_budget_meter budget f =
  let meter =
    match budget with
    | Some b when not (Robust.Budget.is_unlimited b) ->
        Some (Robust.Budget.Meter.create b)
    | Some _ | None -> None
  in
  let previous = Domain.DLS.get budget_meter in
  Domain.DLS.set budget_meter meter;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set budget_meter previous)
    f

let solo_search config ~pid =
  let max_steps, max_nodes = get_search_budget () in
  let meter = Domain.DLS.get budget_meter in
  Solo.terminating ~max_steps ~max_nodes ?meter config ~pid

(* Execute a block write on a scratch copy of the configuration (pure
   steps; the builder is untouched) and return the resulting config. *)
let scratch_block_write config writers =
  List.fold_left
    (fun config (obj, pid) ->
      (match Triviality.poised_write config pid with
      | Some (o, _) when o = obj -> ()
      | _ -> fail "scratch block write: P%d not poised at obj %d" pid obj);
      fst (Run.step config ~pid ~coin:(fun _ -> 0)))
    config writers

let rec combine b (pside : Side.t) (qside : Side.t) =
  if pside.Side.decides = qside.Side.decides then
    fail "combine: sides decide the same value %d" pside.Side.decides;
  if Side.subset pside qside then subset_case b pside qside
  else if Side.subset qside pside then subset_case b qside pside
  else incomparable_case b pside qside

(* V subset-of W.  [inner] is the V-side, [outer] the W-side. *)
and subset_case b (inner : Side.t) (outer : Side.t) =
  Builder.block_write b inner.Side.writers;
  let coins_left = run_witness b inner ~within:outer.Side.regs in
  if Config.is_decided (Builder.config b) inner.Side.runner then begin
    (* sub-case a: the witness ran to completion writing only inside W *)
    (match Config.decision (Builder.config b) inner.Side.runner with
    | Some d when d = inner.Side.decides -> ()
    | d ->
        fail "witness replay decided %s, expected %d"
          (match d with Some v -> string_of_int v | None -> "nothing")
          inner.Side.decides);
    Builder.block_write b outer.Side.writers;
    let _ =
      Builder.run_coins b ~pid:outer.Side.runner ~coins:outer.Side.coins ()
    in
    match Config.decision (Builder.config b) outer.Side.runner with
    | Some d when d = outer.Side.decides -> ()
    | d ->
        fail "outer witness replay decided %s, expected %d"
          (match d with Some v -> string_of_int v | None -> "nothing")
          outer.Side.decides
  end
  else begin
    (* sub-case b: the runner is poised at its first write outside W *)
    let r_obj =
      match Triviality.poised_write (Builder.config b) inner.Side.runner with
      | Some (obj, _) -> obj
      | None -> fail "runner stalled without decision or pending write"
    in
    if Side.mem outer r_obj then fail "stop predicate returned an object in W";
    (* a clone poised to re-perform the last write on each register of V *)
    let clones =
      List.map
        (fun obj -> (obj, Builder.clone_last_writer b ~obj))
        inner.Side.regs
    in
    let inner' =
      Side.make
        ~regs:(r_obj :: inner.Side.regs)
        ~writers:((r_obj, inner.Side.runner) :: clones)
        ~runner:inner.Side.runner ~coins:coins_left
        ~decides:inner.Side.decides
    in
    combine b inner' outer
  end

(* Neither V subset-of W nor W subset-of V. *)
and incomparable_case b (pside : Side.t) (qside : Side.t) =
  (* performer: a P-side writer poised strictly outside W; its clone exists
     on the symmetric side, so one gamma search settles both cases *)
  let perf_obj, perf =
    match Side.writers_outside pside ~other:qside with
    | w :: _ -> w
    | [] -> fail "incomparable case with V - W empty"
  in
  let snap = Builder.snapshot b in
  (* U-writers, A-flavour: P's writers plus clones of Q's writers on W-V *)
  let w_minus_v = Side.writers_outside qside ~other:pside in
  let wclones =
    List.map (fun (obj, qpid) -> (obj, Builder.clone_of b ~pid:qpid)) w_minus_v
  in
  let umap_a = pside.Side.writers @ wclones in
  let u_regs = List.map fst umap_a in
  (* search gamma on a scratch copy: block write to U, then perf solo *)
  let scratch = scratch_block_write (Builder.config b) umap_a in
  let gamma =
    match solo_search scratch ~pid:perf with
    | Some ({ decision = Some _; _ } as f) -> f
    | Some { decision = None; _ } | None ->
        fail "no terminating solo execution for P%d after block write to U"
          perf
  in
  let d = match gamma.Solo.decision with Some d -> d | None -> assert false in
  if d = pside.Side.decides then begin
    (* gamma extends the P side: P' = P + clones(W-V), U *)
    let pside' =
      Side.make ~regs:u_regs ~writers:umap_a ~runner:perf ~coins:gamma.Solo.coins
        ~decides:d
    in
    combine b pside' qside
  end
  else if d = qside.Side.decides then begin
    (* symmetric: Q' = Q + clones(V-W); the V-W registers are written by
       clones of P's writers — including a clone of perf, whose state
       equals perf's, so gamma replays for it verbatim *)
    Builder.restore b snap;
    let v_minus_w = Side.writers_outside pside ~other:qside in
    let vclones =
      List.map (fun (obj, ppid) -> (obj, Builder.clone_of b ~pid:ppid)) v_minus_w
    in
    let perf_clone =
      match List.assoc_opt perf_obj vclones with
      | Some pid -> pid
      | None -> fail "performer's register not in V - W?"
    in
    let umap_b = qside.Side.writers @ vclones in
    let qside' =
      Side.make
        ~regs:(List.map fst umap_b)
        ~writers:umap_b ~runner:perf_clone ~coins:gamma.Solo.coins ~decides:d
    in
    combine b pside qside'
  end
  else fail "gamma decided %d, which is neither side's value" d
