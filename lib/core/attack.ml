(* Lemma 3.2, as a program: the adversary for identical-process consensus
   over read-write registers (and any objects whose nontrivial operations
   the protocol uses like writes).

   Given a protocol with identical process code and nondeterministic solo
   termination, construct an execution that decides both 0 and 1:

   1. Search terminating solo executions: alpha for a process with input 0
      (decides 0) and beta for input 1 (decides 1).
   2. If one of them performs no nontrivial operation at all, simply run it
      to completion and then run the other — the first left no trace in the
      objects, so the second replays its solo behaviour.  Inconsistent.
   3. Otherwise run both read/coin prefixes up to (but excluding) the first
      writes; these commute and leave every object untouched.  The two
      processes are now poised at their first-write registers: invoke
      {!Combine.combine} with V = {alpha's register}, W = {beta's}.

   The returned execution is a genuine execution of the protocol — every
   step went through {!Sim.Run.step} — and the verdict is recomputed
   independently by {!Sim.Checker}. *)

open Sim

type outcome = {
  trace : int Trace.t;
  config : int Config.t;
  verdict : Checker.verdict;
  inputs : int list;  (** inputs of all processes, clones included *)
  processes_used : int;
  registers : int;
  genealogy : Builder.lineage list;  (** how each clone came to be *)
  nominal_n : int;  (** the n the protocol code was instantiated with *)
}

type error =
  | Not_identical
  | No_solo_termination of int  (** pid whose solo search failed *)
  | Solo_decides_wrong of { pid : int; expected : int; got : int }
  | Construction_failed of string

let error_to_string = function
  | Not_identical -> "protocol does not have identical process code"
  | No_solo_termination pid ->
      Printf.sprintf
        "no terminating solo execution found for P%d within budget" pid
  | Solo_decides_wrong { pid; expected; got } ->
      Printf.sprintf "P%d solo decided %d, expected its own input %d" pid got
        expected
  | Construction_failed msg -> "construction failed: " ^ msg

(* Run [pid]'s witness up to (excluding) its first nontrivial operation;
   returns remaining coins, or None if it decided without one. *)
let run_prefix b ~pid ~coins =
  let coins_left =
    Builder.run_coins b ~pid ~coins
      ~stop:(fun config p -> Solo.poised_anywhere config p)
      ()
  in
  if Config.is_decided (Builder.config b) pid then None else Some coins_left

let finish b ~n_objects ~nominal_n =
  {
    trace = Builder.trace b;
    config = Builder.config b;
    verdict = Builder.verdict b;
    inputs = Builder.inputs b;
    processes_used = Builder.n_procs b;
    registers = n_objects;
    genealogy = Builder.genealogy b;
    nominal_n;
  }

let run ?(nominal_n = 64) ?(max_solo_steps = 5_000) ?(max_solo_nodes = 500_000)
    ?rng (p : Consensus.Protocol.t) =
  if not p.Consensus.Protocol.identical then Error Not_identical
  else begin
    Combine.set_search_budget (max_solo_steps, max_solo_nodes);
    let optypes = p.Consensus.Protocol.optypes ~n:nominal_n in
    let n_objects = List.length optypes in
    let code input = p.Consensus.Protocol.code ~n:nominal_n ~pid:0 ~input in
    let config = Config.make ~optypes ~procs:[ code 0; code 1 ] in
    let solo pid expected =
      match
        Solo.terminating ~max_steps:max_solo_steps ~max_nodes:max_solo_nodes
          ?rng config ~pid
      with
      | None -> Error (No_solo_termination pid)
      | Some { decision = Some d; _ } when d <> expected ->
          Error (Solo_decides_wrong { pid; expected; got = d })
      | Some ({ decision = Some _; _ } as f) -> Ok f
      | Some { decision = None; _ } -> assert false
    in
    match (solo 0 0, solo 1 1) with
    | Error e, _ | _, Error e -> Error e
    | Ok alpha, Ok beta -> (
        let b = Builder.create ~config ~inputs:[ 0; 1 ] in
        try
          (match run_prefix b ~pid:0 ~coins:alpha.Solo.coins with
          | None ->
              (* alpha wrote nothing: run it, then beta replays solo *)
              let _ = Builder.run_coins b ~pid:1 ~coins:beta.Solo.coins () in
              ()
          | Some acoins -> (
              match run_prefix b ~pid:1 ~coins:beta.Solo.coins with
              | None ->
                  (* beta wrote nothing and already decided during its
                     prefix; alpha's continuation still replays because
                     nothing was written *)
                  let _ = Builder.run_coins b ~pid:0 ~coins:acoins () in
                  ()
              | Some bcoins ->
                  let r_p =
                    match Triviality.poised_write (Builder.config b) 0 with
                    | Some (obj, _) -> obj
                    | None -> Combine.fail "P0 neither decided nor poised"
                  in
                  let r_q =
                    match Triviality.poised_write (Builder.config b) 1 with
                    | Some (obj, _) -> obj
                    | None -> Combine.fail "P1 neither decided nor poised"
                  in
                  let pside =
                    Side.make ~regs:[ r_p ]
                      ~writers:[ (r_p, 0) ]
                      ~runner:0 ~coins:acoins ~decides:0
                  in
                  let qside =
                    Side.make ~regs:[ r_q ]
                      ~writers:[ (r_q, 1) ]
                      ~runner:1 ~coins:bcoins ~decides:1
                  in
                  Combine.combine b pside qside));
          Ok (finish b ~n_objects ~nominal_n)
        with Combine.Attack_failed msg -> Error (Construction_failed msg))
  end

(** Did the attack produce a genuine violation? *)
let succeeded outcome = not outcome.verdict.Checker.consistent

(* ------------------------------------------------------------------ *)
(* Parallel sweeps.

   The construction itself is sequential; what parallelizes is the search
   *around* it: randomized-restart seeds for the solo witness searches
   (each seed shuffles the coin-outcome order and can land on a different,
   often shorter, witness) and batches of target protocols.  Tasks are
   independent — all shared construction state (the Combine search budget)
   is domain-local — and results come back in input order, so a sweep's
   output is bit-identical for any [?pool]. *)

let seed_sweep ?pool ?nominal_n ?max_solo_steps ?max_solo_nodes ~seeds p =
  Par.map ?pool
    (fun seed ->
      ( seed,
        run ?nominal_n ?max_solo_steps ?max_solo_nodes ~rng:(Rng.create seed) p
      ))
    seeds

let best_witness results =
  List.fold_left
    (fun best (seed, result) ->
      match result with
      | Ok o when succeeded o -> (
          let len = Trace.steps o.trace in
          match best with
          | Some (_, best_len) when best_len <= len -> best
          | _ -> Some ((seed, o), len))
      | Ok _ | Error _ -> best)
    None results
  |> Option.map fst

let sweep ?pool ps =
  Par.map ?pool (fun p -> (p.Consensus.Protocol.name, run p)) ps

(* ------------------------------------------------------------------ *)
(* Certification: realize the attack's execution from a *fresh* start.

   The attack introduces clones mid-run as state snapshots.  For identical
   processes over read-write registers the snapshots are realizable: a
   clone with the same input, scheduled lock-step immediately after its
   origin, passes through exactly the origin's states (reads return the
   same values because nothing intervenes; writes acknowledge with Unit;
   coins are given the same outcomes).  [certify] replays the attack's
   trace from a fresh configuration with *all* processes present,
   inserting those shadow steps, and re-checks the decisions.  A shadow
   step whose response differs from the origin's (e.g. a SWAP, whose
   response reveals history) is reported as unrealizable — which is
   precisely why Section 3.1 is stated for read-write registers. *)

let certify (p : Consensus.Protocol.t) (o : outcome) =
  let code input = p.Consensus.Protocol.code ~n:o.nominal_n ~pid:0 ~input in
  let config =
    Config.make
      ~optypes:(p.Consensus.Protocol.optypes ~n:o.nominal_n)
      ~procs:(List.map code o.inputs)
  in
  let shadows = Hashtbl.create 8 in
  List.iter
    (fun { Builder.clone; origin; cutoff } ->
      Hashtbl.replace shadows origin
        ((clone, cutoff) :: (try Hashtbl.find shadows origin with Not_found -> [])))
    o.genealogy;
  let counts = Hashtbl.create 8 in
  let count pid = try Hashtbl.find counts pid with Not_found -> 0 in
  let config = ref config in
  let rev_trace = ref [] in
  let exception Unrealizable of string in
  (* one step of [pid]; returns the response of an Apply step, if any *)
  let raw_step pid coin =
    let config', events =
      Run.step !config ~pid
        ~coin:(fun _ ->
          match coin with
          | Some c -> c
          | None -> raise (Unrealizable "coin flip where the trace had none"))
    in
    config := config';
    rev_trace := List.rev_append events !rev_trace;
    Hashtbl.replace counts pid (count pid + 1);
    List.find_map
      (function
        | Event.Applied { resp; _ } -> Some resp | _ -> None)
      events
  in
  (* step [pid], then recursively step every clone still shadowing it *)
  let rec step_with_shadows pid coin =
    let resp = raw_step pid coin in
    let idx = count pid - 1 in
    List.iter
      (fun (clone, cutoff) ->
        if idx < cutoff then begin
          let clone_resp = step_with_shadows clone coin in
          match (resp, clone_resp) with
          | Some r, Some r' when not (Value.equal r r') ->
              raise
                (Unrealizable
                   (Printf.sprintf
                      "P%d's shadow P%d observed a different response — \
                       cloning is not realizable over this object type"
                      pid clone))
          | _ -> ()
        end)
      (try Hashtbl.find shadows pid with Not_found -> []);
    resp
  in
  try
    List.iter
      (fun ev ->
        match ev with
        | Event.Applied { pid; _ } -> ignore (step_with_shadows pid None)
        | Event.Coin { pid; outcome; _ } ->
            ignore (step_with_shadows pid (Some outcome))
        | Event.Decided _ | Event.Halted _ -> ())
      (Trace.events o.trace);
    let verdict = Checker.of_config ~inputs:o.inputs !config in
    if Checker.inconsistent ~decisions:(Config.decisions !config) then
      Ok (List.rev !rev_trace, verdict)
    else Error "certified replay did not reproduce the inconsistency"
  with
  | Unrealizable msg -> Error msg
  | Run.Step_disabled pid ->
      Error (Printf.sprintf "replay diverged: P%d already decided" pid)
