(* Recorded schedules: the fuzzer's unit of replay and shrinking.

   A schedule is the adversary's side of one execution, flattened to a
   list of entries: step a process (with the coin outcome it drew, if that
   step was an internal flip) or crash one.  Entries carry everything the
   deterministic replayer [Sim.Run.exec_script] needs; process code and
   object contents are *not* recorded — they are recomputed by replaying
   against a fresh initial configuration, which is what makes a shrunk
   schedule a genuine witness rather than a transcript.

   The text codec is line-oriented in the style of [Sim.Trace_io] (and
   shares its atomic [save_text] writes and [Parse_error]):

     fuzz-schedule v2
     len <count>        entry count, validated on read
     S <pid>            step (the process was poised at an operation)
     S <pid> <coin>     step that resolved an internal flip
     X <pid>            crash
     end                terminator, required on read

   The count and terminator lines are what make truncation loud: a v1
   file that lost tail lines still parsed as a shorter (wrong) witness,
   and a cut mid-line can leave a valid shorter entry ("S 1 1" out of
   "S 1 12"), which only the terminator catches.  v1 files — which have
   neither — are still read. *)

open Sim

type entry = [ `Step of int * int option | `Crash of int ]
type t = entry list

let length = List.length

(* crash entries are free for the adversary; [steps] counts what the
   paper counts *)
let steps t =
  List.fold_left
    (fun acc -> function `Step _ -> acc + 1 | `Crash _ -> acc)
    0 t

let pids t =
  List.sort_uniq compare
    (List.map (function `Step (pid, _) -> pid | `Crash pid -> pid) t)

(** The schedule a trace records: [Applied] and [Coin] events become steps,
    [Halted] becomes a crash, decisions are not schedule entries.  Replaying
    the result through {!Sim.Run.exec_script} from the same initial
    configuration reproduces the trace. *)
let of_trace trace : t =
  List.filter_map
    (function
      | Event.Applied { pid; _ } -> Some (`Step (pid, None))
      | Event.Coin { pid; outcome; _ } -> Some (`Step (pid, Some outcome))
      | Event.Halted { pid } -> Some (`Crash pid)
      | Event.Decided _ -> None)
    (Trace.events trace)

(* ---- text codec ---- *)

let version = 2

let header = Printf.sprintf "fuzz-schedule v%d" version

let legacy_header = "fuzz-schedule v1"

let entry_to_string = function
  | `Step (pid, None) -> Printf.sprintf "S %d" pid
  | `Step (pid, Some c) -> Printf.sprintf "S %d %d" pid c
  | `Crash pid -> Printf.sprintf "X %d" pid

let to_text t =
  String.concat "\n"
    ((header
     :: Printf.sprintf "len %d" (List.length t)
     :: List.map entry_to_string t)
    @ [ "end" ])
  ^ "\n"

let parse_error fmt =
  Printf.ksprintf (fun s -> raise (Trace_io.Parse_error s)) fmt

let int_of s line =
  match int_of_string_opt s with
  | Some i -> i
  | None -> parse_error "bad integer %S in schedule line %S" s line

let entry_of_string line =
  match String.split_on_char ' ' line with
  | [ "S"; pid ] -> `Step (int_of pid line, None)
  | [ "S"; pid; c ] -> `Step (int_of pid line, Some (int_of c line))
  | [ "X"; pid ] -> `Crash (int_of pid line)
  | _ -> parse_error "bad schedule line %S" line

(* Each line is trimmed before parsing, not just for the blank test:
   files that crossed a Windows checkout (CRLF) or an editor that pads
   trailing whitespace must round-trip.  [entry_of_string] splits on
   single spaces, so an untrimmed "S 1\r" would otherwise fail on the
   stowaway "1\r" token. *)
let of_text text =
  match
    List.filter
      (fun l -> l <> "")
      (List.map String.trim (String.split_on_char '\n' text))
  with
  | [] -> parse_error "empty schedule file"
  | h :: lines ->
      if h = header then begin
        match lines with
        | [] -> parse_error "schedule file ends before its count line"
        | len_line :: rest ->
            let declared =
              match String.split_on_char ' ' len_line with
              | [ "len"; n ] -> int_of n len_line
              | _ ->
                  parse_error "expected \"len <count>\" line, got %S" len_line
            in
            let entries =
              match List.rev rest with
              | "end" :: rev_entries -> List.rev rev_entries
              | _ ->
                  parse_error
                    "schedule file missing its end marker (truncated?)"
            in
            let entries = List.map entry_of_string entries in
            let got = List.length entries in
            if got <> declared then
              parse_error
                "schedule declares %d entries but carries %d (truncated file?)"
                declared got
            else entries
      end
      else if h = legacy_header then
        (* v1: no count line — truncation of the tail is undetectable,
           which is why v2 exists *)
        List.map entry_of_string lines
      else parse_error "unsupported schedule header %S" h

let save ~path t = Trace_io.save_text ~path (to_text t)
let load ~path = of_text (Trace_io.load_text ~path)

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       (fun ppf e -> Format.pp_print_string ppf (entry_to_string e)))
    t
