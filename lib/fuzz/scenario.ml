(* Fuzzable scenarios: a uniform face over the three workload families the
   repo simulates — consensus protocols (agreement/validity via
   [Sim.Checker]), mutual exclusion (occupancy invariant), and object
   implementations (linearizability via [Objimpl.Linearize]).

   Each scenario knows how to (a) run once under a randomly drawn
   adversarial schedule, recording the schedule it used, and (b) replay
   any schedule deterministically and judge it.  The shrinker only ever
   talks to [replay], so shrink soundness — a shrunk schedule still
   witnesses the same violation — holds by construction: candidates are
   accepted only when their own replay reproduces the violation kind. *)

open Sim

type violation = Inconsistent | Invalid | Not_linearizable | Exclusion | Stuck

let violation_to_string = function
  | Inconsistent -> "inconsistent"
  | Invalid -> "invalid"
  | Not_linearizable -> "not-linearizable"
  | Exclusion -> "exclusion"
  | Stuck -> "stuck"

(* The weighted adversarial schedule families.  [Crashing] degrades to
   [Uniform] for scenarios without crash machinery (the linearizability
   harness). *)
type sched_kind = Uniform | Starving | Crashing

let all_kinds = [ Uniform; Starving; Crashing ]

let kind_name = function
  | Uniform -> "uniform"
  | Starving -> "starve"
  | Crashing -> "crash"

let default_weights = [ (Uniform, 0.5); (Starving, 0.25); (Crashing, 0.25) ]

let pick_kind weights rng =
  let total = List.fold_left (fun acc (_, w) -> acc +. Float.max 0. w) 0. weights in
  if total <= 0. then Uniform
  else
    let r = Rng.float rng *. total in
    let rec go acc = function
      | [] -> Uniform
      | (k, w) :: rest ->
          let acc = acc +. Float.max 0. w in
          if r < acc then k else go acc rest
    in
    go 0. weights

type run_report = {
  schedule : Schedule.t;
  violation : violation option;
  steps : int;
}

type t = {
  name : string;
  describe : string;
  gen : Rng.t -> sched_kind -> run_report;
  replay : Schedule.t -> violation option;
  artifact : Schedule.t -> string;
}

(* Which execution engine a scenario's gen/replay use.  [`Flat] (the
   default) runs consensus scenarios over the in-place slab executors
   ({!Sim.Flat_run}) and linearizability scenarios over the interned
   harness engine plus a per-domain verdict memo; [`Closure] keeps the
   original closure-tree execution — the reference the differential
   suite compares against.  Both draw RNGs in identical order, so a
   seed names the same run under either engine.  Engine state (intern
   tables, slabs, memo tables) lives in [Domain.DLS] so campaigns may
   fan gen out over a [Par] pool: per-domain state only affects speed,
   never results, preserving the jobs-invariance contract.  Mutex
   scenarios always execute closure-side: the occupancy invariant is
   judged on full event traces, which the slab has interned away. *)
type engine = [ `Closure | `Flat ]

let seed_of rng = 1 + Rng.int rng 0x3FFFFFFF

(* ---- consensus ---------------------------------------------------- *)

let consensus_verdict ~inputs config =
  let v = Checker.of_config ~inputs config in
  if not v.Checker.consistent then Some Inconsistent
  else if not v.Checker.valid then Some Invalid
  else None

(* random crash injection: up to n-1 crash points early in the run, so
   decided survivors still owe agreement *)
let gen_crashes rng ~n =
  let count = 1 + Rng.int rng (max 1 (n - 1)) in
  List.init count (fun _ -> (Rng.int rng 64, Rng.int rng n))

let config_run config ~inputs:_ ~max_steps rng kind =
  let seed = seed_of rng in
  let n = Config.n_procs config in
  match kind with
  | Uniform -> Run.exec_fast ~max_steps (Sched.random ~seed) config
  | Starving ->
      let victim = Rng.int rng n in
      Run.exec_fast ~max_steps (Sched.starving ~victim ~seed) config
  | Crashing ->
      let crashes = gen_crashes rng ~n in
      Run.exec_with_crashes ~max_steps ~crashes (Sched.random ~seed) config

let consensus ?(engine = `Flat) ?(inputs = [ 0; 1 ]) ?(max_steps = 4096)
    (p : Consensus.Protocol.t) =
  let initial () = Consensus.Protocol.initial_config p ~inputs in
  let judge_decisions decisions =
    let v = Checker.check ~inputs ~decisions in
    if not v.Checker.consistent then Some Inconsistent
    else if not v.Checker.valid then Some Invalid
    else None
  in
  let judge (result : int Run.result) =
    consensus_verdict ~inputs result.Run.config
  in
  let replay_result schedule =
    Run.exec_script ~max_steps ~script:schedule (initial ())
  in
  (* Flat-engine state, one per domain: a pristine template slab plus a
     work slab sharing the intern runtime.  A run is [blit] reset + an
     in-place executor; the runtime is rebuilt when its id space nears
     capacity (unbounded campaigns over history-divergent protocols). *)
  let dls =
    Domain.DLS.new_key (fun () ->
        let template =
          Flat.of_config ~hashed:false ~roots:Flat.Per_slot (initial ())
        in
        ref (template, Flat.clone template))
  in
  let flat_work () =
    let cell = Domain.DLS.get dls in
    let template, work = !cell in
    if Intern.near_capacity (Flat.rt template) then begin
      let template =
        Flat.of_config ~hashed:false ~roots:Flat.Per_slot (initial ())
      in
      let work = Flat.clone template in
      cell := (template, work);
      work
    end
    else begin
      Flat.blit ~src:template ~dst:work;
      work
    end
  in
  (* identical rng draw order to [config_run]: seed first, then the
     kind's own draws — a seed names the same run under either engine *)
  let gen_flat rng kind =
    let seed = seed_of rng in
    let work = flat_work () in
    let n = Flat.n_procs work in
    let r =
      match kind with
      | Uniform -> Flat_run.exec_random ~max_steps ~rng:(Rng.create seed) work
      | Starving ->
          let victim = Rng.int rng n in
          Flat_run.exec_starving ~max_steps ~victim ~rng:(Rng.create seed) work
      | Crashing ->
          let crashes = gen_crashes rng ~n in
          Flat_run.exec_with_crashes ~max_steps ~crashes
            ~rng:(Rng.create seed) work
    in
    {
      schedule = r.Flat_run.schedule;
      violation = judge_decisions (Flat.decisions work);
      steps = r.Flat_run.steps;
    }
  in
  let replay_flat schedule =
    let work = flat_work () in
    let _ = Flat_run.exec_script ~max_steps ~script:schedule work in
    judge_decisions (Flat.decisions work)
  in
  {
    name = p.Consensus.Protocol.name;
    describe =
      Printf.sprintf "consensus %s inputs=%s" p.Consensus.Protocol.name
        (String.concat "," (List.map string_of_int inputs));
    gen =
      (match engine with
      | `Flat -> gen_flat
      | `Closure ->
          fun rng kind ->
            let result = config_run (initial ()) ~inputs ~max_steps rng kind in
            {
              schedule = Schedule.of_trace result.Run.trace;
              violation = judge result;
              steps = result.Run.steps;
            });
    replay =
      (match engine with
      | `Flat -> replay_flat
      | `Closure -> fun schedule -> judge (replay_result schedule));
    (* artifacts are full event traces, which only the closure replay
       can reconstruct; they are built once per minimized counterexample *)
    artifact =
      (fun schedule ->
        Trace_io.to_text_int (replay_result schedule).Run.trace ^ "\n");
  }

(* ---- mutual exclusion --------------------------------------------- *)

(* The occupancy invariant, recomputed from a trace: ENTER/LEAVE on the
   instrumented counter bracket the critical section, so two processes
   inside at once show up as occupancy 2 at some prefix. *)
let exclusion_violated ~cs_obj trace =
  let enter = Mutex.enter.Op.name and leave = Mutex.leave.Op.name in
  let rec go occ = function
    | [] -> false
    | Event.Applied { obj; op; _ } :: rest when obj = cs_obj ->
        if op.Op.name = enter then occ + 1 >= 2 || go (occ + 1) rest
        else if op.Op.name = leave then go (max 0 (occ - 1)) rest
        else go occ rest
    | _ :: rest -> go occ rest
  in
  go 0 (Trace.events trace)

let mutex ?(n = 2) ?(max_steps = 512) (m : Mutex.t) =
  let initial () =
    Config.make ~optypes:(m.Mutex.optypes ~n)
      ~procs:(List.init n (fun pid -> m.Mutex.code ~n ~pid))
  in
  let judge (result : int Run.result) =
    if exclusion_violated ~cs_obj:m.Mutex.cs_obj result.Run.trace then
      Some Exclusion
    else None
  in
  let replay_result schedule =
    Run.exec_script ~max_steps ~script:schedule (initial ())
  in
  {
    name = Printf.sprintf "mutex-%s" m.Mutex.name;
    describe = Printf.sprintf "mutex %s n=%d" m.Mutex.name n;
    gen =
      (fun rng kind ->
        let result = config_run (initial ()) ~inputs:[] ~max_steps rng kind in
        {
          schedule = Schedule.of_trace result.Run.trace;
          violation = judge result;
          steps = result.Run.steps;
        });
    replay = (fun schedule -> judge (replay_result schedule));
    artifact =
      (fun schedule ->
        Trace_io.to_text_int (replay_result schedule).Run.trace ^ "\n");
  }

(* ---- linearizability ----------------------------------------------- *)

(* Verdict-memo table keyed on whole histories.  The polymorphic
   [Hashtbl.hash] samples only ~10 nodes — a shared prefix for most
   histories of one workload, collapsing the table into a few buckets of
   deep structural compares — so hash with a node budget that covers the
   whole history.  Keys are pure data (ints, strings, values), so
   structural equality is sound. *)
module Htbl = Hashtbl.Make (struct
  type t = Objimpl.History.t

  let equal = ( = )
  let hash h = Hashtbl.hash_param 1024 1024 h
end)

(* Implementations are driven through [Objimpl.Harness] with a *fixed*
   workload and a fuzzer-chosen pid schedule, so the schedule alone
   determines the run (Fixed schedules resolve coins from a pinned seed;
   [`Crash p] entries map to harness crash points at their tick).  Every
   recorded history is judged by BOTH linearizability oracles through
   {!Lin.Cross} — a decisive disagreement raises [Lin.Cross.Divergence]
   rather than picking a side — and the drain probe turns residual
   in-flight calls into a [Stuck] verdict.  A [Blocking] implementation
   is excused from [Stuck] only when a crash happened: a deadlock with
   everyone alive violates even deadlock-freedom. *)
let lin ~name ?(engine = `Flat) ?(n = 3) ?(len = 160) ?(max_steps = 10_000)
    impl ~workload =
  let split schedule =
    (* Fixed pid list + harness crash points; a [`Crash p] fires before
       the schedule entry that follows it (tick = Steps seen so far) *)
    let rec go ticks pids crashes = function
      | [] -> (List.rev pids, List.rev crashes)
      | `Step (pid, _) :: rest -> go (ticks + 1) (pid :: pids) crashes rest
      | `Crash p :: rest -> go ticks pids ((ticks, p) :: crashes) rest
    in
    go 0 [] [] schedule
  in
  let spec = impl.Objimpl.Implementation.spec in
  let lin_violates history =
    match Lin.Cross.verdict spec history with
    | Objimpl.Linearize.Not_linearizable | Objimpl.Linearize.Malformed _ ->
        true
    | Objimpl.Linearize.Linearizable _ | Objimpl.Linearize.Unknown -> false
  in
  let finish (outcome : Objimpl.Harness.outcome) bad =
    if bad then Some Not_linearizable
    else
      let excused =
        impl.Objimpl.Implementation.progress = Objimpl.Implementation.Blocking
        && outcome.Objimpl.Harness.crashed <> []
      in
      if outcome.Objimpl.Harness.stuck <> [] && not excused then Some Stuck
      else None
  in
  (* Flat-engine state, one per domain: the interned harness runtime plus
     a verdict memo.  The memo is keyed on the recorded history itself
     (pure data, so structural hashing is sound) and caches only the
     oracle-pair answer — a deterministic function of the history —
     never the stuck/crash judgement, which depends on the run.  Short
     fixed workloads revisit the same few hundred histories across
     thousands of schedules, so most replays skip both oracles. *)
  let dls =
    Domain.DLS.new_key (fun () ->
        (Objimpl.Harness.runtime impl ~n, Htbl.create 1024))
  in
  let memo_cap = 1 lsl 16 in
  let judge_parts pids crashes =
    match engine with
    | `Closure ->
        let outcome =
          Objimpl.Harness.run impl ~n ~workload
            ~schedule:(Objimpl.Harness.Fixed pids) ~max_steps ~crashes
            ~probe:true ()
        in
        finish outcome (lin_violates outcome.Objimpl.Harness.history)
    | `Flat ->
        let rt, memo = Domain.DLS.get dls in
        let outcome =
          Objimpl.Harness.run ~engine:Objimpl.Harness.Interned ~rt impl ~n
            ~workload ~schedule:(Objimpl.Harness.Fixed pids) ~max_steps
            ~crashes ~probe:true ()
        in
        let history = outcome.Objimpl.Harness.history in
        let bad =
          match Htbl.find_opt memo history with
          | Some b -> b
          | None ->
              let b = lin_violates history in
              if Htbl.length memo >= memo_cap then Htbl.reset memo;
              Htbl.add memo history b;
              b
        in
        finish outcome bad
  in
  let judge schedule =
    let pids, crashes = split schedule in
    judge_parts pids crashes
  in
  (* single-pass schedule builders: one cons per entry, the [Fixed] pid
     list built alongside so the crash-free gen path skips [split] *)
  let gen_uniform rng =
    let rec go i sched pids =
      if i = 0 then (sched, pids)
      else
        let pid = Rng.int rng n in
        go (i - 1) (`Step (pid, None) :: sched) (pid :: pids)
    in
    go len [] []
  in
  let gen_starving rng =
    let victim = Rng.int rng n in
    let rec go i sched pids =
      if i = 0 then (sched, pids)
      else
        let pid =
          if n > 1 && Rng.int rng 8 < 7 then
            (victim + 1 + Rng.int rng (n - 1)) mod n
          else victim
        in
        go (i - 1) (`Step (pid, None) :: sched) (pid :: pids)
    in
    go len [] []
  in
  let gen_crashing rng : Schedule.t =
    (* up to n-1 crash points at random ticks, survivors keep going *)
    let steps, _ = gen_uniform rng in
    let crashes = gen_crashes rng ~n in
    List.fold_left
      (fun sched (at, p) ->
        let at = min at (List.length sched) in
        let rec insert i = function
          | rest when i = 0 -> `Crash p :: rest
          | [] -> [ `Crash p ]
          | e :: rest -> e :: insert (i - 1) rest
        in
        insert at sched)
      steps crashes
  in
  {
    name;
    describe =
      Printf.sprintf "linearizability %s n=%d calls=%d" impl.Objimpl.Implementation.name
        n
        (List.fold_left (fun acc (_, ops) -> acc + List.length ops) 0 workload);
    gen =
      (fun rng kind ->
        match kind with
        | Uniform ->
            let schedule, pids = gen_uniform rng in
            { schedule; violation = judge_parts pids []; steps = len }
        | Starving ->
            let schedule, pids = gen_starving rng in
            { schedule; violation = judge_parts pids []; steps = len }
        | Crashing ->
            let schedule = gen_crashing rng in
            {
              schedule;
              violation = judge schedule;
              steps = Schedule.steps schedule;
            });
    replay = judge;
    artifact = (fun schedule -> Schedule.to_text schedule);
  }

(* ---- the packaged scenario table ----------------------------------- *)

let counter_workload =
  (* increments and decrements racing a reader — the mix under which the
     single-collect counter is not linearizable (Corollary 4.3): a dec
     landing inside a reader's collect window makes the reader return a
     value the counter never held *)
  [
    (0, [ Objects.Counter.inc ]);
    (1, [ Objects.Counter.read; Objects.Counter.dec ]);
    (2, [ Objects.Counter.read ]);
  ]

let builtins_with engine =
  [
    (* the canonical planted bug: the textbook broken register consensus *)
    consensus ~engine ~inputs:[ 0; 1 ] (Consensus.Flawed.first_writer ~r:1)
    |> (fun s -> { s with name = "flawed" });
    lin ~name:"lin-collect-counter" ~engine Objimpl.Counters.collect
      ~workload:counter_workload;
    lin ~name:"lin-snapshot-counter" ~engine Objimpl.Counters.snapshot
      ~workload:counter_workload;
    (* correct lock-based counter: Blocking, so crash-induced residue is
       excused, but a no-crash deadlock would still be Stuck *)
    lin ~name:"lin-lock-counter" ~engine Objimpl.Locked_counter.locked
      ~workload:counter_workload;
    (* the planted deadlock: release leaves the lock held, so any later
       acquire spins forever even solo — the Stuck specimen *)
    lin ~name:"lin-stuck-counter" ~engine Objimpl.Locked_counter.leaky
      ~workload:counter_workload;
    lin ~name:"lin-consensus-swap" ~engine ~n:2
      Objimpl.Consensus_obj.implementation
      ~workload:
        [
          (0, [ Objects.Sticky.propose_int 7; Objects.Sticky.read ]);
          (1, [ Objects.Sticky.propose_int 9; Objects.Sticky.read ]);
        ];
    lin ~name:"lin-tas-rand" ~engine ~n:2 Objimpl.Tas_rand.implementation
      ~workload:
        [
          (0, [ Objects.Test_and_set.test_and_set; Objects.Test_and_set.read ]);
          (1, [ Objects.Test_and_set.test_and_set; Objects.Test_and_set.read ]);
        ];
    mutex ~n:2 Mutex.peterson;
    mutex ~n:2 Mutex.naive_flag;
    mutex ~n:3 Mutex.tas_lock;
  ]

let builtins = builtins_with `Flat

let find ?inputs ?(engine = `Flat) name =
  let builtins = if engine = `Flat then builtins else builtins_with engine in
  match List.find_opt (fun s -> s.name = name) builtins with
  | Some s -> Ok s
  | None -> (
      match Consensus.Registry.find name with
      | Some p -> Ok (consensus ~engine ?inputs p)
      | None ->
          Error
            (Printf.sprintf
               "unknown scenario %S (builtins: %s; or any protocol from \
                `randsync list`)"
               name
               (String.concat ", " (List.map (fun s -> s.name) builtins))))
