(** Recorded schedules: the fuzzer's unit of replay and shrinking.

    A schedule flattens the adversary's side of one execution into a list
    of entries compatible with {!Sim.Run.exec_script}: step a process
    (with the coin outcome it drew, if that step was an internal flip) or
    crash one.  Process code and object contents are not recorded; they
    are recomputed by replaying from a fresh initial configuration, which
    is what makes a shrunk schedule a genuine counterexample witness. *)

open Sim

type entry = [ `Step of int * int option | `Crash of int ]

type t = entry list

val length : t -> int

(** Scheduler steps only (crash entries are free for the adversary). *)
val steps : t -> int

(** Distinct pids appearing in the schedule, sorted. *)
val pids : t -> int list

(** The schedule a trace records; replaying it through
    {!Sim.Run.exec_script} from the same initial configuration reproduces
    the trace. *)
val of_trace : 'a Trace.t -> t

(** {1 Text codec} — line-oriented, versioned, in the style of
    {!Sim.Trace_io} (whose [Parse_error] it raises and whose atomic
    [save_text] it writes through).  v2 files carry a [len <count>]
    line and a final [end] marker, both validated on read, so a
    truncated file — whole lines lost or a cut mid-entry — is a loud
    parse error instead of a silently shorter witness; v1 files, which
    have neither, are still read. *)

val to_text : t -> string

(** Raises {!Sim.Trace_io.Parse_error} on malformed input. *)
val of_text : string -> t

val save : path:string -> t -> unit
val load : path:string -> t
val pp : Format.formatter -> t -> unit
