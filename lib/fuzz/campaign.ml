(* Fuzz campaigns: many seeded stress runs of one scenario, optionally
   fanned out over a [Par] pool, governed by a [Robust.Budget].

   Determinism contract (same as the rest of the repo): identical
   [~seed]/[~runs]/[~weights] give bit-identical results at any jobs
   count.  Per-run RNG streams are pre-split with [Rng.split_n], so run i
   draws the same schedule whether it executes on the caller or on any
   pool domain; [Par.map] preserves order; the fold over reports is
   sequential in run-index order; shrinking happens on the caller domain
   after the parallel phase.  The only budget dimension that can differ
   between runs is the best-effort deadline, and that is reported via
   [completeness], never silently.

   Node budget semantics: one fuzz run = one node.  Runs are admitted in
   fixed-size batches through [Meter.take_nodes]; only the admitted prefix
   is dispatched, so a node cap truncates at the same run index on every
   execution.  The shrinker's candidate replays are charged to the step
   budget. *)

open Sim

type counterexample = {
  run_index : int;
  sched_kind : Scenario.sched_kind;
  violation : Scenario.violation;
  original : Schedule.t;
  shrunk : Schedule.t;
  shrink_stats : Shrink.stats option;  (** [None] when shrinking was off *)
  artifact : string;
}

type result = {
  scenario : string;
  runs_requested : int;
  runs_done : int;
  violations : int;
  first_violation : counterexample option;
  kind_counts : (Scenario.sched_kind * int) list;
  total_steps : int;
  completeness : Robust.Budget.completeness;
}

let run ?obs ?pool ?(budget = Robust.Budget.unlimited)
    ?(weights = Scenario.default_weights) ?(shrink = true)
    ?(max_candidates = 4000) ?(batch = 32) ~runs ~seed (sc : Scenario.t) =
  (* Instrumentation discipline: every [Obs] call below happens on the
     caller domain — either in the sequential report fold or after it —
     so metrics are a pure function of the (jobs-invariant) results and
     cannot perturb the determinism contract. *)
  Obs.span obs "fuzz/campaign" @@ fun () ->
  let rngs = Rng.split_n (Rng.create seed) runs in
  let meter = Robust.Budget.Meter.create budget in
  let runs_done = ref 0 in
  let violations = ref 0 in
  let total_steps = ref 0 in
  let first : (int * Scenario.sched_kind * Scenario.run_report) option ref =
    ref None
  in
  let counts = Hashtbl.create 4 in
  let bump kind =
    Hashtbl.replace counts kind (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind))
  in
  let batch = max 1 batch in
  let start = ref 0 in
  let stop = ref false in
  while (not !stop) && !start < runs do
    let want = min batch (runs - !start) in
    let admitted = Robust.Budget.Meter.take_nodes meter want in
    if admitted < want then stop := true;
    if admitted > 0 then begin
      let record i kind (report : Scenario.run_report) =
        incr runs_done;
        bump kind;
        total_steps := !total_steps + report.Scenario.steps;
        match report.Scenario.violation with
        | None -> ()
        | Some _ ->
            incr violations;
            if !first = None then first := Some (i, kind, report)
      in
      let generate i =
        let rng = rngs.(i) in
        let kind = Scenario.pick_kind weights rng in
        (i, kind, sc.Scenario.gen rng kind)
      in
      match pool with
      | None ->
          (* stream the fold: identical to the pooled path's index-order
             fold below, without materializing the batch — a campaign's
             reports are dead on arrival unless they hold the first
             violation, and retaining a batch of recorded schedules just
             makes every minor collection rescan them *)
          for i = !start to !start + admitted - 1 do
            let i, kind, report = generate i in
            record i kind report
          done
      | Some _ ->
          let indices = List.init admitted (fun i -> !start + i) in
          let reports = Par.map ?pool generate indices in
          List.iter
            (fun (i, kind, report) -> record i kind report)
            reports
    end;
    start := !start + admitted
  done;
  (* The campaign meter latches once tripped (e.g. on a node cap), which
     would starve the shrinker of step ticks; shrinking gets a fresh meter
     over the same budget — the deadline is an absolute instant, so the
     wall-clock horizon stays shared — and its trips are merged below. *)
  let shrink_meter = Robust.Budget.Meter.create budget in
  let first_violation =
    match !first with
    | None -> None
    | Some (run_index, sched_kind, report) ->
        let violation = Option.get report.Scenario.violation in
        let original = report.Scenario.schedule in
        let shrunk, shrink_stats =
          if shrink then
            let s, st =
              Shrink.minimize ?obs ~max_candidates ~meter:shrink_meter
                ~replay:sc.Scenario.replay ~target:violation original
            in
            (s, Some st)
          else (original, None)
        in
        Some
          {
            run_index;
            sched_kind;
            violation;
            original;
            shrunk;
            shrink_stats;
            artifact = sc.Scenario.artifact shrunk;
          }
  in
  let of_trip m =
    match Robust.Budget.Meter.tripped m with
    | Some reason -> `Truncated reason
    | None -> `Exhaustive
  in
  let completeness =
    Robust.Budget.merge (of_trip meter) (of_trip shrink_meter)
  in
  Obs.add obs "fuzz/runs" !runs_done;
  Obs.add obs "fuzz/violations" !violations;
  Obs.add obs "fuzz/steps" !total_steps;
  Hashtbl.iter
    (fun kind c -> Obs.add obs ("fuzz/kind/" ^ Scenario.kind_name kind) c)
    counts;
  Obs.add obs "budget/polls"
    (Robust.Budget.Meter.polls meter + Robust.Budget.Meter.polls shrink_meter);
  {
    scenario = sc.Scenario.name;
    runs_requested = runs;
    runs_done = !runs_done;
    violations = !violations;
    first_violation;
    kind_counts =
      List.filter_map
        (fun k ->
          match Hashtbl.find_opt counts k with
          | Some c -> Some (k, c)
          | None -> None)
        Scenario.all_kinds;
    total_steps = !total_steps;
    completeness;
  }
