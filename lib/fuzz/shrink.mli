(** Counterexample shrinking by delta debugging.

    [minimize ~replay ~target schedule] reduces a violating schedule to a
    (locally) minimal one whose replay still yields [Some target] — the
    same violation kind, so every intermediate is itself a witness
    (shrink soundness).  Passes run to a fixpoint: drop-suffix (binary
    search for the shortest violating prefix), drop-process, ddmin chunk
    removal, and coin canonicalization (recorded outcomes rewritten to 0
    where the violation survives).

    Deterministic: candidate order is a function of the input schedule
    alone; identical inputs give identical minima.  Budgeted: each
    candidate replay counts against [max_candidates] (default 4000) and
    ticks [meter]'s step counter; on exhaustion the best schedule found
    so far is returned with [`Truncated]. *)

type stats = {
  candidates : int;  (** replays attempted *)
  accepted : int;  (** replays that still violated, shrinking the witness *)
  completeness : Robust.Budget.completeness;
}

val minimize :
  ?max_candidates:int ->
  ?meter:Robust.Budget.Meter.t ->
  replay:(Schedule.t -> 'v option) ->
  target:'v ->
  Schedule.t ->
  Schedule.t * stats
