(** Counterexample shrinking by delta debugging.

    [minimize ~replay ~target schedule] reduces a violating schedule to a
    (locally) minimal one whose replay still yields [Some target] — the
    same violation kind, so every intermediate is itself a witness
    (shrink soundness).  Passes run to a fixpoint: drop-suffix (binary
    search for the shortest violating prefix), drop-process, ddmin chunk
    removal, and coin canonicalization (recorded outcomes rewritten to 0
    where the violation survives).

    Deterministic: candidate order is a function of the input schedule
    alone; identical inputs give identical minima.  Budgeted: each
    candidate replay counts against [max_candidates] (default 4000) and
    ticks [meter]'s step counter; on exhaustion the best schedule found
    so far is returned with [`Truncated]. *)

(** Why a shrink stopped early: any {!Robust.Budget.reason} from the
    shared meter, or [`Candidates] when the shrinker's own
    [max_candidates] cap was hit.  The two demand different remedies
    (raise the budget vs. raise the cap), so the cap is not folded into
    the meter's [`Steps]. *)
type reason = [ Robust.Budget.reason | `Candidates ]

type completeness = [ `Exhaustive | `Truncated of reason ]

val reason_to_string : reason -> string
val completeness_to_string : completeness -> string

type stats = {
  candidates : int;  (** replays attempted *)
  accepted : int;  (** replays that still violated, shrinking the witness *)
  completeness : completeness;
}

(** When [obs] is given, the run is wrapped in a ["shrink"] span and the
    ["fuzz/shrink/candidates"] / ["fuzz/shrink/accepted"] counters are
    bumped by this run's totals. *)
val minimize :
  ?obs:Obs.t ->
  ?max_candidates:int ->
  ?meter:Robust.Budget.Meter.t ->
  replay:(Schedule.t -> 'v option) ->
  target:'v ->
  Schedule.t ->
  Schedule.t * stats
