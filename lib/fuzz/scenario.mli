(** Fuzzable scenarios: a uniform face over the three workload families
    the repo simulates — consensus (agreement/validity via
    {!Sim.Checker}), mutual exclusion (occupancy invariant), and object
    implementations (linearizability via the {!Lin.Cross} differential
    oracle pair, plus [Stuck] progress verdicts from the
    {!Objimpl.Harness} drain probe).

    Each scenario can run once under a freshly drawn adversarial schedule
    (recording the schedule it used) and can replay any schedule
    deterministically and judge it.  The shrinker only ever calls
    {!field:replay}, so shrink soundness holds by construction. *)

open Sim

type violation = Inconsistent | Invalid | Not_linearizable | Exclusion | Stuck

val violation_to_string : violation -> string

(** Adversarial schedule families drawn per run.  For linearizability
    scenarios [Crashing] injects harness crash points ([`Crash] schedule
    entries); elsewhere it uses {!Sim.Run.exec_with_crashes}. *)
type sched_kind = Uniform | Starving | Crashing

val all_kinds : sched_kind list
val kind_name : sched_kind -> string

(** uniform 0.5, starve 0.25, crash 0.25 *)
val default_weights : (sched_kind * float) list

val pick_kind : (sched_kind * float) list -> Rng.t -> sched_kind

type run_report = {
  schedule : Schedule.t;
  violation : violation option;
  steps : int;
}

type t = {
  name : string;
  describe : string;
  gen : Rng.t -> sched_kind -> run_report;
      (** one stress run under a schedule drawn from [rng] *)
  replay : Schedule.t -> violation option;
      (** deterministic; the shrinker's oracle *)
  artifact : Schedule.t -> string;
      (** serialized counterexample: a {!Sim.Trace_io} trace for
          consensus/mutex scenarios, a {!Schedule} text for
          linearizability ones *)
}

(** Execution engine for gen/replay.  [`Flat] (the default) runs
    consensus scenarios over the in-place slab executors
    ({!Sim.Flat_run}: blit reset + shared intern runtime) and
    linearizability scenarios over the interned harness engine with a
    per-domain verdict memo; [`Closure] is the original closure-tree
    execution, kept as the differential reference.  Identical RNG draw
    order under both, so a seed names the same run either way; engine
    state is per-domain ([Domain.DLS]), preserving campaign
    jobs-invariance.  Mutex scenarios always execute closure-side (the
    occupancy invariant is judged on full event traces). *)
type engine = [ `Closure | `Flat ]

val consensus :
  ?engine:engine ->
  ?inputs:int list ->
  ?max_steps:int ->
  Consensus.Protocol.t ->
  t

val mutex : ?n:int -> ?max_steps:int -> Mutex.t -> t

(** Linearizability-and-progress scenarios.  Every recorded history is
    judged by both oracles ({!Lin.Cross.verdict} — raises
    {!Lin.Cross.Divergence} on decisive disagreement); the drain probe
    runs on every replay, and residual in-flight calls yield [Stuck]
    unless the implementation is {!Objimpl.Implementation.Blocking} and
    the schedule crashed somebody. *)
val lin :
  name:string ->
  ?engine:engine ->
  ?n:int ->
  ?len:int ->
  ?max_steps:int ->
  Objimpl.Implementation.t ->
  workload:(int * Op.t list) list ->
  t

(** The packaged table: ["flawed"] (the planted broken register
    consensus), [lin-collect-counter], [lin-snapshot-counter],
    [lin-lock-counter], [lin-stuck-counter] (the planted deadlock),
    [lin-consensus-swap], [lin-tas-rand], [mutex-peterson-2],
    [mutex-naive-flag], [mutex-swap-lock]. *)
val builtins : t list
(** The table under the default [`Flat] engine. *)

val builtins_with : engine -> t list

(** Builtins first, then any protocol name from {!Consensus.Registry}
    (with [inputs], default [[0; 1]]); [engine] selects the execution
    engine (default [`Flat]). *)
val find : ?inputs:int list -> ?engine:engine -> string -> (t, string) result
