(* Counterexample shrinking by delta debugging.

   The oracle is a replay function; a candidate schedule is accepted only
   if its own replay reproduces the *same* violation kind as the original
   (shrink soundness: every intermediate, and hence the final minimum, is
   itself a witness).  Replay is total — [Sim.Run.exec_script] skips
   entries whose process is disabled — so arbitrary deletions are safe to
   try.

   Passes, repeated to a fixpoint:
     1. drop-suffix    — binary-search the shortest violating prefix
     2. drop-process   — remove every entry of one pid at a time
     3. ddmin chunks   — classic delta debugging: remove sublists at
                         halving granularity down to single entries
     4. zero-coins     — canonicalize recorded coin outcomes to 0

   Deterministic: no randomness, candidate order is a function of the
   input alone.  Budgeted: each candidate replay ticks the meter's step
   counter once; when the budget trips, the best schedule found so far is
   returned with [`Truncated].  The shrinker's own [max_candidates] cap
   reports its dedicated [`Candidates] reason — a capped pass sweep and a
   tripped step budget are different operator actions (raise the cap
   vs. raise the budget) and must not be conflated. *)

(* [Robust.Budget.reason] plus the shrinker-local candidate cap. *)
type reason = [ Robust.Budget.reason | `Candidates ]
type completeness = [ `Exhaustive | `Truncated of reason ]

let reason_to_string : reason -> string = function
  | `Candidates -> "candidates"
  | #Robust.Budget.reason as r -> Robust.Budget.reason_to_string r

let completeness_to_string : completeness -> string = function
  | `Exhaustive -> "exhaustive"
  | `Truncated r -> Printf.sprintf "truncated (%s)" (reason_to_string r)

type stats = {
  candidates : int;  (** replays attempted *)
  accepted : int;  (** replays that still violated, shrinking the witness *)
  completeness : completeness;
}

exception Out_of_budget

let remove_range l start len =
  List.filteri (fun i _ -> i < start || i >= start + len) l

let minimize ?obs ?(max_candidates = 4000) ?meter ~replay ~target schedule =
  let candidates = ref 0 in
  let accepted = ref 0 in
  let truncated : reason option ref = ref None in
  let try_candidate cand =
    if !candidates >= max_candidates then begin
      if !truncated = None then truncated := Some `Candidates;
      raise Out_of_budget
    end;
    (match meter with
    | Some m -> (
        match Robust.Budget.Meter.tick_step m with
        | Some r ->
            truncated := Some (r :> reason);
            raise Out_of_budget
        | None -> ())
    | None -> ());
    incr candidates;
    let ok = replay cand = Some target in
    if ok then incr accepted;
    ok
  in
  (* 1. shortest violating prefix, by binary search: the largest suffix
     drop that keeps the violation *)
  let drop_suffix sched =
    let rec go sched =
      let n = List.length sched in
      let rec try_cut cut =
        if cut = 0 then None
        else
          let cand = List.filteri (fun i _ -> i < n - cut) sched in
          if try_candidate cand then Some cand else try_cut (cut / 2)
      in
      match try_cut (List.length sched / 2) with
      | Some cand -> go cand
      | None -> sched
    in
    go sched
  in
  (* 2. drop all entries of one process *)
  let drop_process sched =
    List.fold_left
      (fun sched pid ->
        if List.length (Schedule.pids sched) <= 1 then sched
        else
          let cand =
            List.filter
              (function
                | `Step (p, _) -> p <> pid
                | `Crash p -> p <> pid)
              sched
          in
          if cand <> sched && try_candidate cand then cand else sched)
      sched (Schedule.pids sched)
  in
  (* 3. ddmin: remove chunks at halving granularity *)
  let ddmin sched =
    let rec go sched chunk =
      if chunk = 0 || List.length sched <= 1 then sched
      else
        let n = List.length sched in
        let rec scan sched start =
          if start >= List.length sched then sched
          else
            let cand =
              remove_range sched start (min chunk (List.length sched - start))
            in
            if try_candidate cand then scan cand start
            else scan sched (start + chunk)
        in
        let sched' = scan sched 0 in
        if List.length sched' < n then go sched' chunk else go sched' (chunk / 2)
    in
    go sched (List.length sched / 2)
  in
  (* 4. canonicalize coins: prefer outcome 0 so minimal witnesses look
     alike across seeds.  One array-backed left-to-right sweep: flipping
     entry [i] mutates the shared array in place (and reverts on
     rejection), so each candidate costs O(n) to materialize instead of
     the O(n) [List.nth] + O(n) [List.mapi] per *position* the old
     list-walking pass paid — O(n^2) overall with a large constant.  The
     candidate sequence is unchanged: position [i]'s candidate is the
     schedule with every previously-accepted flip kept and [i] zeroed. *)
  let zero_coins sched =
    let arr = Array.of_list sched in
    let changed = ref false in
    Array.iteri
      (fun i e ->
        match e with
        | `Step (pid, Some c) when c <> 0 ->
            arr.(i) <- `Step (pid, Some 0);
            if try_candidate (Array.to_list arr) then changed := true
            else arr.(i) <- e
        | _ -> ())
      arr;
    if !changed then Array.to_list arr else sched
  in
  let best = ref schedule in
  Obs.span obs "shrink" (fun () ->
      try
        let rec fixpoint sched =
          best := sched;
          let sched' = zero_coins (ddmin (drop_process (drop_suffix sched))) in
          best := sched';
          if List.length sched' < List.length sched then fixpoint sched'
        in
        fixpoint schedule
      with Out_of_budget -> ());
  let completeness =
    match !truncated with
    | Some reason -> `Truncated reason
    | None -> `Exhaustive
  in
  Obs.add obs "fuzz/shrink/candidates" !candidates;
  Obs.add obs "fuzz/shrink/accepted" !accepted;
  (!best, { candidates = !candidates; accepted = !accepted; completeness })
