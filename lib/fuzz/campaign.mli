(** Fuzz campaigns: many seeded stress runs of one scenario, optionally
    fanned out over a {!Par} pool, governed by a {!Robust.Budget}.

    Determinism contract: identical [seed]/[runs]/[weights] give
    bit-identical results at any jobs count — per-run RNG streams are
    pre-split with {!Sim.Rng.split_n}, {!Par.map} preserves order, the
    report fold is sequential in run-index order, and shrinking runs on
    the caller domain.  The only budget dimension that can vary between
    executions is the best-effort deadline, reported via
    {!field:completeness}, never silently.

    Budget semantics: one fuzz run = one node, admitted in fixed-size
    batches through {!Robust.Budget.Meter.take_nodes} (a node cap
    truncates at the same run index on every execution); the shrinker's
    candidate replays are charged to the step budget on a fresh meter so
    a tripped node cap does not starve shrinking. *)

type counterexample = {
  run_index : int;
  sched_kind : Scenario.sched_kind;
  violation : Scenario.violation;
  original : Schedule.t;
  shrunk : Schedule.t;  (** equals [original] when shrinking was off *)
  shrink_stats : Shrink.stats option;  (** [None] when shrinking was off *)
  artifact : string;  (** serialized witness, see {!Scenario.t.artifact} *)
}

type result = {
  scenario : string;
  runs_requested : int;
  runs_done : int;  (** [< runs_requested] only under budget truncation *)
  violations : int;
  first_violation : counterexample option;
  kind_counts : (Scenario.sched_kind * int) list;
  total_steps : int;  (** scheduler steps across all runs *)
  completeness : Robust.Budget.completeness;
}

(** When [obs] is given the campaign is wrapped in a ["fuzz/campaign"]
    span and records ["fuzz/runs"], ["fuzz/violations"], ["fuzz/steps"],
    per-kind ["fuzz/kind/<name>"] counters and ["budget/polls"].  All
    recording happens on the caller domain from the (jobs-invariant)
    sequential fold, so counter values are bit-identical at any
    [RANDSYNC_JOBS]. *)
val run :
  ?obs:Obs.t ->
  ?pool:Par.Pool.t ->
  ?budget:Robust.Budget.t ->
  ?weights:(Scenario.sched_kind * float) list ->
  ?shrink:bool ->
  ?max_candidates:int ->
  ?batch:int ->
  runs:int ->
  seed:int ->
  Scenario.t ->
  result
