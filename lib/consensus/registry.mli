(** All packaged protocols, for the CLI, examples and experiments. *)

val correct : Protocol.t list
val flawed : Protocol.t list
val all : Protocol.t list

(** Look a protocol up by name.  Beyond the static {!all} entries,
    [synth:<style>:r<R>:<t0>|<t1>] names decode on the fly through
    {!Dtree.of_name}, so protocols minted by `randsync synth` work
    everywhere a packaged name does. *)
val find : string -> Protocol.t option
