(** Bounded decision-tree protocols over [r] historyless objects — the
    candidate space searched by the CEGIS driver ([Synth.Cegis]), and the
    shape of every protocol it synthesizes.

    A tree is one process's whole program; a protocol assigns one tree
    per input value and every process runs its input's tree (identical
    processes, the Section 3.1 setting).  Trees of the [Rw] style use
    only writes and reads of plain registers; the [Swapping] style runs
    over swap registers (READ/WRITE/SWAP — the paper's interfering
    example, consensus number 2), whose [Swap] constructor branches on
    the swapped-out value.

    Trees have a compact, whitespace-free codec ({!to_string} /
    {!of_string}), and whole protocols round-trip through their {e name}:
    [synth:<style>:r<R>:<tree0>|<tree1>] is parsed back by {!of_name},
    which [Registry.find] consults for the [synth:] prefix — a protocol
    minted by one synthesis run is model-checkable, fuzzable and
    benchable by any later process from the name alone. *)

open Sim

type t =
  | Decide of int
  | Flip of t * t  (** internal fair coin: tails / heads *)
  | Write of { reg : int; bit : int; k : t }
  | Read of { reg : int; empty : t; zero : t; one : t }
  | Swap of { reg : int; bit : int; empty : t; zero : t; one : t }
      (** swap [bit] in and branch on the value swapped out *)

type style = Rw | Swapping

val style_to_string : style -> string
val style_of_string : string -> style option
val size : t -> int
val depth : t -> int
val has_flip : t -> bool
val uses_swap : t -> bool

(** Largest register index mentioned; [-1] for pure decide/flip trees. *)
val max_reg : t -> int

(** Compact codec: [d0], [f(a,b)], [w<reg>.<bit>(k)], [r<reg>(e,z,o)],
    [s<reg>.<bit>(e,z,o)]; no whitespace.  [of_string] is its exact
    inverse and rejects trailing garbage. *)
val to_string : t -> string

val of_string : string -> (t, string) result

val to_proc : t -> int Proc.t

(** The object row for a protocol of this style: [registers] plain
    registers ([Rw]) or swap registers ([Swapping]). *)
val optypes : style:style -> registers:int -> Optype.t list

(** [protocol ~style ~registers (t0, t1)] packages the pair as an
    identical-process protocol named
    [synth:<style>:r<registers>:<t0>|<t1>]; [kind] is [`Randomized] iff
    a tree flips.  Raises [Invalid_argument] when a tree touches a
    register [>= registers] or swaps under the [Rw] style. *)
val protocol : style:style -> registers:int -> t * t -> Protocol.t

val protocol_name : style:style -> registers:int -> t * t -> string

(** Parse a [synth:...] protocol name back to its parts; [None] on
    anything malformed (wrong prefix, bad tree, style/register
    mismatch). *)
val parse_name : string -> (style * int * t * t) option

(** [of_name n] rebuilds the protocol a [synth:] name denotes.
    [of_name (protocol ~style ~registers p).name] always succeeds — the
    codec round-trip [Registry.find] relies on. *)
val of_name : string -> Protocol.t option
