(* A consensus protocol, packaged: which objects it uses for n processes and
   the procedure each process runs.  Decisions are [int] (binary consensus
   uses 0/1; the framework does not care).

   [identical] marks protocols whose code does not depend on the process id
   — the assumption of the Section 3.1 lower bound.  The [Lowerbound.Attack]
   adversary requires it. *)

open Sim

type t = {
  name : string;
  kind : [ `Deterministic | `Randomized ];
  identical : bool;
  supports_n : int -> bool;
  optypes : n:int -> Optype.t list;
  code : n:int -> pid:int -> input:int -> int Proc.t;
}

let space t ~n = List.length (t.optypes ~n)

(** The initial configuration for the given inputs (one per process).

    Initial state fingerprints are seeded so that [Mc.Explore]'s
    [`Symmetric] dedup is sound for any packaged protocol: for [identical]
    protocols two processes share an initial term iff they share an input,
    so the input seeds the fingerprint (and same-input processes become
    interchangeable); for pid-dependent code every process gets a distinct
    pid seed, making [`Symmetric] degrade safely to per-slot matching. *)
let initial_config t ~inputs =
  let n = List.length inputs in
  if not (t.supports_n n) then
    invalid_arg
      (Printf.sprintf "protocol %s does not support n=%d" t.name n);
  let procs =
    List.mapi (fun pid input -> t.code ~n ~pid ~input) inputs
  in
  let fp_seeds =
    List.mapi (fun pid input -> if t.identical then input else pid) inputs
  in
  Config.make_seeded ~fp_seeds ~optypes:(t.optypes ~n) ~procs

type run_report = {
  result : int Run.result;
  verdict : Checker.verdict;
  inputs : int list;
}

(** Run once under [sched]; check consistency and validity of whatever
    decisions were reached. *)
let run_once ?(max_steps = 200_000) t ~inputs ~sched =
  let config = initial_config t ~inputs in
  let result = Run.exec_fast ~max_steps sched config in
  let verdict = Checker.of_config ~inputs result.config in
  { result; verdict; inputs }

(** Run [reps] times with seeds [seed, seed+1, ...] under scheduler family
    [mk_sched]; returns reports. *)
let run_many ?(max_steps = 200_000) t ~inputs ~mk_sched ~seed ~reps =
  List.init reps (fun i ->
      run_once ~max_steps t ~inputs ~sched:(mk_sched (seed + i)))

(** Average total steps over completed runs; [None] if no run completed. *)
let mean_steps reports =
  let completed =
    List.filter
      (fun r -> r.result.Run.outcome = Run.All_decided)
      reports
  in
  match completed with
  | [] -> None
  | _ ->
      let total =
        List.fold_left (fun acc r -> acc + r.result.Run.steps) 0 completed
      in
      Some (float_of_int total /. float_of_int (List.length completed))
