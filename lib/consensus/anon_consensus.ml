(* Randomized binary consensus for ANONYMOUS processes — everyone runs
   the identical code, no pids anywhere (Gelashvili's setting, "On the
   optimal space complexity of consensus for anonymous processes"): the
   Section 3.1 assumption of the paper taken literally, so this protocol
   is attackable by [Lowerbound.Attack] yet correct under it (the attack
   needs non-binary freedom it does not have here).

   Single-writer registers are useless without identity, so everything is
   multi-writer and the rw-3n collect idiom is unavailable.  Instead each
   round r owns four fresh multi-writer registers: presence bits
   a_r[0], a_r[1], a proposal register d_r and a conciliator c_r.

     conciliator: read c_r; non-empty means adopt that value; empty
       means a local coin decides whether to publish the own preference
       first (kept either way).  Constant probability that the round
       leaves everybody with equal preferences.
     adopt-commit: announce a_r[pref] := 1, then read d_r — adopt its
       value if set, publish pref otherwise; COMMIT the result v iff
       a_r[1-v] is still clear.  Announce-before-d_r-read makes commits
       stable: any root dissenter (one whose d_r read was empty) announced
       before the first d_r write, hence before the committer's presence
       check, which would then have seen its bit.  A commit decides; an
       adopt carries the value into round r+1.

   Safety is anonymous, coin-free and n-free; termination holds with
   probability 1 against the oblivious schedulers used in the test rig.
   Rounds are capped by the register bank (64); a capped process spins
   rather than ever deciding wrongly. *)

open Sim
open Objects

let rounds = 64

let presence r v = (4 * r) + v
let proposal r = (4 * r) + 2
let conciliator r = (4 * r) + 3

let code ~n:_ ~pid:_ ~input =
  let open Proc in
  let rec cap_spin () =
    let* _ = apply (proposal (rounds - 1)) Register.read in
    cap_spin ()
  in
  let rec round r pref =
    if r >= rounds then cap_spin ()
    else
      let* cur = apply (conciliator r) Register.read in
      let* pref =
        match cur with
        | Value.Int x -> return x
        | _ ->
            let* publish = flip in
            if publish then
              let* _ =
                apply (conciliator r) (Register.write (Value.int pref))
              in
              return pref
            else return pref
      in
      let* _ = apply (presence r pref) (Register.write (Value.int 1)) in
      let* d = apply (proposal r) Register.read in
      let* pref =
        match d with
        | Value.Int x -> return x
        | _ ->
            let* _ = apply (proposal r) (Register.write (Value.int pref)) in
            return pref
      in
      let* other = apply (presence r (1 - pref)) Register.read in
      match other with
      | Value.Int 1 -> round (r + 1) pref
      | _ -> decide pref
  in
  round 0 input

let protocol : Protocol.t =
  {
    name = "anon-rw";
    kind = `Randomized;
    identical = true;
    supports_n = (fun n -> n >= 1);
    optypes =
      (fun ~n:_ ->
        List.init (4 * rounds) (fun _ -> Register.optype ~init:Value.none ()));
    code;
  }
