(* All packaged protocols, for the CLI, examples and experiment harness. *)

let correct : Protocol.t list =
  [
    Cas_consensus.protocol;
    Sticky_consensus.protocol;
    Fa_consensus.protocol;
    Counter_consensus.protocol;
    Rw_consensus.protocol;
    Anon_consensus.protocol;
    Tas2.protocol;
    Swap2.protocol;
    Queue2.protocol;
  ]

let flawed : Protocol.t list =
  [
    Flawed.unanimous ~style:Flawed.Rw ~r:1;
    Flawed.unanimous ~style:Flawed.Rw ~r:2;
    Flawed.unanimous ~style:Flawed.Swapping ~r:2;
    Flawed.first_writer ~r:1;
    Flawed.first_writer ~r:2;
    Flawed.coin_retry ~style:Flawed.Rw ~r:2;
    Flawed.mixed ~r:2;
    Flawed.mixed ~r:3;
  ]

let all = correct @ flawed

(* [synth:...] names are a protocol family, not list entries: the name
   itself encodes the decision trees (see [Dtree]), so synthesized
   protocols resolve without registration. *)
let find name =
  match List.find_opt (fun (p : Protocol.t) -> p.name = name) all with
  | Some _ as found -> found
  | None ->
      if String.length name >= 6 && String.sub name 0 6 = "synth:" then
        Dtree.of_name name
      else None
