(* Bounded decision-tree protocols over r historyless objects: the
   candidate space the CEGIS driver (lib/synth) searches, generalizing
   Mc.Enumerate's single-register trees to multiple registers and to the
   swap-register class (Ovens 2023 direction).

   A tree is one process's whole program: decide, flip a fair coin, write
   a bit to a register and continue, or read/swap a register and branch
   on what was there (empty | 0 | 1).  A protocol assigns one tree per
   input value and every process runs the assignment for its own input —
   identical processes, the Section 3.1 setting.

   Trees have a compact ASCII codec so synthesized protocols are *names*:
   `synth:<style>:r<R>:<tree0>|<tree1>` round-trips through
   {!protocol_name}/{!of_name} and is resolved by [Registry.find], which
   is what lets a protocol minted by one synthesis run be model-checked,
   fuzzed and benched by any later process. *)

open Sim

type t =
  | Decide of int
  | Flip of t * t  (* tails / heads *)
  | Write of { reg : int; bit : int; k : t }
  | Read of { reg : int; empty : t; zero : t; one : t }
  | Swap of { reg : int; bit : int; empty : t; zero : t; one : t }

type style = Rw | Swapping

let style_to_string = function Rw -> "rw" | Swapping -> "swap"

let style_of_string = function
  | "rw" -> Some Rw
  | "swap" -> Some Swapping
  | _ -> None

let rec size = function
  | Decide _ -> 1
  | Flip (a, b) -> 1 + size a + size b
  | Write { k; _ } -> 1 + size k
  | Read { empty; zero; one; _ } -> 1 + size empty + size zero + size one
  | Swap { empty; zero; one; _ } -> 1 + size empty + size zero + size one

let rec depth = function
  | Decide _ -> 0
  | Flip (a, b) -> 1 + max (depth a) (depth b)
  | Write { k; _ } -> 1 + depth k
  | Read { empty; zero; one; _ } ->
      1 + max (depth empty) (max (depth zero) (depth one))
  | Swap { empty; zero; one; _ } ->
      1 + max (depth empty) (max (depth zero) (depth one))

let rec has_flip = function
  | Decide _ -> false
  | Flip _ -> true
  | Write { k; _ } -> has_flip k
  | Read { empty; zero; one; _ } ->
      has_flip empty || has_flip zero || has_flip one
  | Swap { empty; zero; one; _ } ->
      has_flip empty || has_flip zero || has_flip one

let rec uses_swap = function
  | Decide _ -> false
  | Flip (a, b) -> uses_swap a || uses_swap b
  | Write { k; _ } -> uses_swap k
  | Read { empty; zero; one; _ } ->
      uses_swap empty || uses_swap zero || uses_swap one
  | Swap _ -> true

let rec max_reg = function
  | Decide _ -> -1
  | Flip (a, b) -> max (max_reg a) (max_reg b)
  | Write { reg; k; _ } -> max reg (max_reg k)
  | Read { reg; empty; zero; one } ->
      max reg (max (max_reg empty) (max (max_reg zero) (max_reg one)))
  | Swap { reg; empty; zero; one; _ } ->
      max reg (max (max_reg empty) (max (max_reg zero) (max_reg one)))

(* ---- codec ----

   tree := d<int>
         | f(<tree>,<tree>)
         | w<reg>.<bit>(<tree>)
         | r<reg>(<tree>,<tree>,<tree>)
         | s<reg>.<bit>(<tree>,<tree>,<tree>)

   No whitespace anywhere: the string embeds in protocol names, metrics
   labels and shell arguments unquoted. *)

let rec to_string = function
  | Decide v -> Printf.sprintf "d%d" v
  | Flip (a, b) -> Printf.sprintf "f(%s,%s)" (to_string a) (to_string b)
  | Write { reg; bit; k } -> Printf.sprintf "w%d.%d(%s)" reg bit (to_string k)
  | Read { reg; empty; zero; one } ->
      Printf.sprintf "r%d(%s,%s,%s)" reg (to_string empty) (to_string zero)
        (to_string one)
  | Swap { reg; bit; empty; zero; one } ->
      Printf.sprintf "s%d.%d(%s,%s,%s)" reg bit (to_string empty)
        (to_string zero) (to_string one)

exception Parse of string

let of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let expect ch =
    match peek () with
    | Some x when x = ch -> incr pos
    | _ -> raise (Parse (Printf.sprintf "expected '%c' at offset %d" ch !pos))
  in
  let int () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while match peek () with Some '0' .. '9' -> true | _ -> false do
      incr pos
    done;
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some n -> n
    | None -> raise (Parse (Printf.sprintf "expected integer at offset %d" start))
  in
  let rec tree d =
    if d > 64 then raise (Parse "tree deeper than 64");
    match peek () with
    | Some 'd' ->
        incr pos;
        Decide (int ())
    | Some 'f' ->
        incr pos;
        expect '(';
        let a = tree (d + 1) in
        expect ',';
        let b = tree (d + 1) in
        expect ')';
        Flip (a, b)
    | Some 'w' ->
        incr pos;
        let reg = int () in
        expect '.';
        let bit = int () in
        expect '(';
        let k = tree (d + 1) in
        expect ')';
        Write { reg; bit; k }
    | Some 'r' ->
        incr pos;
        let reg = int () in
        expect '(';
        let empty = tree (d + 1) in
        expect ',';
        let zero = tree (d + 1) in
        expect ',';
        let one = tree (d + 1) in
        expect ')';
        Read { reg; empty; zero; one }
    | Some 's' ->
        incr pos;
        let reg = int () in
        expect '.';
        let bit = int () in
        expect '(';
        let empty = tree (d + 1) in
        expect ',';
        let zero = tree (d + 1) in
        expect ',';
        let one = tree (d + 1) in
        expect ')';
        Swap { reg; bit; empty; zero; one }
    | _ -> raise (Parse (Printf.sprintf "expected a tree at offset %d" !pos))
  in
  match tree 0 with
  | t ->
      if !pos <> len then
        Error (Printf.sprintf "trailing garbage at offset %d in %S" !pos s)
      else Ok t
  | exception Parse msg -> Error (msg ^ " in " ^ Printf.sprintf "%S" s)

(* ---- execution ---- *)

let rec to_proc tree : int Proc.t =
  match tree with
  | Decide v -> Proc.decide v
  | Flip (tails, heads) ->
      Proc.bind Proc.flip (fun h -> to_proc (if h then heads else tails))
  | Write { reg; bit; k } ->
      Proc.bind
        (Proc.apply reg (Objects.Register.write_int bit))
        (fun _ -> to_proc k)
  | Read { reg; empty; zero; one } ->
      Proc.bind (Proc.apply reg Objects.Register.read) (fun v ->
          match v with
          | Value.Int 0 -> to_proc zero
          | Value.Int _ -> to_proc one
          | _ -> to_proc empty)
  | Swap { reg; bit; empty; zero; one } ->
      Proc.bind
        (Proc.apply reg (Objects.Swap_register.swap_int bit))
        (fun v ->
          match v with
          | Value.Int 0 -> to_proc zero
          | Value.Int _ -> to_proc one
          | _ -> to_proc empty)

let optypes ~style ~registers =
  List.init registers (fun _ ->
      match style with
      | Rw -> Objects.Register.optype ()
      | Swapping -> Objects.Swap_register.optype ())

let validate ~style ~registers (t0, t1) =
  if registers < 1 then invalid_arg "Dtree: registers must be >= 1";
  List.iter
    (fun t ->
      if max_reg t >= registers then
        invalid_arg
          (Printf.sprintf "Dtree: tree %s touches register %d but only %d exist"
             (to_string t) (max_reg t) registers);
      if style = Rw && uses_swap t then
        invalid_arg
          (Printf.sprintf "Dtree: tree %s swaps but the style is rw"
             (to_string t)))
    [ t0; t1 ]

let protocol_name ~style ~registers (t0, t1) =
  Printf.sprintf "synth:%s:r%d:%s|%s" (style_to_string style) registers
    (to_string t0) (to_string t1)

let protocol ~style ~registers (t0, t1) : Protocol.t =
  validate ~style ~registers (t0, t1);
  {
    name = protocol_name ~style ~registers (t0, t1);
    kind = (if has_flip t0 || has_flip t1 then `Randomized else `Deterministic);
    identical = true;
    supports_n = (fun n -> n >= 1);
    optypes = (fun ~n:_ -> optypes ~style ~registers);
    code =
      (fun ~n:_ ~pid:_ ~input -> to_proc (if input = 0 then t0 else t1));
  }

(* "synth:<style>:r<R>:<t0>|<t1>" — inverse of {!protocol_name} *)
let parse_name name =
  match String.split_on_char ':' name with
  | [ "synth"; style_s; r_s; trees ] -> (
      match
        ( style_of_string style_s,
          (if String.length r_s > 1 && r_s.[0] = 'r' then
             int_of_string_opt (String.sub r_s 1 (String.length r_s - 1))
           else None),
          String.index_opt trees '|' )
      with
      | Some style, Some registers, Some bar when registers >= 1 -> (
          let s0 = String.sub trees 0 bar in
          let s1 =
            String.sub trees (bar + 1) (String.length trees - bar - 1)
          in
          match (of_string s0, of_string s1) with
          | Ok t0, Ok t1 -> (
              match validate ~style ~registers (t0, t1) with
              | () -> Some (style, registers, t0, t1)
              | exception Invalid_argument _ -> None)
          | _ -> None)
      | _ -> None)
  | _ -> None

let of_name name =
  match parse_name name with
  | Some (style, registers, t0, t1) ->
      Some (protocol ~style ~registers (t0, t1))
  | None -> None
