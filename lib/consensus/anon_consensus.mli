(** Randomized binary consensus for anonymous processes (identical code,
    no pids — Gelashvili's setting) from multi-writer registers:
    per-round presence bits + proposal + conciliator, adopt-commit style.
    Safety is coin- and n-independent; termination with probability 1
    under the oblivious schedulers of the test rig. *)

val protocol : Protocol.t
