(* Pruning lemmas: concrete violating executions, replayed against fresh
   candidates before any full search is paid for.

   A lemma is an input vector plus a schedule (the adversary's side of
   one execution, in [Fuzz.Schedule] form) that drove some earlier
   candidate into a consensus violation.  Replaying it against a new
   candidate with [Run.exec_script] costs one bounded deterministic run;
   if the replay violates, that run IS a counterexample for the new
   candidate — the candidate is refuted by the same standard of evidence
   full verification produces, which is why pruning can never flip a
   frontier verdict (DESIGN.md §4k).  If the replay stays clean the
   lemma simply missed and the candidate proceeds to verification;
   nothing is ever rejected on similarity alone. *)

open Sim

type t = {
  source : string;
      (* protocol name of the candidate whose execution this is *)
  inputs : int list;
  schedule : Fuzz.Schedule.t;
}

(* A violation among m processes extends to any n >= m execution in
   which the other n - m processes never move (identical processes, no
   n-dependence in tree code), so a lemma refutes claims at [n] only
   when its own vector is no wider. *)
let applies ~n lemma = List.length lemma.inputs <= n

let hits lemma (p : Consensus.Protocol.t) =
  let m = List.length lemma.inputs in
  if not (p.Consensus.Protocol.supports_n m) then false
  else
    let config = Consensus.Protocol.initial_config p ~inputs:lemma.inputs in
    let r = Run.exec_script ~script:lemma.schedule config in
    not (Checker.ok (Checker.of_config ~inputs:lemma.inputs r.Run.config))

(* first pool entry (oldest first) that refutes [p] at [n], if any *)
let first_hit ~n pool p =
  List.find_opt (fun l -> applies ~n l && hits l p) pool

(* ---- text codec ----

   One line per lemma, versioned with a count line and an end marker in
   the Trace_io/Schedule style: byte-identical pools are the jobs 1/2
   determinism artifact, and a truncated file is a loud parse error.

     randsync-lemmas v1
     count 2
     L <source> inputs=0,1 sched=s0:0;s1;c0
     L <source> inputs=0,0,1 sched=
     end
*)

let entry_to_string = function
  | `Step (pid, None) -> Printf.sprintf "s%d" pid
  | `Step (pid, Some coin) -> Printf.sprintf "s%d:%d" pid coin
  | `Crash pid -> Printf.sprintf "c%d" pid

let entry_of_string s =
  let fail () =
    raise (Trace_io.Parse_error (Printf.sprintf "bad lemma entry %S" s))
  in
  if s = "" then fail ()
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'c' -> (
        match int_of_string_opt body with
        | Some pid -> `Crash pid
        | None -> fail ())
    | 's' -> (
        match String.index_opt body ':' with
        | None -> (
            match int_of_string_opt body with
            | Some pid -> `Step (pid, None)
            | None -> fail ())
        | Some i -> (
            match
              ( int_of_string_opt (String.sub body 0 i),
                int_of_string_opt
                  (String.sub body (i + 1) (String.length body - i - 1)) )
            with
            | Some pid, Some coin -> `Step (pid, Some coin)
            | _ -> fail ()))
    | _ -> fail ()

let lemma_to_line l =
  Printf.sprintf "L %s inputs=%s sched=%s" l.source
    (String.concat "," (List.map string_of_int l.inputs))
    (String.concat ";" (List.map entry_to_string l.schedule))

let lemma_of_line line =
  let fail fmt = Printf.ksprintf (fun m -> raise (Trace_io.Parse_error m)) fmt in
  match String.split_on_char ' ' line with
  | [ "L"; source; inputs_f; sched_f ]
    when String.length inputs_f > 7
         && String.sub inputs_f 0 7 = "inputs="
         && String.length sched_f >= 6
         && String.sub sched_f 0 6 = "sched=" ->
      let inputs_s = String.sub inputs_f 7 (String.length inputs_f - 7) in
      let sched_s = String.sub sched_f 6 (String.length sched_f - 6) in
      let inputs =
        List.map
          (fun s ->
            match int_of_string_opt s with
            | Some i -> i
            | None -> fail "bad lemma inputs %S" inputs_s)
          (String.split_on_char ',' inputs_s)
      in
      if inputs = [] then fail "empty lemma inputs in %S" line;
      let schedule =
        if sched_s = "" then []
        else List.map entry_of_string (String.split_on_char ';' sched_s)
      in
      { source; inputs; schedule }
  | _ -> fail "bad lemma line %S" line

let to_text pool =
  let b = Buffer.create 256 in
  Buffer.add_string b "randsync-lemmas v1\n";
  Buffer.add_string b (Printf.sprintf "count %d\n" (List.length pool));
  List.iter
    (fun l ->
      Buffer.add_string b (lemma_to_line l);
      Buffer.add_char b '\n')
    pool;
  Buffer.add_string b "end\n";
  Buffer.contents b

let of_text text =
  let fail fmt = Printf.ksprintf (fun m -> raise (Trace_io.Parse_error m)) fmt in
  let lines =
    String.split_on_char '\n' text
    |> List.map (fun l ->
           (* tolerate CRLF exactly like the schedule codec *)
           if String.length l > 0 && l.[String.length l - 1] = '\r' then
             String.sub l 0 (String.length l - 1)
           else l)
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | "randsync-lemmas v1" :: rest -> (
      match rest with
      | count_line :: rest -> (
          let count =
            match String.split_on_char ' ' count_line with
            | [ "count"; n ] -> (
                match int_of_string_opt n with
                | Some n when n >= 0 -> n
                | _ -> fail "bad lemma count line %S" count_line)
            | _ -> fail "bad lemma count line %S" count_line
          in
          let rec take acc k = function
            | "end" :: [] when k = count -> List.rev acc
            | "end" :: _ -> fail "lemma file: garbage after end marker"
            | line :: rest when k < count ->
                take (lemma_of_line line :: acc) (k + 1) rest
            | _ :: _ -> fail "lemma file: more entries than declared"
            | [] -> fail "lemma file truncated: %d of %d entries" k count
          in
          match take [] 0 rest with
          | pool -> pool)
      | [] -> fail "lemma file truncated: missing count line")
  | first :: _ -> fail "not a lemma file (leads with %S)" first
  | [] -> fail "empty lemma file"

let save ~path pool = Trace_io.save_text ~path (to_text pool)
let load ~path = of_text (Trace_io.load_text ~path)
