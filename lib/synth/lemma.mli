(** Pruning lemmas for the CEGIS loop: concrete violating executions,
    replayed against fresh candidates before a full search is paid for.

    A lemma records the input vector and adversary schedule of an
    execution that violated consensus for some earlier candidate
    ([source]).  {!hits} replays it against a new candidate through
    {!Sim.Run.exec_script} — a single bounded deterministic run — and
    reports whether {e that candidate's own} replayed execution violates
    the checker.  A pruned candidate is therefore refuted by exactly the
    evidence full verification would produce (a concrete violating
    execution of that candidate), which is why pruning never changes a
    frontier verdict; see DESIGN.md §4k.  A miss proves nothing and the
    candidate proceeds to verification. *)

type t = {
  source : string;
      (** protocol name of the candidate whose violating execution this
          schedule was extracted from — provenance for the soundness
          audit (replaying a lemma against its own source must violate) *)
  inputs : int list;
  schedule : Fuzz.Schedule.t;
}

(** Whether the lemma can refute correctness claims at [n] processes: a
    violation among [m] processes extends to any [n >= m] execution
    where the extra processes never move (identical processes), and to
    nothing smaller. *)
val applies : n:int -> t -> bool

(** Replay the lemma against a candidate protocol: build the candidate's
    initial configuration for the lemma's inputs, run the schedule, and
    check the final decisions.  [true] iff the replayed execution
    violates consensus.  Total: unsupported process counts are a miss,
    out-of-range pids and missing coins are skipped/defaulted by
    [exec_script]. *)
val hits : t -> Consensus.Protocol.t -> bool

(** First pool entry (oldest first — the transferable generic killers
    accumulate at the front) that {!applies} at [n] and {!hits} the
    candidate. *)
val first_hit : n:int -> t list -> Consensus.Protocol.t -> t option

(** {1 Text codec} — line-oriented and versioned in the {!Sim.Trace_io}
    style (count line + [end] marker, loud {!Sim.Trace_io.Parse_error}
    on damage).  Byte-equality of [to_text] output is the determinism
    artifact the jobs 1/2 suite and CI compare. *)

val to_text : t list -> string

(** Raises {!Sim.Trace_io.Parse_error} on malformed input. *)
val of_text : string -> t list

val save : path:string -> t list -> unit
val load : path:string -> t list
