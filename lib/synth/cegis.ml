(* The CEGIS loop (ROADMAP item 3): search the bounded decision-tree
   protocol space over r objects for the largest n admitting a correct
   consensus protocol, pruning with replayed counterexamples.

   Search order, per process count n = 2, 3, ...:

     1. solo validity   — a tree is usable for input v only if every solo
                          run decides v (computed once; n-independent)
     2. unanimity       — tree t survives side v only if (t, t) is
                          correct on the all-v vector of length n (a
                          per-tree full search, so the quadratic pair
                          stage sweeps survivors only — the same
                          factorization as [Enumerate.census_of_trees])
     3. pair sweep      — each (t0, t1) in u0 x u1 runs the candidate
                          pipeline: lemma replay, then seeded random
                          probes, then the identical-process adversary,
                          then full verification on every mixed vector

   Identical processes make input vectors multisets: the mixed vectors
   at n are [k zeros ++ (n-k) ones] for 0 < k < n, and unanimity is
   stage 2 — no other vector exists up to symmetry.

   Correctness is monotone downward in n (an n-process execution is an
   (n+1)-process execution in which the extra process never moves), so
   the round loop stops at the first exhaustively-unsatisfiable n: every
   larger n is unsatisfiable by the same embedding, and the frontier
   claim keeps its `Exhaustive verdict without visiting them.

   Determinism contract (the repo-wide one): identical parameters give
   bit-identical results — rows, witness, lemma pool — at any [?pool]
   size.  Per-candidate RNG streams are pre-split with [Rng.split_n]
   before dispatch, batches are admitted through [Budget.Meter] on the
   caller, [Par.map] preserves order, the fold that merges outcomes
   (and grows the lemma pool) runs sequentially in candidate order, and
   workers only ever see a pool snapshot frozen between batches —
   exactly the [Fuzz.Campaign] discipline. *)

open Sim
module D = Consensus.Dtree

type verdict = [ `Satisfiable | `Unsatisfiable | `Unknown of Robust.Budget.reason ]

let verdict_to_string = function
  | `Satisfiable -> "satisfiable"
  | `Unsatisfiable -> "unsatisfiable"
  | `Unknown reason -> "unknown:" ^ Robust.Budget.reason_to_string reason

type row = {
  n : int;
  unanimous0 : int;  (** solo-valid trees also correct on the all-0 vector *)
  unanimous1 : int;
  candidates : int;  (** pairs examined (admitted by the budget) *)
  pruned : int;  (** rejected by a replayed pool lemma, no search paid *)
  refuted : int;  (** rejected by a fresh counterexample (probe/adversary/search) *)
  witness : (D.t * D.t) option;  (** first verified pair in enumeration order *)
  verdict : verdict;
}

type result = {
  style : D.style;
  registers : int;
  depth : int;
  coins : bool;
  max_procs : int;
  seed : int;
  trees : int;  (** enumerated candidate trees *)
  valid0 : int;  (** trees whose every solo run decides 0 *)
  valid1 : int;
  rows : row list;
  frontier : int;
      (** largest n with a verified protocol; 1 when already n = 2 fails
          (a single process just decides its own input) *)
  lemmas : Lemma.t list;
  lemma_hits : int;  (** replays that violated, pool hits and fresh mints alike *)
  completeness : Robust.Budget.completeness;
}

(* mixed input vectors at n, identical processes: k zeros then n-k ones *)
let mixed_vectors n =
  List.init (n - 1) (fun i ->
      let zeros = i + 1 in
      List.init n (fun j -> if j < zeros then 0 else 1))

(* Admitted-prefix batching, Campaign-style: admit up to [batch] items
   through the meter, dispatch exactly the admitted prefix over the
   pool, fold results sequentially in index order on the caller.  [f]
   must be effect-free towards shared state; all merging lives in
   [fold].  [stop] short-circuits remaining items (their cost is never
   charged); [after_batch] runs on the caller between batches — the
   lemma-pool snapshot refresh hook.  Returns the accumulator plus how
   many items were folded, so callers can tell a budget trip (processed
   < total, meter tripped) from completion. *)
let batched ?pool ?(after_batch = fun () -> ()) ~meter ~batch items f fold
    ~stop init =
  let items = Array.of_list items in
  let total = Array.length items in
  let acc = ref init in
  let processed = ref 0 in
  let start = ref 0 in
  let halted = ref false in
  while (not !halted) && !start < total do
    let want = min batch (total - !start) in
    let admitted = Robust.Budget.Meter.take_nodes meter want in
    if admitted < want then halted := true;
    if admitted > 0 then begin
      let indices = List.init admitted (fun i -> !start + i) in
      let results = Par.map ?pool (fun i -> f i items.(i)) indices in
      List.iteri
        (fun k r ->
          if not !halted then begin
            acc := fold !acc (!start + k) r;
            incr processed;
            if stop !acc then halted := true
          end)
        results
    end;
    start := !start + admitted;
    if not !halted then after_batch ()
  done;
  (!acc, !processed)

(* one candidate's whole pipeline; runs on a worker domain against a
   frozen lemma pool and its own pre-split rng — no shared state *)
type outcome =
  | Pruned
  | Refuted of Lemma.t
  | Verified
  | Unknown of Robust.Budget.reason

type eval = {
  outcome : outcome;
  side_lemmas : Lemma.t list;
      (* mints that cannot refute at this n (adversary executions using
         clones beyond n) but may prune larger rounds *)
  hits : int;
}

let probe_max_steps = 1_000

let eval_candidate ~style ~registers ~prune ~probes ~use_attack ~frozen_pool
    ~n ~vectors ~rng (t0, t1) =
  let p = D.protocol ~style ~registers (t0, t1) in
  let hits = ref 0 in
  let lemma_of ~inputs trace =
    {
      Lemma.source = p.Consensus.Protocol.name;
      inputs;
      schedule = Fuzz.Schedule.of_trace trace;
    }
  in
  (* 1. pool replay: cheapest possible rejection *)
  let pruned_hit =
    if not prune then None else Lemma.first_hit ~n frozen_pool p
  in
  match pruned_hit with
  | Some _ ->
      incr hits;
      { outcome = Pruned; side_lemmas = []; hits = !hits }
  | None -> (
      (* 2. seeded random probes: cheap fresh counterexamples whose
         schedules transfer to the pool *)
      let probe_refutation =
        let rec per_vector = function
          | [] -> None
          | inputs :: rest -> (
              let rec attempt k =
                if k = 0 then None
                else
                  let seed =
                    Int64.to_int (Rng.next_int64 rng) land 0x3FFFFFFF
                  in
                  let config =
                    Mc.Enumerate.dtree_config ~style ~registers (t0, t1)
                      inputs
                  in
                  let r =
                    Run.exec ~max_steps:probe_max_steps (Sched.random ~seed)
                      config
                  in
                  if Checker.ok (Checker.of_config ~inputs r.Run.config) then
                    attempt (k - 1)
                  else begin
                    incr hits;
                    Some (lemma_of ~inputs r.Run.trace)
                  end
              in
              match attempt probes with
              | Some l -> Some l
              | None -> per_vector rest)
        in
        per_vector vectors
      in
      match probe_refutation with
      | Some l -> { outcome = Refuted l; side_lemmas = []; hits = !hits }
      | None -> (
          (* 3. the constructive adversary (rw only: [Attack.certify]'s
             fresh-start replay needs responses that do not leak history,
             which swap responses do).  Its execution may use clones
             beyond n; then it cannot refute this round, but the
             certified schedule still joins the pool for larger n. *)
          let attack_lemma =
            if not (use_attack && style = D.Rw) then None
            else
              match Lowerbound.Attack.run ~nominal_n:n p with
              | Error _ -> None
              | Ok o ->
                  if not (Lowerbound.Attack.succeeded o) then None
                  else (
                    match Lowerbound.Attack.certify p o with
                    | Error _ -> None
                    | Ok (trace, _) ->
                        let l =
                          lemma_of ~inputs:o.Lowerbound.Attack.inputs trace
                        in
                        (* trust, but replay: pool only what demonstrably
                           violates its own source *)
                        if Lemma.hits l p then begin
                          incr hits;
                          Some l
                        end
                        else None)
          in
          match attack_lemma with
          | Some l when Lemma.applies ~n l ->
              { outcome = Refuted l; side_lemmas = []; hits = !hits }
          | side -> (
              let side_lemmas = Option.to_list side in
              (* 4. full verification, vector by vector *)
              let rec verify = function
                | [] -> Verified
                | inputs :: rest -> (
                    match
                      Mc.Enumerate.dtree_check_verdict ~style ~registers
                        (t0, t1) inputs
                    with
                    | `Correct -> verify rest
                    | `Violating trace ->
                        incr hits;
                        Refuted (lemma_of ~inputs trace)
                    | `Unknown reason -> Unknown reason)
              in
              { outcome = verify vectors; side_lemmas; hits = !hits })))

let search ?obs ?pool ?(budget = Robust.Budget.unlimited) ?(prune = true)
    ?(attack = true) ?(probes = 4) ?(max_lemmas = 256) ?(batch = 32) ~style
    ~registers ~depth ~coins ~max_procs ~seed () =
  if registers < 1 then invalid_arg "Cegis.search: registers must be >= 1";
  if depth < 0 then invalid_arg "Cegis.search: depth must be >= 0";
  if max_procs < 2 then invalid_arg "Cegis.search: max_procs must be >= 2";
  Obs.span obs "synth/search" @@ fun () ->
  let meter = Robust.Budget.Meter.create budget in
  let trees =
    Array.of_list (Mc.Enumerate.enumerate_dtrees ~style ~registers ~coins depth)
  in
  (* stage 1: solo validity, n-independent (pure, fanned out) *)
  let solo =
    Par.map_array ?pool
      (fun t -> Mc.Enumerate.dtree_solo_decisions ~style ~registers t)
      trees
  in
  let valid side =
    Array.to_list trees |> List.filteri (fun i _ -> solo.(i) = [ side ])
  in
  let v0 = valid 0 and v1 = valid 1 in
  let round_rngs = Rng.split_n (Rng.create seed) (max_procs + 1) in
  let lemmas = ref [] (* newest first; reversed into pool order on use *) in
  let lemma_count = ref 0 in
  let lemma_hits = ref 0 in
  let add_lemma l =
    if !lemma_count < max_lemmas then begin
      lemmas := l :: !lemmas;
      incr lemma_count
    end
  in
  (* stage 2: unanimity filter for side v at n, one metered node per
     tree.  `Unknown poisons the whole round: a truncated filter
     under-approximates the survivor set, and a pair sweep over an
     under-approximation could claim `Unsatisfiable it never earned. *)
  let unanimous ~n side v =
    let vector = List.init n (fun _ -> side) in
    let (kept, unknown), processed =
      batched ?pool ~meter ~batch v
        (fun _ t ->
          (t, Mc.Enumerate.dtree_check_verdict ~style ~registers (t, t) vector))
        (fun (kept, unknown) _ (t, verdict) ->
          match verdict with
          | `Correct -> (t :: kept, unknown)
          | `Violating _ -> (kept, unknown)
          | `Unknown reason -> (kept, Some reason))
        ~stop:(fun (_, unknown) -> unknown <> None)
        ([], None)
    in
    let unknown =
      match unknown with
      | Some _ as u -> u
      | None ->
          if processed = List.length v then None
          else
            Some
              (Option.value (Robust.Budget.Meter.tripped meter) ~default:`Nodes)
    in
    (List.rev kept, unknown)
  in
  let rows = ref [] in
  let stop_rounds = ref false in
  let n = ref 2 in
  while (not !stop_rounds) && !n <= max_procs do
    let this_n = !n in
    let u0, unk0 = unanimous ~n:this_n 0 v0 in
    let u1, unk1 = unanimous ~n:this_n 1 v1 in
    let row =
      match (unk0, unk1) with
      | Some reason, _ | _, Some reason ->
          {
            n = this_n;
            unanimous0 = List.length u0;
            unanimous1 = List.length u1;
            candidates = 0;
            pruned = 0;
            refuted = 0;
            witness = None;
            verdict = `Unknown reason;
          }
      | None, None ->
          (* stage 3: pair sweep in t0-major enumeration order *)
          let pairs =
            List.concat_map (fun t0 -> List.map (fun t1 -> (t0, t1)) u1) u0
          in
          let vectors = mixed_vectors this_n in
          let rngs = Rng.split_n round_rngs.(this_n) (List.length pairs) in
          let frozen = ref (List.rev !lemmas) in
          let frozen_at = ref !lemma_count in
          let (pruned, refuted, witness, unknown), processed =
            batched ?pool ~meter ~batch pairs
              ~after_batch:(fun () ->
                (* workers are quiescent between batches; everything the
                   fold minted is now safe to publish *)
                if !frozen_at < !lemma_count then begin
                  frozen := List.rev !lemmas;
                  frozen_at := !lemma_count
                end)
              (fun i pair ->
                ( eval_candidate ~style ~registers ~prune ~probes
                    ~use_attack:attack ~frozen_pool:!frozen ~n:this_n
                    ~vectors ~rng:rngs.(i) pair,
                  pair ))
              (fun (pruned, refuted, witness, unknown) _ (ev, pair) ->
                lemma_hits := !lemma_hits + ev.hits;
                List.iter add_lemma ev.side_lemmas;
                match ev.outcome with
                | Pruned -> (pruned + 1, refuted, witness, unknown)
                | Refuted l ->
                    add_lemma l;
                    (pruned, refuted + 1, witness, unknown)
                | Verified -> (pruned, refuted, Some pair, unknown)
                | Unknown reason -> (pruned, refuted, witness, Some reason))
              ~stop:(fun (_, _, witness, unknown) ->
                witness <> None || unknown <> None)
              (0, 0, None, None)
          in
          let verdict =
            match (witness, unknown) with
            | Some _, _ -> `Satisfiable
            | None, Some reason -> `Unknown reason
            | None, None ->
                if processed = List.length pairs then `Unsatisfiable
                else
                  `Unknown
                    (Option.value
                       (Robust.Budget.Meter.tripped meter)
                       ~default:`Nodes)
          in
          {
            n = this_n;
            unanimous0 = List.length u0;
            unanimous1 = List.length u1;
            candidates = processed;
            pruned;
            refuted;
            witness;
            verdict;
          }
    in
    rows := row :: !rows;
    (match row.verdict with
    | `Unsatisfiable | `Unknown _ ->
        (* unsatisfiable at n stays unsatisfiable for every larger n
           (idle-process embedding), so the frontier is settled; an
           unknown row means nothing larger can be claimed either way *)
        stop_rounds := true
    | `Satisfiable -> ());
    incr n
  done;
  let rows = List.rev !rows in
  let frontier =
    List.fold_left
      (fun acc r -> if r.verdict = `Satisfiable then r.n else acc)
      1 rows
  in
  let completeness =
    List.fold_left
      (fun acc r ->
        match r.verdict with
        | `Unknown reason -> Robust.Budget.merge acc (`Truncated reason)
        | `Satisfiable | `Unsatisfiable -> acc)
      `Exhaustive rows
  in
  let result =
    {
      style;
      registers;
      depth;
      coins;
      max_procs;
      seed;
      trees = Array.length trees;
      valid0 = List.length v0;
      valid1 = List.length v1;
      rows;
      frontier;
      lemmas = List.rev !lemmas;
      lemma_hits = !lemma_hits;
      completeness;
    }
  in
  (* all instrumentation from the merged result, on the caller domain:
     jobs-invariant by construction *)
  Obs.add obs "synth/candidates"
    (List.fold_left (fun a r -> a + r.candidates) 0 rows);
  Obs.add obs "synth/pruned" (List.fold_left (fun a r -> a + r.pruned) 0 rows);
  Obs.add obs "synth/refuted"
    (List.fold_left (fun a r -> a + r.refuted) 0 rows);
  Obs.add obs "synth/verified"
    (List.length (List.filter (fun r -> r.witness <> None) rows));
  Obs.add obs "synth/lemma-hits" result.lemma_hits;
  Obs.add obs "synth/lemmas" (List.length result.lemmas);
  Obs.add obs "budget/polls" (Robust.Budget.Meter.polls meter);
  result

(* ---- rendering (the CLI and bench share these lines) ---- *)

let witness_name (r : result) row =
  Option.map
    (fun pair -> D.protocol_name ~style:r.style ~registers:r.registers pair)
    row.witness

let report (r : result) =
  let header =
    Printf.sprintf
      "synth style=%s registers=%d depth=%d coins=%b procs=2..%d seed=%d \
       trees=%d valid=%d/%d"
      (D.style_to_string r.style) r.registers r.depth r.coins r.max_procs
      r.seed r.trees r.valid0 r.valid1
  in
  let rows =
    List.concat_map
      (fun row ->
        let base =
          Printf.sprintf
            "n=%d: unanimous=%d/%d candidates=%d pruned=%d refuted=%d \
             verdict=%s"
            row.n row.unanimous0 row.unanimous1 row.candidates row.pruned
            row.refuted
            (verdict_to_string row.verdict)
        in
        match witness_name r row with
        | None -> [ base ]
        | Some name -> [ base; Printf.sprintf "synthesized: %s" name ])
      r.rows
  in
  let exhaustive = Robust.Budget.is_exhaustive r.completeness in
  let frontier =
    if r.frontier >= 2 then
      Printf.sprintf
        "frontier: n=%d (largest process count with a correct protocol in \
         this class%s)"
        r.frontier
        (if exhaustive then "" else "; lower bound, search truncated")
    else if exhaustive then
      "frontier: n=1 (no correct protocol for n=2 in this class)"
    else "frontier: n=1 (nothing verified before the search was truncated)"
  in
  let lemmas = Printf.sprintf "lemmas: %d" (List.length r.lemmas) in
  let completeness =
    Printf.sprintf "completeness: %s"
      (Robust.Budget.completeness_to_string r.completeness)
  in
  (header :: rows) @ [ frontier; lemmas; completeness ]
