(** CEGIS over bounded decision-tree consensus protocols: find the
    largest process count [n] for which a correct protocol exists in the
    {!Consensus.Dtree} class of depth [<= depth] over [registers]
    objects, learning pruning lemmas ({!Lemma}) from every
    counterexample along the way.

    Per round [n = 2, 3, ...] the driver filters candidate trees by solo
    validity and unanimity (the {!Mc.Enumerate.census_of_trees}
    factorization), then sweeps surviving pairs through a pipeline of
    increasingly expensive refuters: pool-lemma replay, seeded random
    probes, the constructive adversary ({!Lowerbound.Attack}, rw only),
    and finally exhaustive search on every mixed input vector.  Every
    counterexample found at any stage becomes a lemma; pruning is sound
    because a hit replays a concrete violating execution of the pruned
    candidate itself (see {!Lemma.hits} and DESIGN.md §4k).

    Correctness of a protocol is monotone downward in [n] (idle-process
    embedding), so the round loop stops at the first exhaustively
    unsatisfiable [n] and the frontier verdict keeps [`Exhaustive]
    without visiting larger process counts.

    Determinism: identical parameters produce bit-identical results —
    rows, witness, lemma pool — at any [?pool] size, by the
    {!Fuzz.Campaign} discipline (pre-split {!Sim.Rng} streams, batched
    budget admission, order-preserving {!Par.map}, sequential merge over
    per-batch-frozen lemma snapshots). *)

type verdict = [ `Satisfiable | `Unsatisfiable | `Unknown of Robust.Budget.reason ]

val verdict_to_string : verdict -> string

type row = {
  n : int;
  unanimous0 : int;  (** solo-valid trees also correct on the all-0 vector *)
  unanimous1 : int;
  candidates : int;  (** pairs examined (admitted by the budget) *)
  pruned : int;  (** rejected by a replayed pool lemma, no search paid *)
  refuted : int;
      (** rejected by a fresh counterexample (probe, adversary or
          exhaustive search) *)
  witness : (Consensus.Dtree.t * Consensus.Dtree.t) option;
      (** first verified pair in enumeration order *)
  verdict : verdict;
}

type result = {
  style : Consensus.Dtree.style;
  registers : int;
  depth : int;
  coins : bool;
  max_procs : int;
  seed : int;
  trees : int;  (** enumerated candidate trees *)
  valid0 : int;  (** trees whose every solo run decides 0 *)
  valid1 : int;
  rows : row list;  (** one per examined [n], ascending *)
  frontier : int;
      (** largest [n] with a verified protocol; [1] when already [n = 2]
          fails (a single process just decides its own input) *)
  lemmas : Lemma.t list;  (** final pool, oldest first — the CI artifact *)
  lemma_hits : int;  (** replays that violated, pool hits and mints alike *)
  completeness : Robust.Budget.completeness;
}

(** [search ~style ~registers ~depth ~coins ~max_procs ~seed ()] runs
    rounds [n = 2 .. max_procs] (or stops earlier at the first
    unsatisfiable or unknown round).

    [prune] gates pool-lemma replay — with [prune:false] every candidate
    pays for its own refutation, which must produce identical verdicts
    (the soundness property [test_synth] pins).  [attack] gates the
    constructive adversary stage.  [probes] is the number of seeded
    random executions tried per mixed vector before full search.
    [max_lemmas] caps the pool; [batch] is the budget-admission batch
    size.  [budget] governs the whole search: one node per unanimity
    check and one per candidate pair; a trip yields [`Unknown] rows and
    a [`Truncated] completeness, never a silent under-claim.

    Raises [Invalid_argument] on [registers < 1], [depth < 0] or
    [max_procs < 2]. *)
val search :
  ?obs:Obs.t ->
  ?pool:Par.Pool.t ->
  ?budget:Robust.Budget.t ->
  ?prune:bool ->
  ?attack:bool ->
  ?probes:int ->
  ?max_lemmas:int ->
  ?batch:int ->
  style:Consensus.Dtree.style ->
  registers:int ->
  depth:int ->
  coins:bool ->
  max_procs:int ->
  seed:int ->
  unit ->
  result

(** Registry name ({!Consensus.Dtree.protocol_name}) of a row's witness,
    if it has one — resolvable by {!Consensus.Registry.find}, so a
    synthesized protocol is immediately usable by mc, fuzz and bench. *)
val witness_name : result -> row -> string option

(** Stable line-oriented report: header, one (or two, with the
    [synthesized:] name) lines per row, then [frontier:], [lemmas:] and
    [completeness:] lines.  The CLI prints these; tests and CI golden
    them. *)
val report : result -> string list
