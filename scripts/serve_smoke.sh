#!/usr/bin/env bash
# Chaos smoke for `randsync serve`: two concurrent clients, a SIGTERM
# drain cutting a job mid-run, and a crash-safe restart that must
# reproduce the exact verdicts the direct CLI prints.
#
#   scripts/serve_smoke.sh [BINARY [WORKDIR]]
#
# BINARY defaults to the dev-profile build product; WORKDIR (default
# ./serve-smoke) collects server logs, metrics dumps, the spool and
# every captured verdict, so CI can upload it wholesale on failure.
# Server PIDs come from $! only — never from pgrep, which would match
# unrelated processes on a shared runner.
set -u

BIN="${1:-_build/default/bin/randsync_cli.exe}"
WORK="${2:-serve-smoke}"

rm -rf "$WORK"
mkdir -p "$WORK"
SOCK="$WORK/serve.sock"
SPOOL="$WORK/spool"
SERVER=""

fail() {
  echo "serve-smoke: FAIL: $*" >&2
  if [ -n "$SERVER" ]; then kill -9 "$SERVER" 2>/dev/null; fi
  exit 1
}

submit() { "$BIN" submit --socket "$SOCK" "$@"; }

start_server() { # start_server <tag>
  "$BIN" serve --socket "$SOCK" --spool "$SPOOL" \
    --metrics "$WORK/server-$1.metrics.json" \
    >"$WORK/server-$1.log" 2>&1 &
  SERVER=$!
  for _ in $(seq 1 100); do
    if submit --ping >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "server ($1) did not come up on $SOCK"
}

# --- 1. direct CLI runs: the ground truth every served verdict must
#        match byte-for-byte (shared renderer, pinned seeds) ------------
"$BIN" mc counter-3 --inputs 0,1 --depth 12 \
  >"$WORK/mc.direct" 2>"$WORK/mc.direct.err"
MC_CODE=$?
[ "$MC_CODE" -eq 0 ] || fail "direct mc counter-3 exited $MC_CODE, expected 0"

"$BIN" fuzz flawed --runs 40 --seed 3 \
  >"$WORK/fuzz.direct" 2>"$WORK/fuzz.direct.err"
FUZZ_CODE=$?
[ "$FUZZ_CODE" -eq 2 ] || fail "direct fuzz flawed exited $FUZZ_CODE, expected 2 (violation)"

"$BIN" mc rw-3n --inputs 0,1 --depth 20 --max-states 10000000 \
  >"$WORK/long.direct" 2>"$WORK/long.direct.err"
LONG_CODE=$?

# --- 2. serve the same jobs from two concurrent clients ----------------
start_server 1

submit --job '{"kind":"mc","protocol":"counter-3","inputs":[0,1],"depth":12}' \
  >"$WORK/mc.served" 2>"$WORK/mc.served.err" &
C1=$!
submit --job '{"kind":"fuzz","scenario":"flawed","runs":40,"seed":3}' \
  >"$WORK/fuzz.served" 2>"$WORK/fuzz.served.err" &
C2=$!
wait "$C1"
S1=$?
wait "$C2"
S2=$?
[ "$S1" -eq "$MC_CODE" ] || fail "served mc exited $S1, direct CLI exited $MC_CODE"
[ "$S2" -eq "$FUZZ_CODE" ] || fail "served fuzz exited $S2, direct CLI exited $FUZZ_CODE"
diff "$WORK/mc.direct" "$WORK/mc.served" \
  || fail "served mc verdict differs from the direct CLI"
diff "$WORK/fuzz.direct" "$WORK/fuzz.served" \
  || fail "served fuzz verdict differs from the direct CLI"

# --- 3. a detached slow job, then SIGTERM mid-run ----------------------
submit --detach \
  --job '{"kind":"mc","protocol":"rw-3n","inputs":[0,1],"depth":20,"max_states":10000000}' \
  >"$WORK/detach.out" 2>"$WORK/detach.err" \
  || fail "detached submit failed: $(cat "$WORK/detach.err")"
LONG_ID=$(sed -n 's/^id=\([0-9][0-9]*\)$/\1/p' "$WORK/detach.out")
[ -n "$LONG_ID" ] || fail "detached submit did not print id=N: $(cat "$WORK/detach.out")"

sleep 0.7 # well inside the ~2s run: the cut lands mid-search, past checkpoints
submit --status >"$WORK/status.before-kill" 2>&1 || true
kill -TERM "$SERVER"
wait "$SERVER"
DRAIN=$?
SERVER=""
[ "$DRAIN" -eq 0 ] || fail "SIGTERM drain exited $DRAIN, expected 0"
grep -q '^drained$' "$WORK/server-1.log" \
  || fail "drained server log missing its 'drained' line"
[ -s "$WORK/server-1.metrics.json" ] \
  || fail "server did not dump --metrics on drain"
grep -q '"drained":"true"' "$WORK/server-1.metrics.json" \
  || fail "drain metrics missing drained=true"

# --- 4. restart on the same spool: the cut job must finish with a
#        verdict byte-identical to the uninterrupted direct run ---------
start_server 2
submit --wait "$LONG_ID" >"$WORK/long.served" 2>"$WORK/long.served.err"
SL=$?
[ "$SL" -eq "$LONG_CODE" ] || fail "resumed job exited $SL, direct CLI exited $LONG_CODE"
diff "$WORK/long.direct" "$WORK/long.served" \
  || fail "resumed verdict differs from the uninterrupted direct run"

submit --drain >/dev/null 2>&1 || fail "drain request failed"
wait "$SERVER"
DRAIN=$?
SERVER=""
[ "$DRAIN" -eq 0 ] || fail "final drain exited $DRAIN, expected 0"

echo "serve-smoke: OK (drain, resume and served verdicts all byte-identical)"
