(* Implementing objects from objects (Section 2 / Theorem 2.1 territory):
   run concurrent workloads through register-based counters and check the
   recorded histories against the sequential specification with a
   linearizability checker — and watch the paper's Section 2 example come
   alive: the double-collect (snapshot) reader satisfies nondeterministic
   solo termination but is not wait-free, while the wait-free
   single-collect reader is not even linearizable.

     dune exec examples/object_implementations.exe
*)

open Objects
open Objimpl

let show_verdict = function
  | Linearize.Linearizable _ -> "linearizable"
  | Linearize.Not_linearizable -> "NOT linearizable"
  | Linearize.Unknown -> "unknown (budget)"
  | Linearize.Malformed d -> "malformed: " ^ d

let () =
  print_endline "1. the flawed single-collect counter, refuted by a directed schedule:";
  let workload =
    [ (0, [ Counter.inc ]); (1, [ Counter.read; Counter.dec ]); (2, [ Counter.read ]) ]
  in
  let schedule =
    Harness.Fixed
      ([ 2 ] @ [ 0; 0; 0 ] @ [ 1; 1; 1; 1 ] @ [ 1; 1; 1 ] @ [ 2; 2; 2 ])
  in
  let outcome, verdict =
    Harness.run_and_check Counters.collect ~n:3 ~workload ~schedule ()
  in
  print_string (History.to_string outcome.Harness.history);
  Printf.printf "   verdict: %s (the reader returned a count the counter never held)\n\n"
    (show_verdict verdict);

  print_endline "2. the double-collect (snapshot) counter survives the same window:";
  let schedule =
    Harness.Fixed
      ([ 2 ] @ [ 0; 0; 0 ] @ [ 1; 1; 1; 1; 1; 1; 1 ] @ [ 1; 1; 1 ]
      @ List.init 11 (fun _ -> 2))
  in
  let outcome, verdict =
    Harness.run_and_check Counters.snapshot ~n:3 ~workload ~schedule ()
  in
  Printf.printf "   verdict: %s\n\n" (show_verdict verdict);
  ignore outcome;

  print_endline "3. ...but it is only solo-terminating, not wait-free:";
  let solo =
    Harness.run Counters.snapshot ~n:2
      ~workload:[ (0, [ Counter.read ]) ]
      ~schedule:(Harness.Fixed [ 0; 0; 0; 0; 0 ])
      ()
  in
  Printf.printf "   solo read: completed = %b in %d steps\n"
    solo.Harness.completed solo.Harness.steps;
  let k = 40 in
  let starved =
    Harness.run Counters.snapshot ~n:2
      ~workload:[ (0, [ Counter.read ]); (1, List.init k (fun _ -> Counter.inc)) ]
      ~schedule:(Harness.Fixed (List.concat (List.init k (fun _ -> [ 0; 1; 1; 1; 0 ]))))
      ()
  in
  Printf.printf
    "   read against an adversarial writer: completed = %b after %d steps\n"
    starved.Harness.completed starved.Harness.steps;
  print_endline
    "   (every double collect straddles a complete increment: exactly the\n\
     \    paper's example of solo termination without wait-freedom)\n";

  print_endline "4. implementations from stronger primitives stay linearizable under load:";
  List.iter
    (fun (name, impl, ops) ->
      let ok = ref 0 and runs = 25 in
      for seed = 1 to runs do
        let workload = Harness.random_workload ~n:3 ~calls:4 ~ops ~seed in
        match
          Harness.run_and_check impl ~n:3 ~workload
            ~schedule:(Harness.Random_sched (seed * 23)) ()
        with
        | _, Linearize.Linearizable _ -> incr ok
        | _, _ -> ()
      done;
      Printf.printf "   %-22s %d/%d random histories linearizable\n" name !ok runs)
    [
      ( "fetch&add from cas",
        From_universal.fetch_add_from_cas,
        [ Fetch_add.fetch_add 1; Fetch_add.fetch_add (-2); Fetch_add.read ] );
      ( "test&set from swap",
        From_universal.test_and_set_from_swap,
        [ Test_and_set.test_and_set; Test_and_set.read ] );
      ("snapshot counter", Counters.snapshot, [ Counter.inc; Counter.dec; Counter.read ]);
    ]
